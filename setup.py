"""Legacy setup shim.

The execution environment has setuptools but no ``wheel`` package, so PEP 660
editable installs (``pip install -e .`` via pyproject alone) cannot build.
This file lets ``pip install -e . --no-use-pep517`` (and plain
``python setup.py develop``) work offline; all metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
