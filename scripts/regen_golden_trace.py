"""Regenerate the golden determinism trace.

Only run this when a PR *intentionally* changes the RNG stream (see
README.md, "Performance & determinism contract"). The golden is written
from the currently active implementation, so regenerate from a tree whose
behaviour you trust — and call out the stream break in the PR description.

Usage::

    PYTHONPATH=src python scripts/regen_golden_trace.py            # scalar golden
    PYTHONPATH=src python scripts/regen_golden_trace.py --vector   # vector golden

``--vector`` regenerates the *second* determinism domain's golden
(``tests/golden/determinism_trace_vector.json``), captured with the
``REPRO_VECTOR`` numpy kernel forced on. It requires numpy (the
``[vector]`` extra) and never touches the scalar golden — the two domains
break independently.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tests"))
sys.path.insert(0, str(REPO_ROOT / "src"))

from test_determinism_trace import (  # noqa: E402
    GOLDEN_PATH,
    VECTOR_GOLDEN_PATH,
    collect_trace,
)


def require_lint_clean() -> None:
    """Refuse to regenerate while non-baselined lint findings exist.

    The golden trace is the determinism contract's ground truth; rewriting
    it from a tree that still carries a known determinism hazard (a fresh
    RL001 hash() seed, an RL005 set-order leak, ...) would pin the hazard
    *into* the contract. Fix the findings — or baseline them with a reason —
    and rerun.
    """
    from repro.analysis import baseline as baseline_mod
    from repro.analysis.engine import lint_paths

    report = lint_paths(
        [REPO_ROOT / "src", REPO_ROOT / "tests"], repo_root=REPO_ROOT
    )
    entries = baseline_mod.load_baseline(baseline_mod.DEFAULT_BASELINE)
    new, _baselined, _stale = baseline_mod.partition(report.findings, entries)
    if new:
        print(
            "refusing to regenerate the golden trace: "
            f"{len(new)} non-baselined lint finding(s) (see docs/LINT.md):",
            file=sys.stderr,
        )
        for finding in new:
            print(f"  {finding.render()}", file=sys.stderr)
        raise SystemExit(1)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--vector",
        action="store_true",
        help="regenerate the REPRO_VECTOR domain's golden instead of the scalar one",
    )
    options = parser.parse_args()
    require_lint_clean()
    if options.vector:
        from repro.util import vector

        if not vector.available():
            print(
                "numpy is not installed; the vector golden can only be "
                "regenerated with the [vector] extra present",
                file=sys.stderr,
            )
            raise SystemExit(1)
        path = VECTOR_GOLDEN_PATH
        with vector.forced(True):
            trace = collect_trace(seed=0)
    else:
        path = GOLDEN_PATH
        trace = collect_trace(seed=0)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(trace, indent=1, sort_keys=True))
    print(
        f"wrote {path}: {len(trace['votes'])} votes, "
        f"clock={trace['clock_seconds']}, ledger={trace['ledger']}"
    )


if __name__ == "__main__":
    main()
