"""Regenerate the golden determinism trace.

Only run this when a PR *intentionally* changes the RNG stream (see
README.md, "Performance & determinism contract"). The golden is written
from the currently active implementation, so regenerate from a tree whose
behaviour you trust — and call out the stream break in the PR description.

Usage::

    PYTHONPATH=src python scripts/regen_golden_trace.py
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tests"))

from test_determinism_trace import GOLDEN_PATH, collect_trace  # noqa: E402


def main() -> None:
    trace = collect_trace(seed=0)
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(trace, indent=1, sort_keys=True))
    print(
        f"wrote {GOLDEN_PATH}: {len(trace['votes'])} votes, "
        f"clock={trace['clock_seconds']}, ledger={trace['ledger']}"
    )


if __name__ == "__main__":
    main()
