"""Regenerate the golden determinism trace.

Only run this when a PR *intentionally* changes the RNG stream (see
README.md, "Performance & determinism contract"). The golden is written
from the currently active implementation, so regenerate from a tree whose
behaviour you trust — and call out the stream break in the PR description.

Usage::

    PYTHONPATH=src python scripts/regen_golden_trace.py
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tests"))
sys.path.insert(0, str(REPO_ROOT / "src"))

from test_determinism_trace import GOLDEN_PATH, collect_trace  # noqa: E402


def require_lint_clean() -> None:
    """Refuse to regenerate while non-baselined lint findings exist.

    The golden trace is the determinism contract's ground truth; rewriting
    it from a tree that still carries a known determinism hazard (a fresh
    RL001 hash() seed, an RL005 set-order leak, ...) would pin the hazard
    *into* the contract. Fix the findings — or baseline them with a reason —
    and rerun.
    """
    from repro.analysis import baseline as baseline_mod
    from repro.analysis.engine import lint_paths

    report = lint_paths(
        [REPO_ROOT / "src", REPO_ROOT / "tests"], repo_root=REPO_ROOT
    )
    entries = baseline_mod.load_baseline(baseline_mod.DEFAULT_BASELINE)
    new, _baselined, _stale = baseline_mod.partition(report.findings, entries)
    if new:
        print(
            "refusing to regenerate the golden trace: "
            f"{len(new)} non-baselined lint finding(s) (see docs/LINT.md):",
            file=sys.stderr,
        )
        for finding in new:
            print(f"  {finding.render()}", file=sys.stderr)
        raise SystemExit(1)


def main() -> None:
    require_lint_clean()
    trace = collect_trace(seed=0)
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(trace, indent=1, sort_keys=True))
    print(
        f"wrote {GOLDEN_PATH}: {len(trace['votes'])} votes, "
        f"clock={trace['clock_seconds']}, ledger={trace['ledger']}"
    )


if __name__ == "__main__":
    main()
