#!/usr/bin/env python
"""Run the determinism & contract linter (qurklint) from a checkout.

Equivalent to ``PYTHONPATH=src python -m repro.analysis`` but sets up the
path itself, so it works from any cwd::

    python scripts/repro_lint.py                 # lint src + tests
    python scripts/repro_lint.py --format=json   # machine-readable
    python scripts/repro_lint.py --list-rules    # the catalog

See docs/LINT.md for the rule catalog, suppression syntax, and the
shrink-only baseline workflow.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.cli import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
