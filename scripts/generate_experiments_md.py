"""Regenerate EXPERIMENTS.md by running every reproduction experiment.

Runs each table/figure experiment once (fixed seeds), renders the measured
rows next to the paper's reported values, and writes EXPERIMENTS.md.

Run:  python scripts/generate_experiments_md.py
"""

from __future__ import annotations

import io
import time
from pathlib import Path

from repro.experiments.ablations import run_ablation_table
from repro.experiments.end_to_end import run_table5
from repro.experiments.feature_experiments import (
    run_cost_summary,
    run_table2,
    run_table3,
    run_table4,
)
from repro.experiments.join_experiments import (
    run_assignments_accuracy,
    run_fig3,
    run_fig4,
    run_table1,
)
from repro.experiments.sort_experiments import (
    run_animal_hybrid,
    run_compare_batching,
    run_fig6,
    run_fig7,
    run_rate_batching,
    run_rate_granularity,
)

PAPER_NOTES = {
    "EXP-T1": "Paper: all three implementations near-ideal unbatched "
    "(19-20 of 20 TPs, 376-380 of 380 TNs).",
    "EXP-F3": "Paper: batching costs a few TPs under MV (Smart 3x3 worst), "
    "QA recovers them; TN unaffected; single-worker TP 78% (Simple) vs "
    "53% (Smart 3x3).",
    "EXP-F4": "Paper: Simple slowest (~1-2h, trial #2 worse), batched "
    "variants well under 1h; last 50% of the wait is the last 5% of tasks.",
    "EXP-S33": "Paper: R²=0.028, slightly positive slope, p<.05 — volume "
    "explains almost none of the accuracy variance. (Our simulated pool has "
    "accuracy truly independent of volume, so the slope is ~0 and p is "
    "large; the R²-tiny/no-negative-effect conclusion is what carries.)",
    "EXP-T2": "Paper Table 2: errors 1/3/5/5, saved 592/623/633/646, cost "
    "$27.52/$25.05/$33.15/$32.18. Our filters are somewhat more selective "
    "(cheaper joins), same ordering: combined < isolated on both errors "
    "and cost.",
    "EXP-T3": "Paper Table 3: omitting gender $45.30 (1 err) > hair $34.35 "
    "(0 err) > skin $31.28 (1 err): gender is the workhorse filter, hair "
    "causes the errors.",
    "EXP-T4": "Paper Table 4: gender kappa .85-.94; hair .26-.45; skin "
    ".73/.95 combined vs .45/.47 isolated; 25% samples track full kappa.",
    "EXP-COST": "Paper §3.4: $67.50 naive → $27 filtered → $2.70 "
    "filtered+batch-10.",
    "EXP-S422a": "Paper: tau=1.0 at S=5 and S=10 (S=10 ~3x slower); S=20 "
    "never completes.",
    "EXP-S422b": "Paper: rate tau ~0.78 (std 0.058), insensitive to batch "
    "size 1-10.",
    "EXP-S422c": "Paper: tau ~0.798 (std 0.042) across dataset sizes 20-50.",
    "EXP-F6": "Paper Figure 6: kappa and tau both decline Q1→Q5; Q4 "
    "(Saturn) still above Q5 (random); 10-item samples estimate both.",
    "EXP-F7": "Paper Figure 7: Compare tau=1.0 at 78 HITs; Rate tau~0.78 at "
    "8 HITs; Window-6 hybrid >0.95 within 30 HITs, converges in half of "
    "Compare's budget; Window 5 plateaus; Random lags. (Our greedy covering "
    "design emits ~96 compare groups vs the paper's 78 lower bound.)",
    "EXP-S424": "Paper §4.2.4: animal-size hybrid improves tau .76 → .90 "
    "within 20 iterations.",
    "EXP-T5": "Paper Table 5: Filter 43; Filter+Simple 628, +Naive 160, "
    "+Smart3x3 108, +Smart5x5 66; NoFilter Simple 1055, Naive 211, "
    "Smart5x5 43; Compare 61 vs Rate 11; totals 1116 → 77 (14.5x).",
}


def main() -> None:
    out = io.StringIO()
    out.write("# EXPERIMENTS — paper vs measured\n\n")
    out.write(
        "Every table and figure of *Human-powered Sorts and Joins* "
        "(VLDB 2011), regenerated against the simulated marketplace "
        "(seeds fixed; regenerate with "
        "`python scripts/generate_experiments_md.py`, or run the "
        "corresponding benchmark under `benchmarks/`).\n\n"
        "Absolute numbers come from a simulator calibrated to the paper's "
        "aggregate statistics; the claims being reproduced are the "
        "*shapes*: who wins, by what factor, where the crossovers fall. "
        "See docs/ARCHITECTURE.md for the substitution rationale.\n\n"
    )

    runners = [
        ("EXP-T1", lambda: run_table1(seed=0)),
        ("EXP-F3", lambda: run_fig3(seed=0)),
        ("EXP-F4", lambda: run_fig4(seed=0)),
        ("EXP-S33", lambda: run_assignments_accuracy(seed=0)[0]),
        ("EXP-T2", lambda: run_table2(seed=0)),
        ("EXP-T3", lambda: run_table3(seed=0)),
        ("EXP-T4", lambda: run_table4(seed=0)),
        ("EXP-COST", lambda: run_cost_summary(seed=0)),
        ("EXP-S422a", lambda: run_compare_batching(seed=0)),
        ("EXP-S422b", lambda: run_rate_batching(seed=0)),
        ("EXP-S422c", lambda: run_rate_granularity(seed=0)),
        ("EXP-F6", lambda: run_fig6(seed=0)),
        ("EXP-F7", lambda: run_fig7(seed=0)[0]),
        ("EXP-S424", lambda: run_animal_hybrid(seed=0)),
        ("EXP-T5", lambda: run_table5(seed=0)),
    ]
    for experiment_id, runner in runners:
        start = time.time()
        table = runner()
        elapsed = time.time() - start
        print(f"{experiment_id}: {elapsed:.1f}s")
        out.write(f"## {experiment_id} — {table.title}\n\n")
        out.write(f"{PAPER_NOTES[experiment_id]}\n\n")
        out.write("```\n")
        out.write(table.format())
        out.write("\n```\n\n")

    out.write("## EXP-ABL — §6 extensions, measured\n\n")
    out.write(
        "Adaptive assignment counts, QA-driven worker banning, and TurKit-"
        "style cached reruns (the batch tuner and budget allocator are "
        "additionally exercised in `benchmarks/bench_ablation_extensions.py`):\n\n"
    )
    out.write("```\n")
    out.write(run_ablation_table(seed=0).format())
    out.write("\n```\n")
    Path("EXPERIMENTS.md").write_text(out.getvalue())
    print("wrote EXPERIMENTS.md")


if __name__ == "__main__":
    main()
