"""Fast-lane smoke for the REPRO_VECTOR dispatch kernel.

Runs the optimized Table 5 macro at 4x scale under the scalar fast path
and under the numpy batch kernel, and checks the cross-domain workload
contract that the full panels pin more thoroughly elsewhere:

* HIT and assignment counts agree within the benchmark's cross-domain
  tolerance (the two determinism domains draw different answers, and
  answer-dependent feature filtering shifts the posted workload slightly —
  bit-equality is the wrong bar, see ``benchmarks/bench_perf_hotpath.py``);
* the vector leg, run twice, produces identical counts (run-to-run
  determinism; the full bit-level pin is the vector golden trace in
  ``tests/test_determinism_trace.py``).

Exits 0 with a notice when numpy (the ``[vector]`` extra) is missing —
the fast CI lane must stay green on a stdlib-only interpreter.

Usage::

    PYTHONPATH=src python scripts/vector_smoke.py [--seed N]
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.util import fastpath  # noqa: E402
from repro.util import vector as vector_toggle  # noqa: E402

SMOKE_SCALE = 4


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    if not vector_toggle.available():
        print(
            "vector smoke skipped: numpy not installed ([vector] extra); "
            "REPRO_VECTOR degrades to the scalar path"
        )
        return 0

    from bench_perf_hotpath import VECTOR_COUNT_TOLERANCE, _run_table5_variant

    counts: dict[str, tuple[int, int]] = {}
    timings: dict[str, float] = {}
    with fastpath.forced(True):
        for label, vector_on in (("fast", False), ("vector", True)):
            with vector_toggle.forced(vector_on):
                start = time.perf_counter()
                counts[label] = _run_table5_variant(
                    SMOKE_SCALE, "optimized", seed=args.seed
                )
                timings[label] = time.perf_counter() - start
        with vector_toggle.forced(True):
            repeat = _run_table5_variant(SMOKE_SCALE, "optimized", seed=args.seed)

    if repeat != counts["vector"]:
        print(
            "VECTOR SMOKE FAILED: vector dispatch is not run-to-run "
            f"deterministic at {SMOKE_SCALE}x: {counts['vector']} then {repeat}",
            file=sys.stderr,
        )
        return 1
    for fast_count, vector_count in zip(counts["fast"], counts["vector"]):
        if abs(vector_count - fast_count) > max(
            2, VECTOR_COUNT_TOLERANCE * fast_count
        ):
            print(
                "VECTOR SMOKE FAILED: vector workload diverges from the "
                f"scalar fast path at {SMOKE_SCALE}x beyond "
                f"{VECTOR_COUNT_TOLERANCE:.0%}: fast={counts['fast']} "
                f"vector={counts['vector']}",
                file=sys.stderr,
            )
            return 1
    print(
        f"vector smoke OK at {SMOKE_SCALE}x: "
        f"fast=({counts['fast'][0]} hits, {counts['fast'][1]} asn, "
        f"{timings['fast']:.2f}s) "
        f"vector=({counts['vector'][0]} hits, {counts['vector'][1]} asn, "
        f"{timings['vector']:.2f}s), run-to-run identical"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
