"""cProfile wrapper for the marketplace hot path.

Runs the Table 5 end-to-end query (optimized plan, optionally scaled) under
cProfile and prints the top cumulative entries.

Usage::

    PYTHONPATH=src python scripts/profile_hotpath.py [--scale N] [--top K]
    PYTHONPATH=src python scripts/profile_hotpath.py --check

``--check`` is the CI guard; it exits nonzero when either hot-path budget
is blown:

1. ``child_seed`` or ``payload_cache_key`` appear among the top-5
   cumulative profile entries — per-assignment seed hashing or per-lookup
   payload ``repr`` crept back onto the dispatch path;
2. the pipelined executor's wall-clock on the macro workload exceeds the
   depth-first interpreter's by more than 5% — the scheduler's queue and
   bookkeeping machinery started taxing the path it is supposed to merely
   re-time. Both modes run the same macro in-process (best of
   ``--check-repeats``) and the measurement is appended to
   ``benchmarks/BENCH_pipeline.json`` under ``ci_check``;
3. the 8-query session's wall-clock throughput regresses more than 5%
   against the ratio recorded in ``benchmarks/BENCH_session.json`` — the
   session loop's round-robin bookkeeping started costing real time over
   running the same queries serially. The comparison is the
   concurrent/serial wall *ratio* (machine-independent), measured
   in-process with the same hygiene as the pipeline check and appended to
   ``BENCH_session.json`` under ``ci_check``;
4. the adaptive optimizer's wall-clock on the macro workload exceeds the
   static rewriter's (``REPRO_ADAPT=0``) by more than 5% — the
   plan-fusion, cost-model, and selectivity-book machinery started
   taxing queries it has nothing to adapt. Same interleaved best-of
   measurement; the result is appended to ``benchmarks/BENCH_adaptive.json``
   under ``ci_check``;
5. the scale-out sort path's graph_order wall-clock regresses more than 5%
   against the speedup ratio recorded in ``benchmarks/BENCH_sort.json``
   (written by ``benchmarks/bench_sort_scale.py``) — the indexed graph /
   incremental-SCC machinery stopped paying for itself on the planted-cycle
   workload. Ratios (scale vs. ``REPRO_SORTSCALE=0``, same process) keep
   the guard machine-independent; the measurement is appended to
   ``BENCH_sort.json`` under ``ci_check``;
6. the resilience layer's fault-free macro wall-clock exceeds the
   ``REPRO_RESILIENCE=0`` baseline's by more than 5% — the retry/repost
   machinery is gated off entirely on marketplaces without a fault plan,
   so any measurable overhead means the gate leaked onto the dispatch
   path. Same interleaved best-of measurement; the result is appended to
   ``benchmarks/BENCH_resilience.json`` under ``ci_check``;
7. the persistent answer store's warm/cold wall ratio regresses more than
   5% against the one recorded in ``benchmarks/BENCH_store.json`` (written
   by ``benchmarks/bench_store.py``) — the warm run is pure store-read
   path (SQLite fetch, JSON decode, memory-layer promotion), so a rising
   ratio means disk reuse started costing real time against the crowd
   work it replaces. Measured via the shared
   ``repro.experiments.store_workload.measure_cold_warm`` smoke (best-of
   CPU, GC paused, fresh store file per repeat) and appended to
   ``BENCH_store.json`` under ``ci_check``;
8. the ``REPRO_VECTOR`` kernel's wall-clock ratio against the scalar fast
   path on the 4x macro regresses more than 5% over the ratio recorded in
   ``benchmarks/BENCH_perf_hotpath.json`` (``vector_macro.scale_4x.ratio``,
   written by ``benchmarks/bench_perf_hotpath.py``) — the numpy batch
   kernel stopped paying for its round bookkeeping. Skipped with a warning
   when numpy (the ``[vector]`` extra) is missing or no baseline has been
   recorded; otherwise measured interleaved best-of and appended to
   ``BENCH_perf_hotpath.json`` under ``ci_check``.

``--check-store`` runs only check 7 (no profiling, no macro sweeps) — the
fast lane ``scripts/ci_fast.sh`` uses it alongside the ``-m "not slow"``
pytest suite for a minutes-not-hours smoke signal.
"""

from __future__ import annotations

import argparse
import cProfile
import json
import pstats
import sys
import time
from pathlib import Path

from repro.core.context import ExecutionConfig
from repro.core.engine import Qurk
from repro.crowd import SimulatedMarketplace
from repro.crowd.latency import LatencyConfig, LatencyModel
from repro.datasets.movie import movie_dataset
from repro.experiments.end_to_end import QUERY_WITH_FILTER
from repro.hits.cache import TaskCache
from repro.joins.batching import JoinInterface
from repro.util import adapt
from repro.util import pipeline
from repro.util import resilience
from repro.util import sortscale

CHECK_TOP_N = 5
FORBIDDEN_IN_TOP = ("child_seed", "payload_cache_key")
PIPELINE_OVERHEAD_LIMIT = 1.05
SESSION_REGRESSION_LIMIT = 1.05
ADAPTIVE_OVERHEAD_LIMIT = 1.05
SORT_SCALE_REGRESSION_LIMIT = 1.05
RESILIENCE_OVERHEAD_LIMIT = 1.05
STORE_WARM_REGRESSION_LIMIT = 1.05
VECTOR_RATIO_REGRESSION_LIMIT = 1.05
SESSION_QUERY_COUNT = 8
SORT_SCALE_CHECK_ITEMS = 200
VECTOR_CHECK_SCALE = 4
BENCH_PIPELINE_PATH = Path(__file__).parent.parent / "benchmarks" / "BENCH_pipeline.json"
BENCH_SESSION_PATH = Path(__file__).parent.parent / "benchmarks" / "BENCH_session.json"
BENCH_ADAPTIVE_PATH = Path(__file__).parent.parent / "benchmarks" / "BENCH_adaptive.json"
BENCH_SORT_PATH = Path(__file__).parent.parent / "benchmarks" / "BENCH_sort.json"
BENCH_RESILIENCE_PATH = (
    Path(__file__).parent.parent / "benchmarks" / "BENCH_resilience.json"
)
BENCH_STORE_PATH = Path(__file__).parent.parent / "benchmarks" / "BENCH_store.json"
BENCH_PERF_PATH = (
    Path(__file__).parent.parent / "benchmarks" / "BENCH_perf_hotpath.json"
)


def run_workload(scale: int = 1, seed: int = 0) -> None:
    """The profiled workload: the optimized Table 5 query, with a task
    cache configured so the cache-key path is exercised too."""
    data = movie_dataset(seed=seed, scale=scale)
    latency = LatencyModel(LatencyConfig(deadline_hours=8.0 * scale))
    market = SimulatedMarketplace(data.truth, seed=seed, latency=latency)
    config = ExecutionConfig(
        join_interface=JoinInterface.SMART,
        grid_rows=5,
        grid_cols=5,
        use_feature_filters=True,
        generative_batch_size=5,
        sort_method="rate",
        compare_group_size=5,
        rate_batch_size=5,
    )
    engine = Qurk(platform=market, config=config, cache=TaskCache())
    engine.register_table(data.actors)
    engine.register_table(data.scenes)
    engine.define(data.task_dsl)
    engine.execute(QUERY_WITH_FILTER)


def profile(scale: int, seed: int) -> pstats.Stats:
    profiler = cProfile.Profile()
    profiler.enable()
    run_workload(scale=scale, seed=seed)
    profiler.disable()
    return pstats.Stats(profiler)


def _interleaved_best_of(modes, repeats: int) -> dict[str, float]:
    """Best-of CPU timings per mode, interleaved, with GC hygiene.

    ``modes`` is a list of ``(label, thunk)`` pairs; each thunk performs
    one complete run of its mode (including any toggle context or setup).
    Measurement hygiene, because a 5% bound demands it: CPU time instead
    of wall clock (immune to preemption on shared runners), the garbage
    collector paused and drained around each timed run (GC pauses are
    bimodal noise bigger than the bound), and modes interleaved so
    neither systematically runs on a warmer cache.
    """
    import gc

    timings = {label: float("inf") for label, _ in modes}
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(max(1, repeats)):
            for label, thunk in modes:
                gc.collect()
                start = time.process_time()
                thunk()
                timings[label] = min(
                    timings[label], time.process_time() - start
                )
    finally:
        if gc_was_enabled:
            gc.enable()
    return timings


def _append_ci_check(path: Path, report: dict) -> None:
    """Record a check's measurement under ``ci_check`` in a bench JSON."""
    try:
        recorded = json.loads(path.read_text()) if path.exists() else {}
        recorded["ci_check"] = report
        path.write_text(json.dumps(recorded, indent=1))
    except OSError as exc:  # CI sandboxes may mount the repo read-only
        print(f"warning: could not record ci_check results: {exc}", file=sys.stderr)


def _toggle_overhead_report(
    toggle, labels: tuple[str, str], scale: int, seed: int, repeats: int, limit: float
) -> dict:
    """Macro workload timed with a toggle off (baseline) vs. on.

    ``labels`` is ``(baseline, treatment)``; ``wall_overhead`` is
    treatment / baseline best-of CPU time. A scale floor keeps the
    dispatch work being compared well above timer resolution.
    """
    scale = max(scale, 4)
    run_workload(scale=scale, seed=seed)  # untimed warm-up
    baseline, treatment = labels

    def macro_under(flag: bool):
        def thunk() -> None:
            with toggle.forced(flag):
                run_workload(scale=scale, seed=seed)

        return thunk

    timings = _interleaved_best_of(
        [(baseline, macro_under(False)), (treatment, macro_under(True))],
        repeats,
    )
    overhead = (
        timings[treatment] / timings[baseline] if timings[baseline] > 0 else 0.0
    )
    return {
        "scale": scale,
        "repeats": repeats,
        f"{baseline}_seconds": round(timings[baseline], 4),
        f"{treatment}_seconds": round(timings[treatment], 4),
        "wall_overhead": round(overhead, 4),
        "limit": limit,
    }


def check_pipeline_overhead(scale: int, seed: int, repeats: int) -> dict:
    """Run the macro workload in both pipeline modes; measure the ratio.

    The depth-first path is the baseline the tentpole refactor must not
    regress: ``wall_overhead`` is pipelined / depth-first best-of CPU
    time, and values above ``PIPELINE_OVERHEAD_LIMIT`` fail CI.
    """
    report = _toggle_overhead_report(
        pipeline,
        ("depth_first", "pipelined"),
        scale,
        seed,
        repeats,
        PIPELINE_OVERHEAD_LIMIT,
    )
    _append_ci_check(BENCH_PIPELINE_PATH, report)
    return report


def check_adaptive_overhead(scale: int, seed: int, repeats: int) -> dict:
    """Run the macro workload with the adaptive optimizer on vs. off.

    The Table 5 macro has a single-conjunct plan — nothing to adapt — so
    the measured ratio is the pure overhead of the adaptive machinery
    (toggle resolution, plan fusion scan, cost-model forecast, book
    lookups) on a workload it leaves untouched. Values above
    ``ADAPTIVE_OVERHEAD_LIMIT`` fail CI.
    """
    report = _toggle_overhead_report(
        adapt,
        ("static", "adaptive"),
        scale,
        seed,
        repeats,
        ADAPTIVE_OVERHEAD_LIMIT,
    )
    _append_ci_check(BENCH_ADAPTIVE_PATH, report)
    return report


def check_resilience_overhead(scale: int, seed: int, repeats: int) -> dict:
    """Run the macro workload with the resilience layer armed vs. off.

    The macro's marketplace carries no :class:`~repro.crowd.faults.FaultPlan`,
    so ``build_resilience`` declines to arm and the measured ratio is the
    pure cost of the gating itself (toggle resolution plus the duck-typed
    fault-plan walk per query). Values above ``RESILIENCE_OVERHEAD_LIMIT``
    fail CI.
    """
    report = _toggle_overhead_report(
        resilience,
        ("resilience_off", "resilience_on"),
        scale,
        seed,
        repeats,
        RESILIENCE_OVERHEAD_LIMIT,
    )
    _append_ci_check(BENCH_RESILIENCE_PATH, report)
    return report


def check_session_throughput(seed: int, repeats: int) -> dict | None:
    """Measure the 8-query session's concurrent/serial wall ratio.

    The recorded baseline lives in ``BENCH_session.json`` (written by
    ``benchmarks/bench_session.py``); CI fails when the freshly measured
    ratio exceeds the recorded one by more than
    ``SESSION_REGRESSION_LIMIT``. Ratios rather than absolute seconds keep
    the guard machine-independent; the recorded baseline is floored at 1.0
    so a lucky recording cannot make an honest 1.0x measurement fail.
    Returns None (with a warning) when no baseline has been recorded.
    """
    import gc

    from repro.datasets.movie import movie_dataset
    from repro.experiments.session_workload import build_session

    if not BENCH_SESSION_PATH.exists():
        print(
            "warning: benchmarks/BENCH_session.json missing — run "
            "`pytest benchmarks/bench_session.py` to record the session "
            "baseline; skipping the session throughput check.",
            file=sys.stderr,
        )
        return None
    recorded = json.loads(BENCH_SESSION_PATH.read_text())
    try:
        baseline = recorded["counts"][str(SESSION_QUERY_COUNT)]["wall_overhead"]
    except KeyError:
        print(
            "warning: BENCH_session.json has no 8-query wall_overhead — "
            "re-run the session benchmark; skipping the check.",
            file=sys.stderr,
        )
        return None

    data = movie_dataset(seed=seed)
    # Untimed warm-up of both modes.
    build_session(SESSION_QUERY_COUNT, seed=seed, data=data)[0].run()
    build_session(SESSION_QUERY_COUNT, seed=seed, data=data)[0].run(
        concurrent=False
    )
    # Sessions are one-shot, so each timed run needs a fresh build — kept
    # *outside* the timed region (matching the recorded baseline's
    # semantics), which is why this check cannot share _interleaved_best_of.
    timings = {"serial": float("inf"), "concurrent": float("inf")}
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(max(1, repeats)):
            for concurrent, label in ((False, "serial"), (True, "concurrent")):
                session, _, _ = build_session(
                    SESSION_QUERY_COUNT, seed=seed, data=data
                )
                gc.collect()
                start = time.process_time()
                session.run(concurrent=concurrent)
                timings[label] = min(timings[label], time.process_time() - start)
    finally:
        if gc_was_enabled:
            gc.enable()
    ratio = (
        timings["concurrent"] / timings["serial"] if timings["serial"] > 0 else 0.0
    )
    report = {
        "query_count": SESSION_QUERY_COUNT,
        "repeats": repeats,
        "serial_seconds": round(timings["serial"], 4),
        "concurrent_seconds": round(timings["concurrent"], 4),
        "wall_overhead": round(ratio, 4),
        "recorded_wall_overhead": baseline,
        "limit": SESSION_REGRESSION_LIMIT,
    }
    _append_ci_check(BENCH_SESSION_PATH, report)
    return report


def check_sort_scale(seed: int, repeats: int) -> dict | None:
    """Measure graph_order's scale/reference wall ratio vs. the recording.

    Runs the planted-cycle sort workload at ``SORT_SCALE_CHECK_ITEMS``
    items under both ``REPRO_SORTSCALE`` modes in-process (interleaved
    best-of CPU time, GC paused) and compares the scale/reference ratio
    against the one implied by ``BENCH_sort.json``'s recorded speedup; CI
    fails when the fresh ratio exceeds the recorded one by more than
    ``SORT_SCALE_REGRESSION_LIMIT``. Returns None (with a warning) when no
    baseline has been recorded.
    """
    from repro.experiments.sort_workload import comparison_corpus
    from repro.sorting.graph import graph_order

    if not BENCH_SORT_PATH.exists():
        print(
            "warning: benchmarks/BENCH_sort.json missing — run "
            "`pytest benchmarks/bench_sort_scale.py` to record the sort "
            "baseline; skipping the sort-scale check.",
            file=sys.stderr,
        )
        return None
    recorded = json.loads(BENCH_SORT_PATH.read_text())
    try:
        recorded_speedup = recorded["graph_order"][str(SORT_SCALE_CHECK_ITEMS)][
            "wall_speedup"
        ]
    except KeyError:
        print(
            f"warning: BENCH_sort.json has no {SORT_SCALE_CHECK_ITEMS}-item "
            "graph_order speedup — re-run the sort benchmark; skipping the "
            "check.",
            file=sys.stderr,
        )
        return None

    items, corpus = comparison_corpus(SORT_SCALE_CHECK_ITEMS, seed=seed)
    graph_order(items, corpus)  # untimed warm-up

    def mode(flag: bool):
        def thunk() -> None:
            with sortscale.forced(flag):
                graph_order(items, corpus)

        return thunk

    timings = _interleaved_best_of(
        [("reference", mode(False)), ("scale", mode(True))], repeats
    )
    ratio = (
        timings["scale"] / timings["reference"]
        if timings["reference"] > 0
        else 0.0
    )
    report = {
        "items": SORT_SCALE_CHECK_ITEMS,
        "repeats": repeats,
        "reference_seconds": round(timings["reference"], 4),
        "scale_seconds": round(timings["scale"], 4),
        "wall_ratio": round(ratio, 4),
        "recorded_wall_ratio": round(1.0 / max(recorded_speedup, 1e-9), 4),
        "limit": SORT_SCALE_REGRESSION_LIMIT,
    }
    _append_ci_check(BENCH_SORT_PATH, report)
    return report


def check_store_warm_path(seed: int, repeats: int) -> dict | None:
    """Measure the restart pair's warm/cold wall ratio vs. the recording.

    Runs ``repro.experiments.store_workload.measure_cold_warm`` (the exact
    smoke ``benchmarks/bench_store.py`` records) against a throwaway store
    directory and compares the fresh warm/cold ratio to the recorded one;
    CI fails when it exceeds the recording by more than
    ``STORE_WARM_REGRESSION_LIMIT``. Ratios keep the guard
    machine-independent: the cold run (crowd simulation + write-through)
    anchors the scale the warm run's pure read path is judged against.
    Returns None (with a warning) when no baseline has been recorded.
    """
    import tempfile

    from repro.experiments.store_workload import measure_cold_warm

    if not BENCH_STORE_PATH.exists():
        print(
            "warning: benchmarks/BENCH_store.json missing — run "
            "`pytest benchmarks/bench_store.py` to record the store "
            "baseline; skipping the store warm-path check.",
            file=sys.stderr,
        )
        return None
    recorded = json.loads(BENCH_STORE_PATH.read_text())
    try:
        baseline = recorded["latency"]["warm_cold_ratio"]
    except KeyError:
        print(
            "warning: BENCH_store.json has no latency.warm_cold_ratio — "
            "re-run the store benchmark; skipping the check.",
            file=sys.stderr,
        )
        return None

    with tempfile.TemporaryDirectory(prefix="repro-store-check-") as scratch:
        measured = measure_cold_warm(scratch, seed=seed, repeats=repeats)
    report = dict(measured)
    report["recorded_warm_cold_ratio"] = baseline
    report["limit"] = STORE_WARM_REGRESSION_LIMIT
    _append_ci_check(BENCH_STORE_PATH, report)
    return report


def check_vector_ratio(seed: int, repeats: int) -> dict | None:
    """Measure the vector/fast macro wall ratio vs. the recording.

    Runs the 4x macro workload with the scalar fast path and with
    ``REPRO_VECTOR`` forced on (interleaved best-of CPU time, GC paused)
    and compares the vector/fast ratio against the one recorded in
    ``BENCH_perf_hotpath.json`` (``vector_macro.scale_4x.ratio``); CI fails
    when the fresh ratio exceeds the recorded one by more than
    ``VECTOR_RATIO_REGRESSION_LIMIT``. Returns None (with a warning) when
    numpy is missing or no vector baseline has been recorded.
    """
    from repro.util import vector as vector_toggle

    if not vector_toggle.available():
        print(
            "warning: numpy not installed ([vector] extra) — skipping the "
            "vector dispatch wall-ratio check.",
            file=sys.stderr,
        )
        return None
    if not BENCH_PERF_PATH.exists():
        print(
            "warning: benchmarks/BENCH_perf_hotpath.json missing — run "
            "`pytest benchmarks/bench_perf_hotpath.py` to record the vector "
            "baseline; skipping the vector dispatch check.",
            file=sys.stderr,
        )
        return None
    recorded = json.loads(BENCH_PERF_PATH.read_text())
    try:
        baseline = recorded["vector_macro"][f"scale_{VECTOR_CHECK_SCALE}x"]["ratio"]
    except KeyError:
        print(
            "warning: BENCH_perf_hotpath.json has no "
            f"vector_macro.scale_{VECTOR_CHECK_SCALE}x ratio — re-run the "
            "perf benchmark with numpy installed; skipping the check.",
            file=sys.stderr,
        )
        return None

    run_workload(scale=VECTOR_CHECK_SCALE, seed=seed)  # untimed warm-up

    def mode(flag: bool):
        def thunk() -> None:
            with vector_toggle.forced(flag):
                run_workload(scale=VECTOR_CHECK_SCALE, seed=seed)

        return thunk

    timings = _interleaved_best_of(
        [("fast", mode(False)), ("vector", mode(True))], repeats
    )
    ratio = timings["vector"] / timings["fast"] if timings["fast"] > 0 else 0.0
    report = {
        "scale": VECTOR_CHECK_SCALE,
        "repeats": repeats,
        "fast_seconds": round(timings["fast"], 4),
        "vector_seconds": round(timings["vector"], 4),
        "wall_ratio": round(ratio, 4),
        "recorded_wall_ratio": baseline,
        "limit": VECTOR_RATIO_REGRESSION_LIMIT,
    }
    _append_ci_check(BENCH_PERF_PATH, report)
    return report


def run_store_check(seed: int, repeats: int) -> int:
    """Run the store warm-path guard; returns a process exit code."""
    report = check_store_warm_path(seed, repeats)
    if report is None:
        return 0
    allowed = report["recorded_warm_cold_ratio"] * STORE_WARM_REGRESSION_LIMIT
    if report["warm_cold_ratio"] > allowed:
        print(
            "CHECK FAILED: store warm-run wall-clock is "
            f"{report['warm_cold_ratio']:.3f}x the cold run, above the "
            f"recorded {report['recorded_warm_cold_ratio']:.3f}x + "
            f"{STORE_WARM_REGRESSION_LIMIT - 1:.0%} headroom: {report}",
            file=sys.stderr,
        )
        return 1
    print(
        "check ok: store warm-run wall-clock is "
        f"{report['warm_cold_ratio']:.3f}x the cold run "
        f"(recorded {report['recorded_warm_cold_ratio']:.3f}x, "
        f"headroom {STORE_WARM_REGRESSION_LIMIT - 1:.0%})"
    )
    return 0


def top_cumulative_entries(stats: pstats.Stats, count: int) -> list[str]:
    """Function names of the top-``count`` entries by cumulative time,
    excluding the profiler scaffolding itself."""
    rows = sorted(
        stats.stats.items(),  # type: ignore[attr-defined]
        key=lambda kv: kv[1][3],  # cumulative time
        reverse=True,
    )
    names = []
    for (filename, _lineno, funcname), _ in rows:
        if funcname in ("profile", "run_workload", "<module>"):
            continue
        names.append(funcname)
        if len(names) >= count:
            break
    return names


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=int, default=1, help="dataset scale factor")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--top", type=int, default=25, help="entries to print")
    parser.add_argument(
        "--check",
        action="store_true",
        help=(
            "exit nonzero if child_seed or payload_cache_key appear in the "
            f"top-{CHECK_TOP_N} cumulative entries, or if the pipelined "
            f"executor's macro wall-clock exceeds the depth-first path's "
            f"by more than {PIPELINE_OVERHEAD_LIMIT - 1:.0%}"
        ),
    )
    def positive_int(value: str) -> int:
        parsed = int(value)
        if parsed < 1:
            raise argparse.ArgumentTypeError("must be >= 1")
        return parsed

    parser.add_argument(
        "--check-repeats",
        type=positive_int,
        default=5,
        help=(
            "macro repetitions per mode for the pipeline-overhead check "
            "(interleaved, best-of; raise on noisy machines)"
        ),
    )
    parser.add_argument(
        "--check-store",
        action="store_true",
        help=(
            "run only the persistent-store warm-path guard (fast smoke: "
            "no profiling, no macro sweeps) — exit nonzero if the restart "
            "pair's warm/cold wall ratio regresses more than "
            f"{STORE_WARM_REGRESSION_LIMIT - 1:.0%} vs BENCH_store.json"
        ),
    )
    args = parser.parse_args()

    if args.check_store:
        return run_store_check(args.seed, args.check_repeats)

    stats = profile(args.scale, args.seed)
    stats.sort_stats("cumulative").print_stats(args.top)

    if args.check:
        top = top_cumulative_entries(stats, CHECK_TOP_N)
        offenders = [
            name
            for name in top
            if any(forbidden in name for forbidden in FORBIDDEN_IN_TOP)
        ]
        if offenders:
            print(
                f"CHECK FAILED: {offenders} in the top-{CHECK_TOP_N} cumulative "
                "profile entries — the seed-derivation/cache-key work has "
                "crept back onto the hot path.",
                file=sys.stderr,
            )
            return 1
        print(
            f"check ok: none of {FORBIDDEN_IN_TOP} in the top-{CHECK_TOP_N} "
            f"cumulative entries ({top})"
        )
        report = check_pipeline_overhead(args.scale, args.seed, args.check_repeats)
        if report["wall_overhead"] > PIPELINE_OVERHEAD_LIMIT:
            print(
                "CHECK FAILED: pipelined executor wall-clock is "
                f"{report['wall_overhead']:.3f}x the depth-first path "
                f"(limit {PIPELINE_OVERHEAD_LIMIT}x) on the macro workload: "
                f"{report}",
                file=sys.stderr,
            )
            return 1
        print(
            "check ok: pipelined executor wall-clock is "
            f"{report['wall_overhead']:.3f}x the depth-first path "
            f"(limit {PIPELINE_OVERHEAD_LIMIT}x)"
        )
        adaptive_report = check_adaptive_overhead(
            args.scale, args.seed, args.check_repeats
        )
        if adaptive_report["wall_overhead"] > ADAPTIVE_OVERHEAD_LIMIT:
            print(
                "CHECK FAILED: adaptive optimizer wall-clock is "
                f"{adaptive_report['wall_overhead']:.3f}x the static "
                f"rewriter (limit {ADAPTIVE_OVERHEAD_LIMIT}x) on the macro "
                f"workload: {adaptive_report}",
                file=sys.stderr,
            )
            return 1
        print(
            "check ok: adaptive optimizer wall-clock is "
            f"{adaptive_report['wall_overhead']:.3f}x the static rewriter "
            f"(limit {ADAPTIVE_OVERHEAD_LIMIT}x)"
        )
        resilience_report = check_resilience_overhead(
            args.scale, args.seed, args.check_repeats
        )
        if resilience_report["wall_overhead"] > RESILIENCE_OVERHEAD_LIMIT:
            print(
                "CHECK FAILED: resilience layer (fault-free) wall-clock is "
                f"{resilience_report['wall_overhead']:.3f}x the disabled "
                f"baseline (limit {RESILIENCE_OVERHEAD_LIMIT}x) on the macro "
                f"workload: {resilience_report}",
                file=sys.stderr,
            )
            return 1
        print(
            "check ok: resilience layer (fault-free) wall-clock is "
            f"{resilience_report['wall_overhead']:.3f}x the disabled baseline "
            f"(limit {RESILIENCE_OVERHEAD_LIMIT}x)"
        )
        sort_report = check_sort_scale(args.seed, args.check_repeats)
        if sort_report is not None:
            allowed = (
                sort_report["recorded_wall_ratio"] * SORT_SCALE_REGRESSION_LIMIT
            )
            if sort_report["wall_ratio"] > allowed:
                print(
                    "CHECK FAILED: scale-out graph_order wall-clock is "
                    f"{sort_report['wall_ratio']:.3f}x the reference path, "
                    f"above the recorded {sort_report['recorded_wall_ratio']:.3f}x "
                    f"+ {SORT_SCALE_REGRESSION_LIMIT - 1:.0%} headroom: "
                    f"{sort_report}",
                    file=sys.stderr,
                )
                return 1
            print(
                "check ok: scale-out graph_order wall-clock is "
                f"{sort_report['wall_ratio']:.3f}x the reference path "
                f"(recorded {sort_report['recorded_wall_ratio']:.3f}x, "
                f"headroom {SORT_SCALE_REGRESSION_LIMIT - 1:.0%})"
            )
        session_report = check_session_throughput(args.seed, args.check_repeats)
        if session_report is not None:
            allowed = (
                max(session_report["recorded_wall_overhead"], 1.0)
                * SESSION_REGRESSION_LIMIT
            )
            if session_report["wall_overhead"] > allowed:
                print(
                    "CHECK FAILED: 8-query session wall-clock is "
                    f"{session_report['wall_overhead']:.3f}x serial, above the "
                    f"recorded {session_report['recorded_wall_overhead']:.3f}x "
                    f"baseline + {SESSION_REGRESSION_LIMIT - 1:.0%} headroom: "
                    f"{session_report}",
                    file=sys.stderr,
                )
                return 1
            print(
                "check ok: 8-query session wall-clock is "
                f"{session_report['wall_overhead']:.3f}x serial "
                f"(recorded {session_report['recorded_wall_overhead']:.3f}x, "
                f"headroom {SESSION_REGRESSION_LIMIT - 1:.0%})"
            )
        if run_store_check(args.seed, args.check_repeats) != 0:
            return 1
        vector_report = check_vector_ratio(args.seed, args.check_repeats)
        if vector_report is not None:
            allowed = (
                vector_report["recorded_wall_ratio"] * VECTOR_RATIO_REGRESSION_LIMIT
            )
            if vector_report["wall_ratio"] > allowed:
                print(
                    "CHECK FAILED: vector dispatch wall-clock is "
                    f"{vector_report['wall_ratio']:.3f}x the scalar fast "
                    f"path, above the recorded "
                    f"{vector_report['recorded_wall_ratio']:.3f}x + "
                    f"{VECTOR_RATIO_REGRESSION_LIMIT - 1:.0%} headroom: "
                    f"{vector_report}",
                    file=sys.stderr,
                )
                return 1
            print(
                "check ok: vector dispatch wall-clock is "
                f"{vector_report['wall_ratio']:.3f}x the scalar fast path "
                f"(recorded {vector_report['recorded_wall_ratio']:.3f}x, "
                f"headroom {VECTOR_RATIO_REGRESSION_LIMIT - 1:.0%})"
            )
    return 0


if __name__ == "__main__":
    sys.exit(main())
