"""cProfile wrapper for the marketplace hot path.

Runs the Table 5 end-to-end query (optimized plan, optionally scaled) under
cProfile and prints the top cumulative entries.

Usage::

    PYTHONPATH=src python scripts/profile_hotpath.py [--scale N] [--top K]
    PYTHONPATH=src python scripts/profile_hotpath.py --check

``--check`` is the CI guard: it exits nonzero if ``child_seed`` or
``payload_cache_key`` appear among the top-5 cumulative profile entries —
i.e. if per-assignment seed hashing or per-lookup payload ``repr`` ever
creep back onto the hot path.
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys

from repro.core.context import ExecutionConfig
from repro.core.engine import Qurk
from repro.crowd import SimulatedMarketplace
from repro.crowd.latency import LatencyConfig, LatencyModel
from repro.datasets.movie import movie_dataset
from repro.experiments.end_to_end import QUERY_WITH_FILTER
from repro.hits.cache import TaskCache
from repro.joins.batching import JoinInterface

CHECK_TOP_N = 5
FORBIDDEN_IN_TOP = ("child_seed", "payload_cache_key")


def run_workload(scale: int = 1, seed: int = 0) -> None:
    """The profiled workload: the optimized Table 5 query, with a task
    cache configured so the cache-key path is exercised too."""
    data = movie_dataset(seed=seed, scale=scale)
    latency = LatencyModel(LatencyConfig(deadline_hours=8.0 * scale))
    market = SimulatedMarketplace(data.truth, seed=seed, latency=latency)
    config = ExecutionConfig(
        join_interface=JoinInterface.SMART,
        grid_rows=5,
        grid_cols=5,
        use_feature_filters=True,
        generative_batch_size=5,
        sort_method="rate",
        compare_group_size=5,
        rate_batch_size=5,
    )
    engine = Qurk(platform=market, config=config, cache=TaskCache())
    engine.register_table(data.actors)
    engine.register_table(data.scenes)
    engine.define(data.task_dsl)
    engine.execute(QUERY_WITH_FILTER)


def profile(scale: int, seed: int) -> pstats.Stats:
    profiler = cProfile.Profile()
    profiler.enable()
    run_workload(scale=scale, seed=seed)
    profiler.disable()
    return pstats.Stats(profiler)


def top_cumulative_entries(stats: pstats.Stats, count: int) -> list[str]:
    """Function names of the top-``count`` entries by cumulative time,
    excluding the profiler scaffolding itself."""
    rows = sorted(
        stats.stats.items(),  # type: ignore[attr-defined]
        key=lambda kv: kv[1][3],  # cumulative time
        reverse=True,
    )
    names = []
    for (filename, _lineno, funcname), _ in rows:
        if funcname in ("profile", "run_workload", "<module>"):
            continue
        names.append(funcname)
        if len(names) >= count:
            break
    return names


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=int, default=1, help="dataset scale factor")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--top", type=int, default=25, help="entries to print")
    parser.add_argument(
        "--check",
        action="store_true",
        help=(
            "exit nonzero if child_seed or payload_cache_key appear in the "
            f"top-{CHECK_TOP_N} cumulative entries"
        ),
    )
    args = parser.parse_args()

    stats = profile(args.scale, args.seed)
    stats.sort_stats("cumulative").print_stats(args.top)

    if args.check:
        top = top_cumulative_entries(stats, CHECK_TOP_N)
        offenders = [
            name
            for name in top
            if any(forbidden in name for forbidden in FORBIDDEN_IN_TOP)
        ]
        if offenders:
            print(
                f"CHECK FAILED: {offenders} in the top-{CHECK_TOP_N} cumulative "
                "profile entries — the seed-derivation/cache-key work has "
                "crept back onto the hot path.",
                file=sys.stderr,
            )
            return 1
        print(
            f"check ok: none of {FORBIDDEN_IN_TOP} in the top-{CHECK_TOP_N} "
            f"cumulative entries ({top})"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
