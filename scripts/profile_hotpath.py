"""cProfile wrapper for the marketplace hot path.

Runs the Table 5 end-to-end query (optimized plan, optionally scaled) under
cProfile and prints the top cumulative entries.

Usage::

    PYTHONPATH=src python scripts/profile_hotpath.py [--scale N] [--top K]
    PYTHONPATH=src python scripts/profile_hotpath.py --check

``--check`` is the CI guard; it exits nonzero when either hot-path budget
is blown:

1. ``child_seed`` or ``payload_cache_key`` appear among the top-5
   cumulative profile entries — per-assignment seed hashing or per-lookup
   payload ``repr`` crept back onto the dispatch path;
2. the pipelined executor's wall-clock on the macro workload exceeds the
   depth-first interpreter's by more than 5% — the scheduler's queue and
   bookkeeping machinery started taxing the path it is supposed to merely
   re-time. Both modes run the same macro in-process (best of
   ``--check-repeats``) and the measurement is appended to
   ``benchmarks/BENCH_pipeline.json`` under ``ci_check``.
"""

from __future__ import annotations

import argparse
import cProfile
import json
import pstats
import sys
import time
from pathlib import Path

from repro.core.context import ExecutionConfig
from repro.core.engine import Qurk
from repro.crowd import SimulatedMarketplace
from repro.crowd.latency import LatencyConfig, LatencyModel
from repro.datasets.movie import movie_dataset
from repro.experiments.end_to_end import QUERY_WITH_FILTER
from repro.hits.cache import TaskCache
from repro.joins.batching import JoinInterface
from repro.util import pipeline

CHECK_TOP_N = 5
FORBIDDEN_IN_TOP = ("child_seed", "payload_cache_key")
PIPELINE_OVERHEAD_LIMIT = 1.05
BENCH_PIPELINE_PATH = Path(__file__).parent.parent / "benchmarks" / "BENCH_pipeline.json"


def run_workload(scale: int = 1, seed: int = 0) -> None:
    """The profiled workload: the optimized Table 5 query, with a task
    cache configured so the cache-key path is exercised too."""
    data = movie_dataset(seed=seed, scale=scale)
    latency = LatencyModel(LatencyConfig(deadline_hours=8.0 * scale))
    market = SimulatedMarketplace(data.truth, seed=seed, latency=latency)
    config = ExecutionConfig(
        join_interface=JoinInterface.SMART,
        grid_rows=5,
        grid_cols=5,
        use_feature_filters=True,
        generative_batch_size=5,
        sort_method="rate",
        compare_group_size=5,
        rate_batch_size=5,
    )
    engine = Qurk(platform=market, config=config, cache=TaskCache())
    engine.register_table(data.actors)
    engine.register_table(data.scenes)
    engine.define(data.task_dsl)
    engine.execute(QUERY_WITH_FILTER)


def profile(scale: int, seed: int) -> pstats.Stats:
    profiler = cProfile.Profile()
    profiler.enable()
    run_workload(scale=scale, seed=seed)
    profiler.disable()
    return pstats.Stats(profiler)


def check_pipeline_overhead(scale: int, seed: int, repeats: int) -> dict:
    """Run the macro workload in both pipeline modes; measure the ratio.

    The depth-first path is the baseline the tentpole refactor must not
    regress: ``wall_overhead`` is pipelined / depth-first best-of CPU
    time, and values above ``PIPELINE_OVERHEAD_LIMIT`` fail CI.

    Measurement hygiene, because a 5% bound demands it: CPU time instead
    of wall clock (immune to preemption on shared runners), the garbage
    collector paused and drained around each timed run (GC pauses are
    bimodal noise bigger than the bound), modes interleaved so neither
    systematically runs on a warmer cache, and a scale floor so the
    dispatch work being compared dwarfs timer resolution.
    """
    import gc

    scale = max(scale, 4)
    run_workload(scale=scale, seed=seed)  # untimed warm-up
    timings = {"depth_first": float("inf"), "pipelined": float("inf")}
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(max(1, repeats)):
            for mode, label in ((False, "depth_first"), (True, "pipelined")):
                with pipeline.forced(mode):
                    gc.collect()
                    start = time.process_time()
                    run_workload(scale=scale, seed=seed)
                    timings[label] = min(
                        timings[label], time.process_time() - start
                    )
    finally:
        if gc_was_enabled:
            gc.enable()
    overhead = (
        timings["pipelined"] / timings["depth_first"]
        if timings["depth_first"] > 0
        else 0.0
    )
    report = {
        "scale": scale,
        "repeats": repeats,
        "depth_first_seconds": round(timings["depth_first"], 4),
        "pipelined_seconds": round(timings["pipelined"], 4),
        "wall_overhead": round(overhead, 4),
        "limit": PIPELINE_OVERHEAD_LIMIT,
    }
    try:
        recorded = (
            json.loads(BENCH_PIPELINE_PATH.read_text())
            if BENCH_PIPELINE_PATH.exists()
            else {}
        )
        recorded["ci_check"] = report
        BENCH_PIPELINE_PATH.write_text(json.dumps(recorded, indent=1))
    except OSError as exc:  # CI sandboxes may mount the repo read-only
        print(f"warning: could not record ci_check results: {exc}", file=sys.stderr)
    return report


def top_cumulative_entries(stats: pstats.Stats, count: int) -> list[str]:
    """Function names of the top-``count`` entries by cumulative time,
    excluding the profiler scaffolding itself."""
    rows = sorted(
        stats.stats.items(),  # type: ignore[attr-defined]
        key=lambda kv: kv[1][3],  # cumulative time
        reverse=True,
    )
    names = []
    for (filename, _lineno, funcname), _ in rows:
        if funcname in ("profile", "run_workload", "<module>"):
            continue
        names.append(funcname)
        if len(names) >= count:
            break
    return names


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=int, default=1, help="dataset scale factor")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--top", type=int, default=25, help="entries to print")
    parser.add_argument(
        "--check",
        action="store_true",
        help=(
            "exit nonzero if child_seed or payload_cache_key appear in the "
            f"top-{CHECK_TOP_N} cumulative entries, or if the pipelined "
            f"executor's macro wall-clock exceeds the depth-first path's "
            f"by more than {PIPELINE_OVERHEAD_LIMIT - 1:.0%}"
        ),
    )
    def positive_int(value: str) -> int:
        parsed = int(value)
        if parsed < 1:
            raise argparse.ArgumentTypeError("must be >= 1")
        return parsed

    parser.add_argument(
        "--check-repeats",
        type=positive_int,
        default=5,
        help=(
            "macro repetitions per mode for the pipeline-overhead check "
            "(interleaved, best-of; raise on noisy machines)"
        ),
    )
    args = parser.parse_args()

    stats = profile(args.scale, args.seed)
    stats.sort_stats("cumulative").print_stats(args.top)

    if args.check:
        top = top_cumulative_entries(stats, CHECK_TOP_N)
        offenders = [
            name
            for name in top
            if any(forbidden in name for forbidden in FORBIDDEN_IN_TOP)
        ]
        if offenders:
            print(
                f"CHECK FAILED: {offenders} in the top-{CHECK_TOP_N} cumulative "
                "profile entries — the seed-derivation/cache-key work has "
                "crept back onto the hot path.",
                file=sys.stderr,
            )
            return 1
        print(
            f"check ok: none of {FORBIDDEN_IN_TOP} in the top-{CHECK_TOP_N} "
            f"cumulative entries ({top})"
        )
        report = check_pipeline_overhead(args.scale, args.seed, args.check_repeats)
        if report["wall_overhead"] > PIPELINE_OVERHEAD_LIMIT:
            print(
                "CHECK FAILED: pipelined executor wall-clock is "
                f"{report['wall_overhead']:.3f}x the depth-first path "
                f"(limit {PIPELINE_OVERHEAD_LIMIT}x) on the macro workload: "
                f"{report}",
                file=sys.stderr,
            )
            return 1
        print(
            "check ok: pipelined executor wall-clock is "
            f"{report['wall_overhead']:.3f}x the depth-first path "
            f"(limit {PIPELINE_OVERHEAD_LIMIT}x)"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
