#!/usr/bin/env sh
# Fast CI lane: the full test suite minus the >30s benchmark artifacts,
# plus the persistent-store warm-path smoke guard.
#
#   scripts/ci_fast.sh            # from the repo root
#
# Six stages, all minutes-not-hours:
#   1. `pytest -m "not slow"` over tests/ — every correctness, contract,
#      determinism, and durability test (the `slow` marker only exists on
#      long benchmark measurements, so nothing tier-1 is skipped);
#   2. `python -m repro.analysis src tests` — the determinism & contract
#      linter (docs/LINT.md): fails on any non-baselined finding and on
#      stale baseline entries (shrink-only);
#   3. registry smoke — the four builtin task types plus the scenario
#      pack resolve through the executor registry, and both scenario
#      types parse/plan end-to-end (a broken registration fails here,
#      before the benchmarks);
#   4. `pytest benchmarks/bench_scenarios.py` — the scenario-pack
#      benchmarks at their fast settings, (re)recording
#      benchmarks/BENCH_scenarios.json;
#   5. `profile_hotpath.py --check-store` — the store cold/warm restart
#      micro-bench in smoke mode, failing on a >5% warm-path wall
#      regression against the ratio recorded in benchmarks/BENCH_store.json
#      (run `pytest benchmarks/bench_store.py` to (re)record it);
#   6. `vector_smoke.py` — the 4x macro under the scalar fast path vs the
#      REPRO_VECTOR numpy kernel: cross-domain workload counts within
#      tolerance and vector run-to-run determinism. Exits 0 with a notice
#      when numpy ([vector] extra) is not installed.
#
# The heavyweight lane stays `scripts/profile_hotpath.py --check` plus
# `pytest benchmarks -q`.

set -e

cd "$(dirname "$0")/.."
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
export PYTHONPATH

python -m pytest tests -q -m "not slow"
python -m repro.analysis src tests
python - <<'EOF'
# Registry smoke: builtins + scenario pack resolve, scenarios execute.
from repro.scenarios.categorize import run_categorize_variant, categorize_dataset
from repro.scenarios.er_join import run_er_join_variant, er_join_dataset
from repro.tasks.registry import default_registry

available = default_registry().available()
for key in ("Categorize", "EquiJoin", "ErJoin", "Filter", "Generative", "Rank"):
    assert key in available, f"{key} missing from registry: {available}"

from repro.joins.batching import JoinInterface

er = run_er_join_variant(er_join_dataset(seed=0), "smoke", JoinInterface.SMART, seed=0)
assert er.recall >= 0.7, er
cat = run_categorize_variant(categorize_dataset(n=8, seed=0), "smoke", batch_size=4, seed=0)
assert cat.accuracy >= 0.8, cat
print(f"registry smoke OK: {len(available)} task types, "
      f"er recall={er.recall:.2f}, categorize accuracy={cat.accuracy:.2f}")
EOF
python -m pytest benchmarks/bench_scenarios.py -q
python scripts/profile_hotpath.py --check-store --check-repeats "${CI_STORE_REPEATS:-3}"
python scripts/vector_smoke.py
