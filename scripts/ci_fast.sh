#!/usr/bin/env sh
# Fast CI lane: the full test suite minus the >30s benchmark artifacts,
# plus the persistent-store warm-path smoke guard.
#
#   scripts/ci_fast.sh            # from the repo root
#
# Three stages, all minutes-not-hours:
#   1. `pytest -m "not slow"` over tests/ — every correctness, contract,
#      determinism, and durability test (the `slow` marker only exists on
#      long benchmark measurements, so nothing tier-1 is skipped);
#   2. `python -m repro.analysis src tests` — the determinism & contract
#      linter (docs/LINT.md): fails on any non-baselined finding and on
#      stale baseline entries (shrink-only);
#   3. `profile_hotpath.py --check-store` — the store cold/warm restart
#      micro-bench in smoke mode, failing on a >5% warm-path wall
#      regression against the ratio recorded in benchmarks/BENCH_store.json
#      (run `pytest benchmarks/bench_store.py` to (re)record it).
#
# The heavyweight lane stays `scripts/profile_hotpath.py --check` plus
# `pytest benchmarks -q`.

set -e

cd "$(dirname "$0")/.."
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
export PYTHONPATH

python -m pytest tests -q -m "not slow"
python -m repro.analysis src tests
python scripts/profile_hotpath.py --check-store --check-repeats "${CI_STORE_REPEATS:-3}"
