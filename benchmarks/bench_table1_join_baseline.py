"""EXP-T1 — Table 1: unbatched join baselines (20 celebrities).

Paper: all three implementations are near-ideal without batching (at most
one missing true positive; true negatives essentially perfect).
"""

from conftest import run_once

from repro.experiments.join_experiments import run_table1


def test_table1_join_baseline(benchmark):
    table = run_once(benchmark, run_table1, seed=0)
    print()
    print(table.format())

    ideal_tp = table.cell("IDEAL", "TruePos (MV)")
    ideal_tn = table.cell("IDEAL", "TrueNeg (MV)")
    for implementation in ("Simple", "Naive", "Smart"):
        for column in ("TruePos (MV)", "TruePos (QA)"):
            assert table.cell(implementation, column) >= ideal_tp - 2
        for column in ("TrueNeg (MV)", "TrueNeg (QA)"):
            assert table.cell(implementation, column) >= ideal_tn - 5
