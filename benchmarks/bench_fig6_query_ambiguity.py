"""EXP-F6 — Figure 6: τ and modified κ across queries Q1–Q5.

Paper shape: both metrics fall as query ambiguity rises; Q4 (Saturn) still
agrees better than Q5 (random), whose κ sits at the chance floor; small
10-item samples estimate both metrics well.
"""

from conftest import run_once

from repro.experiments.sort_experiments import run_fig6


def test_fig6_query_ambiguity(benchmark):
    table = run_once(benchmark, run_fig6, seed=0)
    print()
    print(table.format())

    kappa = {row[0]: row[2] for row in table.rows}
    tau = {row[0]: row[4] for row in table.rows}

    # κ decreases monotonically with ambiguity across Q1→Q5.
    assert kappa["Q1"] > kappa["Q2"] > kappa["Q3"] > kappa["Q4"] > kappa["Q5"]
    # Even the nonsensical Saturn query beats truly random answers.
    assert kappa["Q4"] > kappa["Q5"] + 0.1
    assert abs(kappa["Q5"]) < 0.15  # chance floor

    # τ: rating matches comparison well on Q1–Q3, poorly on Q4, not at all Q5.
    assert tau["Q1"] > 0.6 and tau["Q2"] > 0.6
    assert tau["Q4"] < tau["Q3"]
    assert abs(tau["Q5"]) < 0.3

    # 10-item sampled estimates track the full-data values.
    for row in table.rows:
        sampled_kappa = float(str(row[3]).split(" ")[0])
        assert abs(sampled_kappa - row[2]) < 0.2
