"""EXP-ABL — §6 extensions: adaptive assignments, batch tuner, budget.

These are the paper's discussion/future-work proposals, implemented and
measured as ablations:

* adaptive assignment counts cut assignments versus a fixed five per
  question at (essentially) equal accuracy;
* the binary-search batch tuner finds the largest batch size the crowd
  will accept, below the refusal wall;
* the whole-plan budget allocator keeps a query under a dollar cap by
  degrading replication before data coverage.
"""

from conftest import run_once

from repro.combine.adaptive import AdaptivePolicy
from repro.core.batch_tuner import BatchTuner, ProbeResult
from repro.core.budget import OperatorEstimate, allocate_budget
from repro.core.context import ExecutionConfig
from repro.core.engine import Qurk
from repro.crowd import SimulatedMarketplace
from repro.datasets import celebrity_dataset
from repro.hits import TaskManager
from repro.hits.hit import CompareGroup, ComparePayload
from repro.joins.batching import JoinInterface

QUERY = "SELECT c.name, p.id FROM celeb c JOIN photos p ON samePerson(c.img, p.img)"


def run_adaptive_ablation(seed: int = 0, n: int = 12):
    """(fixed outcome, adaptive outcome) for the same join."""
    data = celebrity_dataset(n=n, seed=seed)

    def run(config):
        market = SimulatedMarketplace(data.truth, seed=seed + 1)
        engine = Qurk(platform=market, config=config)
        engine.register_table(data.celebs)
        engine.register_table(data.photos)
        engine.define(data.task_dsl)
        result = engine.execute(QUERY)
        correct = sum(
            1
            for row in result.rows
            if str(row["c.name"]).rsplit("-", 1)[1] == str(row["p.id"])
        )
        return result.assignment_count, correct

    fixed = run(ExecutionConfig(join_interface=JoinInterface.SIMPLE, assignments=5))
    adaptive = run(
        ExecutionConfig(
            join_interface=JoinInterface.SIMPLE,
            # One question per HIT isolates adaptiveness from batching.
            filter_batch_size=1,
            adaptive=AdaptivePolicy(initial_votes=3, step_votes=2, max_votes=9, margin=2),
        )
    )
    return fixed, adaptive


def test_adaptive_assignments_save_money(benchmark):
    (fixed_assignments, fixed_correct), (adaptive_assignments, adaptive_correct) = (
        run_once(benchmark, run_adaptive_ablation, seed=0)
    )
    print()
    print(f"fixed-5:   {fixed_assignments} assignments, {fixed_correct} correct")
    print(f"adaptive:  {adaptive_assignments} assignments, {adaptive_correct} correct")
    assert adaptive_assignments < fixed_assignments * 0.85
    assert adaptive_correct >= fixed_correct - 2


def test_batch_tuner_finds_the_wall(benchmark):
    from repro.crowd import GroundTruth

    truth = GroundTruth()
    truth.add_rank_task(
        "rank", {f"i{k}": float(k) for k in range(24)}, comparison_ambiguity=0.2
    )

    def probe(group_size: int) -> ProbeResult:
        market = SimulatedMarketplace(truth, seed=group_size * 7)
        manager = TaskManager(market)
        items = tuple(f"i{k}" for k in range(min(group_size, 24)))
        if len(items) < 2:
            return ProbeResult(group_size, completed=True)
        payload = ComparePayload("rank", (CompareGroup(items),))
        outcome = manager.run_units(
            [[payload]], assignments=3, label="probe", strict=False
        )
        return ProbeResult(group_size, completed=not outcome.uncompleted_hit_ids)

    def tune():
        tuner = BatchTuner(min_batch=2, max_batch=24, latency_ceiling_seconds=1e9)
        return tuner.tune(probe), tuner

    best, tuner = run_once(benchmark, tune)
    print()
    print(f"largest accepted compare group: {best}; history: "
          f"{[(r.batch_size, r.completed) for r in tuner.history]}")
    # The paper saw group size 10 work and 20 refused: the wall is between.
    assert 5 <= best < 20


def test_budget_allocator_respects_cap(benchmark):
    def allocate():
        return allocate_budget(
            [
                OperatorEstimate("feature-pass", units=120, requested_assignments=5),
                OperatorEstimate("join", units=300, requested_assignments=5),
                OperatorEstimate("sort", units=80, requested_assignments=5),
            ],
            budget=15.0,
        )

    plan = run_once(benchmark, allocate)
    print()
    for allocation in plan.allocations:
        print(
            f"{allocation.name}: {allocation.assignments} assignments, "
            f"{allocation.data_fraction:.0%} of data"
        )
    print(f"total: ${plan.total_cost:.2f}")
    assert plan.total_cost <= 15.0
    assert all(a.assignments >= 1 for a in plan.allocations)
