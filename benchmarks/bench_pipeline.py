"""PERF — the pipelined executor's end-to-end latency evidence.

The §2.6 claim: running operators concurrently with async queues lets HIT
batches from different operators overlap on the marketplace, cutting
end-to-end latency without changing what the crowd is asked. This benchmark
runs the Table 5 movie workload (both headline plans) at 1x/4x/16x dataset
scale under the pipelined executor and the depth-first interpreter and
records, per scale:

* **virtual latency** — the simulated marketplace clock at completion, the
  number a requester actually waits on; the pipelined executor must beat
  the depth-first interpreter on the 16x macro workload;
* **HIT/assignment counts** — asserted *identical* across executors (the
  determinism contract: pipelining is latency-only);
* **wall-clock** — the scheduler's bookkeeping overhead; the pipelined
  executor must stay within 5% of the depth-first interpreter (the same
  bound ``scripts/profile_hotpath.py --check`` enforces in CI).

Results land in ``benchmarks/BENCH_pipeline.json``. Scaled runs extend the
posting deadline proportionally, like ``bench_perf_hotpath.py``, so every
HIT group completes at 16x.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.core.context import ExecutionConfig
from repro.core.engine import Qurk
from repro.crowd import SimulatedMarketplace
from repro.crowd.latency import LatencyConfig, LatencyModel
from repro.datasets.movie import movie_dataset
from repro.experiments.end_to_end import QUERY_NO_FILTER, QUERY_WITH_FILTER
from repro.joins.batching import JoinInterface
from repro.util import pipeline

# The whole module rides on one >30s measurement fixture
# (test_pipeline_cuts_virtual_latency_at_16x et al.); the registered
# `slow` marker lets tier-1 deselect it locally with -m "not slow"
# without changing default runs.
pytestmark = pytest.mark.slow

RESULTS_PATH = Path(__file__).parent / "BENCH_pipeline.json"

MACRO_SCALES = (1, 4, 16)
WALL_CLOCK_OVERHEAD_LIMIT = 1.05


def _variant_config(variant: str) -> tuple[ExecutionConfig, str]:
    if variant == "unoptimized":
        return (
            ExecutionConfig(
                join_interface=JoinInterface.SIMPLE,
                use_feature_filters=False,
                sort_method="compare",
                compare_group_size=5,
            ),
            QUERY_NO_FILTER,
        )
    return (
        ExecutionConfig(
            join_interface=JoinInterface.SMART,
            grid_rows=5,
            grid_cols=5,
            use_feature_filters=True,
            generative_batch_size=5,
            sort_method="rate",
            compare_group_size=5,
            rate_batch_size=5,
        ),
        QUERY_WITH_FILTER,
    )


def _run_variant(scale: int, variant: str, seed: int = 0) -> dict:
    """One Table 5 plan end to end; returns counts and the virtual clock."""
    data = movie_dataset(seed=seed, scale=scale)
    latency = LatencyModel(LatencyConfig(deadline_hours=8.0 * scale))
    market = SimulatedMarketplace(data.truth, seed=seed, latency=latency)
    config, query = _variant_config(variant)
    engine = Qurk(platform=market, config=config)
    engine.register_table(data.actors)
    engine.register_table(data.scenes)
    engine.define(data.task_dsl)
    result = engine.execute(query)
    return {
        "hits": engine.ledger.total_hits,
        "assignments": engine.ledger.total_assignments,
        "virtual_seconds": market.clock_seconds,
        "rows": len(result),
        "peak_outstanding_groups": market.stats.peak_outstanding_groups,
    }


def measure_scale(scale: int, repeats: int = 2) -> dict:
    """Both plans, both executors, at one dataset scale."""
    row: dict[str, dict] = {}
    for mode, label in ((True, "pipelined"), (False, "depth_first")):
        with pipeline.forced(mode):
            best_wall = float("inf")
            for _ in range(repeats):
                start = time.perf_counter()
                unopt = _run_variant(scale, "unoptimized")
                opt = _run_variant(scale, "optimized")
                best_wall = min(best_wall, time.perf_counter() - start)
        row[label] = {
            "wall_seconds": round(best_wall, 3),
            "virtual_seconds": {
                "unoptimized": round(unopt["virtual_seconds"], 1),
                "optimized": round(opt["virtual_seconds"], 1),
            },
            "hits": unopt["hits"] + opt["hits"],
            "assignments": unopt["assignments"] + opt["assignments"],
            "rows": (unopt["rows"], opt["rows"]),
            "peak_outstanding_groups": max(
                unopt["peak_outstanding_groups"], opt["peak_outstanding_groups"]
            ),
        }
    pipelined, depth_first = row["pipelined"], row["depth_first"]
    # Pipelining is latency-only: the simulated workload must be identical.
    assert pipelined["hits"] == depth_first["hits"], row
    assert pipelined["assignments"] == depth_first["assignments"], row
    assert pipelined["rows"] == depth_first["rows"], row
    virtual_speedup = {
        variant: round(
            depth_first["virtual_seconds"][variant]
            / pipelined["virtual_seconds"][variant],
            3,
        )
        for variant in ("unoptimized", "optimized")
    }
    return {
        "pipelined": pipelined,
        "depth_first": depth_first,
        "virtual_speedup": virtual_speedup,
        "wall_overhead": round(
            pipelined["wall_seconds"] / depth_first["wall_seconds"], 3
        )
        if depth_first["wall_seconds"] > 0
        else 0.0,
    }


@pytest.fixture(scope="module")
def results() -> dict:
    macro = {
        f"scale_{scale}x": measure_scale(scale, repeats=2 if scale < 16 else 1)
        for scale in MACRO_SCALES
    }
    payload = {
        "benchmark": "pipeline",
        "modes": {
            "pipelined": "event-driven executor (default; REPRO_PIPELINE=1)",
            "depth_first": "depth-first interpreter (REPRO_PIPELINE=0)",
        },
        "wall_clock_overhead_limit": WALL_CLOCK_OVERHEAD_LIMIT,
        "macro": macro,
    }
    existing = {}
    if RESULTS_PATH.exists():
        existing = json.loads(RESULTS_PATH.read_text())
    existing.update(payload)
    RESULTS_PATH.write_text(json.dumps(existing, indent=1))
    return payload


def test_pipeline_cuts_virtual_latency_at_16x(results):
    print()
    print(json.dumps(results["macro"], indent=1))
    row = results["macro"]["scale_16x"]
    for variant in ("unoptimized", "optimized"):
        assert row["virtual_speedup"][variant] > 1.0, row
    # Overlap requires outstanding groups; the scheduler must actually
    # have had several in flight.
    assert row["pipelined"]["peak_outstanding_groups"] >= 2, row


def test_pipeline_latency_win_at_every_scale(results):
    for scale in MACRO_SCALES:
        row = results["macro"][f"scale_{scale}x"]
        assert row["virtual_speedup"]["optimized"] > 1.0, (scale, row)


def test_results_recorded(results):
    recorded = json.loads(RESULTS_PATH.read_text())
    assert recorded["macro"]["scale_16x"]["virtual_speedup"]["optimized"] > 1.0
