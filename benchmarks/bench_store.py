"""PERF — the persistent answer store's cross-restart evidence.

The store claim (ROADMAP item 3, paper §2.6 economics): crowd answers are
the expensive resource, so a process restart must not re-buy them. This
benchmark plays the two-run restart scenario from
``repro.experiments.store_workload`` — the optimized Table-5 movie query
cold against a fresh store file, then again from a completely fresh
engine/marketplace/store on the same file — and records, per scenario:

* **HIT/dollar savings** — the acceptance bar is ≥ 50% of the cold run's
  HITs and dollars saved on the warm run (in practice the warm run re-buys
  nothing: 100%);
* **row fidelity** — warm-run rows asserted bit-identical to cold-run
  rows (the persisted assignments feed the same combiners);
* **cold/warm latency** — best-of CPU seconds for both runs plus their
  ``warm_cold_ratio``, the machine-independent baseline
  ``scripts/profile_hotpath.py --check`` guards (>5% over the recording
  fails CI).

Results land in ``benchmarks/BENCH_store.json``.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.datasets.movie import movie_dataset
from repro.experiments.store_workload import measure_cold_warm, run_once

RESULTS_PATH = Path(__file__).parent / "BENCH_store.json"

REQUIRED_SAVINGS = 0.5
SMOKE_REPEATS = 3


@pytest.fixture(scope="module")
def dataset():
    return movie_dataset(seed=0)


@pytest.fixture(scope="module")
def results(dataset, tmp_path_factory) -> dict:
    base = tmp_path_factory.mktemp("store-bench")
    cold = run_once(base / "restart.db", seed=0, data=dataset)
    warm = run_once(base / "restart.db", seed=0, data=dataset)

    def run_row(result) -> dict:
        summary = result.store_summary or {}
        return {
            "rows": len(result),
            "hits": result.hit_count,
            "assignments": result.assignment_count,
            "cost": round(result.total_cost, 4),
            "persistent_hits": summary.get("persistent_hits", 0),
            "assignments_reused": summary.get("assignments_reused", 0),
            "cost_saved": round(summary.get("cost_saved", 0.0), 4),
        }

    restart = {
        "cold": run_row(cold),
        "warm": run_row(warm),
        "rows_identical": warm.as_dicts() == cold.as_dicts(),
        "hit_savings": round(1.0 - warm.hit_count / cold.hit_count, 4)
        if cold.hit_count
        else 0.0,
        "dollar_savings": round(1.0 - warm.total_cost / cold.total_cost, 4)
        if cold.total_cost
        else 0.0,
    }
    latency = measure_cold_warm(
        tmp_path_factory.mktemp("store-latency"),
        seed=0,
        repeats=SMOKE_REPEATS,
        data=dataset,
    )
    payload = {
        "benchmark": "store",
        "workload": "repro.experiments.store_workload (Table-5 movie query, restart pair)",
        "modes": {
            "cold": "fresh store file — every answer bought and written through",
            "warm": "fresh engine/marketplace/store on the same file — disk reuse only",
        },
        "required_savings": REQUIRED_SAVINGS,
        "restart": restart,
        "latency": latency,
    }
    existing = {}
    if RESULTS_PATH.exists():
        existing = json.loads(RESULTS_PATH.read_text())
    existing.update(payload)
    RESULTS_PATH.write_text(json.dumps(existing, indent=1))
    return payload


def test_warm_run_saves_hits_and_dollars(results):
    print()
    print(json.dumps(results["restart"], indent=1))
    restart = results["restart"]
    assert restart["hit_savings"] >= REQUIRED_SAVINGS, restart
    assert restart["dollar_savings"] >= REQUIRED_SAVINGS, restart
    # The savings are attributed: the warm run knows what it reused.
    assert restart["warm"]["persistent_hits"] > 0
    assert restart["warm"]["cost_saved"] == pytest.approx(
        restart["cold"]["cost"], rel=1e-6
    )


def test_warm_rows_bit_identical_to_cold(results):
    assert results["restart"]["rows_identical"]
    assert results["restart"]["warm"]["rows"] == results["restart"]["cold"]["rows"]


def test_cold_run_is_honestly_cold(results):
    """The first run over a fresh file reuses nothing from disk."""
    cold = results["restart"]["cold"]
    assert cold["persistent_hits"] == 0
    assert cold["cost"] > 0


def test_warm_latency_beats_cold(results):
    latency = results["latency"]
    print()
    print(json.dumps(latency, indent=1))
    # The warm run does no marketplace work; it must be strictly faster.
    assert latency["warm_cold_ratio"] < 1.0, latency


def test_results_recorded(results):
    recorded = json.loads(RESULTS_PATH.read_text())
    assert recorded["restart"]["hit_savings"] >= REQUIRED_SAVINGS
    assert recorded["latency"]["warm_cold_ratio"] > 0
