"""PERF — the multi-query session layer's end-to-end evidence.

The session claim: running N queries as concurrent clients of one shared
marketplace clock cuts the batch's virtual latency from the *sum* of the
per-query spans to their *makespan*, while the shared cross-query task
cache answers repeated questions once. This benchmark runs the
``repro.experiments.session_workload`` variant mix (four Table-5-family
movie plans, cycled) at 2/8/32 concurrent queries and records, per count:

* **virtual latency** — the batch makespan under ``run(concurrent=True)``
  vs ``run(concurrent=False)``; the acceptance bar is a ≥1.3x improvement
  at 8 concurrent queries;
* **HIT/assignment totals** — asserted identical across run modes (the
  determinism contract: concurrency is latency-only);
* **wall-clock throughput** — queries/second through the session loop,
  plus the concurrent/serial wall ratio ``scripts/profile_hotpath.py
  --check`` guards against regression (>5% over the recorded ratio fails
  CI);
* **sharing** — cross-query cache hits, assignments reused, dollars saved.

Results land in ``benchmarks/BENCH_session.json``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.datasets.movie import movie_dataset
from repro.experiments.session_workload import build_session

RESULTS_PATH = Path(__file__).parent / "BENCH_session.json"

QUERY_COUNTS = (2, 8, 32)
REQUIRED_SPEEDUP_AT_8 = 1.3


@pytest.fixture(scope="module")
def dataset():
    return movie_dataset(seed=0)


def run_mode(count: int, concurrent: bool, dataset) -> dict:
    session, market, handles = build_session(count, data=dataset)
    start = time.perf_counter()
    cpu_start = time.process_time()
    outcome = session.run(concurrent=concurrent)
    cpu = time.process_time() - cpu_start
    wall = time.perf_counter() - start
    assert not outcome.errors, outcome.errors
    results = [outcome[handle] for handle in handles]
    return {
        "wall_seconds": round(wall, 4),
        "cpu_seconds": round(cpu, 4),
        "throughput_qps": round(count / wall, 2) if wall > 0 else 0.0,
        "makespan_seconds": round(outcome.stats.makespan_seconds, 1),
        "serial_latency_seconds": round(outcome.stats.serial_latency_seconds, 1),
        "hits": sum(r.hit_count for r in results),
        "assignments": sum(r.assignment_count for r in results),
        "rows": [len(r) for r in results],
        "cross_cache_hits": outcome.stats.cross_cache_hits,
        "assignments_reused": outcome.stats.cross_assignments_shared,
        "cost_saved": round(outcome.stats.cost_saved, 2),
        "peak_outstanding_groups": market.stats.peak_outstanding_groups,
    }


def measure_count(count: int, dataset) -> dict:
    serial = run_mode(count, concurrent=False, dataset=dataset)
    concurrent = run_mode(count, concurrent=True, dataset=dataset)
    # Concurrency is latency-only: the crowd does identical work either way.
    assert concurrent["hits"] == serial["hits"], (count, concurrent, serial)
    assert concurrent["assignments"] == serial["assignments"], count
    assert concurrent["rows"] == serial["rows"], count
    return {
        "serial": serial,
        "concurrent": concurrent,
        "virtual_speedup": round(
            serial["makespan_seconds"] / concurrent["makespan_seconds"], 3
        )
        if concurrent["makespan_seconds"] > 0
        else 0.0,
        # CPU time, not wall clock: this ratio is the baseline
        # scripts/profile_hotpath.py --check re-measures with
        # time.process_time(), so the two must share a methodology —
        # wall clock on a loaded runner would skew the recorded baseline
        # against the clean CI measurement.
        "wall_overhead": round(
            concurrent["cpu_seconds"] / serial["cpu_seconds"], 3
        )
        if serial["cpu_seconds"] > 0
        else 0.0,
    }


@pytest.fixture(scope="module")
def results(dataset) -> dict:
    counts = {
        str(count): measure_count(count, dataset) for count in QUERY_COUNTS
    }
    payload = {
        "benchmark": "session",
        "workload": "repro.experiments.session_workload (4 movie-plan variants, cycled)",
        "modes": {
            "concurrent": "EngineSession.run() — round-robin clients, one clock",
            "serial": "EngineSession.run(concurrent=False) — one query at a time",
        },
        "required_virtual_speedup_at_8": REQUIRED_SPEEDUP_AT_8,
        "counts": counts,
    }
    existing = {}
    if RESULTS_PATH.exists():
        existing = json.loads(RESULTS_PATH.read_text())
    existing.update(payload)
    RESULTS_PATH.write_text(json.dumps(existing, indent=1))
    return payload


def test_session_virtual_speedup_at_8_queries(results):
    print()
    print(json.dumps(results["counts"], indent=1))
    row = results["counts"]["8"]
    assert row["virtual_speedup"] >= REQUIRED_SPEEDUP_AT_8, row
    # The overlap must come from genuinely outstanding client groups.
    assert row["concurrent"]["peak_outstanding_groups"] >= 2, row


def test_session_overlap_wins_at_every_count(results):
    for count in QUERY_COUNTS:
        row = results["counts"][str(count)]
        assert row["virtual_speedup"] > 1.0, (count, row)


def test_cross_query_sharing_scales_with_repeats(results):
    """Repeated variants are answered from the shared cache: sharing grows
    with the query count while posted work stays near the 4-variant base."""
    by_count = {c: results["counts"][str(c)] for c in QUERY_COUNTS}
    assert (
        by_count[32]["concurrent"]["assignments_reused"]
        > by_count[8]["concurrent"]["assignments_reused"]
        > by_count[2]["concurrent"]["assignments_reused"]
        > 0
    )
    # 32 queries cost barely more crowd work than 8: the marginal query is
    # nearly free once its variant's answers are cached.
    assert by_count[32]["concurrent"]["hits"] < by_count[8]["concurrent"]["hits"] * 1.5


def test_results_recorded(results):
    recorded = json.loads(RESULTS_PATH.read_text())
    assert recorded["counts"]["8"]["virtual_speedup"] >= REQUIRED_SPEEDUP_AT_8
