"""EXP-S422 — §4.2.2: square-sort microbenchmarks.

Paper shape: Compare is essentially perfect at group sizes 5 and 10 but
slower at 10, and group size 20 is refused outright; Rate lands near
τ ≈ 0.78 regardless of batch size; rating granularity is stable as the
dataset grows from 20 to 50 items.
"""

from conftest import run_once

from repro.experiments.sort_experiments import (
    run_compare_batching,
    run_rate_batching,
    run_rate_granularity,
)
from repro.util.stats import mean


def test_compare_batching(benchmark):
    table = run_once(benchmark, run_compare_batching, seed=0)
    print()
    print(table.format())

    by_size = {row[0]: row for row in table.rows}
    assert by_size[5][1] > 0.97 and by_size[5][4] == "yes"
    assert by_size[10][1] > 0.97 and by_size[10][4] == "yes"
    assert "no" in by_size[20][4]  # the refusal wall


def test_rate_batching(benchmark):
    table = run_once(benchmark, run_rate_batching, seed=0)
    print()
    print(table.format())

    taus = [row[1] for row in table.rows]
    assert 0.6 < mean(taus) < 0.95  # strong but imperfect, like the paper
    # Rate stays well below the (near-perfect) Compare accuracy.
    assert max(taus) < 0.98
    # Batching divides the HIT count.
    hits = {row[0]: row[2] for row in table.rows}
    assert hits[1] == 40 and hits[10] == 4


def test_rate_granularity(benchmark):
    table = run_once(benchmark, run_rate_granularity, seed=0)
    print()
    print(table.format())

    taus = [row[1] for row in table.rows]
    assert 0.6 < mean(taus) < 0.95
    # No collapse as the dataset grows: every size stays strongly correlated.
    assert min(taus) > 0.5
