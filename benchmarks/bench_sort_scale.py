"""PERF — the scale-out sort engine's end-to-end evidence.

Two claims, both measured against the retained reference implementations
(``REPRO_SORTSCALE=0``) on the scalable squares workload
(``repro.experiments.sort_workload``):

1. **graph_order wall-clock.** Building the comparison graph, breaking its
   planted cycles, and topologically sorting N ∈ {40, 200, 1000} squares
   must be ≥5x faster at N=1000 under the scale path (indexed adjacency,
   incremental per-component SCC recomputation, heap-based Kahn) than
   under the reference (full Tarjan + all-edge victim scans per sweep,
   re-sorting ready queue). The produced orders — and the removed-edge
   *sets* — are asserted bit-identical between modes at every N.
2. **LIMIT tournament HIT reduction.** ``ORDER BY rank(...) DESC LIMIT 5``
   on the steep-latent squares setup must spend materially fewer crowd
   HITs through the successive best-of-batch tournament path than the full
   C(N, 2) Compare coverage, at N ≥ 200, while returning the identical
   leading rows.

Results land in ``benchmarks/BENCH_sort.json``; ``scripts/profile_hotpath.py
--check`` guards the recorded graph_order ratio against regression.
"""

from __future__ import annotations

import gc
import json
import time
from pathlib import Path

import pytest

from repro.core.context import ExecutionConfig
from repro.core.engine import Qurk
from repro.crowd import SimulatedMarketplace
from repro.experiments.sort_workload import (
    SCALES,
    comparison_corpus,
    limit_sort_setup,
)
from repro.sorting.graph import ComparisonGraph, break_cycles, graph_order
from repro.util import sortscale

RESULTS_PATH = Path(__file__).parent / "BENCH_sort.json"

REQUIRED_SPEEDUP_AT_1000 = 5.0
LIMIT_N = 200
LIMIT_K = 5
LIMIT_QUERY = (
    f"SELECT squares.label FROM squares "
    f"ORDER BY squareSorter(img) DESC LIMIT {LIMIT_K}"
)


def _best_of(thunk, repeats: int) -> float:
    """Best-of CPU seconds with the GC paused (same hygiene as
    ``scripts/profile_hotpath.py``: process time is immune to preemption,
    GC pauses are bimodal noise bigger than the margins measured here)."""
    best = float("inf")
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(max(1, repeats)):
            gc.collect()
            start = time.process_time()
            thunk()
            best = min(best, time.process_time() - start)
    finally:
        if gc_was_enabled:
            gc.enable()
    return best


def measure_graph_order(n: int, seed: int = 0, repeats: int = 2) -> dict:
    items, corpus = comparison_corpus(n, seed=seed)
    orders: dict[bool, list[str]] = {}
    removed: dict[bool, frozenset] = {}
    timings: dict[bool, float] = {}
    # Interleave modes so neither systematically runs on a warmer cache.
    for attempt in range(max(1, repeats)):
        for flag in (False, True):
            with sortscale.forced(flag):
                timings[flag] = min(
                    timings.get(flag, float("inf")),
                    _best_of(lambda: graph_order(items, corpus), 1),
                )
    for flag in (False, True):
        with sortscale.forced(flag):
            orders[flag] = graph_order(items, corpus)
            graph = ComparisonGraph.from_votes(items, corpus)
            removed[flag] = frozenset(break_cycles(graph))
    assert orders[True] == orders[False], f"orders diverged at n={n}"
    assert removed[True] == removed[False], f"removed-edge sets diverged at n={n}"
    speedup = (
        timings[False] / timings[True] if timings[True] > 0 else float("inf")
    )
    return {
        "items": n,
        "pairs": len(corpus),
        "edges_removed": len(removed[True]),
        "reference_seconds": round(timings[False], 4),
        "scale_seconds": round(timings[True], 4),
        "wall_speedup": round(speedup, 2),
        "orders_identical": True,
        "removed_edge_sets_identical": True,
    }


def run_limit_query(flag: bool, n: int, seed: int = 0) -> dict:
    data = limit_sort_setup(n, seed=seed)
    market = SimulatedMarketplace(data.truth, seed=seed)
    engine = Qurk(platform=market, config=ExecutionConfig(sort_method="compare"))
    engine.register_table(data.table)
    engine.define(data.task_dsl)
    with sortscale.forced(flag):
        start = time.perf_counter()
        result = engine.execute(LIMIT_QUERY)
        wall = time.perf_counter() - start
    return {
        "hits": result.hit_count,
        "assignments": result.assignment_count,
        "cost": round(result.total_cost, 2),
        "wall_seconds": round(wall, 4),
        "rows": result.column("squares.label"),
    }


def measure_limit_path(n: int, seed: int = 0) -> dict:
    full = run_limit_query(False, n, seed=seed)
    tournament = run_limit_query(True, n, seed=seed)
    assert tournament["rows"] == full["rows"], (tournament, full)
    return {
        "items": n,
        "k": LIMIT_K,
        "query": LIMIT_QUERY,
        "full_sort": {key: full[key] for key in ("hits", "assignments", "cost")},
        "tournament": {
            key: tournament[key] for key in ("hits", "assignments", "cost")
        },
        "hit_reduction": round(full["hits"] / tournament["hits"], 2)
        if tournament["hits"]
        else 0.0,
        "rows_identical": True,
        "rows": full["rows"],
    }


@pytest.fixture(scope="module")
def results() -> dict:
    graph_rows = {
        str(40 * scale): measure_graph_order(40 * scale) for scale in SCALES
    }
    payload = {
        "benchmark": "sort_scale",
        "workload": "repro.experiments.sort_workload (planted-cycle squares corpora)",
        "modes": {
            "reference": "REPRO_SORTSCALE=0 — full Tarjan per sweep, list-scan graph",
            "scale": "REPRO_SORTSCALE=1 — indexed adjacency, incremental SCCs, heap topo",
        },
        "required_speedup_at_1000": REQUIRED_SPEEDUP_AT_1000,
        "graph_order": graph_rows,
        "limit_path": {str(LIMIT_N): measure_limit_path(LIMIT_N)},
    }
    existing = {}
    if RESULTS_PATH.exists():
        existing = json.loads(RESULTS_PATH.read_text())
    existing.update(payload)
    RESULTS_PATH.write_text(json.dumps(existing, indent=1))
    return payload


def test_graph_order_speedup_at_1000(results):
    print()
    print(json.dumps(results["graph_order"], indent=1))
    row = results["graph_order"]["1000"]
    assert row["wall_speedup"] >= REQUIRED_SPEEDUP_AT_1000, row


def test_graph_order_identical_at_every_scale(results):
    for n, row in results["graph_order"].items():
        assert row["orders_identical"], n
        assert row["removed_edge_sets_identical"], n
        assert row["edges_removed"] > 0, n  # the workload actually plants cycles


def test_limit_path_cuts_hits(results):
    row = results["limit_path"][str(LIMIT_N)]
    print()
    print(json.dumps(row, indent=1))
    assert row["rows_identical"], row
    assert row["tournament"]["hits"] < row["full_sort"]["hits"], row
    # O(N·k/b) vs O(N²/b²): at N=200, k=5 the tournament should be several
    # times cheaper, not marginally.
    assert row["hit_reduction"] >= 3.0, row


def test_results_recorded(results):
    recorded = json.loads(RESULTS_PATH.read_text())
    assert (
        recorded["graph_order"]["1000"]["wall_speedup"]
        >= REQUIRED_SPEEDUP_AT_1000
    )
    assert recorded["limit_path"][str(LIMIT_N)]["rows_identical"]
