"""PERF — the cost-based adaptive re-optimizer's HIT-economy evidence.

The claim: on a Table-5-style workload whose crowd WHERE conjuncts are
written in deliberately the wrong order (unselective first), the adaptive
optimizer's pilot-then-cascade re-planning cuts the HIT count by ≥1.2×
while returning **bit-identical rows** to the static plan — ordering AND
conjuncts can change what the query costs, never what it returns.

The workload (``repro.experiments.adaptive_workload``) runs the 211-scene
movie table through ``isBright`` (~90% pass, written first) AND
``isCloseUp`` (~14% pass, written second) over a careful-only worker pool,
so the comparison isolates planner economics from worker noise. Static
numbers come from ``REPRO_ADAPT=0`` (the paper's query-order cascade);
adaptive numbers from the default toggle-on path. Both executors are
exercised: the reduction must hold under the pipelined scheduler and the
depth-first interpreter alike.

Results land in ``benchmarks/BENCH_adaptive.json``; the acceptance floor
(1.2×) and the measured replan/round counts are recorded alongside so the
CI wall-regression guard (``scripts/profile_hotpath.py --check``) and
future PRs can see the evidence without rerunning.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments.adaptive_workload import (
    MISORDERED_QUERY,
    run_misordered,
)
from repro.util import adapt
from repro.util import pipeline

RESULTS_PATH = Path(__file__).parent / "BENCH_adaptive.json"

REDUCTION_FLOOR = 1.2
SEEDS = (0, 1, 2)


def _measure(seed: int, adaptive: bool, pipelined: bool) -> dict:
    with adapt.forced(adaptive), pipeline.forced(pipelined):
        engine, result = run_misordered(seed=seed)
    return {
        "hits": result.hit_count,
        "assignments": result.assignment_count,
        "cost": round(result.total_cost, 2),
        "rows": sorted(str(row["s.img"]) for row in result.rows),
        "replans": (result.adaptive_summary or {}).get("replans", 0),
        "rounds": (result.adaptive_summary or {}).get("rounds", 0),
        "predicted_hits": (result.adaptive_summary or {}).get("predicted_hits"),
    }


@pytest.fixture(scope="module")
def results() -> dict:
    per_seed = {}
    for seed in SEEDS:
        static = _measure(seed, adaptive=False, pipelined=True)
        adaptive = _measure(seed, adaptive=True, pipelined=True)
        adaptive_df = _measure(seed, adaptive=True, pipelined=False)
        per_seed[str(seed)] = {
            "static_hits": static["hits"],
            "adaptive_hits": adaptive["hits"],
            "hit_reduction": round(static["hits"] / adaptive["hits"], 3),
            "static_cost": static["cost"],
            "adaptive_cost": adaptive["cost"],
            "rows": len(adaptive["rows"]),
            "rows_identical_to_static": adaptive["rows"] == static["rows"],
            "rows_identical_across_executors": adaptive["rows"]
            == adaptive_df["rows"],
            "replans": adaptive["replans"],
            "rounds": adaptive["rounds"],
            "predicted_hits": adaptive["predicted_hits"],
        }
    payload = {
        "benchmark": "adaptive_optimizer",
        "workload": (
            "misordered-predicate Table-5 movie workload: "
            f"{' '.join(MISORDERED_QUERY.split())}"
        ),
        "modes": {
            "static": "query-order cascade (REPRO_ADAPT=0)",
            "adaptive": "pilot + observed-selectivity cascade (default)",
        },
        "reduction_floor": REDUCTION_FLOOR,
        "seeds": per_seed,
    }
    existing = {}
    if RESULTS_PATH.exists():
        existing = json.loads(RESULTS_PATH.read_text())
    existing.update(payload)
    RESULTS_PATH.write_text(json.dumps(existing, indent=1))
    return payload


def test_adaptive_cuts_hits_with_identical_rows(results):
    print()
    print(json.dumps(results["seeds"], indent=1))
    for seed, row in results["seeds"].items():
        assert row["hit_reduction"] >= REDUCTION_FLOOR, (seed, row)
        assert row["rows_identical_to_static"], (seed, row)
        assert row["replans"] >= 1, (seed, row)


def test_adaptive_reduction_holds_under_both_executors(results):
    for seed, row in results["seeds"].items():
        assert row["rows_identical_across_executors"], (seed, row)


def test_adaptive_prediction_recorded(results):
    for seed, row in results["seeds"].items():
        assert row["predicted_hits"] is not None and row["predicted_hits"] > 0
