"""EXP-SCEN — scenario pack: task types registered outside the engine.

Two crowd task types that exist only in ``src/repro/scenarios/`` — an
entity-resolution join (``ErJoin``) and a multi-class categorization
(``Categorize``) — run end-to-end through the unmodified engine, and their
operator optimizations reproduce the paper's *shapes* on new workloads:

* the ER join's interface ladder mirrors Table 5's join column (Simple >>
  Naive batching >> SmartBatch grids in HIT count, §3.1);
* categorization batching mirrors §6's merging economics (batch-6 HITs cost
  a fraction of unbatched at near-identical accuracy).

Results land in ``BENCH_scenarios.json``.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path

from conftest import run_once

from repro.scenarios.categorize import run_categorize_suite
from repro.scenarios.er_join import run_er_join_suite

RESULTS_PATH = Path(__file__).parent / "BENCH_scenarios.json"


def _record(section: str, payload: object) -> None:
    existing = {}
    if RESULTS_PATH.exists():
        existing = json.loads(RESULTS_PATH.read_text())
    existing[section] = payload
    RESULTS_PATH.write_text(json.dumps(existing, indent=1))


def test_er_join_scenario(benchmark):
    outcomes = run_once(benchmark, run_er_join_suite, seed=0)
    print()
    for outcome in outcomes:
        print(
            f"{outcome.label:>10}: {outcome.total_hits:4d} HITs  "
            f"precision={outcome.precision:.2f} recall={outcome.recall:.2f}"
        )

    hits = {outcome.label: outcome.total_hits for outcome in outcomes}
    # Table-5 shape on a brand-new task type: batching beats pairwise,
    # grids beat batching.
    assert hits["Simple"] > 3 * hits["Naive 5"]
    assert hits["Naive 5"] > hits["Smart 3x3"]
    # Quality stays usable across interfaces (grids may trade some recall).
    for outcome in outcomes:
        assert outcome.precision >= 0.9, outcome
        assert outcome.recall >= 0.7, outcome

    _record(
        "er_join",
        {
            "workload": "repro.scenarios.er_join (catalog vs dirty listings)",
            "variants": [asdict(outcome) for outcome in outcomes],
        },
    )


def test_categorize_scenario(benchmark):
    outcomes = run_once(benchmark, run_categorize_suite, seed=0)
    print()
    for outcome in outcomes:
        print(
            f"{outcome.label:>10}: {outcome.total_hits:4d} HITs  "
            f"accuracy={outcome.accuracy:.2f}"
        )

    unbatched, batched = outcomes
    # §6 merging economics on a brand-new generative type: batching cuts
    # HITs by the batch factor while accuracy stays close.
    assert batched.total_hits * 4 <= unbatched.total_hits
    assert unbatched.accuracy >= 0.85
    assert batched.accuracy >= 0.85
    assert unbatched.result_rows == batched.result_rows

    _record(
        "categorize",
        {
            "workload": "repro.scenarios.categorize (4-department product labels)",
            "variants": [asdict(outcome) for outcome in outcomes],
        },
    )
