"""ROBUSTNESS — answer quality and overhead under marketplace faults.

The resilience claim: with a seeded :class:`~repro.crowd.faults.FaultPlan`
injecting assignment abandonment and HIT-group expiration, every query
still completes — the retry/repost layer recovers most lost slots, the
quorum rule degrades the rest gracefully — at a bounded HIT/latency
premium and a modest answer-quality cost. This benchmark sweeps an
(abandonment, expiration) rate grid over two workloads:

* the **Table 5 movie query** (filter + Smart 5×5 join + Rate sort):
  result rows, join accuracy (fraction of rows in the ground-truth match
  set), HIT/cost/virtual-latency overhead vs. the fault-free cell, and
  the degradation summary (reposts, recovered/unfilled slots);
* the **squares Rate sort**: Kendall τ-b of the returned order against
  the dataset's latent order — ordering quality under vote loss.

Results land in ``benchmarks/BENCH_resilience.json``; the fault-free
overhead guard lives in ``scripts/profile_hotpath.py --check`` (which
appends its measurement under this file's ``ci_check`` key).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core.context import ExecutionConfig
from repro.core.engine import Qurk
from repro.crowd import FaultPlan, SimulatedMarketplace
from repro.datasets import squares_dataset
from repro.datasets.movie import movie_dataset
from repro.experiments.end_to_end import QUERY_WITH_FILTER, _actor_ref
from repro.joins.batching import JoinInterface
from repro.metrics.kendall import kendall_tau_from_orders

pytestmark = pytest.mark.slow

RESULTS_PATH = Path(__file__).parent / "BENCH_resilience.json"

# (abandonment_rate, expiration_rate) — fault-free baseline first.
FAULT_GRID = ((0.0, 0.0), (0.1, 0.05), (0.2, 0.1))
SORT_QUERY = "SELECT squares.label FROM squares ORDER BY squareSorter(img)"


def _plan(abandonment: float, expiration: float) -> FaultPlan | None:
    if abandonment == 0.0 and expiration == 0.0:
        return None
    return FaultPlan(abandonment_rate=abandonment, expiration_rate=expiration)


def movie_config() -> ExecutionConfig:
    return ExecutionConfig(
        join_interface=JoinInterface.SMART,
        grid_rows=5,
        grid_cols=5,
        use_feature_filters=True,
        generative_batch_size=5,
        sort_method="rate",
        compare_group_size=5,
        rate_batch_size=5,
    )


def run_movie_cell(abandonment: float, expiration: float, seed: int = 0) -> dict:
    data = movie_dataset(seed=seed)
    market = SimulatedMarketplace(
        data.truth, seed=seed, faults=_plan(abandonment, expiration)
    )
    engine = Qurk(platform=market, config=movie_config())
    engine.register_table(data.actors)
    engine.register_table(data.scenes)
    engine.define(data.task_dsl)
    result = engine.execute(QUERY_WITH_FILTER)
    match_set = set(data.matches)
    correct = sum(
        1
        for row in result.rows
        if (_actor_ref(data, str(row["a.name"])), str(row["s.img"])) in match_set
    )
    rows = len(result.rows)
    summary = result.degradation_summary or {}
    return {
        "abandonment_rate": abandonment,
        "expiration_rate": expiration,
        "rows": rows,
        "correct_rows": correct,
        "join_accuracy": round(correct / rows, 4) if rows else 0.0,
        "hits": result.hit_count,
        "assignments": result.assignment_count,
        "cost": round(result.total_cost, 4),
        "latency_hours": round(market.clock_seconds / 3600.0, 2),
        "abandoned": summary.get("abandoned_assignments", 0),
        "expired": summary.get("expired_slots", 0),
        "reposts": summary.get("reposts", 0),
        "recovered": summary.get("recovered_assignments", 0),
        "unfilled": summary.get("unfilled_assignments", 0),
        "degraded_groups": summary.get("degraded_groups", 0),
    }


def run_sort_cell(abandonment: float, expiration: float, seed: int = 7) -> dict:
    data = squares_dataset(n=20, seed=seed)
    market = SimulatedMarketplace(
        data.truth, seed=seed, faults=_plan(abandonment, expiration)
    )
    engine = Qurk(
        platform=market,
        config=ExecutionConfig(sort_method="rate", rate_batch_size=5),
    )
    engine.register_table(data.table)
    engine.define(data.task_dsl)
    result = engine.execute(SORT_QUERY)
    # true_order holds image refs (img://squares/<side>x<side>); the query
    # projects labels (square-<side>).
    true_labels = [
        "square-" + ref.rsplit("/", 1)[1].split("x")[0]
        for ref in data.true_order
    ]
    order = [str(row["squares.label"]) for row in result.rows]
    summary = result.degradation_summary or {}
    return {
        "abandonment_rate": abandonment,
        "expiration_rate": expiration,
        "rows": len(order),
        "kendall_tau": round(kendall_tau_from_orders(order, true_labels), 4),
        "hits": result.hit_count,
        "assignments": result.assignment_count,
        "latency_hours": round(market.clock_seconds / 3600.0, 2),
        "abandoned": summary.get("abandoned_assignments", 0),
        "expired": summary.get("expired_slots", 0),
        "reposts": summary.get("reposts", 0),
        "recovered": summary.get("recovered_assignments", 0),
        "unfilled": summary.get("unfilled_assignments", 0),
    }


def _overhead(cell: dict, baseline: dict, key: str) -> float:
    return round(cell[key] / baseline[key], 3) if baseline[key] else 0.0


def test_resilience_quality_and_overhead_grid(benchmark):
    def sweep():
        return (
            [run_movie_cell(a, e) for a, e in FAULT_GRID],
            [run_sort_cell(a, e) for a, e in FAULT_GRID],
        )

    movie_cells, sort_cells = benchmark.pedantic(
        sweep, rounds=1, iterations=1
    )

    movie_base, sort_base = movie_cells[0], sort_cells[0]
    for cell in movie_cells:
        cell["hit_overhead"] = _overhead(cell, movie_base, "hits")
        cell["latency_overhead"] = _overhead(cell, movie_base, "latency_hours")
    for cell in sort_cells:
        cell["hit_overhead"] = _overhead(cell, sort_base, "hits")
        cell["latency_overhead"] = _overhead(cell, sort_base, "latency_hours")

    # Every faulted cell completed: real rows, no unhandled failure.
    for cell in movie_cells:
        assert cell["rows"] > 0
    for cell in sort_cells:
        assert cell["rows"] > 0

    # The fault-free cells took no resilience action at all.
    for base in (movie_base, sort_base):
        assert base["reposts"] == 0
        assert base["abandoned"] == 0 and base["expired"] == 0

    # Faults actually struck, and recovery actually ran, in the hot cell.
    assert movie_cells[-1]["abandoned"] > 0
    assert movie_cells[-1]["reposts"] > 0
    assert movie_cells[-1]["recovered"] > 0

    # Quality degrades gracefully, not catastrophically.
    assert movie_base["join_accuracy"] >= 0.9
    for cell in movie_cells:
        assert cell["join_accuracy"] >= 0.7
    # Rate sorts are noisy even fault-free (§4.2.2); the bar is that
    # injected faults cost at most a modest additional slice of τ.
    assert sort_base["kendall_tau"] >= 0.6
    for cell in sort_cells:
        assert cell["kendall_tau"] >= sort_base["kendall_tau"] - 0.25

    # Recovery costs HITs but stays bounded (< 2x on this grid).
    for cell in movie_cells[1:]:
        assert 1.0 <= cell["hit_overhead"] < 2.0

    recorded: dict = {}
    if RESULTS_PATH.exists():
        try:
            recorded = json.loads(RESULTS_PATH.read_text())
        except ValueError:
            recorded = {}
    recorded.update(
        {
            "fault_grid": [list(cell) for cell in FAULT_GRID],
            "movie_table5": movie_cells,
            "squares_rate_sort": sort_cells,
        }
    )
    RESULTS_PATH.write_text(json.dumps(recorded, indent=1))

    print("\nresilience grid (movie Table 5):")
    for cell in movie_cells:
        print(
            f"  a={cell['abandonment_rate']:.2f} e={cell['expiration_rate']:.2f}"
            f"  rows={cell['rows']} acc={cell['join_accuracy']:.3f}"
            f" hits={cell['hits']} ({cell['hit_overhead']}x)"
            f" reposts={cell['reposts']} recovered={cell['recovered']}"
            f" unfilled={cell['unfilled']}"
        )
    print("resilience grid (squares rate sort):")
    for cell in sort_cells:
        print(
            f"  a={cell['abandonment_rate']:.2f} e={cell['expiration_rate']:.2f}"
            f"  tau={cell['kendall_tau']:.3f} hits={cell['hits']}"
            f" ({cell['hit_overhead']}x) reposts={cell['reposts']}"
        )
