"""Benchmark harness conventions.

Each benchmark regenerates one paper artifact (table or figure), prints the
reproduced rows/series, and asserts the paper's *qualitative* shape — who
wins, by roughly what factor, where crossovers fall. Absolute numbers come
from the simulated marketplace and are not expected to match the authors'
2011 MTurk testbed.

Experiments run once per benchmark (``rounds=1``): the interesting metric is
the artifact itself, not the wall-clock of the simulation.

Per-bench wall-clock timings are still recorded: every benchmark test's
duration is written to ``BENCH_timings.json`` (next to the benchmarks) at
session end, so perf regressions across PRs are visible without rerunning
pytest-benchmark's statistics machinery.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

TIMINGS_PATH = Path(__file__).parent / "BENCH_timings.json"

_timings: dict[str, float] = {}


def pytest_configure(config):
    # Registered here (the only place the marker is used) so plain
    # `pytest` keeps running everything while `-m "not slow"` can deselect
    # the >30s artifacts locally — including under --strict-markers.
    config.addinivalue_line(
        "markers",
        "slow: benchmark measurement taking >30s wall; deselect locally "
        'with -m "not slow"',
    )


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def pytest_runtest_setup(item):
    item._bench_wall_start = time.perf_counter()


def pytest_runtest_teardown(item):
    start = getattr(item, "_bench_wall_start", None)
    if start is not None:
        _timings[item.nodeid] = round(time.perf_counter() - start, 4)


def pytest_sessionfinish(session):
    if not _timings:
        return
    # Merge into the existing record so a partial run (one bench file)
    # refreshes its own entries without clobbering the rest.
    merged: dict[str, float] = {}
    if TIMINGS_PATH.exists():
        try:
            merged = json.loads(TIMINGS_PATH.read_text()).get("timings", {})
        except (ValueError, AttributeError):
            merged = {}
    merged.update(_timings)
    TIMINGS_PATH.write_text(
        json.dumps(
            {
                "unit": "seconds_wall_clock_per_test",
                "timings": dict(sorted(merged.items())),
            },
            indent=1,
        )
    )
