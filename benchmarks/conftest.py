"""Benchmark harness conventions.

Each benchmark regenerates one paper artifact (table or figure), prints the
reproduced rows/series, and asserts the paper's *qualitative* shape — who
wins, by roughly what factor, where crossovers fall. Absolute numbers come
from the simulated marketplace and are not expected to match the authors'
2011 MTurk testbed.

Experiments run once per benchmark (``rounds=1``): the interesting metric is
the artifact itself, not the wall-clock of the simulation.
"""

from __future__ import annotations


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
