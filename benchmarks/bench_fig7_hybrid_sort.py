"""EXP-F7 / EXP-S424 — Figure 7: hybrid sort τ vs comparison HITs.

Paper shape: Rate is cheap (≈8 HITs) but imperfect (τ ≈ 0.78); Compare is
perfect but costs ≈78 HITs; hybrid schemes interpolate, with the sliding
window whose stride does not divide N (Window 6) reaching τ > 0.95 within
~30 extra HITs and converging in roughly half of Compare's budget, while
Window 5 (stride divides 40) plateaus; on the animal-size query the hybrid
lifts τ substantially within 20 iterations.
"""

from conftest import run_once

from repro.experiments.sort_experiments import run_animal_hybrid, run_fig7


def test_fig7_hybrid_sort(benchmark):
    table, traces = run_once(benchmark, run_fig7, seed=0)
    print()
    print(table.format())
    from repro.util.charts import ascii_chart

    print()
    print(
        ascii_chart(
            traces,
            height=12,
            width=60,
            y_label="tau vs additional comparison HITs (Figure 7)",
            y_min=0.75,
            y_max=1.0,
        )
    )

    compare_tau = table.cell("Compare", "final tau")
    compare_hits = table.cell("Compare", "HITs")
    rate_tau = table.cell("Rate", "final tau")
    rate_hits = table.cell("Rate", "HITs")

    assert compare_tau > 0.97
    assert rate_hits < compare_hits / 5
    assert 0.6 < rate_tau < compare_tau

    window6 = traces["Window 6"]
    window5 = traces["Window 5"]
    random_trace = traces["Random"]

    # Window 6 exceeds τ 0.95 within 30 additional HITs...
    assert max(window6[:30]) > 0.95
    # ...and converges near Compare quality within half of Compare's HITs.
    half_budget = int(compare_hits / 2)
    assert window6[min(half_budget, len(window6)) - 1] > 0.97
    # Window 5's divisor stride plateaus below Window 6.
    assert window6[-1] >= window5[-1]
    # Every hybrid improves on the rating starting point.
    for trace in traces.values():
        assert trace[-1] > rate_tau - 0.02
    # Random wastes comparisons relative to Window 6 (paper ordering).
    assert window6[-1] >= random_trace[-1]


def test_animal_hybrid(benchmark):
    table = run_once(benchmark, run_animal_hybrid, seed=0)
    print()
    print(table.format())

    start = table.rows[0][1]
    final = table.rows[-1][1]
    assert final > start + 0.05  # τ improves materially within 20 iterations
    assert final > 0.9
