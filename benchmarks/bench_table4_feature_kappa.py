"""EXP-T4 — Table 4: inter-rater agreement (Fleiss' κ) per feature.

Paper shape: gender κ is high in every trial; hair κ is much lower (blond
vs white disputes, dyed hair); skin κ is substantially higher in the
combined interface than in isolation; κ estimated on 25% samples tracks
the full-data value.
"""

from conftest import run_once

from repro.experiments.feature_experiments import run_table4


def test_table4_feature_kappa(benchmark):
    table = run_once(benchmark, run_table4, seed=0)
    print()
    print(table.format())

    full_rows = [row for row in table.rows if row[1] == "100%"]
    assert len(full_rows) == 4
    for _, _, combined, gender_k, hair_k, skin_k in full_rows:
        assert gender_k > hair_k  # gender always beats hair

    combined_skin = [row[5] for row in full_rows if row[2] == "Y"]
    isolated_skin = [row[5] for row in full_rows if row[2] == "N"]
    assert min(combined_skin) > max(isolated_skin) - 0.05

    # Sampled estimates exist for every trial and carry a std.
    sample_rows = [row for row in table.rows if row[1] == "25%"]
    assert len(sample_rows) == 4
    for row in sample_rows:
        assert "(" in str(row[3])

    # Sampled gender κ tracks the full value within ~0.15.
    for full, sampled in zip(full_rows, sample_rows):
        sampled_mean = float(str(sampled[3]).split(" ")[0])
        assert abs(sampled_mean - full[3]) < 0.15
