"""EXP-T5 — Table 5: the end-to-end movie query.

Paper: a naive plan (unfiltered SimpleJoin + Compare sort) needs 1116 HITs;
the optimized plan (numInScene filter + Smart 5×5 + Rate) needs 77 — a
14.5× reduction. The per-variant join HIT counts follow the |R||S|/(r·s)
arithmetic exactly (628 / 160 / 66 / 1055 / 211 / 43 ...).
"""

from conftest import run_once

from repro.experiments.end_to_end import run_table5


def test_table5_end_to_end(benchmark):
    table = run_once(benchmark, run_table5, seed=0)
    print()
    print(table.format())

    hits = {row[1]: row[2] for row in table.rows}

    # Join HIT arithmetic (paper's exact values, ±10% where the greedy
    # grid covering rounds differently).
    assert hits["No Filter + Simple"] == 1055
    assert hits["No Filter + Naive 5"] == 211
    assert hits["No Filter + Smart 5x5"] == 43
    assert hits["Filter + Simple"] == 628
    assert hits["Filter + Naive 5"] == 160
    assert abs(hits["Filter + Smart 5x5"] - 66) <= 3
    assert abs(hits["Filter + Smart 3x3"] - 108) <= 15

    # Rate sorts cost far fewer HITs than Compare sorts.
    assert hits["Rate"] < hits["Compare"]

    unoptimized = hits["unoptimized (Simple join + Compare)"]
    optimized = hits["optimized (Filter + Smart 5x5 + Rate)"]
    reduction = unoptimized / optimized
    # The paper's 14.5x; anything in the same regime passes.
    assert reduction > 10.0
    assert optimized < 110
    assert unoptimized > 1000
