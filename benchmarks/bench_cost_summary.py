"""EXP-COST — §3.4: the celebrity-join cost story.

Paper: $67.50 naive → ~$27 with feature filtering → ~$2.70 adding 10-way
batching; an overall order-of-magnitude-plus reduction.
"""

from conftest import run_once

from repro.experiments.feature_experiments import run_cost_summary


def test_cost_summary(benchmark):
    table = run_once(benchmark, run_cost_summary, seed=0)
    print()
    print(table.format())

    naive = table.cell("Unfiltered, unbatched", "Cost ($)")
    filtered = table.cell("Feature filtering", "Cost ($)")
    batched = table.cell("Feature filtering + batch 10", "Cost ($)")

    assert naive == 67.5
    assert filtered < naive / 2  # filtering alone halves the cost or better
    assert batched < naive / 10  # filtering + batching: >10x reduction
    assert batched < filtered
