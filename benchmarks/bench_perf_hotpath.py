"""PERF — the hot-path overhaul's before/after evidence.

Unlike the paper-artifact benchmarks, this one measures *wall-clock*: every
optimization behind :mod:`repro.util.fastpath` keeps a reference
implementation, so the pre-PR baseline ("before") and the fast path
("after") are measured in the same process on the same machine, and the
recorded speedups are reproducible anywhere.

Micro benchmarks cover the three layers the tentpole rebuilt — RNG child
derivation, weighted sampling, and HIT building — and the macro benchmark
runs the Table 5 end-to-end movie query (the unoptimized Simple-join +
Compare-sort plan and the optimized Filter + Smart 5x5 + Rate plan) at
1x/4x/16x dataset scale. Scaled runs extend the posting deadline
proportionally so every HIT group completes (the 8-hour default would
otherwise cut off the 16x group mid-flight and change the workload).

Results land in ``benchmarks/BENCH_perf_hotpath.json``. The acceptance bar
is a >= 3x end-to-end speedup on the 16x macro. Note: the 16x baseline leg
runs the pre-PR implementations and takes ~40s on its own; this is the
price of honest before/after numbers.

The vector legs extend the macro sweep to 64x and 256x under the
``REPRO_VECTOR`` numpy kernel, against the scalar fast path at the same
scale. They run the *optimized* Table 5 variant only: the unoptimized
compare-sort plan is quadratic in scale and exists to price the paper's
baseline, not to carry the 256x stress run. The headline bar is that the
256x vectorized run completes within the 16x scalar-fast macro budget —
a 16x scale increase at no wall-clock cost. With numpy absent the vector
legs are skipped and the recorded JSON simply omits them.

Determinism is asserted here too (identical HIT/assignment counts across
fastpath modes; counts within 2% across determinism domains, see
``_measure_vector``); the full bit-identical vote-stream contract lives in
``tests/test_determinism_trace.py``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.core.context import ExecutionConfig
from repro.core.engine import Qurk
from repro.crowd import SimulatedMarketplace
from repro.crowd.latency import LatencyConfig, LatencyModel
from repro.datasets.movie import movie_dataset
from repro.experiments.end_to_end import QUERY_NO_FILTER, QUERY_WITH_FILTER
from repro.hits.manager import TaskManager
from repro.hits.hit import FilterPayload, FilterQuestion
from repro.joins.batching import JoinInterface
from repro.util import fastpath
from repro.util import vector as vector_toggle
from repro.util.rng import RandomSource, child_seed

# The whole module rides on one >30s measurement fixture
# (test_micro_speedups et al.); the registered `slow` marker lets tier-1
# deselect it locally with -m "not slow" without changing default runs.
pytestmark = pytest.mark.slow

RESULTS_PATH = Path(__file__).parent / "BENCH_perf_hotpath.json"

MACRO_SCALES = (1, 4, 16)
MACRO_TARGET_SPEEDUP_AT_16X = 3.0

# Scalar-fast vs REPRO_VECTOR legs (optimized variant only; see module
# docstring). The 4x leg doubles as the baseline for the CI wall-ratio
# guard in scripts/profile_hotpath.py --check.
VECTOR_SCALES = (4, 64, 256)
VECTOR_COUNT_TOLERANCE = 0.02


# -- measurement helpers ----------------------------------------------------


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _both_modes(fn, repeats: int = 3) -> dict:
    with fastpath.forced(False):
        before = _best_of(fn, repeats)
    with fastpath.forced(True):
        after = _best_of(fn, repeats)
    return {
        "before_seconds": round(before, 4),
        "after_seconds": round(after, 4),
        "speedup": round(before / after, 2) if after > 0 else float("inf"),
    }


# -- micro workloads --------------------------------------------------------


def _micro_child_seed() -> None:
    # Experiment harnesses re-derive the same component children across
    # variants/trials; the fast path memoizes the derivation.
    for _ in range(40):
        for label in range(500):
            child_seed(7, "component", label)


def _micro_weighted_sampling() -> None:
    rng = RandomSource(3)
    weights = [1.0 / (i + 1) ** 0.9 for i in range(150)]
    for _ in range(4000):
        rng.weighted_index(weights)
        rng.zipf_index(150, 0.9)


def _micro_hit_build() -> None:
    # Effort estimation is needed eagerly; HTML is only needed if read.
    class _NullPlatform:
        clock_seconds = 0.0

        def post_hit_group(self, hits, group_id=None):  # pragma: no cover
            return []

    manager = TaskManager(_NullPlatform())
    units = [
        [FilterPayload("flt", (FilterQuestion(f"img://item/{i}"),))]
        for i in range(600)
    ]
    manager.build_hits(units, batch_size=5, assignments=5, label="bench")


# -- macro workload: Table 5 end-to-end -------------------------------------


def _run_table5_variant(scale: int, variant: str, seed: int = 0) -> tuple[int, int]:
    """One headline Table 5 plan end-to-end; returns (hits, assignments)."""
    data = movie_dataset(seed=seed, scale=scale)
    latency = LatencyModel(LatencyConfig(deadline_hours=8.0 * scale))
    market = SimulatedMarketplace(data.truth, seed=seed, latency=latency)
    if variant == "unoptimized":
        config = ExecutionConfig(
            join_interface=JoinInterface.SIMPLE,
            use_feature_filters=False,
            sort_method="compare",
            compare_group_size=5,
        )
        query = QUERY_NO_FILTER
    else:
        config = ExecutionConfig(
            join_interface=JoinInterface.SMART,
            grid_rows=5,
            grid_cols=5,
            use_feature_filters=True,
            generative_batch_size=5,
            sort_method="rate",
            compare_group_size=5,
            rate_batch_size=5,
        )
        query = QUERY_WITH_FILTER
    engine = Qurk(platform=market, config=config)
    engine.register_table(data.actors)
    engine.register_table(data.scenes)
    engine.define(data.task_dsl)
    engine.execute(query)
    return engine.ledger.total_hits, market.stats.assignments_completed


def _measure_macro(scale: int) -> dict:
    counts: dict[str, tuple[int, int]] = {}
    timings: dict[str, float] = {}
    repeats = 2 if scale < 16 else 1
    for mode, label in ((False, "before"), (True, "after")):
        with fastpath.forced(mode):
            best = float("inf")
            for _ in range(repeats):
                start = time.perf_counter()
                hits_a, asn_a = _run_table5_variant(scale, "unoptimized")
                hits_b, asn_b = _run_table5_variant(scale, "optimized")
                best = min(best, time.perf_counter() - start)
            timings[label] = best
            counts[label] = (hits_a + hits_b, asn_a + asn_b)
    # The two modes must run the identical simulated workload.
    assert counts["before"] == counts["after"], counts
    return {
        "hits": counts["after"][0],
        "assignments": counts["after"][1],
        "before_seconds": round(timings["before"], 3),
        "after_seconds": round(timings["after"], 3),
        "speedup": round(timings["before"] / timings["after"], 2),
    }


def _measure_vector(scale: int) -> dict:
    """Scalar-fast vs vector-kernel wall clock at one macro scale.

    Both legs run with the fast path on; the vector leg additionally forces
    ``REPRO_VECTOR``. The two determinism domains draw different answers,
    and answer-dependent feature filtering then shifts the posted workload
    slightly (~0.2% at 256x), so counts are pinned within
    ``VECTOR_COUNT_TOLERANCE`` rather than bit-equal like
    :func:`_measure_macro`.
    """
    counts: dict[str, tuple[int, int]] = {}
    timings: dict[str, float] = {}
    # Small-scale legs are fractions of a second, and the 4x ratio is the
    # CI guard's baseline — best-of keeps it off the noise floor.
    repeats = 3 if scale < 64 else 1
    with fastpath.forced(True):
        for label, vector_on in (("fast", False), ("vector", True)):
            with vector_toggle.forced(vector_on):
                best = float("inf")
                for _ in range(repeats):
                    start = time.perf_counter()
                    counts[label] = _run_table5_variant(scale, "optimized")
                    best = min(best, time.perf_counter() - start)
                timings[label] = best
    for fast_count, vector_count in zip(counts["fast"], counts["vector"]):
        assert abs(vector_count - fast_count) <= max(
            2, VECTOR_COUNT_TOLERANCE * fast_count
        ), counts
    return {
        "hits": counts["vector"][0],
        "assignments": counts["vector"][1],
        "fast_seconds": round(timings["fast"], 3),
        "vector_seconds": round(timings["vector"], 3),
        "ratio": round(timings["vector"] / timings["fast"], 3),
    }


# -- the benchmark ----------------------------------------------------------


@pytest.fixture(scope="module")
def results() -> dict:
    micro = {
        "rng_child_derivation": _both_modes(_micro_child_seed),
        "weighted_sampling": _both_modes(_micro_weighted_sampling),
        "hit_build": _both_modes(_micro_hit_build),
    }
    macro = {f"scale_{scale}x": _measure_macro(scale) for scale in MACRO_SCALES}
    payload = {
        "benchmark": "perf_hotpath",
        "modes": {
            "before": "REPRO_FASTPATH=0 (pre-PR reference implementations)",
            "after": "fast path (default)",
            "vector": "REPRO_VECTOR=1 (numpy batch dispatch kernel)",
        },
        "micro": micro,
        "macro": macro,
    }
    if vector_toggle.available():
        payload["vector_macro"] = {
            f"scale_{scale}x": _measure_vector(scale) for scale in VECTOR_SCALES
        }
    RESULTS_PATH.write_text(json.dumps(payload, indent=1))
    return payload


def test_micro_speedups(results):
    print()
    print(json.dumps(results["micro"], indent=1))
    # Each rebuilt layer must actually be faster than its reference.
    for name, row in results["micro"].items():
        assert row["speedup"] > 1.2, (name, row)


def test_macro_speedup_grows_with_scale(results):
    print()
    print(json.dumps(results["macro"], indent=1))
    speedups = [results["macro"][f"scale_{s}x"]["speedup"] for s in MACRO_SCALES]
    # The reference path degrades superlinearly (O(n) pops, O(n^3) covering
    # scans); the fast path's advantage must widen as the dataset grows.
    assert speedups[-1] > speedups[0]


def test_macro_16x_meets_target(results):
    row = results["macro"]["scale_16x"]
    assert row["speedup"] >= MACRO_TARGET_SPEEDUP_AT_16X, row


def test_vector_macro_beats_scalar_at_scale(results):
    """The kernel's batching must pay off where it matters: at 64x and
    256x the vector leg beats the scalar fast path outright."""
    if "vector_macro" not in results:
        pytest.skip("numpy not installed; vector legs not measured")
    print()
    print(json.dumps(results["vector_macro"], indent=1))
    for scale in (64, 256):
        row = results["vector_macro"][f"scale_{scale}x"]
        assert row["ratio"] < 1.0, (scale, row)


def test_vector_256x_within_16x_scalar_budget(results):
    """The headline bar: the 256x macro under REPRO_VECTOR=1 completes
    within the 16x scalar-fast wall clock — 16x more simulated marketplace
    for the same waiting."""
    if "vector_macro" not in results:
        pytest.skip("numpy not installed; vector legs not measured")
    vector_256 = results["vector_macro"]["scale_256x"]["vector_seconds"]
    scalar_16 = results["macro"]["scale_16x"]["after_seconds"]
    assert vector_256 <= scalar_16, (vector_256, scalar_16)


def test_results_recorded(results):
    recorded = json.loads(RESULTS_PATH.read_text())
    assert recorded["macro"]["scale_16x"]["before_seconds"] > 0
    assert recorded["macro"]["scale_16x"]["after_seconds"] > 0
    if "vector_macro" in recorded:
        assert recorded["vector_macro"]["scale_256x"]["vector_seconds"] > 0
