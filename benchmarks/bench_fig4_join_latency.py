"""EXP-F4 — Figure 4: join completion-time percentiles.

Paper shape: batching reduces latency even though each HIT holds more work;
SimpleJoin is slowest with high trial-to-trial variance; a large share of
the total wait is spent on the last few percent of assignments.
"""

from conftest import run_once

from repro.experiments.join_experiments import run_fig4


def test_fig4_join_latency(benchmark):
    table = run_once(benchmark, run_fig4, seed=0)
    print()
    print(table.format())

    def full_time(scheme, trial):
        for row in table.rows:
            if row[0] == scheme and row[1].startswith(trial):
                return row[4]
        raise KeyError((scheme, trial))

    # Simple is slower than every batched variant in both trials.
    for trial in ("#1", "#2"):
        simple = full_time("Simple", trial)
        for scheme in ("Naive 5", "Naive 10", "Smart 3x3"):
            assert full_time(scheme, trial) < simple

    # The straggler tail: the 95th percentile is well below the 100th,
    # i.e. the last few percent take a disproportionate share of the wait.
    simple_row = [row for row in table.rows if row[0] == "Simple"][0]
    p50, p95, p100 = simple_row[2], simple_row[3], simple_row[4]
    assert p100 > p95 > p50
    assert (p100 - p95) > 0.25 * (p100 - p50)
