"""EXP-S33 — §3.3.3: worker accuracy vs tasks completed.

Paper: R² = 0.028 with a slightly positive slope — the amount of work a
worker does explains almost none of their accuracy, so there is no
fatigue/boredom effect to correct for.
"""

from conftest import run_once

from repro.experiments.join_experiments import run_assignments_accuracy


def test_sec333_worker_accuracy(benchmark):
    table, fit = run_once(benchmark, run_assignments_accuracy, seed=0)
    print()
    print(table.format())

    # The headline finding: volume explains (almost) nothing.
    assert fit.r_squared < 0.1
    # No strong negative effect (heavy workers are not sloppier).
    assert fit.slope > -0.001
    assert fit.n >= 50
