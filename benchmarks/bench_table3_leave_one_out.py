"""EXP-T3 — Table 3: leave-one-out feature analysis.

Paper shape: gender is by far the most effective filter (omitting it costs
the most); hair color is responsible for the filtering errors, so omitting
hair removes (most of) them — hair is the feature to drop.
"""

from conftest import run_once

from repro.experiments.feature_experiments import run_table3


def test_table3_leave_one_out(benchmark):
    table = run_once(benchmark, run_table3, seed=0)
    print()
    print(table.format())

    errors = {row[0]: row[1] for row in table.rows}
    costs = {row[0]: row[3] for row in table.rows}

    # Omitting gender hurts cost the most: gender is the workhorse filter.
    assert costs["gender"] >= costs["hairColor"]
    assert costs["gender"] >= costs["skinColor"]

    # Hair is the error source: dropping it leaves the fewest errors.
    assert errors["hairColor"] <= errors["gender"]
    assert errors["hairColor"] <= errors["skinColor"]
