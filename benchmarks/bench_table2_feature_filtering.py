"""EXP-T2 — Table 2: feature filtering effectiveness.

Paper shape: feature filters cut the join cost by more than a factor of two
versus the $67.50 unfiltered join; combining the three features into one
HIT both reduces cost and lowers the error rate versus asking them in
isolation; errors stay small (single digits out of 30 matches).
"""

from conftest import run_once

from repro.experiments.feature_experiments import ASSIGNMENTS, PRICING, run_table2


def test_table2_feature_filtering(benchmark):
    table = run_once(benchmark, run_table2, seed=0)
    print()
    print(table.format())

    unfiltered_cost = PRICING.cost(900 * ASSIGNMENTS)  # $67.50
    combined_rows = [row for row in table.rows if row[1] == "Y"]
    isolated_rows = [row for row in table.rows if row[1] == "N"]
    assert len(combined_rows) == 2 and len(isolated_rows) == 2

    for _, _, errors, saved, cost in table.rows:
        assert cost < unfiltered_cost / 2  # >2x cost reduction
        assert saved > 400  # most of the 870 non-matches avoided
        assert errors <= 8  # only a handful of matches lost

    mean_combined_errors = sum(row[2] for row in combined_rows) / 2
    mean_isolated_errors = sum(row[2] for row in isolated_rows) / 2
    assert mean_combined_errors <= mean_isolated_errors

    mean_combined_cost = sum(row[4] for row in combined_rows) / 2
    mean_isolated_cost = sum(row[4] for row in isolated_rows) / 2
    assert mean_combined_cost <= mean_isolated_cost + 1.0
