"""EXP-F3 — Figure 3: batching vs join accuracy (30 celebrities).

Paper shape: batching mildly hurts true positives under MajorityVote;
QualityAdjust recovers most of the loss (it filters the spammers that big
batches attract); true negatives are unaffected; combined answers beat the
expected single-worker accuracy, which itself degrades with batch size.
"""

from conftest import run_once

from repro.experiments.join_experiments import run_fig3


def test_fig3_join_batching(benchmark):
    table = run_once(benchmark, run_fig3, seed=0)
    print()
    print(table.format())

    simple_single = table.cell("Simple", "Single-vote TP")
    smart3_single = table.cell("Smart 3x3", "Single-vote TP")
    # Single-worker accuracy degrades with heavy batching (78% → 53% in the
    # paper; the direction is what matters).
    assert smart3_single < simple_single - 0.05

    for scheme in ("Simple", "Naive 3", "Naive 5", "Naive 10", "Smart 2x2", "Smart 3x3"):
        mv_tp = table.cell(scheme, "TP rate (MV)")
        qa_tp = table.cell(scheme, "TP rate (QA)")
        single = table.cell(scheme, "Single-vote TP")
        # Combining beats trusting one worker; QA is at least as good as MV.
        assert mv_tp > single
        assert qa_tp >= mv_tp
        # True negatives essentially unaffected by batching.
        assert table.cell(scheme, "TN rate (MV)") > 0.98

    # Smart 2x2 performs about as well as Simple (paper finding).
    assert table.cell("Smart 2x2", "TP rate (MV)") >= table.cell("Smart 3x3", "TP rate (MV)")
