"""The end-to-end query of §5: movie stills x actors.

For each of five actors, find the scenes where the actor is the main focus
and order them by how flattering they are:

    SELECT name, scene.img
    FROM actors JOIN scenes ON inScene(actors.img, scenes.img)
    AND POSSIBLY numInScene(scenes.img) = 1
    ORDER BY name, quality(scenes.img)

Runs the naive plan and the fully optimized plan, reproducing the paper's
headline: a ~14.5x reduction in HITs for comparable results.

Run:  python examples/movie_end_to_end.py
"""

from repro import ExecutionConfig, JoinInterface, Qurk, SimulatedMarketplace
from repro.datasets import movie_dataset
from repro.experiments.end_to_end import QUERY_NO_FILTER, QUERY_WITH_FILTER


def run(name: str, query: str, config: ExecutionConfig, seed: int = 3):
    data = movie_dataset(seed=seed)
    market = SimulatedMarketplace(data.truth, seed=seed)
    engine = Qurk(platform=market, config=config)
    engine.register_table(data.actors)
    engine.register_table(data.scenes)
    engine.define(data.task_dsl)
    result = engine.execute(query)
    matches = set(data.matches)
    actor_ref = {str(row["name"]): str(row["img"]) for row in data.actors}
    correct = sum(
        1
        for row in result.rows
        if (actor_ref[str(row["a.name"])], str(row["s.img"])) in matches
    )
    print(
        f"{name:<28} HITs={result.hit_count:>5}  cost=${result.total_cost:>7.2f}  "
        f"rows={len(result):>3} ({correct} true actor-scene pairs of "
        f"{len(data.matches)})"
    )
    return result.hit_count


def main() -> None:
    print("End-to-end movie query: 211 scenes x 5 actors (§5, Table 5)\n")
    naive = run(
        "Naive (Simple + Compare)",
        QUERY_NO_FILTER,
        ExecutionConfig(
            join_interface=JoinInterface.SIMPLE,
            use_feature_filters=False,
            sort_method="compare",
            compare_group_size=5,
        ),
    )
    optimized = run(
        "Optimized (5x5 + Rate)",
        QUERY_WITH_FILTER,
        ExecutionConfig(
            join_interface=JoinInterface.SMART,
            grid_rows=5,
            grid_cols=5,
            use_feature_filters=True,
            generative_batch_size=5,
            sort_method="rate",
            rate_batch_size=5,
        ),
    )
    print(f"\nHIT reduction: {naive / optimized:.1f}x (paper: 14.5x)")


if __name__ == "__main__":
    main()
