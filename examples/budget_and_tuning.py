"""The §6 extensions in action: budgets, batch tuning, adaptive votes.

The paper's discussion section sketches three mechanisms beyond the core
operators; all are implemented here:

1. a whole-plan **budget allocator** that fits a query under a dollar cap;
2. an adaptive **batch-size tuner** that binary-searches for the largest
   batch the crowd will accept at $0.01;
3. **adaptive assignment counts** that stop buying votes once a question
   is decided.

Run:  python examples/budget_and_tuning.py
"""

from repro.core.batch_tuner import BatchTuner, ProbeResult
from repro.core.budget import OperatorEstimate, allocate_budget
from repro.crowd import GroundTruth, SimulatedMarketplace
from repro.experiments.ablations import run_adaptive_ablation
from repro.hits import TaskManager
from repro.hits.hit import CompareGroup, ComparePayload


def budget_demo() -> None:
    print("1) Whole-plan budget allocation")
    print("   Query plan: feature pass (120 units) + join (300) + sort (80),")
    print("   5 assignments requested everywhere = $37.50 at full fidelity.\n")
    for budget in (40.0, 15.0, 4.0):
        plan = allocate_budget(
            [
                OperatorEstimate("feature-pass", units=120),
                OperatorEstimate("join", units=300),
                OperatorEstimate("sort", units=80),
            ],
            budget=budget,
        )
        parts = ", ".join(
            f"{a.name}: {a.assignments}x votes on {a.data_fraction:.0%} of data"
            for a in plan.allocations
        )
        print(f"   budget ${budget:>5.2f} → ${plan.total_cost:>5.2f} spent ({parts})")
    print()


def tuner_demo() -> None:
    print("2) Adaptive batch sizing (binary search against the crowd)")
    truth = GroundTruth()
    truth.add_rank_task(
        "rank", {f"i{k}": float(k) for k in range(24)}, comparison_ambiguity=0.2
    )

    def probe(group_size: int) -> ProbeResult:
        market = SimulatedMarketplace(truth, seed=group_size * 3)
        manager = TaskManager(market)
        items = tuple(f"i{k}" for k in range(min(group_size, 24)))
        payload = ComparePayload("rank", (CompareGroup(items),))
        outcome = manager.run_units(
            [[payload]], assignments=3, label="probe", strict=False
        )
        return ProbeResult(group_size, completed=not outcome.uncompleted_hit_ids)

    tuner = BatchTuner(min_batch=2, max_batch=24, latency_ceiling_seconds=1e9)
    best = tuner.tune(probe)
    trail = " → ".join(
        f"{r.batch_size}{'✓' if r.completed else '✗'}" for r in tuner.history
    )
    print(f"   probes: {trail}")
    print(f"   largest accepted comparison group: {best} "
          "(the paper saw 10 work and 20 refused)\n")


def adaptive_demo() -> None:
    print("3) Adaptive assignment counts on a 12x12 celebrity join")
    result = run_adaptive_ablation(seed=0, n_celebs=12)
    print(
        f"   fixed 5 votes/pair: {result.fixed_assignments} assignments, "
        f"{result.fixed_correct}/12 matches"
    )
    print(
        f"   adaptive (3 + 2 until margin 2, cap 9): "
        f"{result.adaptive_assignments} assignments, "
        f"{result.adaptive_correct}/12 matches "
        f"({result.savings_fraction:.0%} saved)"
    )


def main() -> None:
    budget_demo()
    tuner_demo()
    adaptive_demo()


if __name__ == "__main__":
    main()
