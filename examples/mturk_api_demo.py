"""Using the boto-style MTurk API shim directly (no query engine).

Qurk's declarative layer sits on top of an imperative crowd API. This
example drives that API the way a 2011-era boto script would: create HITs,
poll for reviewable work, fetch assignments, combine answers yourself, and
approve the workers — all against the simulator.

Run:  python examples/mturk_api_demo.py
"""

from collections import Counter

from repro import GroundTruth, SimulatedMarketplace
from repro.crowd.mturk_api import HITTypeParams, MTurkConnection
from repro.hits.hit import FilterPayload, FilterQuestion


def main() -> None:
    # Ground truth for ten "is this photo outdoors?" questions.
    truth = GroundTruth()
    truth.add_filter_task(
        "isOutdoors", {f"img://photo/{i}": i % 3 != 0 for i in range(10)}
    )

    market = SimulatedMarketplace(truth, seed=42)
    mturk = MTurkConnection(market)
    params = HITTypeParams(
        title="Is this photo taken outdoors?",
        description="Look at the photo and answer yes or no.",
        reward=0.01,
        assignments=5,
        keywords=("image", "categorization"),
    )

    hit_ids = [
        mturk.create_hit(
            (
                FilterPayload(
                    "isOutdoors",
                    (FilterQuestion(item=f"img://photo/{i}"),),
                    yes_text="Outdoors",
                    no_text="Indoors",
                ),
            ),
            params,
        )
        for i in range(10)
    ]
    print(f"posted {len(hit_ids)} HITs; first HIT's form:\n")
    print(mturk.hit_html(hit_ids[0])[:400], "...\n")

    correct = 0
    for i, hit_id in enumerate(mturk.get_reviewable_hits()):
        assignments = mturk.get_assignments(hit_id)
        votes = Counter(
            value for a in assignments for value in a.answers.values()
        )
        decision = votes[True] > votes[False]
        correct += decision == (i % 3 != 0)
        mturk.approve_all(hit_id)
        mturk.dispose_hit(hit_id)

    print(f"majority-vote accuracy over 10 questions: {correct}/10")
    print(
        f"assignments completed: {market.stats.assignments_completed}, "
        f"virtual seconds elapsed: {market.clock_seconds:.0f}"
    )


if __name__ == "__main__":
    main()
