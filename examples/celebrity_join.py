"""The paper's flagship workload: the celebrity join (§3).

Joins a table of celebrity profile photos with a table of event photos
using the crowd, three ways:

1. naive SimpleJoin — one pair per HIT, the full cross product;
2. SmartBatch 3×3 grids — an order of magnitude fewer HITs;
3. SmartBatch + POSSIBLY feature filtering (gender/hair/skin) — the
   paper's full optimization stack ($67.50 → about $3 at n=30).

Run:  python examples/celebrity_join.py
"""

from repro import ExecutionConfig, JoinInterface, Qurk, SimulatedMarketplace
from repro.datasets import celebrity_dataset

JOIN = "SELECT c.name, p.id FROM celeb c JOIN photos p ON samePerson(c.img, p.img)"

FILTERED_JOIN = """
SELECT c.name, p.id
FROM celeb c JOIN photos p
ON samePerson(c.img, p.img)
AND POSSIBLY gender(c.img) = gender(p.img)
AND POSSIBLY hairColor(c.img) = hairColor(p.img)
AND POSSIBLY skinColor(c.img) = skinColor(p.img)
"""


def run(name: str, query: str, config: ExecutionConfig, n: int = 30, seed: int = 1):
    data = celebrity_dataset(n=n, seed=seed)
    market = SimulatedMarketplace(data.truth, seed=seed)
    engine = Qurk(platform=market, config=config)
    engine.register_table(data.celebs)
    engine.register_table(data.photos)
    engine.define(data.task_dsl)
    result = engine.execute(query)
    correct = sum(
        1
        for row in result.rows
        if str(row["c.name"]).rsplit("-", 1)[1] == str(row["p.id"])
    )
    print(
        f"{name:<34} HITs={result.hit_count:>4}  cost=${result.total_cost:>6.2f}  "
        f"matches={correct}/{n}  false positives={len(result) - correct}"
    )
    return result


def main() -> None:
    print("Celebrity join, 30 celebrities x 30 photos (900 candidate pairs)\n")
    run(
        "SimpleJoin (naive)",
        JOIN,
        ExecutionConfig(join_interface=JoinInterface.SIMPLE),
    )
    run(
        "SmartBatch 3x3",
        JOIN,
        ExecutionConfig(join_interface=JoinInterface.SMART, grid_rows=3, grid_cols=3),
    )
    result = run(
        "SmartBatch 3x3 + feature filters",
        FILTERED_JOIN,
        ExecutionConfig(join_interface=JoinInterface.SMART, grid_rows=3, grid_cols=3),
    )
    print("\nEXPLAIN of the optimized plan (note the per-feature kappa signals —")
    print("low hair-color agreement is exactly the paper's Table 4 finding):\n")
    print(result.explain())


if __name__ == "__main__":
    main()
