"""Quickstart: crowd-sort twenty squares by area.

The smallest end-to-end Qurk program: build a dataset, stand up a simulated
marketplace, register a table and a Rank task, and run an ORDER BY query
whose comparisons are answered by the (simulated) crowd.

Run:  python examples/quickstart.py
"""

from repro import ExecutionConfig, Qurk, SimulatedMarketplace
from repro.datasets import squares_dataset
from repro.metrics import kendall_tau_from_orders


def main() -> None:
    # A synthetic dataset of 20 squares (§4.2.1) with its truth oracle.
    data = squares_dataset(n=20, seed=7)

    # The marketplace simulates Mechanical Turk: a worker pool with
    # reliable/sloppy/spammer archetypes answering on a virtual clock.
    market = SimulatedMarketplace(data.truth, seed=7)

    engine = Qurk(platform=market, config=ExecutionConfig(sort_method="compare"))
    engine.register_table(data.table)
    engine.define(data.task_dsl)  # TASK squareSorter(field) TYPE Rank: ...

    result = engine.execute(
        "SELECT squares.label FROM squares ORDER BY squareSorter(img)"
    )

    print("Crowd order (smallest to largest):")
    for row in result.rows:
        print("  ", row["squares.label"])

    expected = [f"square-{20 + 3 * i}" for i in range(20)]
    tau = kendall_tau_from_orders(result.column("squares.label"), expected)
    print(f"\nKendall tau vs ground truth: {tau:.3f}")
    print(
        f"HITs: {result.hit_count}, assignments: {result.assignment_count}, "
        f"cost: ${result.total_cost:.2f}, "
        f"virtual latency: {result.elapsed_seconds / 60:.1f} minutes"
    )
    print("\nEXPLAIN with crowd-quality signals:")
    print(result.explain())


if __name__ == "__main__":
    main()
