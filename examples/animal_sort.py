"""Sorting under ambiguity: the animals workload (§4.2.3).

Runs four ORDER BY queries of increasing ambiguity — adult size,
dangerousness, "belongs on Saturn", and a control with random answers —
under all three sort implementations, and prints the κ/τ feasibility
signals the paper proposes for deciding whether (and how) to sort at all.

Run:  python examples/animal_sort.py
"""

from repro import ExecutionConfig, Qurk, SimulatedMarketplace
from repro.datasets import animals_dataset
from repro.datasets.animals import ANIMAL_QUERIES
from repro.metrics import kendall_tau_from_orders


def main() -> None:
    data = animals_dataset()

    print("Animal sort queries under the three sort implementations")
    print("(tau measured against the paper's published Compare orders)\n")
    header = f"{'query':<12}{'method':<10}{'HITs':>5}  {'tau':>6}"
    print(header)
    print("-" * len(header))

    for query_id in ("Q2", "Q3", "Q4"):
        task = ANIMAL_QUERIES[query_id]
        for method in ("compare", "rate", "hybrid"):
            market = SimulatedMarketplace(data.truth, seed=11)
            engine = Qurk(
                platform=market,
                config=ExecutionConfig(
                    sort_method=method,
                    hybrid_iterations=15,
                    hybrid_strategy="window",
                    hybrid_stride=6,
                ),
            )
            engine.register_table(data.table)
            engine.define(data.task_dsl)
            result = engine.execute(
                f"SELECT animals.name, animals.img FROM animals ORDER BY {task}(img)"
            )
            tau = kendall_tau_from_orders(
                [str(row["animals.img"]) for row in result.rows],
                data.orders[task],
            )
            print(f"{query_id:<12}{method:<10}{result.hit_count:>5}  {tau:>6.3f}")
        print()

    print("Takeaway (matches the paper): comparisons beat ratings, the hybrid")
    print("closes most of the gap at a fraction of the HITs, and the more")
    print("ambiguous the question, the less any method can recover.")


if __name__ == "__main__":
    main()
