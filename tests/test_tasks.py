"""Tests for task template construction from parsed definitions."""

import pytest

from repro.errors import TaskError
from repro.language.parser import parse_task
from repro.tasks import (
    EquiJoinTask,
    FilterTask,
    GenerativeTask,
    RankTask,
    TaskType,
    resolve_item_ref,
    task_from_definition,
)

FILTER_DSL = 'TASK f(field) TYPE Filter:\nPrompt: "<img src=\'%s\'>", tuple[field]\n'
RANK_DSL = (
    'TASK r(field) TYPE Rank:\n'
    'SingularName: "square"\nPluralName: "squares"\n'
    'OrderDimensionName: "area"\nLeastName: "smallest"\nMostName: "largest"\n'
    'Html: "<img src=\'%s\'>", tuple[field]\n'
)
JOIN_DSL = (
    'TASK j(f1, f2) TYPE EquiJoin:\n'
    'LeftNormal: "<img src=\'%s\'>", tuple1[f1]\n'
    'RightNormal: "<img src=\'%s\'>", tuple2[f2]\n'
)
GEN_DSL = (
    'TASK g(field) TYPE Generative:\n'
    'Prompt: "<img src=\'%s\'>", tuple[field]\n'
    'Response: Radio("Color", ["red", "blue", UNKNOWN])\n'
)


def test_filter_task_built():
    task = task_from_definition(parse_task(FILTER_DSL))
    assert isinstance(task, FilterTask)
    assert task.task_type is TaskType.FILTER
    assert task.yes_text == "Yes" and task.no_text == "No"
    assert task.combiner == "MajorityVote"


def test_rank_task_questions():
    task = task_from_definition(parse_task(RANK_DSL))
    assert isinstance(task, RankTask)
    assert "smallest" in task.compare_question(5)
    assert "7-point" in task.rate_question()
    assert task.scale_points == 7


def test_equijoin_task_built():
    task = task_from_definition(parse_task(JOIN_DSL))
    assert isinstance(task, EquiJoinTask)
    assert task.left_param == "f1" and task.right_param == "f2"
    # Previews default to the normal templates when omitted.
    assert task.left_preview is task.left_normal


def test_equijoin_requires_two_params():
    bad = 'TASK j(f1) TYPE EquiJoin:\nLeftNormal: "%s", tuple1[f1]\nRightNormal: "x"\n'
    with pytest.raises(TaskError):
        task_from_definition(parse_task(bad))


def test_generative_single_field():
    task = task_from_definition(parse_task(GEN_DSL))
    assert isinstance(task, GenerativeTask)
    field = task.single_field
    assert field.is_categorical
    assert len(field.options) == 3


def test_generative_fields_block_and_lookup():
    dsl = (
        'TASK g(field) TYPE Generative:\n'
        'Prompt: "%s", tuple[field]\n'
        'Fields: { a: { Response: Text("A") }, b: { Response: Text("B") } }\n'
    )
    task = task_from_definition(parse_task(dsl))
    assert [f.name for f in task.fields] == ["a", "b"]
    assert task.field("b").response.label == "B"
    with pytest.raises(TaskError):
        task.field("c")
    with pytest.raises(TaskError):
        task.single_field


def test_generative_requires_response_or_fields():
    bad = 'TASK g(field) TYPE Generative:\nPrompt: "%s", tuple[field]\n'
    with pytest.raises(TaskError):
        task_from_definition(parse_task(bad))


def test_unknown_task_type():
    bad = parse_task('TASK x(a) TYPE Filter:\nPrompt: "hi"\n')
    object.__setattr__(bad, "task_type", "Mystery")
    with pytest.raises(TaskError):
        task_from_definition(bad)


def test_arity_validation():
    task = task_from_definition(parse_task(FILTER_DSL))
    task.validate_arity(1)
    with pytest.raises(TaskError):
        task.validate_arity(2)


def test_resolve_item_ref_scalar():
    assert resolve_item_ref("img://x") == "img://x"
    assert resolve_item_ref(42) == "42"


def test_resolve_item_ref_row_prefers_img():
    assert resolve_item_ref({"name": "a", "img": "img://1"}) == "img://1"
    assert resolve_item_ref({"c.name": "a", "c.img": "img://2"}) == "img://2"
    assert resolve_item_ref({"id": 9}) == "9"
    assert resolve_item_ref({"other": "z"}) == "z"


def test_resolve_item_ref_empty_row():
    with pytest.raises(TaskError):
        resolve_item_ref({})


def test_effort_models():
    filter_task = task_from_definition(parse_task(FILTER_DSL))
    gen_task = task_from_definition(parse_task(GEN_DSL))
    assert filter_task.unit_effort_seconds() < gen_task.unit_effort_seconds() * 4
