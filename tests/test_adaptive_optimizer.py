"""The cost-based adaptive re-optimizer: estimates, re-planning, contracts.

Four promises are pinned here:

1. **Gate** — ``REPRO_ADAPT=0`` reverts to the static rewriter
   bit-identically: same plans, same posting order, same golden trace.
2. **Row identity** — adaptive conjunct ordering changes what a query
   *costs*, never what it returns: the fused chain's rows equal the
   static cascade's, under both executors.
3. **Economy** — on the misordered-predicate workload the adaptive plan
   posts strictly fewer HITs than the static plan.
4. **Determinism** — re-planning is a pure function of each query's own
   observations: identical runs (including an 8-query concurrent session)
   replan identically, draw for draw.
"""

from __future__ import annotations

import json

import pytest

from repro.core.adaptive import AdaptiveState, SelectivityBook
from repro.core.context import ExecutionConfig
from repro.core.cost_model import estimate_plan_cost, predicate_key
from repro.core.session import EngineSession
from repro.crowd import SimulatedMarketplace
from repro.errors import BudgetExceededError
from repro.experiments.adaptive_workload import (
    FILTER_DSL,
    MISORDERED_QUERY,
    build_engine,
    careful_pool,
    misordered_dataset,
)
from repro.util import adapt, pipeline


def _rows(result) -> list[str]:
    return sorted(str(row["s.img"]) for row in result.rows)


# ---------------------------------------------------------------------------
# SelectivityBook
# ---------------------------------------------------------------------------


def test_book_prior_before_observations():
    book = SelectivityBook()
    assert book.estimate("pred:x") == 0.5
    assert book.estimate("pred:x", prior=0.1) == 0.1
    assert book.observed("pred:x") is None


def test_book_blends_prior_with_observations():
    book = SelectivityBook(prior=0.5, prior_weight=2.0)
    book.observe("k", 10, 2)
    assert book.observed("k") == pytest.approx(0.2)
    # (2 + 0.5×2) / (10 + 2) = 0.25 — smoothed toward the prior.
    assert book.estimate("k") == pytest.approx(0.25)
    book.observe("k", 0, 0)  # empty rounds are ignored
    assert book.observed("k") == pytest.approx(0.2)


def test_book_record_fraction_and_keys():
    book = SelectivityBook()
    book.record_fraction("feature:f", 0.9, weight=10)
    assert book.observed("feature:f") == pytest.approx(0.9)
    assert book.known_keys() == ["feature:f"]


# ---------------------------------------------------------------------------
# Gate: REPRO_ADAPT=0 is the static rewriter, golden trace included
# ---------------------------------------------------------------------------


def test_adapt_off_reproduces_pinned_golden_trace():
    """The full Table-5 trace (votes, clock, ledger) with the adaptive
    optimizer forced off must equal the pinned golden byte for byte."""
    from test_determinism_trace import GOLDEN_PATH, collect_trace

    with adapt.forced(False):
        trace = collect_trace(seed=0)
    golden = json.loads(GOLDEN_PATH.read_text())
    assert trace == golden


def test_adapt_off_yields_no_adaptive_machinery():
    with adapt.forced(False):
        engine, result = _run_misordered()
    assert result.adaptive_summary is None
    assert "AdaptiveCrowdFilter" not in result.explain()


def _run_misordered(config: ExecutionConfig | None = None, seed: int = 0):
    engine = build_engine(seed=seed, config=config)
    return engine, engine.execute(MISORDERED_QUERY)


# ---------------------------------------------------------------------------
# Row identity + economy on the misordered workload
# ---------------------------------------------------------------------------


def test_adaptive_rows_identical_to_static_with_fewer_hits():
    with adapt.forced(False):
        _, static = _run_misordered()
    with adapt.forced(True):
        _, adaptive = _run_misordered()
    assert _rows(adaptive) == _rows(static)
    assert adaptive.hit_count < static.hit_count
    summary = adaptive.adaptive_summary
    assert summary is not None and summary["replans"] >= 1
    assert summary["fused_chains"] == 1
    assert summary["actual_hits"] == adaptive.hit_count


def test_adaptive_identical_across_executors():
    outcomes = {}
    for pipelined in (False, True):
        with adapt.forced(True), pipeline.forced(pipelined):
            _, result = _run_misordered()
        outcomes[pipelined] = (
            _rows(result),
            result.hit_count,
            result.assignment_count,
            result.adaptive_summary["rounds"],
        )
    assert outcomes[False] == outcomes[True]


def test_explain_renders_members_and_replan_log():
    with adapt.forced(True):
        _, result = _run_misordered()
    text = result.explain()
    assert "AdaptiveCrowdFilter(2 conjuncts" in text
    assert "CrowdFilter(isBright(s.img))" in text
    assert "estimated_selectivity" in text and "observed_selectivity" in text
    assert "adaptive: replans=" in text
    assert "replan log:" in text and "[reordered]" in text
    assert "predicted_hits=" in text and "actual_hits=" in text


def test_engine_book_learns_across_queries():
    """An engine's (serial) queries share one selectivity book: the second
    run of the same query starts from the observed pass rates."""
    with adapt.forced(True):
        engine, first = _run_misordered()
        key = "pred:isCloseUp(s.img)"
        observed = engine.book.observed(key)
        assert observed is not None and observed < 0.3
        second = engine.execute(MISORDERED_QUERY)
    # Learned estimates surface in the second query's event log.
    first_event = second.adaptive_summary["events"][0]
    assert "est=0.50" not in first_event


# ---------------------------------------------------------------------------
# Cost model + budget pre-flight
# ---------------------------------------------------------------------------


def test_cost_model_prefers_selective_first_order():
    """With learned selectivities the fused chain's forecast is cheaper
    than a static query-order cascade of the same conjuncts."""
    engine = build_engine()
    state = AdaptiveState()
    state.book.observe("pred:isBright(s.img)", 100, 90)
    state.book.observe("pred:isCloseUp(s.img)", 100, 14)
    from repro.core.engine import parse_single_select
    from repro.core.optimizer import optimize
    from repro.core.planner import build_plan

    parsed = parse_single_select(MISORDERED_QUERY, engine.catalog)
    plan = optimize(build_plan(parsed, engine.catalog), adapt=state)
    fused = estimate_plan_cost(plan, engine.catalog, engine.config, state.book)

    static_plan = optimize(build_plan(parsed, engine.catalog))
    static = estimate_plan_cost(
        static_plan, engine.catalog, engine.config, state.book
    )
    assert fused.total_hits < static.total_hits
    assert fused.total_dollars < static.total_dollars


def test_budget_preflight_aborts_before_posting():
    config = ExecutionConfig(max_budget=0.05, budget_preflight=True)
    engine = build_engine(config=config)
    with adapt.forced(True):
        with pytest.raises(BudgetExceededError, match="pre-flight"):
            engine.execute(MISORDERED_QUERY)
    assert engine.ledger.total_hits == 0  # nothing was posted


def test_budget_preflight_off_by_default_still_aborts_midway():
    config = ExecutionConfig(max_budget=0.05)
    engine = build_engine(config=config)
    with adapt.forced(True):
        with pytest.raises(BudgetExceededError):
            engine.execute(MISORDERED_QUERY)


def test_preflight_report_in_summary_when_budget_set():
    config = ExecutionConfig(max_budget=100.0)
    engine = build_engine(config=config)
    with adapt.forced(True):
        result = engine.execute(MISORDERED_QUERY)
    preflight = result.adaptive_summary["preflight"]
    assert preflight["fits"] == 1.0
    assert preflight["projected_cost"] > 0


# ---------------------------------------------------------------------------
# Join-side (grid orientation) re-planning
# ---------------------------------------------------------------------------


def test_asymmetric_grid_orientation_replans_from_observed_sides():
    """With a 10×2 grid and |L|=5, |R|=211, riding the scenes on the
    2-wide axis posts ceil(5/10)·ceil(211/2)=106 grids; the adaptive
    optimizer transposes to ceil(5/2)·ceil(211/10)=66 and logs it."""
    from repro.datasets.movie import movie_dataset
    from repro.experiments.end_to_end import QUERY_NO_FILTER
    from repro.core.engine import Qurk

    def run(adaptive: bool):
        data = movie_dataset(seed=0)
        market = SimulatedMarketplace(data.truth, seed=0)
        config = ExecutionConfig(grid_rows=10, grid_cols=2, sort_method="rate")
        engine = Qurk(platform=market, config=config)
        engine.register_table(data.actors)
        engine.register_table(data.scenes)
        engine.define(data.task_dsl)
        with adapt.forced(adaptive):
            return engine.execute(QUERY_NO_FILTER)

    static = run(False)
    adaptive = run(True)
    assert adaptive.hit_count < static.hit_count
    events = adaptive.adaptive_summary["events"]
    assert any("grid 10x2 -> 2x10" in event for event in events)
    text = adaptive.explain()
    assert "grid_swapped=1.000" in text


def test_square_grid_never_swaps():
    with adapt.forced(True):
        from repro.datasets.movie import movie_dataset
        from repro.experiments.end_to_end import QUERY_NO_FILTER
        from repro.core.engine import Qurk

        data = movie_dataset(seed=0)
        market = SimulatedMarketplace(data.truth, seed=0)
        engine = Qurk(
            platform=market,
            config=ExecutionConfig(grid_rows=5, grid_cols=5, sort_method="rate"),
        )
        engine.register_table(data.actors)
        engine.register_table(data.scenes)
        engine.define(data.task_dsl)
        result = engine.execute(QUERY_NO_FILTER)
    assert not any(
        "grid" in event for event in result.adaptive_summary["events"]
    )


# ---------------------------------------------------------------------------
# Re-plan determinism: 8-query concurrent session
# ---------------------------------------------------------------------------


def _build_session(seed: int = 0) -> EngineSession:
    data = misordered_dataset(seed=seed)
    market = SimulatedMarketplace(data.truth, seed=seed, pool=careful_pool(seed))
    session = EngineSession(platform=market)
    session.register_table(data.scenes)
    session.define(data.task_dsl + FILTER_DSL)
    for index in range(8):
        session.submit(MISORDERED_QUERY, label=f"misordered-{index}")
    return session


def _session_fingerprint(outcome) -> list[tuple]:
    fingerprint = []
    for handle in outcome.queries:
        assert handle.error is None, handle.error
        result = handle.result
        fingerprint.append(
            (
                handle.key,
                _rows(result),
                result.hit_count,
                result.assignment_count,
                round(result.total_cost, 6),
                result.adaptive_summary["replans"],
                result.adaptive_summary["rounds"],
                tuple(result.adaptive_summary["events"]),
            )
        )
    return fingerprint


@pytest.mark.parametrize("concurrent", [True, False])
def test_session_replan_determinism_8_queries(concurrent):
    """Two identical 8-query sessions replan identically, event for event,
    in both run modes — estimate state is per-query, so a query's
    re-planning never depends on sibling progress."""
    with adapt.forced(True):
        first = _build_session().run(concurrent=concurrent)
        second = _build_session().run(concurrent=concurrent)
    assert _session_fingerprint(first) == _session_fingerprint(second)
    # All eight queries are the same query: same rows everywhere.
    rows = {tuple(entry[1]) for entry in _session_fingerprint(first)}
    assert len(rows) == 1


def test_session_queries_carry_isolated_books():
    with adapt.forced(True):
        outcome = _build_session().run()
    states = [h.adapt_state for h in outcome.queries]
    assert all(state is not None for state in states)
    books = {id(state.book) for state in states}
    assert len(books) == len(states)  # one book per query, never shared


def test_session_adapt_off_runs_static():
    with adapt.forced(False):
        outcome = _build_session().run()
    for handle in outcome.queries:
        assert handle.error is None
        assert handle.result.adaptive_summary is None
