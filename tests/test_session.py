"""The multi-query session layer's contract (`repro.core.session`).

Four promises, each enforced here:

1. **Single-query fidelity.** A one-query session is bit-identical (rows,
   votes, cost ledger, clock) to a plain engine execution for a fixed
   seed; `tests/test_determinism_trace.py` additionally pins it against
   the golden trace.
2. **Concurrency is latency-only.** Per-query results are bit-identical
   between `run(concurrent=True)` and `run(concurrent=False)` — each
   query's marketplace draws come from its own client stream keyed by its
   own posting order, so interleaving changes completion times, never
   votes. (Guaranteed for queries sharing no HITs; with shared HITs the
   mode can change which sibling posts a shared unit first — see the
   session module docstring.)
3. **Cross-query dedup.** Identical units posted by different queries hit
   the shared task cache: the crowd is asked once, the borrower pays
   nothing, and the sharing is accounted per query and session-wide.
4. **Isolation and fairness.** One query exhausting its budget (or
   failing any other way) leaves its siblings' results and ledgers
   untouched, and round-robin admission lets a small query's HIT groups
   onto the marketplace before a big sibling finishes.
"""

from __future__ import annotations

import pytest

from repro.core.context import ExecutionConfig
from repro.core.engine import Qurk
from repro.core.session import EngineSession
from repro.crowd import GroundTruth, SimulatedMarketplace
from repro.datasets import movie_dataset, squares_dataset
from repro.errors import BudgetExceededError, ExecutionError, PlanError
from repro.experiments.end_to_end import QUERY_WITH_FILTER
from repro.hits.cache import TaskCache, TaskCacheView
from repro.joins.batching import JoinInterface


class ClientRecordingMarketplace(SimulatedMarketplace):
    """Simulated marketplace logging per-client submissions and harvests."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.submissions = []
        self.harvested = []

    def submit_hit_group(self, hits, group_id=None, post_time=None, client_id=None):
        ticket = super().submit_hit_group(
            hits, group_id=group_id, post_time=post_time, client_id=client_id
        )
        self.submissions.append((client_id, ticket))
        return ticket

    def harvest(self, ticket):
        assignments = super().harvest(ticket)
        self.harvested.extend(assignments)
        return assignments


def client_vote_stream(market: ClientRecordingMarketplace, client_id):
    """One client's (qid, worker, value) votes in its own posting order."""
    return [
        (qid, a.worker_id, repr(value))
        for cid, ticket in market.submissions
        if cid == client_id
        for a in ticket.assignments
        for qid, value in a.answers.items()
    ]


def optimized_config(**overrides) -> ExecutionConfig:
    base = dict(
        join_interface=JoinInterface.SMART,
        grid_rows=5,
        grid_cols=5,
        use_feature_filters=True,
        generative_batch_size=5,
        sort_method="rate",
        compare_group_size=5,
        rate_batch_size=5,
    )
    base.update(overrides)
    return ExecutionConfig(**base)


def movie_session(seed=0, **config_overrides):
    data = movie_dataset(seed=seed)
    market = ClientRecordingMarketplace(data.truth, seed=seed)
    session = EngineSession(
        platform=market, config=optimized_config(**config_overrides)
    )
    session.register_table(data.actors)
    session.register_table(data.scenes)
    session.define(data.task_dsl)
    return session, market


GROUPED_MOVIE_QUERY = (
    "SELECT a.name, s.img FROM actors a JOIN scenes s ON inScene(a.img, s.img) "
    "AND POSSIBLY numInScene(s.img) = 1 ORDER BY a.name, quality(s.img) DESC"
)


# ---------------------------------------------------------------------------
# Two-table disjoint workload: same shape, no shared HITs, one truth
# ---------------------------------------------------------------------------

KEEP_DSL = (
    'TASK keep{n}(field) TYPE Filter:\n'
    '    Prompt: "<img src=\'%s\'>", tuple[field]\n'
    '    YesText: "Keep"\n'
    '    NoText: "Drop"\n'
)


def disjoint_session(seed=7, n=10, budgets=(None, None), **config):
    """Two structurally similar queries over disjoint tasks and tables.

    q0 filters+sorts table ``sq0`` with task ``keep0``/``squareSorter``;
    q1 filters table ``sq1`` with task ``keep1``. No HIT is shared, so the
    queries are fully independent — the baseline for isolation tests.
    """
    from repro.relational.schema import Schema
    from repro.relational.table import Table

    data = squares_dataset(n=n, seed=seed)
    refs = [row["img"] for row in data.table.scan()]
    tables = []
    for index in range(2):
        table = Table(f"sq{index}", Schema.of("label text", "img url"))
        for row in data.table.scan():
            table.insert({"label": row["label"], "img": row["img"]})
        tables.append(table)
        data.truth.add_filter_task(f"keep{index}", {ref: True for ref in refs})
    market = ClientRecordingMarketplace(data.truth, seed=seed)
    session = EngineSession(platform=market, config=ExecutionConfig(**config))
    for table in tables:
        session.register_table(table)
    session.define(data.task_dsl)
    session.define(KEEP_DSL.format(n=0))
    session.define(KEEP_DSL.format(n=1))
    h0 = session.submit(
        "SELECT sq0.label FROM sq0 WHERE keep0(sq0) "
        "ORDER BY squareSorter(img)",
        config=session.config.with_overrides(max_budget=budgets[0]),
    )
    h1 = session.submit(
        "SELECT sq1.label FROM sq1 WHERE keep1(sq1)",
        config=session.config.with_overrides(max_budget=budgets[1]),
    )
    return session, market, h0, h1


# ---------------------------------------------------------------------------
# 1. Single-query fidelity
# ---------------------------------------------------------------------------


def test_single_query_session_is_bit_identical_to_plain_engine():
    data = movie_dataset(seed=0)

    engine_market = ClientRecordingMarketplace(data.truth, seed=0)
    engine = Qurk(platform=engine_market, config=optimized_config())
    engine.register_table(data.actors)
    engine.register_table(data.scenes)
    engine.define(data.task_dsl)
    engine_result = engine.execute(QUERY_WITH_FILTER)

    session, session_market = movie_session(seed=0)
    handle = session.submit(QUERY_WITH_FILTER)
    outcome = session.run()
    session_result = outcome[handle]

    assert session_result.as_dicts() == engine_result.as_dicts()
    assert session_result.hit_count == engine_result.hit_count
    assert session_result.assignment_count == engine_result.assignment_count
    assert session_result.total_cost == engine_result.total_cost
    assert session_market.clock_seconds == engine_market.clock_seconds
    # The single query rides the default client stream: identical votes.
    assert client_vote_stream(session_market, None) == client_vote_stream(
        engine_market, None
    )
    assert outcome.stats.queries == 1
    assert outcome.stats.cross_cache_hits == 0


# ---------------------------------------------------------------------------
# 2. Concurrency is latency-only
# ---------------------------------------------------------------------------


def run_two_query_movie_session(concurrent: bool):
    session, market = movie_session(seed=0)
    h0 = session.submit(QUERY_WITH_FILTER)
    h1 = session.submit(
        GROUPED_MOVIE_QUERY, config=optimized_config(sort_method="compare")
    )
    outcome = session.run(concurrent=concurrent)
    return outcome, market, h0, h1


def test_concurrent_results_bit_identical_to_serial():
    conc, conc_market, c0, c1 = run_two_query_movie_session(concurrent=True)
    ser, ser_market, s0, s1 = run_two_query_movie_session(concurrent=False)
    assert not conc.errors and not ser.errors
    for conc_handle, ser_handle, key in ((c0, s0, "q0"), (c1, s1, "q1")):
        conc_result, ser_result = conc[conc_handle], ser[ser_handle]
        assert conc_result.as_dicts() == ser_result.as_dicts(), key
        assert conc_result.hit_count == ser_result.hit_count, key
        assert conc_result.assignment_count == ser_result.assignment_count, key
        assert conc_result.total_cost == ser_result.total_cost, key
        # Durations are identical up to float noise: absolute post times
        # differ between the schedules (all-at-epoch vs back-to-back), so
        # the subtraction reassociates at different magnitudes.
        assert conc_result.elapsed_seconds == pytest.approx(
            ser_result.elapsed_seconds, rel=1e-9
        ), key
        assert client_vote_stream(conc_market, key) == client_vote_stream(
            ser_market, key
        ), key


def test_concurrent_session_overlaps_virtual_time():
    conc, _, _, _ = run_two_query_movie_session(concurrent=True)
    ser, _, _, _ = run_two_query_movie_session(concurrent=False)
    # The batch finishes when the slowest query does, not after the sum.
    assert conc.stats.makespan_seconds < ser.stats.makespan_seconds
    assert conc.stats.serial_latency_seconds == pytest.approx(
        ser.stats.makespan_seconds
    )
    assert conc.stats.overlap_speedup > 1.0
    assert ser.stats.overlap_speedup == pytest.approx(1.0)
    assert conc.stats.mode == "concurrent"
    assert ser.stats.mode == "serial"


def test_session_runs_reproduce_exactly():
    first, _, f0, f1 = run_two_query_movie_session(concurrent=True)
    second, _, g0, g1 = run_two_query_movie_session(concurrent=True)
    assert first[f0].as_dicts() == second[g0].as_dicts()
    assert first[f1].as_dicts() == second[g1].as_dicts()
    assert first.stats.makespan_seconds == second.stats.makespan_seconds
    assert first.stats.admission_log == second.stats.admission_log


# ---------------------------------------------------------------------------
# 3. Cross-query dedup
# ---------------------------------------------------------------------------


def test_identical_queries_share_hits_across_queries():
    session, market = movie_session(seed=0)
    h0 = session.submit(QUERY_WITH_FILTER)
    h1 = session.submit(QUERY_WITH_FILTER)
    outcome = session.run()
    first, second = outcome[h0], outcome[h1]

    # Same question, same combined answer — without a second posting.
    assert second.as_dicts() == first.as_dicts()
    assert second.total_cost == 0.0
    assert second.hit_count == 0
    assert h1.cross_cache_hits > 0
    assert h1.cross_assignments_shared > 0
    assert h0.cross_cache_hits == 0  # the first asker owns its entries
    assert outcome.stats.cross_assignments_shared == h1.cross_assignments_shared
    assert outcome.stats.cost_saved == pytest.approx(
        first.total_cost, abs=1e-9
    )  # q1 reused exactly what q0 paid for
    # Nothing was posted under q1's client id.
    assert all(cid != "q1" for cid, _ in market.submissions)
    assert outcome.stats.groups_posted["q1"] == 0
    assert "cross_query_cache_hits" in outcome.explain()


def test_cache_view_attributes_cross_hits():
    from repro.hits.hit import FilterPayload, FilterQuestion, HIT

    shared = TaskCache()
    owners: dict[str, str] = {}
    view_a = TaskCacheView(shared=shared, owner="a", owners=owners)
    view_b = TaskCacheView(shared=shared, owner="b", owners=owners)
    hit = HIT(hit_id="h1", payloads=(FilterPayload("t", (FilterQuestion("x"),)),))

    assert view_a.lookup(hit) is None
    view_a.store(hit, ())
    assert view_a.lookup(hit) == ()
    assert view_a.cross_hits == 0  # own entry
    assert view_b.lookup(hit) == ()
    assert view_b.cross_hits == 1  # borrowed from a
    assert shared.hits == 2 and shared.misses == 1


# ---------------------------------------------------------------------------
# 4. Isolation and fairness
# ---------------------------------------------------------------------------


def test_budget_abort_in_one_query_leaves_sibling_untouched():
    # At n=20, q0's filter pre-flight projects $1.50 and actually charges
    # $0.30; the sort pre-flight then projects $0.30 + $1.95. A $1.80 cap
    # funds the filter but aborts the sort — mid-query, money spent.
    session, _, h0, h1 = disjoint_session(n=20, budgets=(1.8, None))
    outcome = session.run()

    assert isinstance(h0.error, BudgetExceededError)
    assert "q0" in str(h0.error)
    assert h1.error is None and h1.result is not None
    assert outcome.errors.keys() == {"q0"}
    with pytest.raises(BudgetExceededError):
        outcome[h0]

    # The sibling's rows/ledger are identical to a run where q0 is funded.
    funded_session, _, _, funded_h1 = disjoint_session(n=20, budgets=(None, None))
    funded = funded_session.run()
    assert not funded.errors
    assert outcome[h1].as_dicts() == funded[funded_h1].as_dicts()
    assert outcome[h1].total_cost == funded[funded_h1].total_cost
    assert h1.ledger.breakdown() == funded_h1.ledger.breakdown()

    # The aborted query paid for (only) the filter work it had posted.
    assert h0.ledger.total_cost == pytest.approx(0.3)
    assert h0.result is None


def test_round_robin_admission_does_not_starve_small_query():
    """q1 (one filter phase) must reach the marketplace before the much
    larger q0 (filter + sort phases) has finished posting."""
    session, market, h0, h1 = disjoint_session()
    outcome = session.run()
    assert not outcome.errors
    keys = [key for key, _ in outcome.stats.admission_log]
    assert set(keys) == {"q0", "q1"}
    assert keys.index("q1") < len(keys) - 1 - keys[::-1].index("q0")
    assert all(count > 0 for count in outcome.stats.groups_posted.values())


def test_failed_plan_in_one_query_leaves_sibling_running():
    session, _, _, _ = disjoint_session()
    bad = session.submit("SELECT nope.x FROM does_not_exist nope")
    outcome = session.run()
    assert bad.error is not None
    assert outcome.errors.keys() == {"q2"}
    assert outcome[0].rows and outcome[1].rows


# ---------------------------------------------------------------------------
# Session ergonomics and fallbacks
# ---------------------------------------------------------------------------


def test_session_is_one_shot():
    session, _, _, _ = disjoint_session()
    session.run()
    with pytest.raises(ExecutionError):
        session.run()
    with pytest.raises(ExecutionError):
        session.submit("SELECT sq0.label FROM sq0")


def test_result_lookup_prefers_keys_over_labels():
    """A label that collides with another query's key must not shadow it."""
    session, _, h0, h1 = disjoint_session()
    h0.label = "q1"  # now h0's label equals h1's key
    outcome = session.run()
    assert outcome["q1"] is h1.result  # the key's owner wins
    assert outcome[h0] is h0.result


def test_empty_session_rejected():
    truth = GroundTruth()
    session = EngineSession(platform=SimulatedMarketplace(truth, seed=0))
    with pytest.raises(PlanError):
        session.run()


def test_engine_session_helper_shares_catalog():
    data = squares_dataset(n=6, seed=3)
    market = SimulatedMarketplace(data.truth, seed=3)
    engine = Qurk(platform=market)
    engine.register_table(data.table)
    engine.define(data.task_dsl)
    session = engine.session()
    handle = session.submit(
        "SELECT squares.label FROM squares ORDER BY squareSorter(img)"
    )
    outcome = session.run()
    assert len(outcome[handle].rows) == 6


def test_blocking_platform_falls_back_to_serial():
    """A platform without the multi-client API still serves sessions —
    serially, through its blocking post path."""

    class BlockingOnly:
        def __init__(self, inner):
            self.inner = inner

        def post_hit_group(self, hits, group_id=None):
            return self.inner.post_hit_group(hits, group_id=group_id)

        @property
        def clock_seconds(self):
            return self.inner.clock_seconds

    data = squares_dataset(n=6, seed=3)
    market = SimulatedMarketplace(data.truth, seed=3)
    session = EngineSession(platform=BlockingOnly(market))
    session.register_table(data.table)
    session.define(data.task_dsl)
    query = "SELECT squares.label FROM squares ORDER BY squareSorter(img)"
    h0, h1 = session.submit(query), session.submit(query)
    outcome = session.run()
    assert outcome.stats.mode == "serial"
    assert outcome[h0].rows == outcome[h1].rows
    assert outcome[h1].total_cost == 0.0  # dedup works without overlap too


# ---------------------------------------------------------------------------
# Cache-aware budget pre-flight
# ---------------------------------------------------------------------------


def test_cached_work_does_not_count_against_budget():
    """A query whose answers are already in the shared cache must not be
    rejected by a budget pre-flight that assumes it will re-post them."""
    data = squares_dataset(n=6, seed=3)
    query = "SELECT squares.label FROM squares ORDER BY squareSorter(img)"

    def run_pair(shared_cache):
        market = SimulatedMarketplace(data.truth, seed=3)
        session = EngineSession(platform=market, cache=shared_cache)
        session.register_table(data.table)
        session.define(data.task_dsl)
        first = session.submit(query)
        # Far below the query's real cost — only fundable via the cache.
        second = session.submit(
            query, config=session.config.with_overrides(max_budget=0.01)
        )
        return session.run(), first, second

    outcome, first, second = run_pair(TaskCache())
    assert first.error is None
    assert second.error is None, second.error
    assert outcome[second].total_cost == 0.0

    # Control: without the first query having warmed the cache, the same
    # budget genuinely cannot fund the query.
    market = SimulatedMarketplace(data.truth, seed=3)
    control = EngineSession(platform=market)
    control.register_table(data.table)
    control.define(data.task_dsl)
    broke = control.submit(
        query, config=control.config.with_overrides(max_budget=0.01)
    )
    control_outcome = control.run()
    assert isinstance(broke.error, BudgetExceededError)
    assert control_outcome.stats.failed == 1
