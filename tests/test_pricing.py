"""Tests for pricing and the cost ledger — anchored to the paper's numbers."""

import pytest

from repro.hits.pricing import CostLedger, PricingModel


def test_per_assignment_matches_paper():
    pricing = PricingModel()
    assert pricing.per_assignment == pytest.approx(0.015)


def test_naive_900_pair_join_costs_135_dollars():
    # §3.3.2: 900 comparisons × 10 assignments × $0.015 = $135.00
    pricing = PricingModel()
    assert pricing.cost(900 * 10) == pytest.approx(135.0)


def test_unfiltered_celebrity_join_costs_67_50():
    # §3.3.4: 900 comparisons × 5 assignments × $0.015 = $67.50
    assert PricingModel().cost(900 * 5) == pytest.approx(67.50)


def test_ledger_accumulates_by_label():
    ledger = CostLedger()
    ledger.record("join", hits=10, assignments=50)
    ledger.record("join", hits=5, assignments=25)
    ledger.record("sort", hits=2, assignments=10)
    assert ledger.total_hits == 17
    assert ledger.total_assignments == 85
    assert ledger.hits_for("join") == 15
    assert ledger.assignments_for("sort") == 10
    assert ledger.cost_for("sort") == pytest.approx(0.15)
    assert ledger.total_cost == pytest.approx(85 * 0.015)


def test_ledger_breakdown():
    ledger = CostLedger()
    ledger.record("a", hits=1, assignments=5)
    breakdown = ledger.breakdown()
    assert breakdown["a"] == (1, 5, pytest.approx(0.075))


def test_ledger_rejects_negative():
    with pytest.raises(ValueError):
        CostLedger().record("x", hits=-1, assignments=0)


def test_unknown_label_is_zero():
    ledger = CostLedger()
    assert ledger.hits_for("nothing") == 0
    assert ledger.cost_for("nothing") == 0.0
