"""Tests for text normalisation and table rendering helpers."""

import pytest

from repro.util.tables import format_table
from repro.util.text import lowercase_single_space, slugify


def test_lowercase_single_space_collapses_whitespace():
    assert lowercase_single_space("  Polar   BEAR\t\n cub ") == "polar bear cub"


def test_lowercase_single_space_idempotent():
    once = lowercase_single_space("A  B")
    assert lowercase_single_space(once) == once


def test_slugify():
    assert slugify("Great White Shark!") == "great-white-shark"
    assert slugify("  --hello--  ") == "hello"


def test_format_table_alignment():
    text = format_table(["name", "n"], [["a", 1], ["long-name", 22]])
    lines = text.splitlines()
    assert lines[0].startswith("name")
    assert "---" in lines[1]
    assert len(lines) == 4
    # All rows share the same width.
    assert len(set(len(line) for line in [lines[0], *lines[2:]])) == 1


def test_format_table_title():
    text = format_table(["x"], [[1]], title="Table 1")
    assert text.splitlines()[0] == "Table 1"


def test_format_table_arity_mismatch():
    with pytest.raises(ValueError):
        format_table(["a", "b"], [[1]])


def test_format_table_float_rendering():
    text = format_table(["v"], [[0.5], [1.25]])
    assert "0.5" in text and "1.25" in text
