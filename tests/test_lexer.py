"""Tests for the tokenizer."""

import pytest

from repro.errors import ParseError
from repro.language.lexer import TokenType, tokenize


def kinds(text):
    return [(t.type, t.value) for t in tokenize(text) if t.type is not TokenType.EOF]


def test_keywords_case_insensitive():
    tokens = kinds("select FROM WheRe")
    assert tokens == [
        (TokenType.KEYWORD, "SELECT"),
        (TokenType.KEYWORD, "FROM"),
        (TokenType.KEYWORD, "WHERE"),
    ]


def test_identifiers_preserve_case():
    assert kinds("samePerson") == [(TokenType.IDENT, "samePerson")]


def test_numbers():
    assert kinds("42 3.14") == [
        (TokenType.NUMBER, "42"),
        (TokenType.NUMBER, "3.14"),
    ]


def test_number_followed_by_dot_ident():
    # "1.x" must not absorb the dot.
    tokens = kinds("1.x")
    assert tokens[0] == (TokenType.NUMBER, "1")
    assert tokens[1] == (TokenType.SYMBOL, ".")


def test_strings_with_escapes():
    tokens = kinds(r'"a\"b" ' + r"'c\nd'")
    assert tokens[0] == (TokenType.STRING, 'a"b')
    assert tokens[1] == (TokenType.STRING, "c\nd")


def test_string_continuation_with_backslash_newline():
    tokens = kinds('"hello \\\nworld"')
    assert tokens == [(TokenType.STRING, "hello world")]


def test_unterminated_string():
    with pytest.raises(ParseError):
        tokenize('"open')


def test_unterminated_string_at_newline():
    with pytest.raises(ParseError):
        tokenize('"open\nmore"x')


def test_comments_stripped():
    tokens = kinds("a # comment here\nb -- another\nc")
    assert [v for _, v in tokens] == ["a", "b", "c"]


def test_two_char_symbols():
    tokens = kinds("a != b <= c >= d")
    symbols = [v for t, v in tokens if t is TokenType.SYMBOL]
    assert symbols == ["!=", "<=", ">="]


def test_positions_tracked():
    tokens = tokenize("ab\n cd")
    assert (tokens[0].line, tokens[0].column) == (1, 1)
    assert (tokens[1].line, tokens[1].column) == (2, 2)


def test_unknown_character():
    with pytest.raises(ParseError):
        tokenize("a @ b")


def test_eof_token():
    tokens = tokenize("")
    assert len(tokens) == 1
    assert tokens[0].type is TokenType.EOF


def test_token_helpers():
    token = tokenize("SELECT")[0]
    assert token.is_keyword("select")
    assert not token.is_symbol("(")
    assert str(tokenize("")[0]) == "<end of input>"
