"""Tests for the budget allocator and the adaptive batch tuner (§6)."""

import pytest

from repro.core.batch_tuner import BatchTuner, ProbeResult
from repro.core.budget import OperatorEstimate, allocate_budget, plan_preflight
from repro.errors import BatchTuningError, BudgetExceededError
from repro.hits.pricing import PricingModel


def estimates():
    return [
        OperatorEstimate("filter", units=100, requested_assignments=5),
        OperatorEstimate("join", units=400, requested_assignments=5),
    ]


def test_full_funding_when_budget_ample():
    # Full cost = 500 units × 5 × $0.015 = $37.50.
    plan = allocate_budget(estimates(), budget=50.0)
    assert plan.for_operator("filter").assignments == 5
    assert plan.for_operator("join").assignments == 5
    assert plan.total_cost == pytest.approx(37.5)


def test_partial_funding_reduces_replication():
    plan = allocate_budget(estimates(), budget=20.0)
    assert plan.total_cost <= 20.0
    # Minimum one assignment everywhere.
    assert all(a.assignments >= 1 for a in plan.allocations)
    # Cheaper operator gets topped up first.
    assert plan.for_operator("filter").assignments >= plan.for_operator("join").assignments


def test_data_trimming_when_minimum_unaffordable():
    # Minimum (1 assignment) costs $7.50; give less.
    plan = allocate_budget(estimates(), budget=5.0)
    assert plan.total_cost <= 5.0
    assert any(a.data_fraction < 1.0 for a in plan.allocations)
    # The bigger operator is trimmed first.
    assert plan.for_operator("join").data_fraction <= plan.for_operator("filter").data_fraction


def test_hopeless_budget_raises():
    with pytest.raises(BudgetExceededError):
        allocate_budget(estimates(), budget=0.10)


def test_empty_estimates():
    assert allocate_budget([], budget=1.0).total_cost == 0.0


def test_allocation_cost_accounts_fraction():
    from repro.core.budget import Allocation

    allocation = Allocation("x", units=100, assignments=2, data_fraction=0.5)
    assert allocation.cost(PricingModel()) == pytest.approx(50 * 2 * 0.015)


def test_effective_units_floor_rule():
    """One consistent rounding rule: floor, never banker's rounding.

    ``round`` rounds half to even, so ``round(3.5) == 4`` but
    ``round(2.5) == 2`` — the dollars charged could disagree by one
    unit-price with the trimming loop's own arithmetic at .5 products.
    """
    from repro.core.budget import Allocation, effective_unit_count

    assert effective_unit_count(7, 0.5) == 3  # round() would bill 4
    assert effective_unit_count(5, 0.5) == 2
    assert effective_unit_count(10, 0.25) == 2
    assert effective_unit_count(10, 0.35) == 3  # round() would bill 4
    # Exact products survive binary-float error (20 * 0.85 < 17.0 in FP).
    assert effective_unit_count(20, 0.85) == 17
    assert effective_unit_count(100, 1.0) == 100
    assert effective_unit_count(0, 0.5) == 0

    allocation = Allocation("x", units=7, assignments=1, data_fraction=0.5)
    assert allocation.effective_units == 3
    assert allocation.cost(PricingModel()) == pytest.approx(3 * 0.015)


def test_trimmed_plan_cost_consistent_with_floor_rule():
    """The trimming loop and the charged dollars use the same arithmetic:
    every trimmed plan's total is exactly the floor-rule sum, and within
    budget."""
    from repro.core.budget import effective_unit_count

    for budget in (5.0, 4.1, 3.3, 2.6):
        plan = allocate_budget(estimates(), budget=budget)
        recomputed = sum(
            plan.pricing.cost(
                effective_unit_count(a.units, a.data_fraction) * a.assignments
            )
            for a in plan.allocations
        )
        assert plan.total_cost == pytest.approx(recomputed, abs=1e-12)
        assert plan.total_cost <= budget


def test_trimming_fractions_are_exact_multiples():
    """Float-drift regression: the trimming loop now counts integer steps,
    so every data fraction is an *exact* multiple of 0.05 and the 10%
    floor is reached exactly — repeated ``fraction -= 0.05`` accumulated
    binary error and fired the floor check a step early or late."""
    # Tiny budget: both operators must trim all the way to the floor
    # before the allocator gives up — or stop exactly at budget.
    plan = allocate_budget(estimates(), budget=0.80)
    fractions = sorted(a.data_fraction for a in plan.allocations)
    for fraction in fractions:
        steps = fraction * 20  # exact when fraction is a multiple of 0.05
        assert steps == int(steps), f"drifted fraction {fraction!r}"
        assert fraction >= 0.1
    # The floor itself is representable and reached exactly, not 0.0999…
    assert fractions[0] == 0.1


def test_trimming_floor_boundary_exact():
    """A budget that only fits with every operator exactly at the 10%
    floor must allocate (old drift made the floor check refuse the final
    step); one cent less must raise."""
    ests = [OperatorEstimate("only", units=200, requested_assignments=1)]
    floor_cost = PricingModel().cost(20)  # 200 × 0.1 = 20 units × 1 asg
    plan = allocate_budget(ests, budget=floor_cost)
    assert plan.allocations[0].data_fraction == 0.1
    assert plan.total_cost <= floor_cost
    with pytest.raises(BudgetExceededError):
        allocate_budget(ests, budget=floor_cost - 0.01)


def test_plan_preflight_reports_without_raising():
    report = plan_preflight(estimates(), budget=50.0)
    assert report.fits and report.fits_trimmed
    assert report.projected_cost == pytest.approx(37.5)
    hopeless = plan_preflight(estimates(), budget=0.10)
    assert not hopeless.fits and not hopeless.fits_trimmed
    cached = plan_preflight(estimates(), budget=50.0, cached_assignments=1000)
    assert cached.projected_cost == pytest.approx(37.5 - 15.0)
    assert cached.as_signals()["fits"] == 1.0


def test_unknown_operator_lookup():
    plan = allocate_budget(estimates(), budget=50.0)
    with pytest.raises(KeyError):
        plan.for_operator("nope")


# ---------------------------------------------------------------------------
# Batch tuner
# ---------------------------------------------------------------------------


def refusal_wall_probe(wall: int):
    def probe(batch: int) -> ProbeResult:
        return ProbeResult(
            batch_size=batch,
            completed=batch < wall,
            accuracy=1.0 - 0.01 * batch,
            latency_seconds=60.0 * batch,
        )

    return probe


def test_tuner_finds_largest_acceptable_batch():
    tuner = BatchTuner(min_batch=1, max_batch=32)
    best = tuner.tune(refusal_wall_probe(wall=11))
    assert best == 10
    assert tuner.refusal_wall() >= 11


def test_tuner_respects_accuracy_floor():
    def probe(batch: int) -> ProbeResult:
        return ProbeResult(batch, completed=True, accuracy=1.0 - 0.05 * batch)

    tuner = BatchTuner(min_batch=1, max_batch=32, accuracy_floor=0.8)
    assert tuner.tune(probe) <= 4


def test_tuner_respects_latency_ceiling():
    def probe(batch: int) -> ProbeResult:
        return ProbeResult(batch, completed=True, latency_seconds=batch * 1000.0)

    tuner = BatchTuner(min_batch=1, max_batch=32, latency_ceiling_seconds=5000.0)
    assert tuner.tune(probe) <= 5


def test_tuner_everything_fails_raises():
    """The old behaviour silently returned ``min_batch`` when even the
    minimum probe failed — a lying int callers could not distinguish from
    "the minimum works". The failure now surfaces explicitly, carrying the
    failing probe."""
    tuner = BatchTuner(min_batch=1, max_batch=8)
    with pytest.raises(BatchTuningError) as excinfo:
        tuner.tune(refusal_wall_probe(wall=0))
    assert excinfo.value.probe is not None
    assert excinfo.value.probe.batch_size == 1
    assert not excinfo.value.probe.completed
    # Exactly one probe was spent discovering the failure: min first.
    assert [r.batch_size for r in tuner.history] == [1]


def test_tuner_probes_minimum_first():
    tuner = BatchTuner(min_batch=2, max_batch=16)
    tuner.tune(refusal_wall_probe(wall=9))
    assert tuner.history[0].batch_size == 2


def test_tuner_min_equals_max():
    tuner = BatchTuner(min_batch=3, max_batch=3)
    assert tuner.tune(refusal_wall_probe(wall=10)) == 3
    with pytest.raises(BatchTuningError):
        BatchTuner(min_batch=3, max_batch=3).tune(refusal_wall_probe(wall=2))


def test_tuner_history_recorded():
    tuner = BatchTuner(min_batch=1, max_batch=16)
    tuner.tune(refusal_wall_probe(wall=9))
    assert len(tuner.history) >= 3


def test_tuner_invalid_bounds():
    with pytest.raises(ValueError):
        BatchTuner(min_batch=5, max_batch=2).tune(refusal_wall_probe(3))


def test_tuner_against_simulated_marketplace(simple_rank_truth):
    """End-to-end: the tuner discovers the compare-group refusal wall."""
    from repro.crowd import SimulatedMarketplace
    from repro.hits import TaskManager
    from repro.hits.hit import CompareGroup, ComparePayload

    truth = simple_rank_truth

    def probe(group_size: int) -> ProbeResult:
        market = SimulatedMarketplace(truth, seed=group_size)
        manager = TaskManager(market)
        items = tuple(f"img://item/{i}" for i in range(min(group_size, 10)))
        if len(items) < 2:
            return ProbeResult(group_size, completed=True)
        payload = ComparePayload("sizeRank", (CompareGroup(items),))
        outcome = manager.run_units([[payload]], assignments=3, label="probe", strict=False)
        return ProbeResult(
            group_size,
            completed=not outcome.uncompleted_hit_ids,
            latency_seconds=outcome.elapsed_seconds,
        )

    tuner = BatchTuner(min_batch=2, max_batch=10, latency_ceiling_seconds=1e9)
    best = tuner.tune(probe)
    assert 2 <= best <= 10
