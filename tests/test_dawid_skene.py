"""Tests for the Dawid-Skene EM estimator."""

import pytest

from repro.combine.dawid_skene import dawid_skene
from repro.errors import CombinerError
from repro.hits.hit import Vote
from repro.util.rng import RandomSource


def synthetic_corpus(
    n_questions: int = 60,
    good_workers: int = 6,
    bad_workers: int = 2,
    good_accuracy: float = 0.95,
    seed: int = 0,
):
    """Binary questions with known truth, good workers and coin-flippers."""
    rng = RandomSource(seed)
    truths = {f"q{i}": i % 2 == 0 for i in range(n_questions)}
    corpus: dict[str, list[Vote]] = {qid: [] for qid in truths}
    for qid, truth in truths.items():
        for g in range(good_workers):
            value = truth if rng.chance(good_accuracy) else not truth
            corpus[qid].append(Vote(f"good{g}", value))
        for b in range(bad_workers):
            corpus[qid].append(Vote(f"bad{b}", rng.chance(0.5)))
    return corpus, truths


def test_recovers_truth_on_clean_corpus():
    corpus, truths = synthetic_corpus()
    result = dawid_skene(corpus, iterations=5)
    labels = result.hard_labels()
    accuracy = sum(labels[qid] == truth for qid, truth in truths.items()) / len(truths)
    assert accuracy >= 0.95


def test_worker_accuracy_estimates_separate_good_from_bad():
    corpus, _ = synthetic_corpus()
    result = dawid_skene(corpus, iterations=5)
    good = result.worker_accuracy_estimate("good0")
    bad = result.worker_accuracy_estimate("bad0")
    assert good > 0.85
    assert bad < 0.75


def test_posteriors_are_distributions():
    corpus, _ = synthetic_corpus(n_questions=20)
    result = dawid_skene(corpus)
    for posterior in result.posteriors.values():
        assert sum(posterior.values()) == pytest.approx(1.0)
        assert all(0.0 <= p <= 1.0 for p in posterior.values())


def test_priors_sum_to_one():
    corpus, _ = synthetic_corpus(n_questions=20)
    result = dawid_skene(corpus)
    assert sum(result.priors.values()) == pytest.approx(1.0)


def test_handles_bias_better_than_majority():
    """Workers with a systematic 'no' bias: EM corrects, majority cannot."""
    rng = RandomSource(3)
    corpus: dict[str, list[Vote]] = {}
    truths = {}
    for i in range(80):
        qid = f"q{i}"
        truth = i % 4 == 0  # 25% positives
        truths[qid] = truth
        votes = []
        # Two accurate workers.
        for g in range(2):
            votes.append(Vote(f"good{g}", truth if rng.chance(0.97) else not truth))
        # Three workers who say no to everything.
        for b in range(3):
            votes.append(Vote(f"naysayer{b}", False))
        corpus[qid] = votes
    result = dawid_skene(corpus, iterations=10)
    labels = result.hard_labels()
    em_accuracy = sum(labels[q] == t for q, t in truths.items()) / len(truths)
    majority_accuracy = sum((False) == t for t in truths.values()) / len(truths)
    assert em_accuracy > majority_accuracy


def test_multiclass_labels():
    rng = RandomSource(4)
    options = ["red", "green", "blue"]
    corpus = {}
    truths = {}
    for i in range(45):
        truth = options[i % 3]
        truths[f"q{i}"] = truth
        votes = []
        for w in range(5):
            value = truth if rng.chance(0.85) else rng.choice(options)
            votes.append(Vote(f"w{w}", value))
        corpus[f"q{i}"] = votes
    result = dawid_skene(corpus)
    labels = result.hard_labels()
    accuracy = sum(labels[q] == t for q, t in truths.items()) / len(truths)
    assert accuracy > 0.9
    assert sorted(result.labels) == sorted(options)


def test_empty_corpus_rejected():
    with pytest.raises(CombinerError):
        dawid_skene({})


def test_question_with_no_votes_rejected():
    with pytest.raises(CombinerError):
        dawid_skene({"q": []})


def test_iterations_validated():
    corpus, _ = synthetic_corpus(n_questions=5)
    with pytest.raises(CombinerError):
        dawid_skene(corpus, iterations=0)


def test_single_worker_corpus_does_not_crash():
    corpus = {f"q{i}": [Vote("solo", i % 2 == 0)] for i in range(10)}
    result = dawid_skene(corpus)
    assert len(result.hard_labels()) == 10
