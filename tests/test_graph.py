"""Tests for the comparison digraph and cycle breaking."""

import pytest

from repro.errors import QurkError
from repro.hits.hit import Vote, compare_qid
from repro.sorting.graph import (
    ComparisonGraph,
    break_cycles,
    graph_order,
    strongly_connected_components,
    topological_order,
)


def test_add_edge_and_successors():
    graph = ComparisonGraph(["a", "b"])
    graph.add_edge("b", "a", 3)
    assert graph.successors("b") == ["a"]
    assert graph.edges[("b", "a")] == 3


def test_self_edge_rejected():
    with pytest.raises(QurkError):
        ComparisonGraph(["a"]).add_edge("a", "a")


def test_scc_on_dag_is_singletons():
    graph = ComparisonGraph(["a", "b", "c"])
    graph.add_edge("c", "b")
    graph.add_edge("b", "a")
    components = strongly_connected_components(graph)
    assert sorted(len(c) for c in components) == [1, 1, 1]


def test_scc_detects_cycle():
    graph = ComparisonGraph(["a", "b", "c", "d"])
    graph.add_edge("a", "b")
    graph.add_edge("b", "c")
    graph.add_edge("c", "a")
    graph.add_edge("d", "a")
    components = strongly_connected_components(graph)
    sizes = sorted(len(c) for c in components)
    assert sizes == [1, 3]


def test_break_cycles_removes_weakest_edge():
    graph = ComparisonGraph(["a", "b", "c"])
    graph.add_edge("a", "b", 5)
    graph.add_edge("b", "c", 4)
    graph.add_edge("c", "a", 1)  # weakest link in the cycle
    removed = break_cycles(graph)
    assert removed == [("c", "a")]
    assert topological_order(graph) == ["c", "b", "a"]


def test_topological_order_least_to_most():
    graph = ComparisonGraph(["a", "b", "c"])
    graph.add_edge("c", "b")  # c beats b
    graph.add_edge("b", "a")
    graph.add_edge("c", "a")
    assert topological_order(graph) == ["a", "b", "c"]


def test_topological_order_rejects_cycles():
    graph = ComparisonGraph(["a", "b"])
    graph.add_edge("a", "b")
    graph.add_edge("b", "a")
    with pytest.raises(QurkError):
        topological_order(graph)


def test_from_votes_uses_margins():
    corpus = {
        compare_qid("t", "a", "b"): [Vote("w1", "b"), Vote("w2", "b"), Vote("w3", "a")],
    }
    graph = ComparisonGraph.from_votes(["a", "b"], corpus)
    assert graph.edges[("b", "a")] == 1  # margin 2-1


def test_from_votes_tie_produces_no_edge():
    corpus = {compare_qid("t", "a", "b"): [Vote("w1", "a"), Vote("w2", "b")]}
    graph = ComparisonGraph.from_votes(["a", "b"], corpus)
    assert graph.edges == {}


def test_graph_order_end_to_end():
    items = ["a", "b", "c", "d"]
    corpus = {}
    for i in range(4):
        for j in range(i + 1, 4):
            winner = items[j]
            corpus[compare_qid("t", items[i], items[j])] = [
                Vote(f"w{k}", winner) for k in range(5)
            ]
    # Inject a cycle with a weak contradictory edge.
    corpus[compare_qid("t", "c", "d")] = [
        Vote("w0", "c"), Vote("w1", "c"), Vote("w2", "d")
    ]
    order = graph_order(items, corpus)
    assert order.index("a") == 0 and order.index("b") == 1


def test_big_random_tournament_breaks_all_cycles():
    from repro.util.rng import RandomSource

    rng = RandomSource(7)
    items = [f"i{k}" for k in range(25)]
    graph = ComparisonGraph(items)
    for i in range(25):
        for j in range(i + 1, 25):
            if rng.chance(0.5):
                graph.add_edge(items[i], items[j], rng.randint(1, 5))
            else:
                graph.add_edge(items[j], items[i], rng.randint(1, 5))
    break_cycles(graph)
    order = topological_order(graph)
    assert sorted(order) == sorted(items)
