"""Tests for top-K and MAX/MIN tournaments."""

import pytest

from repro.errors import QurkError
from repro.sorting.topk import pick_extreme_order, top_k


def test_top_k_most():
    order = ["a", "b", "c", "d"]  # least → most
    assert top_k(order, 2, most=True) == ["d", "c"]


def test_top_k_least():
    assert top_k(["a", "b", "c"], 2, most=False) == ["a", "b"]


def test_top_k_validation():
    with pytest.raises(QurkError):
        top_k(["a"], 0)
    with pytest.raises(QurkError):
        top_k(["a"], 2)


def test_tournament_finds_max():
    items = [f"i{k:02d}" for k in range(23)]
    winner, hits = pick_extreme_order(items, pick=max, batch_size=5)
    assert winner == "i22"
    assert hits >= 5


def test_tournament_hit_count_linear():
    items = [f"i{k:03d}" for k in range(100)]
    _, hits = pick_extreme_order(items, pick=max, batch_size=5)
    # ≈ N/(b−1) = 25, far below the 4950 pairwise comparisons.
    assert hits <= 30


def test_tournament_single_item():
    winner, hits = pick_extreme_order(["only"], pick=max)
    assert winner == "only" and hits == 0


def test_tournament_validation():
    with pytest.raises(QurkError):
        pick_extreme_order([], pick=max)
    with pytest.raises(QurkError):
        pick_extreme_order(["a", "b"], pick=max, batch_size=1)


def test_tournament_rejects_foreign_winner():
    with pytest.raises(QurkError):
        pick_extreme_order(["a", "b"], pick=lambda batch: "zzz", batch_size=2)
