"""The persistent answer store: round-trip fidelity, crash/corruption
recovery, TTL + eviction determinism, and engine/session wiring.

The durability contract under test: the store must *never* crash the
engine. A truncated, garbage, or wrong-schema-version DB file is
quarantined and rebuilt empty with a logged warning; a connection that
dies mid-flight degrades the store to memory-only mode; and in every case
queries keep running — at worst they re-buy answers the broken file lost.
"""

from __future__ import annotations

import json
import logging
import os
import shutil
import sqlite3
from pathlib import Path

import pytest

from repro.core.context import ExecutionConfig
from repro.core.engine import Qurk
from repro.core.session import EngineSession
from repro.crowd import SimulatedMarketplace
from repro.datasets import animals_dataset
from repro.errors import PlanError
from repro.hits.cache import TaskCache, payload_cache_key
from repro.hits.hit import HIT, Assignment, FilterPayload, FilterQuestion
from repro.hits.manager import TaskManager
from repro.hits.store import (
    STORE_SCHEMA_VERSION,
    PersistentAnswerStore,
    StoreConfig,
    combiner_fingerprint,
    open_store,
)
from repro.relational.expressions import UNKNOWN
from repro.util import store as store_toggle


def make_hit(item: str = "a", assignments: int = 5) -> HIT:
    return HIT(
        hit_id=f"h-{item}",
        payloads=(FilterPayload("t", (FilterQuestion(item),)),),
        assignments_requested=assignments,
    )


def make_assignment(hit: HIT, worker: str = "w", **answers) -> Assignment:
    return Assignment(
        assignment_id=f"{hit.hit_id}:{worker}",
        hit_id=hit.hit_id,
        worker_id=worker,
        answers=answers or {"q": True},
        accept_time=12.25,
        submit_time=19.75,
    )


@pytest.fixture
def db_path(tmp_path) -> Path:
    return tmp_path / "answers.db"


# ---------------------------------------------------------------------------
# TaskCache parity and round-trip fidelity
# ---------------------------------------------------------------------------


def test_miss_store_hit_and_counters(db_path):
    store = PersistentAnswerStore(db_path)
    hit = make_hit()
    assert store.lookup(hit) is None
    store.store(hit, [make_assignment(hit)])
    cached = store.lookup(hit)
    assert cached is not None and len(cached) == 1
    assert store.hits == 1 and store.misses == 1
    # In-process traffic is the memory layer's win, not persistence's.
    assert store.persistent_hits == 0
    assert len(store) == 1
    store.close()


def test_repeat_lookup_returns_same_tuple(db_path):
    store = PersistentAnswerStore(db_path)
    hit = make_hit()
    store.store(hit, (make_assignment(hit),))
    first = store.lookup(hit)
    assert isinstance(first, tuple)
    assert store.lookup(hit) is first  # immutability contract, like TaskCache
    store.close()


def test_restart_round_trips_assignments_exactly(db_path):
    """A fresh process (fresh store, same file) gets bit-identical
    Assignment NamedTuples back: floats, bool-vs-int distinction, strings,
    and the UNKNOWN sentinel (as the same singleton)."""
    hit = make_hit()
    original = (
        make_assignment(
            hit,
            "w1",
            **{
                "t:filter:a": True,
                "count": 3,
                "score": 0.1 + 0.2,  # not exactly representable: repr-exact
                "label": "weasel",
                "feature": UNKNOWN,
            },
        ),
        make_assignment(hit, "w2", **{"t:filter:a": False}),
    )
    store = PersistentAnswerStore(db_path)
    store.store(hit, original)
    store.close()

    reopened = PersistentAnswerStore(db_path)
    restored = reopened.lookup(make_hit())
    assert restored == original
    assert all(isinstance(a, Assignment) for a in restored)
    answers = restored[0].answers
    assert answers["t:filter:a"] is True  # bool, not 1
    assert answers["count"] == 3 and not isinstance(answers["count"], bool)
    assert answers["score"] == 0.1 + 0.2
    assert answers["feature"] is UNKNOWN  # singleton identity restored
    assert reopened.persistent_hits == 1
    assert reopened.assignments_reused == 2
    reopened.close()


def test_contains_key_matches_lookup_would_hit(db_path):
    clock = [1000.0]
    store = PersistentAnswerStore(
        db_path, ttl_seconds=50.0, clock=lambda: clock[0]
    )
    hit = make_hit()
    assert not store.contains_key(hit.cache_key)
    store.store(hit, [make_assignment(hit)])
    assert store.contains_key(hit.cache_key)
    # contains_key is accounting-free
    assert store.hits == 0 and store.misses == 0
    clock[0] += 100.0  # past TTL: peek and lookup must agree it's gone
    assert not store.contains_key(hit.cache_key)
    assert store.lookup(hit) is None
    store.close()


def test_len_and_clear(db_path):
    store = PersistentAnswerStore(db_path)
    for item in ("a", "b", "c"):
        hit = make_hit(item)
        store.store(hit, [make_assignment(hit)])
    assert len(store) == 3
    store.clear()
    assert len(store) == 0
    assert store.lookup(make_hit("a")) is None
    store.close()
    # clear() is durable, not just the memory layer
    reopened = PersistentAnswerStore(db_path)
    assert len(reopened) == 0
    reopened.close()


def test_fingerprint_isolates_combiner_semantics(db_path):
    """Rows written under one combiner fingerprint are invisible to a
    store opened under another — stale semantics never leak — and come
    back when the original fingerprint returns."""
    hit = make_hit()
    store = PersistentAnswerStore(
        db_path, fingerprint=combiner_fingerprint("majority")
    )
    store.store(hit, [make_assignment(hit)])
    store.close()

    other = PersistentAnswerStore(
        db_path, fingerprint=combiner_fingerprint("bayes")
    )
    assert other.lookup(make_hit()) is None
    other.close()

    back = PersistentAnswerStore(
        db_path, fingerprint=combiner_fingerprint("majority")
    )
    assert back.lookup(make_hit()) is not None
    back.close()


def test_open_store_specs(tmp_path):
    path = tmp_path / "spec.db"
    from_path = open_store(str(path))
    assert isinstance(from_path, PersistentAnswerStore)
    assert open_store(from_path) is from_path
    from_path.close()
    config = StoreConfig(
        path=path, ttl_seconds=60.0, max_rows=10, combiner="majority"
    )
    from_config = open_store(config)
    assert from_config.ttl_seconds == 60.0 and from_config.max_rows == 10
    assert from_config.fingerprint == combiner_fingerprint("majority")
    from_config.close()
    with pytest.raises(TypeError):
        open_store(42)


def test_invalid_knobs_rejected(db_path):
    with pytest.raises(ValueError):
        PersistentAnswerStore(db_path, ttl_seconds=0)
    with pytest.raises(ValueError):
        PersistentAnswerStore(db_path, max_rows=0)
    with pytest.raises(ValueError):
        PersistentAnswerStore(db_path, max_bytes=0)


# ---------------------------------------------------------------------------
# Crash / corruption injection
# ---------------------------------------------------------------------------


def _populated(db_path) -> None:
    store = PersistentAnswerStore(db_path)
    for item in ("a", "b", "c"):
        hit = make_hit(item)
        store.store(hit, [make_assignment(hit)])
    store.close()


def test_garbage_file_quarantined_and_rebuilt(db_path, caplog):
    db_path.write_bytes(b"definitely not a sqlite database " * 64)
    with caplog.at_level(logging.WARNING, logger="repro.hits.store"):
        store = PersistentAnswerStore(db_path)
    assert store.rebuilds == 1 and not store.degraded
    assert any("quarantined" in rec.message for rec in caplog.records)
    quarantined = list(db_path.parent.glob("answers.db.corrupt-*"))
    assert len(quarantined) == 1
    # The rebuilt store is fully functional.
    hit = make_hit()
    assert store.lookup(hit) is None
    store.store(hit, [make_assignment(hit)])
    assert store.lookup(hit) is not None
    store.close()


def test_truncated_db_recovers_without_raising(db_path):
    _populated(db_path)
    blob = db_path.read_bytes()
    db_path.write_bytes(blob[: len(blob) // 2])
    store = PersistentAnswerStore(db_path)  # must not raise
    assert store.rebuilds in (0, 1)  # partial recovery or full rebuild
    hit = make_hit("fresh")
    store.store(hit, [make_assignment(hit)])
    assert store.lookup(hit) is not None
    store.close()


def test_kill_mid_write_at_any_byte_boundary(db_path, tmp_path):
    """Simulate a crash at arbitrary points of a file write: every prefix
    of a valid DB must open to a working empty-or-partial store."""
    _populated(db_path)
    blob = db_path.read_bytes()
    for fraction in (0.01, 0.1, 0.5, 0.9, 0.99):
        target = tmp_path / f"cut-{fraction}.db"
        target.write_bytes(blob[: max(1, int(len(blob) * fraction))])
        store = PersistentAnswerStore(target)  # must never raise
        hit = make_hit("post-crash")
        store.store(hit, [make_assignment(hit)])
        assert store.lookup(hit) is not None
        store.close()


def test_interrupted_connection_degrades_to_memory_only(db_path, caplog):
    """A connection that dies mid-flight (the process's handle is yanked)
    must degrade the store to memory-only mode, not raise into the engine."""
    store = PersistentAnswerStore(db_path)
    hit = make_hit()
    store.store(hit, [make_assignment(hit)])
    store._conn.close()  # simulate the interruption behind the store's back
    with caplog.at_level(logging.WARNING, logger="repro.hits.store"):
        other = make_hit("other")
        store.store(other, [make_assignment(other)])  # no exception
        assert store.lookup(other) is not None  # memory layer still serves
    assert store.degraded
    assert any("memory-only" in rec.message for rec in caplog.records)
    # Hits already in memory keep working; cold keys are honest misses.
    assert store.lookup(hit) is not None
    assert store.lookup(make_hit("never-seen")) is None


def test_wrong_schema_version_quarantined_and_rebuilt(db_path, caplog):
    _populated(db_path)
    conn = sqlite3.connect(db_path)
    conn.execute(
        "UPDATE meta SET value = ? WHERE key = 'schema_version'",
        (str(STORE_SCHEMA_VERSION + 41),),
    )
    conn.commit()
    conn.close()
    with caplog.at_level(logging.WARNING, logger="repro.hits.store"):
        store = PersistentAnswerStore(db_path)
    assert store.rebuilds == 1
    assert store.lookup(make_hit("a")) is None  # old rows not trusted
    store.store(make_hit("a"), [make_assignment(make_hit("a"))])
    assert store.lookup(make_hit("a")) is not None
    store.close()


def test_undecodable_row_is_dropped_as_miss(db_path):
    """A structurally valid DB holding an unreadable blob (partial write
    that still checksums, manual edit) yields a miss, not a crash."""
    _populated(db_path)
    hit = make_hit("a")
    conn = sqlite3.connect(db_path)
    conn.execute(
        "UPDATE answers SET assignments = ? WHERE cache_key = ?",
        ("{not valid json", hit.cache_key),
    )
    conn.commit()
    conn.close()
    store = PersistentAnswerStore(db_path)
    assert store.lookup(make_hit("a")) is None
    assert store.lookup(make_hit("b")) is not None  # siblings unaffected
    store.close()


def test_unserializable_answer_stays_memory_only(db_path, caplog):
    """An answer value JSON can't carry keeps that entry in-process
    (TaskCache behavior) instead of failing the store."""
    store = PersistentAnswerStore(db_path)
    hit = make_hit()
    weird = make_assignment(hit, answers_placeholder=True)._replace(
        answers={"q": object()}
    )
    with caplog.at_level(logging.WARNING, logger="repro.hits.store"):
        store.store(hit, [weird])
    assert store.lookup(hit) is not None  # served from memory
    assert not store.degraded
    store.close()
    reopened = PersistentAnswerStore(db_path)
    assert reopened.lookup(make_hit()) is None  # never reached disk
    reopened.close()


# ---------------------------------------------------------------------------
# TTL and eviction determinism
# ---------------------------------------------------------------------------


def test_ttl_sweep_on_open(db_path):
    clock = [0.0]
    store = PersistentAnswerStore(
        db_path, ttl_seconds=100.0, clock=lambda: clock[0]
    )
    hit = make_hit()
    store.store(hit, [make_assignment(hit)])
    store.close()
    clock[0] = 500.0
    reopened = PersistentAnswerStore(
        db_path, ttl_seconds=100.0, clock=lambda: clock[0]
    )
    assert reopened.evictions_ttl == 1
    assert reopened.lookup(make_hit()) is None
    reopened.close()


def test_ttl_expires_memory_layer_too(db_path):
    clock = [0.0]
    store = PersistentAnswerStore(
        db_path, ttl_seconds=10.0, clock=lambda: clock[0]
    )
    hit = make_hit()
    store.store(hit, [make_assignment(hit)])
    assert store.lookup(hit) is not None  # in-memory, fresh
    clock[0] = 11.0
    assert store.lookup(hit) is None  # expired even without a restart
    store.close()


def _eviction_survivors(path, items, clock_step=1.0) -> set[str]:
    clock = [100.0]
    store = PersistentAnswerStore(
        path, max_rows=3, clock=lambda: clock[0]
    )
    for item in items:
        hit = make_hit(item)
        store.store(hit, [make_assignment(hit)])
        clock[0] += clock_step
    survivors = {
        item for item in items if store.contains_key(make_hit(item).cache_key)
    }
    store.close()
    return survivors


def test_eviction_budget_is_deterministic(tmp_path):
    """Same store sequence, same clock → same survivors, twice over."""
    items = ["e", "b", "a", "d", "c", "f"]
    first = _eviction_survivors(tmp_path / "one.db", items)
    second = _eviction_survivors(tmp_path / "two.db", items)
    assert first == second
    assert first == {"d", "c", "f"}  # strict LRU under a ticking clock


def test_eviction_tiebreak_is_lexicographic(tmp_path):
    """Equal last_used_at timestamps (frozen clock) break ties by
    cache_key, so eviction order never depends on dict/disk order."""
    survivors = _eviction_survivors(
        tmp_path / "tie.db", ["e", "b", "a", "d", "c", "f"], clock_step=0.0
    )
    # Victims are the lexicographically smallest keys; FilterQuestion item
    # order matches key order here.
    assert survivors == {"d", "e", "f"}


def test_max_bytes_budget_enforced(db_path):
    clock = [0.0]
    store = PersistentAnswerStore(
        db_path, max_bytes=700, clock=lambda: clock[0]
    )
    for i in range(6):
        hit = make_hit(f"item-{i}")
        store.store(hit, [make_assignment(hit)])
        clock[0] += 1.0
    assert store.byte_size() <= 700
    assert store.evictions_budget > 0
    store.close()


def test_evicted_key_not_counted_by_budget_preflight(db_path):
    """Satellite contract: projected_new_assignments must not count a hit
    the store can no longer deliver (evicted or expired rows)."""
    clock = [0.0]
    store = PersistentAnswerStore(
        db_path, max_rows=1, clock=lambda: clock[0]
    )
    manager = TaskManager(platform=None, cache=store)
    unit_a = [FilterPayload("t", (FilterQuestion("a"),))]
    unit_b = [FilterPayload("t", (FilterQuestion("b"),))]

    merged_a = TaskManager.merge_units([unit_a], 1)[0]
    hit_a = HIT(hit_id="h-a", payloads=merged_a, assignments_requested=5)
    store.store(hit_a, [make_assignment(hit_a)])
    assert manager.projected_new_assignments([unit_a], 1, 5) == 0

    clock[0] += 1.0
    merged_b = TaskManager.merge_units([unit_b], 1)[0]
    hit_b = HIT(hit_id="h-b", payloads=merged_b, assignments_requested=5)
    store.store(hit_b, [make_assignment(hit_b)])  # evicts a (max_rows=1)
    assert manager.projected_new_assignments([unit_a], 1, 5) == 5
    assert manager.projected_new_assignments([unit_b], 1, 5) == 0
    store.close()


# ---------------------------------------------------------------------------
# Engine / session wiring
# ---------------------------------------------------------------------------

ANIMALS_QUERY = (
    "SELECT a.name, animalInfo(a.img).common AS common FROM animals AS a"
)


def animals_engine(store=None, cache=None, seed=5):
    data = animals_dataset()
    market = SimulatedMarketplace(data.truth, seed=seed)
    engine = Qurk(
        platform=market,
        config=ExecutionConfig(generative_batch_size=5),
        store=store,
        cache=cache,
    )
    engine.register_table(data.table)
    engine.define(data.task_dsl)
    return engine


def test_engine_restart_warm_run_is_free_and_identical(db_path):
    cold_engine = animals_engine(store=db_path)
    cold = cold_engine.execute(ANIMALS_QUERY)
    assert cold.total_cost > 0
    assert cold.store_summary is not None
    assert cold.store_summary["persistent_hits"] == 0
    cold_engine.store.close()

    warm_engine = animals_engine(store=db_path)  # fresh process, same file
    warm = warm_engine.execute(ANIMALS_QUERY)
    assert warm.as_dicts() == cold.as_dicts()  # bit-identical rows
    assert warm.hit_count == 0 and warm.total_cost == 0.0
    summary = warm.store_summary
    assert summary["persistent_hits"] > 0
    assert summary["assignments_reused"] > 0
    assert summary["cost_saved"] == pytest.approx(cold.total_cost)
    assert "store:" in warm.explain()
    warm_engine.store.close()


def test_cold_store_run_matches_plain_taskcache_run(db_path):
    """An empty persistent store behaves exactly like TaskCache():
    same rows, HITs, and dollars for the same seed."""
    with_store = animals_engine(store=db_path)
    store_result = with_store.execute(ANIMALS_QUERY)
    with_store.store.close()

    with_cache = animals_engine(cache=TaskCache())
    cache_result = with_cache.execute(ANIMALS_QUERY)

    assert store_result.as_dicts() == cache_result.as_dicts()
    assert store_result.hit_count == cache_result.hit_count
    assert store_result.total_cost == cache_result.total_cost


def test_repro_store_off_ignores_configured_store(db_path):
    with store_toggle.forced(False):
        engine = animals_engine(store=db_path)
        assert engine.store is None
        result = engine.execute(ANIMALS_QUERY)
    assert result.store_summary is None
    assert not db_path.exists()  # not even opened
    assert "store:" not in result.explain()


def test_engine_rejects_cache_and_store_together(db_path):
    with pytest.raises(PlanError):
        animals_engine(store=db_path, cache=TaskCache())


def test_session_over_store_shares_and_persists(db_path):
    """A session's shared cache can be the store: cross-query dedup and
    owner attribution work unchanged, and a later session on the same file
    reuses the answers from disk."""
    data = animals_dataset()
    market = SimulatedMarketplace(data.truth, seed=5)
    session = EngineSession(
        platform=market,
        config=ExecutionConfig(generative_batch_size=5),
        store=db_path,
    )
    session.register_table(data.table)
    session.define(data.task_dsl)
    h0 = session.submit(ANIMALS_QUERY)
    h1 = session.submit(ANIMALS_QUERY)
    outcome = session.run()
    assert outcome[h0].as_dicts() == outcome[h1].as_dicts()
    # One of the twins borrowed the other's answers (view attribution).
    assert outcome.stats.cross_cache_hits > 0
    assert outcome.stats.store_summary is not None
    assert "session store:" in outcome.explain()
    session.store.close()

    market2 = SimulatedMarketplace(data.truth, seed=5)
    revisit = EngineSession(
        platform=market2,
        config=ExecutionConfig(generative_batch_size=5),
        store=db_path,
    )
    revisit.register_table(data.table)
    revisit.define(data.task_dsl)
    h = revisit.submit(ANIMALS_QUERY)
    warm = revisit.run()
    assert warm[h].as_dicts() == outcome[h0].as_dicts()
    assert warm[h].total_cost == 0.0
    assert warm.stats.store_summary["persistent_hits"] > 0
    revisit.store.close()


def test_engine_session_inherits_engine_store(db_path):
    engine = animals_engine(store=db_path)
    session = engine.session()
    assert session.store is engine.store
    engine.store.close()


def test_store_survives_engine_level_corruption(db_path):
    """End to end: a corrupted file between runs never stops a query."""
    engine = animals_engine(store=db_path)
    engine.execute(ANIMALS_QUERY)
    engine.store.close()
    blob = db_path.read_bytes()
    db_path.write_bytes(b"\x00" * 128 + blob[128:])  # stomp the header
    retry = animals_engine(store=db_path)
    assert retry.store.rebuilds == 1
    result = retry.execute(ANIMALS_QUERY)  # re-buys, does not raise
    assert result.total_cost > 0
    retry.store.close()
