"""Tests for the §6 extension ablations."""

from repro.experiments.ablations import (
    run_ablation_table,
    run_adaptive_ablation,
    run_ban_ablation,
    run_cache_ablation,
)


def test_adaptive_saves_assignments_at_equal_accuracy():
    result = run_adaptive_ablation(seed=0, n_celebs=10)
    assert result.savings_fraction > 0.15
    assert result.adaptive_correct >= result.fixed_correct - 2


def test_ban_ablation_precision():
    result = run_ban_ablation(seed=0)
    # Banning must not be a bloodbath: few accusations, and join recall
    # stays within one match of the pre-ban run.
    assert len(result.identified) <= 8
    assert result.accuracy_after >= result.accuracy_before - 0.1


def test_cache_rerun_is_free_and_identical():
    result = run_cache_ablation(seed=0)
    assert result.first_cost > 0
    assert result.rerun_extra_cost == 0.0
    assert result.rerun_matches_first


def test_ablation_table_renders():
    table = run_ablation_table(seed=0)
    text = table.format()
    assert "Adaptive votes" in text
    assert "Task cache rerun" in text
    assert len(table.rows) == 5
