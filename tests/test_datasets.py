"""Tests for the four paper datasets."""

import pytest

from repro.datasets import (
    ANIMAL_QUERIES,
    animals_dataset,
    celebrity_dataset,
    movie_dataset,
    squares_dataset,
)
from repro.datasets.movie import (
    ACTOR_COUNT,
    MATCHES_PER_ACTOR,
    SCENE_COUNT,
    SINGLE_PERSON_SCENES,
)


def test_squares_sizes_follow_formula():
    data = squares_dataset(n=10)
    sizes = sorted(data.sizes.values())
    assert sizes == [20 + 3 * i for i in range(10)]
    assert len(data.table) == 10


def test_squares_true_order_matches_latents():
    data = squares_dataset(n=5)
    latents = [data.truth.latent_value("squareSorter", ref) for ref in data.true_order]
    assert latents == sorted(latents)
    assert latents[0] == 0.0 and latents[-1] == 1.0  # normalised


def test_squares_validation():
    with pytest.raises(ValueError):
        squares_dataset(n=1)


def test_animals_27_items():
    data = animals_dataset()
    assert len(data.table) == 27
    assert len(data.items) == 27
    refs = {str(row["img"]) for row in data.table}
    assert "img://animals/rock" in refs
    assert "img://animals/flower" in refs


def test_animals_orders_are_permutations():
    data = animals_dataset()
    base = set(data.orders["sizeSort"])
    for task in ("dangerSort", "saturnSort"):
        assert set(data.orders[task]) == base


def test_animals_ambiguity_increases_with_query():
    data = animals_dataset()
    size = data.truth.rank_truth("sizeSort")
    danger = data.truth.rank_truth("dangerSort")
    saturn = data.truth.rank_truth("saturnSort")
    assert size.comparison_ambiguity < danger.comparison_ambiguity < saturn.comparison_ambiguity
    assert data.truth.rank_truth("randomSort").random_answers


def test_animal_queries_mapping():
    assert ANIMAL_QUERIES["Q5"] == "randomSort"
    assert len(ANIMAL_QUERIES) == 5


def test_animals_text_truth():
    data = animals_dataset()
    assert data.truth.text_answer("animalInfo", "common", "img://animals/whale") == "whale"
    species = data.truth.text_answer("animalInfo", "species", "img://animals/dog")
    assert species == "canis familiaris"


def test_celebrity_matches_are_diagonal():
    data = celebrity_dataset(n=10, seed=0)
    assert len(data.matches) == 10
    for i, (celeb, photo) in enumerate(data.matches):
        assert celeb == f"img://celeb/{i}"
        assert photo == f"img://photo/{i}"
        assert data.truth.join_match("samePerson", celeb, photo)
    assert not data.truth.join_match("samePerson", data.matches[0][0], data.matches[1][1])


def test_celebrity_attributes_complete():
    data = celebrity_dataset(n=8, seed=1)
    for ref in data.celeb_refs + data.photo_refs:
        attributes = data.attributes[ref]
        assert attributes["gender"] in ("Male", "Female")
        assert attributes["hairColor"] in ("black", "brown", "blond", "white")
        assert attributes["skinColor"] in ("light", "medium", "dark")


def test_celebrity_hair_instability_rate():
    changed = 0
    total = 0
    for seed in range(8):
        data = celebrity_dataset(n=30, seed=seed, hair_instability=0.12)
        for celeb, photo in data.matches:
            total += 1
            if data.attributes[celeb]["hairColor"] != data.attributes[photo]["hairColor"]:
                changed += 1
    assert 0.05 < changed / total < 0.20


def test_celebrity_gender_and_skin_stable_across_tables():
    data = celebrity_dataset(n=20, seed=2)
    for celeb, photo in data.matches:
        assert data.attributes[celeb]["gender"] == data.attributes[photo]["gender"]
        assert data.attributes[celeb]["skinColor"] == data.attributes[photo]["skinColor"]


def test_celebrity_deterministic():
    a = celebrity_dataset(n=10, seed=5)
    b = celebrity_dataset(n=10, seed=5)
    assert a.attributes == b.attributes


def test_movie_cardinalities_match_table5():
    data = movie_dataset(seed=0)
    assert len(data.scenes) == SCENE_COUNT == 211
    assert len(data.actors) == ACTOR_COUNT == 5
    assert len(data.single_person_scenes) == SINGLE_PERSON_SCENES == 117
    assert len(data.matches) == sum(MATCHES_PER_ACTOR) == 55


def test_movie_selectivity_is_55_percent():
    data = movie_dataset(seed=1)
    assert len(data.single_person_scenes) / len(data.scenes) == pytest.approx(
        0.5545, abs=0.001
    )


def test_movie_matches_are_single_person_scenes():
    data = movie_dataset(seed=2)
    singles = set(data.single_person_scenes)
    for _, scene in data.matches:
        assert scene in singles


def test_movie_match_skew():
    data = movie_dataset(seed=3)
    per_actor: dict[str, int] = {}
    for actor, _ in data.matches:
        per_actor[actor] = per_actor.get(actor, 0) + 1
    assert sorted(per_actor.values(), reverse=True) == sorted(
        MATCHES_PER_ACTOR, reverse=True
    )


def test_movie_quality_truth_registered():
    data = movie_dataset(seed=4)
    truth = data.truth.rank_truth("quality")
    assert truth.comparison_ambiguity > 3.0  # highly subjective
    assert len(truth.latents) == 211
