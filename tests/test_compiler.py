"""Tests for the HTML HIT compiler and effort model."""

import pytest

from repro.errors import TaskError
from repro.hits.compiler import EffortModel, HITCompiler, merge_payloads
from repro.hits.hit import (
    HIT,
    CompareGroup,
    ComparePayload,
    FilterPayload,
    FilterQuestion,
    GenerativeFieldSpec,
    GenerativePayload,
    GenerativeQuestion,
    JoinGridPayload,
    JoinPair,
    JoinPairsPayload,
    PickBestPayload,
    RatePayload,
    RateQuestion,
)


@pytest.fixture
def compiler() -> HITCompiler:
    return HITCompiler()


def compile_one(compiler, payload):
    hit = HIT(hit_id="h", payloads=(payload,))
    return compiler.compile(hit)


def test_filter_html(compiler):
    payload = FilterPayload(
        "t", (FilterQuestion("img://a"),), yes_text="Yep", no_text="Nope"
    )
    hit = compile_one(compiler, payload)
    assert "Yep" in hit.html and "Nope" in hit.html
    assert "radio" in hit.html
    assert "img://a" in hit.html
    assert hit.effort_seconds == EffortModel.FILTER_SECONDS


def test_rate_html_shows_anchors_and_scale(compiler):
    payload = RatePayload(
        "t",
        (RateQuestion("img://x"),),
        anchors=("img://1", "img://2"),
        scale_points=7,
    )
    hit = compile_one(compiler, payload)
    assert hit.html.count("anchors") == 1
    assert "value='7'" in hit.html


def test_join_pairs_html(compiler):
    payload = JoinPairsPayload("t", (JoinPair("img://l", "img://r"),))
    hit = compile_one(compiler, payload)
    assert "img://l" in hit.html and "img://r" in hit.html


def test_grid_html_has_no_match_checkbox(compiler):
    payload = JoinGridPayload("t", ("a", "b"), ("x", "y"))
    hit = compile_one(compiler, payload)
    assert "no-matches" in hit.html
    # Smart batch effort grows with r + s, not r × s.
    assert hit.effort_seconds == EffortModel.GRID_ITEM_SECONDS * 4


def test_compare_html_lists_items(compiler):
    payload = ComparePayload(
        "t", (CompareGroup(("a", "b", "c")),), question="Order these"
    )
    hit = compile_one(compiler, payload)
    assert "Order these" in hit.html
    assert hit.html.count("sortable-item") == 3


def test_pick_best_html(compiler):
    payload = PickBestPayload("t", ("a", "b"), question="Pick the best")
    hit = compile_one(compiler, payload)
    assert "Pick the best" in hit.html


def test_generative_effort_radio_cheaper_than_text(compiler):
    radio = GenerativePayload(
        "t",
        (GenerativeQuestion("a"),),
        (GenerativeFieldSpec("f", kind="Radio", options=("x", "y")),),
    )
    text = GenerativePayload(
        "t", (GenerativeQuestion("a"),), (GenerativeFieldSpec("f", kind="Text"),)
    )
    assert compiler.effort_model.effort(radio) < compiler.effort_model.effort(text)


def test_html_escapes_attributes(compiler):
    payload = FilterPayload("t", (FilterQuestion("a'><script>"),))
    hit = compile_one(compiler, payload)
    assert "<script>" not in hit.html


def test_merge_payloads_filters():
    a = FilterPayload("t", (FilterQuestion("1"),))
    b = FilterPayload("t", (FilterQuestion("2"),))
    merged = merge_payloads([a, b])
    assert isinstance(merged, FilterPayload)
    assert len(merged.questions) == 2


def test_merge_payloads_compare_groups():
    a = ComparePayload("t", (CompareGroup(("a", "b")),), item_html={"a": "<x>"})
    b = ComparePayload("t", (CompareGroup(("c", "d")),), item_html={"c": "<y>"})
    merged = merge_payloads([a, b])
    assert len(merged.groups) == 2
    assert merged.item_html == {"a": "<x>", "c": "<y>"}


def test_merge_rejects_mixed_tasks():
    a = FilterPayload("t1", (FilterQuestion("1"),))
    b = FilterPayload("t2", (FilterQuestion("2"),))
    with pytest.raises(TaskError):
        merge_payloads([a, b])


def test_merge_rejects_empty():
    with pytest.raises(TaskError):
        merge_payloads([])


def test_merge_single_passthrough():
    payload = FilterPayload("t", (FilterQuestion("1"),))
    assert merge_payloads([payload]) is payload


def test_grid_does_not_merge():
    grid = JoinGridPayload("t", ("a",), ("b",))
    with pytest.raises(TaskError):
        merge_payloads([grid, grid])
