"""Tests for descriptive statistics helpers."""

import pytest

from repro.util.stats import Summary, mean, percentile, stddev, summarize


def test_mean_basic():
    assert mean([1, 2, 3, 4]) == 2.5


def test_mean_empty_raises():
    with pytest.raises(ValueError):
        mean([])


def test_stddev_population():
    assert stddev([2, 4, 4, 4, 5, 5, 7, 9]) == 2.0


def test_stddev_singleton_is_zero():
    assert stddev([5.0]) == 0.0


def test_percentile_endpoints():
    data = [1.0, 2.0, 3.0, 4.0, 5.0]
    assert percentile(data, 0) == 1.0
    assert percentile(data, 100) == 5.0
    assert percentile(data, 50) == 3.0


def test_percentile_interpolates():
    assert percentile([1.0, 2.0], 50) == 1.5


def test_percentile_unsorted_input():
    assert percentile([5.0, 1.0, 3.0], 50) == 3.0


def test_percentile_out_of_range():
    with pytest.raises(ValueError):
        percentile([1.0], 101)


def test_percentile_empty():
    with pytest.raises(ValueError):
        percentile([], 50)


def test_summarize_fields():
    summary = summarize([1, 2, 3])
    assert summary == Summary(count=3, mean=2.0, std=stddev([1, 2, 3]), minimum=1.0, maximum=3.0)
    assert "n=3" in str(summary)


def test_summarize_empty_raises():
    with pytest.raises(ValueError):
        summarize([])
