"""Tests for the crowd-join execution layer."""

import pytest

from repro.core.context import ExecutionConfig
from repro.core.executor import run_plan
from repro.core.optimizer import optimize
from repro.core.planner import build_plan
from repro.errors import PlanError
from repro.joins.batching import JoinInterface
from repro.language.parser import parse_query
from repro.datasets import celebrity_dataset, movie_dataset

from tests.conftest import make_context


def celebrity_context(n=10, seed=2, **config):
    data = celebrity_dataset(n=n, seed=seed)
    ctx = make_context(
        data.truth, data.task_dsl, seed=seed, config=ExecutionConfig(**config)
    )
    ctx.catalog.register_table(data.celebs)
    ctx.catalog.register_table(data.photos)
    return data, ctx


def run_query(ctx, text):
    plan = optimize(build_plan(parse_query(text), ctx.catalog))
    return run_plan(plan, ctx), plan


JOIN = "SELECT c.name, p.id FROM celeb c JOIN photos p ON samePerson(c.img, p.img)"


def test_simple_join_counts_and_matches():
    data, ctx = celebrity_context(join_interface=JoinInterface.SIMPLE)
    rows, plan = run_query(ctx, JOIN)
    assert ctx.manager.ledger.hits_for("join:pairs") == 100
    correct = sum(
        1 for row in rows if str(row["c.name"]).rsplit("-", 1)[1] == str(row["p.id"])
    )
    assert correct >= 8


def test_naive_join_batches_pairs():
    data, ctx = celebrity_context(
        join_interface=JoinInterface.NAIVE, naive_batch_size=5
    )
    run_query(ctx, JOIN)
    assert ctx.manager.ledger.hits_for("join:pairs") == 20


def test_smart_join_grid_count():
    data, ctx = celebrity_context(
        join_interface=JoinInterface.SMART, grid_rows=5, grid_cols=5
    )
    run_query(ctx, JOIN)
    assert ctx.manager.ledger.hits_for("join:pairs") == 4  # (10/5)²


def test_feature_filter_reduces_join_hits():
    query = (
        JOIN
        + " AND POSSIBLY gender(c.img) = gender(p.img)"
        + " AND POSSIBLY skinColor(c.img) = skinColor(p.img)"
    )
    data, ctx = celebrity_context(join_interface=JoinInterface.SIMPLE)
    run_query(ctx, query)
    assert ctx.manager.ledger.hits_for("join:pairs") < 100
    assert ctx.manager.ledger.hits_for("join:features:left") > 0


def test_unary_possibly_prunes_side():
    data = movie_dataset(seed=1)
    ctx = make_context(
        data.truth,
        data.task_dsl,
        seed=1,
        config=ExecutionConfig(
            join_interface=JoinInterface.SMART,
            grid_rows=5,
            grid_cols=5,
            generative_batch_size=5,
        ),
    )
    ctx.catalog.register_table(data.actors)
    ctx.catalog.register_table(data.scenes)
    rows, plan = run_query(
        ctx,
        "SELECT a.name, s.img FROM actors a JOIN scenes s "
        "ON inScene(a.img, s.img) AND POSSIBLY numInScene(s.img) = 1",
    )
    # Only ~117 of 211 scenes survive the numInScene pass; grids shrink.
    join_node = [n for n in plan.walk() if type(n).__name__ == "JoinNode"][0]
    stats = ctx.node_stats[id(join_node)]
    assert stats.signals["numInScene.selectivity"] < 0.7
    assert ctx.manager.ledger.hits_for("join:pairs") < 43


def test_possibly_ignored_when_disabled():
    query = JOIN + " AND POSSIBLY gender(c.img) = gender(p.img)"
    data, ctx = celebrity_context(
        join_interface=JoinInterface.SIMPLE, use_feature_filters=False
    )
    run_query(ctx, query)
    assert ctx.manager.ledger.hits_for("join:pairs") == 100
    assert ctx.manager.ledger.hits_for("join:features:left") == 0


def test_join_signals_collected():
    query = JOIN + " AND POSSIBLY hairColor(c.img) = hairColor(p.img)"
    data, ctx = celebrity_context(join_interface=JoinInterface.NAIVE)
    rows, plan = run_query(ctx, query)
    join_node = [n for n in plan.walk() if type(n).__name__ == "JoinNode"][0]
    signals = ctx.node_stats[id(join_node)].signals
    assert "hairColor.kappa" in signals
    assert "candidate_pairs" in signals
    assert "filter_selectivity" in signals
    assert signals["filter_selectivity"] < 1.0


def test_empty_side_returns_no_rows():
    data, ctx = celebrity_context(join_interface=JoinInterface.SIMPLE)
    rows, _ = run_query(
        ctx, JOIN.replace("FROM celeb c", "FROM celeb c") + " WHERE c.name = 'nobody'"
    )
    # Computed filter pushed below the join empties the left side.
    assert rows == []
    assert ctx.manager.ledger.total_hits == 0


def test_rank_task_rejected_as_possibly():
    from repro.language.parser import parse_task
    from repro.tasks import task_from_definition

    data, ctx = celebrity_context()
    ctx.catalog.register_task(
        task_from_definition(
            parse_task(
                'TASK rk(field) TYPE Rank:\nHtml: "<img src=\'%s\'>", tuple[field]\n'
            )
        )
    )
    query = JOIN + " AND POSSIBLY rk(c.img) = rk(p.img)"
    with pytest.raises(PlanError):
        run_query(ctx, query)
