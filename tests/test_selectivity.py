"""Tests for the §3.2 selectivity algebra."""

import pytest

from repro.errors import QurkError
from repro.joins.selectivity import (
    combined_selectivity,
    estimate_selectivity,
    feature_selectivity,
    unknown_aware_selectivity,
    unknown_share,
    value_distribution,
)
from repro.relational.expressions import UNKNOWN


def test_value_distribution():
    dist = value_distribution(["a", "a", "b", "c"])
    assert dist == {"a": 0.5, "b": 0.25, "c": 0.25}


def test_value_distribution_ignores_unknown():
    dist = value_distribution(["a", UNKNOWN, "a", "b"])
    assert dist["a"] == pytest.approx(2 / 3)


def test_value_distribution_all_unknown():
    with pytest.raises(QurkError):
        value_distribution([UNKNOWN, UNKNOWN])


def test_feature_selectivity_uniform_binary():
    # 50/50 gender on both sides: σ = 0.5² + 0.5² = 0.5 (§3.2).
    dist = {"m": 0.5, "f": 0.5}
    assert feature_selectivity(dist, dist) == pytest.approx(0.5)


def test_feature_selectivity_four_values():
    dist = {v: 0.25 for v in "abcd"}
    assert feature_selectivity(dist, dist) == pytest.approx(0.25)


def test_feature_selectivity_disjoint_supports():
    assert feature_selectivity({"a": 1.0}, {"b": 1.0}) == 0.0


def test_combined_selectivity_product():
    assert combined_selectivity([0.5, 0.4]) == pytest.approx(0.2)
    assert combined_selectivity([]) == 1.0


def test_combined_selectivity_validation():
    with pytest.raises(QurkError):
        combined_selectivity([1.5])


def test_estimate_selectivity_from_samples():
    left = ["m"] * 5 + ["f"] * 5
    right = ["m"] * 8 + ["f"] * 2
    # No UNKNOWNs: σ = σ_concrete = 0.5×0.8 + 0.5×0.2 = 0.5
    assert estimate_selectivity(left, right) == pytest.approx(0.5)


def test_unknown_share():
    assert unknown_share(["a", UNKNOWN, "b", UNKNOWN]) == pytest.approx(0.5)
    assert unknown_share(["a"]) == 0.0
    with pytest.raises(QurkError):
        unknown_share([])


def test_estimate_selectivity_counts_unknown_wildcards():
    """UNKNOWN never prunes, so its mass must count toward σ.

    A feature that is 90% UNKNOWN used to look highly selective (the
    UNKNOWNs were silently dropped); under the corrected algebra it passes
    nearly everything: σ = u_L + u_R − u_L·u_R + (1−u_L)(1−u_R)·σ_c.
    """
    left = [UNKNOWN] * 9 + ["a"]
    right = [UNKNOWN] * 9 + ["b"]
    # σ_concrete = 0 (disjoint supports), u = 0.9 each:
    # σ = 0.9 + 0.9 − 0.81 = 0.99.
    assert estimate_selectivity(left, right) == pytest.approx(0.99)


def test_estimate_selectivity_matches_pair_pass_rate():
    """σ must equal the empirical pass fraction of ``pair_passes`` over the
    cross product of the sampled values — the quantity it estimates."""
    from repro.joins.feature_filter import pair_passes

    left = ["a", "a", UNKNOWN, "b"]
    right = ["a", UNKNOWN, "b", "c"]
    left_map = {f"l{i}": v for i, v in enumerate(left)}
    right_map = {f"r{i}": v for i, v in enumerate(right)}
    passed = sum(
        pair_passes(l, r, [(left_map, right_map)])
        for l in left_map
        for r in right_map
    )
    empirical = passed / (len(left) * len(right))
    assert estimate_selectivity(left, right) == pytest.approx(empirical)


def test_estimate_selectivity_all_unknown_side_passes_everything():
    assert estimate_selectivity([UNKNOWN, UNKNOWN], ["a", "b"]) == 1.0
    assert estimate_selectivity(["a"], [UNKNOWN]) == 1.0
    with pytest.raises(QurkError):
        estimate_selectivity([], ["a"])


def test_unknown_aware_selectivity_bounds_and_validation():
    assert unknown_aware_selectivity(0.0, 0.0, 0.5) == pytest.approx(0.5)
    assert unknown_aware_selectivity(1.0, 0.0, 0.0) == 1.0
    assert unknown_aware_selectivity(0.3, 0.4, 1.0) == pytest.approx(1.0)
    with pytest.raises(QurkError):
        unknown_aware_selectivity(1.2, 0.0, 0.5)
    with pytest.raises(QurkError):
        unknown_aware_selectivity(0.0, 0.0, -0.1)


def test_mostly_unknown_feature_flagged_ineffective():
    """The evaluate_features 'ineffective' test now sees the corrected σ:
    a 90%-UNKNOWN feature is dropped even when its concrete values are
    perfectly selective."""
    from repro.joins.feature_filter import evaluate_features

    left_items = [f"l{i}" for i in range(10)]
    right_items = [f"r{i}" for i in range(10)]
    left_values = {item: UNKNOWN for item in left_items}
    right_values = {item: UNKNOWN for item in right_items}
    left_values["l0"] = "x"
    right_values["r0"] = "y"  # concrete values never agree: σ_concrete = 0
    report = evaluate_features(
        left_items, right_items, {"sparse": (left_values, right_values)}, {}
    )
    assert report.dropped == ["sparse"]
    assert "ineffective" in report.decisions[0].reason
