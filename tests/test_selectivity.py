"""Tests for the §3.2 selectivity algebra."""

import pytest

from repro.errors import QurkError
from repro.joins.selectivity import (
    combined_selectivity,
    estimate_selectivity,
    feature_selectivity,
    value_distribution,
)
from repro.relational.expressions import UNKNOWN


def test_value_distribution():
    dist = value_distribution(["a", "a", "b", "c"])
    assert dist == {"a": 0.5, "b": 0.25, "c": 0.25}


def test_value_distribution_ignores_unknown():
    dist = value_distribution(["a", UNKNOWN, "a", "b"])
    assert dist["a"] == pytest.approx(2 / 3)


def test_value_distribution_all_unknown():
    with pytest.raises(QurkError):
        value_distribution([UNKNOWN, UNKNOWN])


def test_feature_selectivity_uniform_binary():
    # 50/50 gender on both sides: σ = 0.5² + 0.5² = 0.5 (§3.2).
    dist = {"m": 0.5, "f": 0.5}
    assert feature_selectivity(dist, dist) == pytest.approx(0.5)


def test_feature_selectivity_four_values():
    dist = {v: 0.25 for v in "abcd"}
    assert feature_selectivity(dist, dist) == pytest.approx(0.25)


def test_feature_selectivity_disjoint_supports():
    assert feature_selectivity({"a": 1.0}, {"b": 1.0}) == 0.0


def test_combined_selectivity_product():
    assert combined_selectivity([0.5, 0.4]) == pytest.approx(0.2)
    assert combined_selectivity([]) == 1.0


def test_combined_selectivity_validation():
    with pytest.raises(QurkError):
        combined_selectivity([1.5])


def test_estimate_selectivity_from_samples():
    left = ["m"] * 5 + ["f"] * 5
    right = ["m"] * 8 + ["f"] * 2
    # σ = 0.5×0.8 + 0.5×0.2 = 0.5
    assert estimate_selectivity(left, right) == pytest.approx(0.5)
