"""The pipelined executor's contract (§2.6 event-driven execution).

Three promises, each enforced here:

1. **Latency-only pipelining.** For a fixed seed, the pipelined executor
   produces identical rows, HIT/assignment counts, dollars, and per-qid
   vote streams to the depth-first interpreter on every example-workload
   query — it preserves the depth-first posting order and overlaps only
   virtual time.
2. **Virtual-time order.** The marketplace's multi-client API keeps HIT
   groups outstanding over overlapping virtual intervals and harvests them
   in finish-time order; the shared clock only ever moves forward.
3. **Bounded queues.** Rows flow between computed operators in chunks
   through bounded queues; occupancy never exceeds the bound and a lagging
   consumer stalls its producer (back-pressure).

``REPRO_PIPELINE=0`` (or ``ExecutionConfig(pipeline=False)``) must revert
to the depth-first interpreter exactly — including the virtual clock — and
reproduce the PR-1 golden trace.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core.context import ExecutionConfig
from repro.core.engine import Qurk
from repro.core.plan import ScanNode
from repro.crowd import GroundTruth, SimulatedMarketplace
from repro.errors import MarketplaceError
from repro.datasets import (
    animals_dataset,
    celebrity_dataset,
    movie_dataset,
    squares_dataset,
)
from repro.experiments.end_to_end import QUERY_WITH_FILTER
from repro.hits.hit import FilterPayload, FilterQuestion
from repro.hits.manager import TaskManager
from repro.joins.batching import JoinInterface
from repro.util import pipeline

GOLDEN_PATH = Path(__file__).parent / "golden" / "determinism_trace.json"


class RecordingMarketplace(SimulatedMarketplace):
    """Simulated marketplace that logs postings and harvested assignments.

    ``post_hit_group`` routes through ``submit_hit_group``/``harvest``, so
    overriding those two records both executors through one code path.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.group_sequence: list[str | None] = []
        self.harvested = []

    def submit_hit_group(self, hits, group_id=None, post_time=None):
        self.group_sequence.append(group_id)
        return super().submit_hit_group(
            hits, group_id=group_id, post_time=post_time
        )

    def harvest(self, ticket):
        assignments = super().harvest(ticket)
        self.harvested.extend(assignments)
        return assignments


def vote_stream(market: RecordingMarketplace) -> list[tuple]:
    """Per-qid votes in dispatch order (assignment ids are dispatch-ordered,
    identical across executors; harvest order is not, so sort)."""
    ordered = sorted(market.harvested, key=lambda a: a.assignment_id)
    return [
        (a.assignment_id, a.hit_id, a.worker_id, qid, repr(value))
        for a in ordered
        for qid, value in a.answers.items()
    ]


# ---------------------------------------------------------------------------
# Workloads: one builder per example query family
# ---------------------------------------------------------------------------


def squares_engine(seed=7, n=15, **config):
    data = squares_dataset(n=n, seed=seed)
    market = RecordingMarketplace(data.truth, seed=seed)
    engine = Qurk(platform=market, config=ExecutionConfig(**config))
    engine.register_table(data.table)
    engine.define(data.task_dsl)
    return engine, market


def animals_engine(seed=11, **config):
    data = animals_dataset()
    market = RecordingMarketplace(data.truth, seed=seed)
    engine = Qurk(platform=market, config=ExecutionConfig(**config))
    engine.register_table(data.table)
    engine.define(data.task_dsl)
    return engine, market


ISFEMALE_DSL = (
    'TASK isFemale(field) TYPE Filter:\n'
    '    Prompt: "<img src=\'%s\'>", tuple[field]\n'
    '    YesText: "Female"\n'
    '    NoText: "Male"\n'
)


def celebrity_engine(seed=1, n=12, **config):
    data = celebrity_dataset(n=n, seed=seed)
    data.truth.add_filter_task(
        "isFemale",
        {
            ref: data.attributes[ref]["gender"] == "Female"
            for ref in data.celeb_refs
        },
    )
    market = RecordingMarketplace(data.truth, seed=seed)
    engine = Qurk(platform=market, config=ExecutionConfig(**config))
    engine.register_table(data.celebs)
    engine.register_table(data.photos)
    engine.define(data.task_dsl)
    engine.define(ISFEMALE_DSL)
    return engine, market


def movie_engine(seed=0, **overrides):
    data = movie_dataset(seed=seed)
    market = RecordingMarketplace(data.truth, seed=seed)
    config = ExecutionConfig(
        join_interface=JoinInterface.SMART,
        grid_rows=5,
        grid_cols=5,
        use_feature_filters=True,
        generative_batch_size=5,
        sort_method="rate",
        compare_group_size=5,
        rate_batch_size=5,
        **overrides,
    )
    engine = Qurk(platform=market, config=config)
    engine.register_table(data.actors)
    engine.register_table(data.scenes)
    engine.define(data.task_dsl)
    return engine, market


EXAMPLE_WORKLOADS = {
    "sort-compare": (
        squares_engine,
        {"sort_method": "compare"},
        "SELECT squares.label FROM squares ORDER BY squareSorter(img)",
    ),
    "sort-rate-limit": (
        squares_engine,
        {"sort_method": "rate"},
        "SELECT squares.label FROM squares ORDER BY squareSorter(img) DESC LIMIT 3",
    ),
    "sort-hybrid": (
        squares_engine,
        {"sort_method": "hybrid", "hybrid_iterations": 6, "hybrid_strategy": "window"},
        "SELECT squares.label FROM squares ORDER BY squareSorter(img)",
    ),
    "crowd-filter": (
        celebrity_engine,
        {},
        "SELECT c.name FROM celeb c WHERE isFemale(c)",
    ),
    "generative-select": (
        celebrity_engine,
        {},
        "SELECT c.name, gender(c.img) FROM celeb c",
    ),
    "filtered-smart-join": (
        celebrity_engine,
        {"join_interface": JoinInterface.SMART, "grid_rows": 3, "grid_cols": 3},
        "SELECT c.name, p.id FROM celeb c JOIN photos p ON samePerson(c.img, p.img) "
        "AND POSSIBLY gender(c.img) = gender(p.img) "
        "AND POSSIBLY skinColor(c.img) = skinColor(p.img)",
    ),
    "table5-optimized": (movie_engine, {}, QUERY_WITH_FILTER),
    "grouped-rate-sort": (
        movie_engine,
        {},
        "SELECT a.name, s.img FROM actors a JOIN scenes s ON inScene(a.img, s.img) "
        "AND POSSIBLY numInScene(s.img) = 1 ORDER BY a.name, quality(s.img) DESC",
    ),
}


def run_workload(name: str, pipelined: bool):
    builder, overrides, query = EXAMPLE_WORKLOADS[name]
    engine, market = builder(**overrides)
    with pipeline.forced(pipelined):
        result = engine.execute(query)
    return result, market


# ---------------------------------------------------------------------------
# 1. Pipelining is latency-only
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", sorted(EXAMPLE_WORKLOADS))
def test_pipeline_matches_depth_first(name):
    """Rows, costs, posting order, and vote streams identical per workload."""
    pipe_result, pipe_market = run_workload(name, pipelined=True)
    ref_result, ref_market = run_workload(name, pipelined=False)

    assert pipe_result.as_dicts() == ref_result.as_dicts()
    assert pipe_result.hit_count == ref_result.hit_count
    assert pipe_result.assignment_count == ref_result.assignment_count
    assert pipe_result.total_cost == ref_result.total_cost
    assert pipe_market.group_sequence == ref_market.group_sequence
    assert vote_stream(pipe_market) == vote_stream(ref_market)
    # Overlap can only shorten the virtual critical path, never extend it.
    assert pipe_result.elapsed_seconds <= ref_result.elapsed_seconds + 1e-9
    assert pipe_result.pipeline_summary is not None
    assert ref_result.pipeline_summary is None


def test_pipeline_reduces_latency_on_overlapping_workloads():
    """Workloads with independent HIT groups must actually finish earlier."""
    for name in ("table5-optimized", "filtered-smart-join"):
        pipe_result, _ = run_workload(name, pipelined=True)
        ref_result, _ = run_workload(name, pipelined=False)
        assert pipe_result.elapsed_seconds < ref_result.elapsed_seconds, name
        summary = pipe_result.pipeline_summary
        assert summary["peak_outstanding_groups"] >= 2, name
        assert summary["makespan_seconds"] < summary["serial_latency_seconds"], name


def test_single_crowd_operator_trace_is_exact():
    """One crowd operator ⇒ nothing to overlap ⇒ the *entire* trace —
    votes, assignment timestamps, and the virtual clock — is identical."""
    pipe_result, pipe_market = run_workload("sort-compare", pipelined=True)
    ref_result, ref_market = run_workload("sort-compare", pipelined=False)
    assert pipe_market.clock_seconds == ref_market.clock_seconds
    assert pipe_result.elapsed_seconds == ref_result.elapsed_seconds
    pipe_assignments = sorted(pipe_market.harvested, key=lambda a: a.assignment_id)
    ref_assignments = sorted(ref_market.harvested, key=lambda a: a.assignment_id)
    assert [
        (a.assignment_id, a.accept_time, a.submit_time) for a in pipe_assignments
    ] == [(a.assignment_id, a.accept_time, a.submit_time) for a in ref_assignments]


def test_repro_pipeline_off_reproduces_golden_trace():
    """The toggle reverts to the depth-first interpreter bit-for-bit: the
    PR-1 golden trace (votes, clock, ledger) reproduces exactly."""
    golden = json.loads(GOLDEN_PATH.read_text())
    engine, market = movie_engine(seed=0)
    with pipeline.forced(False):
        result = engine.execute(QUERY_WITH_FILTER)
    votes = [
        [qid, a.worker_id, repr(value)]
        for a in market.harvested
        for qid, value in a.answers.items()
    ]
    assert votes == golden["votes"]
    assert market.clock_seconds == golden["clock_seconds"]
    assert len(result.rows) == golden["result_rows"]
    assert engine.ledger.total_hits == golden["ledger"]["total_hits"]
    assert engine.ledger.total_assignments == golden["ledger"]["total_assignments"]


def test_config_pipeline_flag_overrides_toggle():
    engine, market = squares_engine(sort_method="compare")
    with pipeline.forced(True):
        result = engine.execute(
            "SELECT squares.label FROM squares ORDER BY squareSorter(img)",
            config=engine.config.with_overrides(pipeline=False),
        )
    assert result.pipeline_summary is None


# ---------------------------------------------------------------------------
# 2. Multi-client marketplace: outstanding groups, virtual-time harvest
# ---------------------------------------------------------------------------


def filter_hits(manager: TaskManager, items: list[str], assignments: int = 3):
    units = [
        [FilterPayload("keep", (FilterQuestion(item),))] for item in items
    ]
    return manager.build_hits(units, batch_size=5, assignments=assignments, label="t")


def harvest_truth(items) -> GroundTruth:
    truth = GroundTruth()
    truth.add_filter_task("keep", {item: True for item in items})
    return truth


def test_harvest_next_returns_virtual_time_order():
    items = [f"img://item/{i}" for i in range(30)]
    market = SimulatedMarketplace(harvest_truth(items), seed=3)
    manager = TaskManager(market)
    tickets = {}
    for post_time, batch in ((50.0, items[:10]), (0.0, items[10:20]), (25.0, items[20:])):
        ticket = market.submit_hit_group(
            filter_hits(manager, batch), group_id=f"g@{post_time}", post_time=post_time
        )
        tickets[ticket.ticket_id] = ticket
    assert market.outstanding_count == 3
    assert market.stats.peak_outstanding_groups == 3

    harvested = []
    while True:
        ticket = market.harvest_next()
        if ticket is None:
            break
        harvested.append(ticket)
    finishes = [t.finish_time for t in harvested]
    assert finishes == sorted(finishes)
    assert market.outstanding_count == 0
    assert market.clock_seconds == max(finishes)
    # Groups genuinely overlapped: each started before the previous finished.
    starts = sorted(t.post_time for t in harvested)
    assert starts[1] < min(finishes)


def test_submit_then_harvest_equals_blocking_post():
    """post_hit_group is submit+harvest; a same-seed marketplace pair must
    emit identical assignments either way."""
    items = [f"img://item/{i}" for i in range(12)]

    def run(blocking: bool):
        market = SimulatedMarketplace(harvest_truth(items), seed=5)
        manager = TaskManager(market)
        hits = filter_hits(manager, items)
        if blocking:
            assignments = market.post_hit_group(hits, group_id="g")
        else:
            assignments = market.harvest(
                market.submit_hit_group(hits, group_id="g", post_time=0.0)
            )
        return assignments, market.clock_seconds

    blocking_assignments, blocking_clock = run(blocking=True)
    submitted_assignments, submitted_clock = run(blocking=False)
    assert blocking_assignments == submitted_assignments
    assert blocking_clock == submitted_clock


def test_harvest_rejects_double_collection():
    """Double harvest raises from the marketplace error taxonomy (a
    ``MarketplaceError``, not a bare ``ValueError``) so callers can catch
    platform failures uniformly."""
    items = [f"img://item/{i}" for i in range(3)]
    market = SimulatedMarketplace(harvest_truth(items), seed=1)
    manager = TaskManager(market)
    ticket = market.submit_hit_group(filter_hits(manager, items), group_id="g")
    market.harvest(ticket)
    with pytest.raises(MarketplaceError, match="not.*outstanding"):
        market.harvest(ticket)


def test_clock_never_moves_backwards_under_overlap():
    items = [f"img://item/{i}" for i in range(20)]
    market = SimulatedMarketplace(harvest_truth(items), seed=9)
    manager = TaskManager(market)
    late = market.submit_hit_group(
        filter_hits(manager, items[:10]), group_id="late", post_time=1000.0
    )
    early = market.submit_hit_group(
        filter_hits(manager, items[10:]), group_id="early", post_time=0.0
    )
    market.harvest(late)
    clock_after_late = market.clock_seconds
    market.harvest(early)
    assert market.clock_seconds >= clock_after_late


# ---------------------------------------------------------------------------
# 3. Bounded queues and back-pressure
# ---------------------------------------------------------------------------


def test_queue_occupancy_bounded_and_backpressure_recorded():
    engine, _ = animals_engine(
        pipeline_chunk_size=4, pipeline_queue_chunks=2
    )
    with pipeline.forced(True):
        result = engine.execute("SELECT a.name FROM animals a")
    assert len(result) == 27
    scan_node = next(
        node for node in result.plan.walk() if isinstance(node, ScanNode)
    )
    pstats = result.node_stats[id(scan_node)].pipeline
    assert pstats is not None
    assert pstats.queue_capacity == 2
    assert 0 < pstats.queue_peak <= pstats.queue_capacity
    assert pstats.chunks_emitted == 7  # ceil(27 / 4)
    assert pstats.emit_stalls > 0  # the producer outpaced the bounded queue


def grouped_squares_engine(groups=3, per_group=5, seed=7, **config):
    """Squares spread over plain-prefix groups: ``ORDER BY grp, rank(img)``
    crowd-sorts each group independently — the per-group batches overlap
    under the pipelined executor."""
    from repro.relational.schema import Schema
    from repro.relational.table import Table

    data = squares_dataset(n=groups * per_group, seed=seed)
    table = Table("gs", Schema.of("grp text", "label text", "img url"))
    for index, row in enumerate(data.table.scan()):
        table.insert(
            {"grp": f"g{index % groups}", "label": row["label"], "img": row["img"]}
        )
    market = RecordingMarketplace(data.truth, seed=seed)
    engine = Qurk(platform=market, config=ExecutionConfig(**config))
    engine.register_table(table)
    engine.define(data.task_dsl)
    return engine, market


GROUPED_SORT_QUERY = "SELECT gs.label FROM gs ORDER BY gs.grp, squareSorter(img)"


def test_grouped_sort_overlaps_and_matches_depth_first():
    """Sanity for the budget test's workload: the three per-group rate
    batches genuinely overlap, with identical results."""
    engine, market = grouped_squares_engine(sort_method="rate")
    with pipeline.forced(True):
        result = engine.execute(GROUPED_SORT_QUERY)
    ref_engine, ref_market = grouped_squares_engine(sort_method="rate")
    with pipeline.forced(False):
        ref_result = ref_engine.execute(GROUPED_SORT_QUERY)
    assert result.as_dicts() == ref_result.as_dicts()
    assert vote_stream(market) == vote_stream(ref_market)
    assert result.pipeline_summary["peak_outstanding_groups"] >= 3
    assert result.elapsed_seconds < ref_result.elapsed_seconds


def test_budget_abort_point_matches_depth_first():
    """max_budget must bite at the same posting, for the same dollars,
    under both executors. The pipelined executor begins every sort
    group's batch before harvesting any, so its ledger lags — the
    scheduler's inflight-assignment reservation has to cover the gap, and
    an abort settles already-posted groups so the charged dollars match.
    The cap sweep is chosen to cross mid-overlap (between the 1st and 3rd
    group's pre-flight checks)."""
    from repro.errors import BudgetExceededError

    def spend(pipelined: bool, max_budget: float | None):
        engine, market = grouped_squares_engine(
            sort_method="rate", max_budget=max_budget
        )
        with pipeline.forced(pipelined):
            try:
                engine.execute(GROUPED_SORT_QUERY)
            except BudgetExceededError:
                status = "aborted"
            else:
                status = "completed"
        return (
            status,
            round(engine.ledger.total_cost, 10),
            market.stats.hits_posted,
        )

    _, full_cost, _ = spend(pipelined=False, max_budget=None)
    # Pre-flight projects units*assignments per group; actual charges are
    # per completed assignment of the *batched* HITs, so caps between one
    # projection and projection+actuals land between groups.
    outcomes = []
    for cap in (full_cost * 0.5, full_cost * 1.5, full_cost * 2.1, full_cost * 6.0):
        pipelined_run = spend(pipelined=True, max_budget=cap)
        depth_first_run = spend(pipelined=False, max_budget=cap)
        assert pipelined_run == depth_first_run, (cap, pipelined_run, depth_first_run)
        outcomes.append(pipelined_run[0])
    assert outcomes[0] == "aborted"
    assert outcomes[-1] == "completed"
    # At least one cap aborted with money already spent: the abort
    # happened mid-overlap, after earlier groups had posted.
    assert any(
        status == "aborted" and cost > 0 for status, cost, _ in
        [spend(True, full_cost * f) for f in (1.5, 2.1, 2.7)]
    )


def test_cache_visible_to_outstanding_siblings():
    """A group posted while another is outstanding must see the earlier
    group's results in its cache lookup (read-your-writes, like a blocking
    post): duplicate payloads never reach the platform twice."""
    from repro.hits.cache import TaskCache

    items = [f"img://item/{i}" for i in range(6)]
    truth = harvest_truth(items)

    def duplicate_posts(deferred: bool):
        market = SimulatedMarketplace(truth, seed=2)
        manager = TaskManager(market, cache=TaskCache())
        kwargs = {"post_time": 0.0} if deferred else {}
        first = manager.begin_hits(filter_hits(manager, items), label="a", **kwargs)
        second = manager.begin_hits(filter_hits(manager, items), label="b", **kwargs)
        outcomes = [p.result() for p in (second, first)]  # harvest order-free
        return market.stats.hits_posted, [o.assignment_count for o in outcomes]

    blocking = duplicate_posts(deferred=False)
    overlapped = duplicate_posts(deferred=True)
    assert blocking == overlapped
    hits_posted, _ = overlapped
    assert hits_posted == 2  # 6 items / batch 5 → one group of 2 HITs, once


def test_explain_reports_pipeline_columns():
    result, _ = run_workload("table5-optimized", pipelined=True)
    text = result.explain()
    assert "pipeline: stage=" in text
    assert "queue=" in text
    assert "peak_outstanding_groups=" in text
    assert "overlap_speedup=" in text
    # Depth-first EXPLAIN stays free of pipeline columns.
    ref_result, _ = run_workload("table5-optimized", pipelined=False)
    assert "pipeline:" not in ref_result.explain()
