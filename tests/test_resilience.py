"""Fault injection and the resilience layer (retry/repost/degrade).

Covers the robustness PR's contract end to end:

* :class:`~repro.crowd.faults.FaultPlan` — validation, determinism of the
  injected fault overlay (same seed ⇒ same faults, under both dispatch
  implementations), and inertness of zero-rate plans;
* transient platform errors — replayable injection, the Task Manager's
  retry loop, and the circuit breaker;
* repost recovery — unfilled/abandoned slots reposted with backoff and
  optional price escalation, capped by ``max_reposts``/``retry_deadline``;
* degradation — k-of-n quorum accounting, the all-slots-lost hang guard
  (:class:`~repro.errors.ExecutionError`, never a silent loop), and
  query-level graceful completion with ``degradation_summary``;
* session isolation — a faulted query degrades alone; siblings run clean.
"""

from __future__ import annotations

import pytest

from repro.core.context import ExecutionConfig
from repro.core.engine import Qurk
from repro.core.session import EngineSession
from repro.crowd import FaultPlan, GroundTruth, SimulatedMarketplace
from repro.datasets import celebrity_dataset
from repro.errors import (
    ExecutionError,
    MarketplaceError,
    QurkError,
    TransientMarketplaceError,
)
from repro.hits.hit import FilterPayload, FilterQuestion
from repro.hits.manager import TaskManager, collect_pending
from repro.hits.resilience import (
    CircuitBreaker,
    ResilienceState,
    RetryPolicy,
    build_resilience,
    marketplace_faults_active,
)
from repro.util import fastpath, resilience


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


def filter_truth(items) -> GroundTruth:
    truth = GroundTruth()
    truth.add_filter_task("keep", {item: True for item in items})
    return truth


def filter_units(items):
    return [[FilterPayload("keep", (FilterQuestion(item),))] for item in items]


def make_market(seed=3, n=10, faults=None):
    items = [f"img://item/{i}" for i in range(n)]
    return items, SimulatedMarketplace(filter_truth(items), seed=seed, faults=faults)


def submit_group(market, items, assignments=3, manager=None):
    manager = manager or TaskManager(market)
    hits = manager.build_hits(
        filter_units(items), batch_size=5, assignments=assignments, label="t"
    )
    return manager, market.submit_hit_group(hits, group_id="g")


ISFEMALE_DSL = (
    'TASK isFemale(field) TYPE Filter:\n'
    '    Prompt: "<img src=\'%s\'>", tuple[field]\n'
    '    YesText: "Female"\n'
    '    NoText: "Male"\n'
)


def celebrity_engine(seed=1, n=12, faults=None, **config):
    data = celebrity_dataset(n=n, seed=seed)
    data.truth.add_filter_task(
        "isFemale",
        {
            ref: data.attributes[ref]["gender"] == "Female"
            for ref in data.celeb_refs
        },
    )
    market = SimulatedMarketplace(data.truth, seed=seed, faults=faults)
    engine = Qurk(platform=market, config=ExecutionConfig(**config))
    engine.register_table(data.celebs)
    engine.register_table(data.photos)
    engine.define(data.task_dsl)
    engine.define(ISFEMALE_DSL)
    return engine, market


FILTER_QUERY = "SELECT c.name FROM celeb c WHERE isFemale(c)"


# ---------------------------------------------------------------------------
# 1. FaultPlan validation and gating
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "kwargs",
    [
        {"abandonment_rate": -0.1},
        {"abandonment_rate": 1.5},
        {"expiration_rate": 2.0},
        {"straggler_rate": -1.0},
        {"spam_rate": 1.01},
        {"transient_error_rate": -0.5},
        {"expiration_lifetime_fraction": 0.0},
        {"expiration_lifetime_fraction": 1.5},
        {"straggler_factor": 0.5},
    ],
)
def test_fault_plan_rejects_invalid_parameters(kwargs):
    with pytest.raises(ValueError):
        FaultPlan(**kwargs)


def test_fault_plan_activity_properties():
    assert not FaultPlan().active
    assert not FaultPlan().disrupts_dispatch
    assert FaultPlan(transient_error_rate=0.1).active
    assert not FaultPlan(transient_error_rate=0.1).disrupts_dispatch
    assert FaultPlan(abandonment_rate=0.1).disrupts_dispatch


def test_marketplace_faults_active_unwraps_facades():
    from repro.crowd.marketplace import MarketplaceClient

    items, market = make_market(faults=FaultPlan(abandonment_rate=0.2))
    assert marketplace_faults_active(market)
    assert marketplace_faults_active(MarketplaceClient(market, client_id="c0"))

    class Wrapper:
        def __init__(self, inner):
            self.inner = inner

    assert marketplace_faults_active(Wrapper(market))
    _, clean = make_market()
    assert not marketplace_faults_active(clean)
    _, zero = make_market(faults=FaultPlan())
    assert not marketplace_faults_active(zero)


def test_build_resilience_requires_toggle_and_active_faults():
    config = ExecutionConfig()
    _, faulted = make_market(faults=FaultPlan(abandonment_rate=0.2))
    _, clean = make_market()
    assert build_resilience(config, faulted) is not None
    assert build_resilience(config, clean) is None
    with resilience.forced(False):
        assert build_resilience(config, faulted) is None
    # ExecutionConfig.resilience overrides the toggle in both directions.
    with resilience.forced(False):
        on = build_resilience(ExecutionConfig(resilience=True), faulted)
        assert on is not None
    assert build_resilience(ExecutionConfig(resilience=False), faulted) is None
    # Config knobs flow into the policy.
    state = build_resilience(
        ExecutionConfig(retry_deadline=3600.0, max_reposts=4, backoff_base=60.0,
                        degrade_quorum=0.8),
        faulted,
    )
    assert state.policy.retry_deadline == 3600.0
    assert state.policy.max_reposts == 4
    assert state.policy.backoff_base == 60.0
    assert state.policy.degrade_quorum == 0.8


# ---------------------------------------------------------------------------
# 2. Fault overlay determinism
# ---------------------------------------------------------------------------


def test_zero_rate_plan_is_bit_identical_to_no_plan():
    items, clean = make_market(seed=5)
    _, zeroed = make_market(seed=5, faults=FaultPlan())
    _, t_clean = submit_group(clean, items)
    _, t_zero = submit_group(zeroed, items)
    assert t_clean.assignments == t_zero.assignments
    assert t_clean.finish_time == t_zero.finish_time
    assert t_zero.faults is None


def test_fault_overlay_is_deterministic_run_to_run():
    plan = FaultPlan(abandonment_rate=0.3, spam_rate=0.2, straggler_rate=0.2)
    traces = []
    for _ in range(2):
        items, market = make_market(seed=7, faults=plan)
        _, ticket = submit_group(market, items)
        traces.append((ticket.assignments, ticket.faults, ticket.finish_time))
    assert traces[0] == traces[1]


def test_fault_overlay_identical_under_both_dispatch_implementations():
    """The overlay draws from the group stream's child, which both the
    reference and fast dispatch loops share: same faults either way."""
    plan = FaultPlan(abandonment_rate=0.3, spam_rate=0.2, straggler_rate=0.2)
    tickets = {}
    for flag in (True, False):
        with fastpath.forced(flag):
            items, market = make_market(seed=7, faults=plan)
            _, tickets[flag] = submit_group(market, items)
    assert tickets[True].assignments == tickets[False].assignments
    assert tickets[True].faults == tickets[False].faults
    assert tickets[True].faults.dropped > 0  # the plan actually struck


def test_abandonment_drops_assignments_and_uncounts_work():
    items, market = make_market(seed=7, faults=FaultPlan(abandonment_rate=1.0))
    _, ticket = submit_group(market, items)
    assert ticket.assignments == ()
    assert market.stats.abandoned_assignments > 0
    assert market.stats.assignments_completed == 0
    assert len(ticket.incomplete_hit_ids) == 2  # 10 items / batch 5
    assert ticket.faults.abandoned == market.stats.abandoned_assignments


def test_expiration_drops_late_accepted_slots():
    plan = FaultPlan(expiration_rate=1.0, expiration_lifetime_fraction=0.5)
    items, market = make_market(seed=7, faults=plan)
    _, ticket = submit_group(market, items)
    assert market.stats.expired_slots > 0
    assert ticket.faults.expired_slots == market.stats.expired_slots
    # Survivors were all accepted inside the truncated lifetime; the clean
    # run's accept window extends past it.
    items2, clean = make_market(seed=7)
    _, full = submit_group(clean, items2)
    assert len(ticket.assignments) < len(full.assignments)
    span = max(a.accept_time for a in full.assignments) - full.post_time
    lifetime = full.post_time + span * 0.5
    assert all(a.accept_time <= lifetime for a in ticket.assignments)


def test_spam_overlay_replaces_answers_not_slots():
    items, market = make_market(seed=7, faults=FaultPlan(spam_rate=1.0))
    _, spammed = submit_group(market, items)
    items2, clean = make_market(seed=7)
    _, honest = submit_group(clean, items2)
    assert len(spammed.assignments) == len(honest.assignments)
    assert market.stats.spam_assignments == len(spammed.assignments)
    # Same slots and timings, different (garbage) answers somewhere.
    assert [a.assignment_id for a in spammed.assignments] == [
        a.assignment_id for a in honest.assignments
    ]
    assert any(
        s.answers != h.answers
        for s, h in zip(spammed.assignments, honest.assignments)
    )


def test_straggler_stretches_submit_times():
    plan = FaultPlan(straggler_rate=1.0, straggler_factor=8.0)
    items, market = make_market(seed=7, faults=plan)
    _, slow = submit_group(market, items)
    items2, clean = make_market(seed=7)
    _, fast = submit_group(clean, items2)
    assert market.stats.straggler_assignments == len(slow.assignments)
    assert slow.finish_time > fast.finish_time
    for s, f in zip(slow.assignments, fast.assignments):
        assert s.accept_time == f.accept_time
        assert s.submit_time - s.accept_time == pytest.approx(
            8.0 * (f.submit_time - f.accept_time)
        )


def test_faults_ignored_when_toggle_disabled():
    plan = FaultPlan(abandonment_rate=1.0, transient_error_rate=1.0)
    with resilience.forced(False):
        items, market = make_market(seed=7, faults=plan)
        _, ticket = submit_group(market, items)
    assert len(ticket.assignments) > 0
    assert market.stats.abandoned_assignments == 0
    assert market.stats.transient_errors == 0
    assert ticket.faults is None


# ---------------------------------------------------------------------------
# 3. Transient errors, retries, circuit breaker
# ---------------------------------------------------------------------------


def test_transient_submit_failure_commits_no_state():
    plan = FaultPlan(transient_error_rate=1.0)
    items, market = make_market(seed=7, faults=plan)
    manager = TaskManager(market)
    hits = manager.build_hits(
        filter_units(items), batch_size=5, assignments=3, label="t"
    )
    with pytest.raises(TransientMarketplaceError):
        market.submit_hit_group(hits, group_id="g")
    assert market.stats.hits_posted == 0
    assert market.stats.transient_errors == 1
    assert market.outstanding_count == 0


def test_transient_harvest_failure_leaves_ticket_outstanding():
    items, market = make_market(seed=7)
    manager, ticket = submit_group(market, items)
    market.faults = FaultPlan(transient_error_rate=1.0)
    with pytest.raises(TransientMarketplaceError):
        market.harvest(ticket)
    assert market.outstanding_count == 1
    market.faults = None
    assert len(market.harvest(ticket)) > 0


def test_manager_retries_transients_and_counts_them():
    plan = FaultPlan(transient_error_rate=0.4)
    items, market = make_market(seed=11, faults=plan)
    state = ResilienceState(RetryPolicy())
    manager = TaskManager(market, resilience=state)
    outcome = manager.run_units(
        filter_units(items), batch_size=5, assignments=3, label="t"
    )
    assert outcome.assignment_count > 0
    assert state.summary.transient_retries > 0
    assert market.stats.transient_errors == state.summary.transient_retries


def test_circuit_breaker_opens_after_consecutive_transients():
    plan = FaultPlan(transient_error_rate=1.0)
    items, market = make_market(seed=7, faults=plan)
    state = ResilienceState(RetryPolicy(circuit_threshold=3))
    manager = TaskManager(market, resilience=state)
    with pytest.raises(MarketplaceError, match="circuit breaker"):
        manager.run_units(
            filter_units(items), batch_size=5, assignments=3, label="t"
        )
    assert state.summary.circuit_opens == 1
    assert state.summary.transient_retries == 3
    assert state.breaker.is_open


def test_circuit_breaker_half_open_probe():
    breaker = CircuitBreaker(threshold=2, cooldown=100.0)
    assert breaker.allow(0.0)
    assert not breaker.record_failure(0.0)
    assert breaker.record_failure(1.0)  # opened
    assert not breaker.allow(50.0)
    assert breaker.allow(101.0)  # half-open probe
    breaker.record_success()
    assert not breaker.is_open
    assert breaker.failures == 0


# ---------------------------------------------------------------------------
# 4. Repost recovery and degradation accounting
# ---------------------------------------------------------------------------


def test_repost_recovers_abandoned_slots():
    plan = FaultPlan(abandonment_rate=0.5)
    items, market = make_market(seed=7, n=20, faults=plan)
    state = ResilienceState(RetryPolicy(max_reposts=3))
    manager = TaskManager(market, resilience=state)
    outcome = manager.run_units(
        filter_units(items), batch_size=5, assignments=3, label="t"
    )
    assert state.summary.reposts > 0
    assert state.summary.recovered_assignments > 0
    assert outcome.assignment_count > 0
    # The ledger charges exactly the assignments that survived, original
    # and recovered alike.
    assert manager.ledger.total_assignments == outcome.assignment_count


def test_repost_backoff_delays_recovery_rounds():
    policy = RetryPolicy(backoff_base=120.0, backoff_factor=2.0)
    assert policy.backoff_for(1) == 120.0
    assert policy.backoff_for(2) == 240.0
    assert policy.backoff_for(3) == 480.0
    plan = FaultPlan(abandonment_rate=0.5)
    items, market = make_market(seed=7, n=20, faults=plan)
    state = ResilienceState(RetryPolicy(max_reposts=2, backoff_base=10_000.0))
    manager = TaskManager(market, resilience=state)
    outcome = manager.run_units(
        filter_units(items), batch_size=5, assignments=3, label="t"
    )
    if state.summary.reposts:
        # Recovery rounds happen after the backoff, pushing the clock out.
        assert outcome.elapsed_seconds > 10_000.0


def test_retry_deadline_stops_reposting():
    plan = FaultPlan(abandonment_rate=0.5)
    items, market = make_market(seed=7, n=20, faults=plan)
    # Backoff alone blows the deadline: no repost is ever attempted.
    state = ResilienceState(
        RetryPolicy(max_reposts=5, backoff_base=1000.0, retry_deadline=500.0)
    )
    manager = TaskManager(market, resilience=state)
    manager.run_units(filter_units(items), batch_size=5, assignments=3, label="t")
    assert state.summary.reposts == 0
    assert state.summary.unfilled_assignments > 0


def test_price_escalation_charges_extra_cost():
    plan = FaultPlan(abandonment_rate=0.5)
    items, market = make_market(seed=7, n=20, faults=plan)
    state = ResilienceState(RetryPolicy(max_reposts=3, price_escalation=0.5))
    manager = TaskManager(market, resilience=state)
    manager.run_units(filter_units(items), batch_size=5, assignments=3, label="t")
    assert state.summary.recovered_assignments > 0
    assert manager.ledger.total_extra_cost > 0
    base = manager.ledger.pricing.cost(manager.ledger.total_assignments)
    assert manager.ledger.total_cost == pytest.approx(
        base + manager.ledger.total_extra_cost
    )


def test_quorum_degradation_flags_operator():
    plan = FaultPlan(abandonment_rate=0.6)
    items, market = make_market(seed=13, n=20, faults=plan)
    # No reposts and a full quorum requirement: shortfalls must be flagged.
    state = ResilienceState(RetryPolicy(max_reposts=0, degrade_quorum=1.0))
    manager = TaskManager(market, resilience=state)
    outcome = manager.run_units(
        filter_units(items), batch_size=5, assignments=3, label="quorumtask"
    )
    assert state.summary.unfilled_assignments > 0
    assert state.summary.degraded_groups > 0
    assert "quorumtask" in state.summary.degraded_operators
    # Degraded, not dead: the k-of-n votes that did arrive are returned.
    assert outcome.assignment_count > 0


def test_all_slots_lost_raises_execution_error_not_hang():
    """A group whose every slot is abandoned can never finish; the manager
    must surface a clear ExecutionError instead of looping on reposts."""
    plan = FaultPlan(abandonment_rate=1.0)
    items, market = make_market(seed=7, faults=plan)
    state = ResilienceState(RetryPolicy(max_reposts=2))
    manager = TaskManager(market, resilience=state)
    with pytest.raises(ExecutionError, match="can never finish"):
        manager.run_units(
            filter_units(items), batch_size=5, assignments=3, label="t"
        )


def test_collect_pending_refuses_uncollectable_group():
    """The hang guard: a pending handle that stays unresolved after
    result() is a bug, reported as ExecutionError rather than a wedge."""

    class StuckPending:
        finish_time = 0.0
        done = False

        def result(self):
            return None

    with pytest.raises(ExecutionError, match="did not resolve"):
        collect_pending([StuckPending()])


def test_strict_behaviour_unchanged_without_resilience_state():
    """No state (fault-free marketplace or toggle off) ⇒ the historical
    strict contract: unfilled HITs raise HITUncompletedError."""
    from repro.errors import HITUncompletedError

    plan = FaultPlan(abandonment_rate=1.0)
    items, market = make_market(seed=7, faults=plan)
    manager = TaskManager(market)  # no resilience state
    with pytest.raises(HITUncompletedError):
        manager.run_units(
            filter_units(items), batch_size=5, assignments=3, label="t"
        )


def test_pipelined_pending_batches_recover_too():
    plan = FaultPlan(abandonment_rate=0.5)
    items, market = make_market(seed=7, n=20, faults=plan)
    state = ResilienceState(RetryPolicy(max_reposts=3))
    manager = TaskManager(market, resilience=state)
    pending = manager.begin_units(
        filter_units(items), batch_size=5, assignments=3, label="t"
    )
    outcome = pending.result()
    assert pending.done
    assert outcome.assignment_count > 0
    assert state.summary.reposts > 0


# ---------------------------------------------------------------------------
# 5. Error taxonomy (regression: harvest raised a bare ValueError)
# ---------------------------------------------------------------------------


def test_harvest_unknown_ticket_raises_marketplace_error():
    items, market = make_market(seed=1)
    _, ticket = submit_group(market, items)
    market.harvest(ticket)
    with pytest.raises(MarketplaceError) as excinfo:
        market.harvest(ticket)
    assert isinstance(excinfo.value, QurkError)
    assert not isinstance(excinfo.value, ValueError)


def test_transient_error_is_a_marketplace_error():
    assert issubclass(TransientMarketplaceError, MarketplaceError)
    assert issubclass(TransientMarketplaceError, QurkError)


# ---------------------------------------------------------------------------
# 6. Query-level graceful degradation
# ---------------------------------------------------------------------------


def test_faulted_query_completes_with_degradation_summary():
    plan = FaultPlan(abandonment_rate=0.3, expiration_rate=0.1)
    engine, market = celebrity_engine(faults=plan)
    result = engine.execute(FILTER_QUERY)
    summary = result.degradation_summary
    assert summary is not None
    assert summary["abandoned_assignments"] == market.stats.abandoned_assignments
    assert summary["expired_slots"] == market.stats.expired_slots
    assert summary["abandoned_assignments"] > 0
    assert "aborted" not in summary
    if summary["reposts"] or summary["recovered_assignments"]:
        assert "resilience:" in result.explain()


def test_fault_free_query_has_no_degradation_summary():
    engine, _ = celebrity_engine()
    result = engine.execute(FILTER_QUERY)
    assert result.degradation_summary is None
    assert "resilience:" not in result.explain()


def test_budget_abort_degrades_gracefully_with_partial_rows():
    plan = FaultPlan(abandonment_rate=0.2)
    engine, _ = celebrity_engine(faults=plan, max_budget=0.02)
    result = engine.execute(FILTER_QUERY)  # must not raise
    summary = result.degradation_summary
    assert summary is not None
    assert "aborted" in summary
    assert "BudgetExceededError" in summary["aborted"]
    assert "aborted" in result.explain()


def test_budget_abort_still_raises_without_faults():
    from repro.errors import BudgetExceededError

    engine, _ = celebrity_engine(max_budget=0.02)
    with pytest.raises(BudgetExceededError):
        engine.execute(FILTER_QUERY)


# ---------------------------------------------------------------------------
# 7. Session isolation
# ---------------------------------------------------------------------------


def celebrity_session(faults=None, seed=1, n=12, **config):
    data = celebrity_dataset(n=n, seed=seed)
    data.truth.add_filter_task(
        "isFemale",
        {
            ref: data.attributes[ref]["gender"] == "Female"
            for ref in data.celeb_refs
        },
    )
    market = SimulatedMarketplace(data.truth, seed=seed, faults=faults)
    session = EngineSession(platform=market, config=ExecutionConfig(**config))
    session.register_table(data.celebs)
    session.register_table(data.photos)
    session.define(data.task_dsl)
    session.define(ISFEMALE_DSL)
    return session, market


def test_session_queries_degrade_independently():
    plan = FaultPlan(abandonment_rate=0.3)
    session, market = celebrity_session(faults=plan)
    h0 = session.submit(FILTER_QUERY)
    # Sibling with a starvation budget: aborts, absorbed into partial rows.
    h1 = session.submit(
        "SELECT c.name FROM celeb c WHERE isFemale(c) AND gender(c.img) = 'Female'",
        config=ExecutionConfig(max_budget=0.001),
    )
    outcome = session.run()
    assert not outcome.errors
    ok = outcome[h0]
    degraded = outcome[h1]
    assert ok.degradation_summary is not None
    assert "aborted" not in ok.degradation_summary
    assert degraded.degradation_summary is not None
    assert "aborted" in degraded.degradation_summary
    # The healthy sibling kept a real answer (no abort, actual rows).
    assert len(ok.rows) > 0


def test_session_fault_free_trace_untouched_by_resilience():
    session_on, market_on = celebrity_session()
    h_on = session_on.submit(FILTER_QUERY)
    result_on = session_on.run()[h_on]
    with resilience.forced(False):
        session_off, market_off = celebrity_session()
        h_off = session_off.submit(FILTER_QUERY)
        result_off = session_off.run()[h_off]
    assert result_on.as_dicts() == result_off.as_dicts()
    assert result_on.total_cost == result_off.total_cost
    assert market_on.clock_seconds == market_off.clock_seconds
    assert result_on.degradation_summary is None
    assert result_off.degradation_summary is None
