"""Property-based tests (hypothesis) on core data structures and invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats as scipy_stats

import pytest

from repro.metrics.fleiss import fleiss_kappa, modified_kappa
from repro.metrics.kendall import kendall_tau_b, kendall_tau_from_orders
from repro.sorting.graph import ComparisonGraph, break_cycles, topological_order
from repro.sorting.groups import covering_groups, pairs_covered
from repro.sorting.head_to_head import head_to_head_order
from repro.util.stats import percentile
from repro.util.text import lowercase_single_space

# ---------------------------------------------------------------------------
# Kendall's tau
# ---------------------------------------------------------------------------

paired_vectors = st.integers(min_value=3, max_value=30).flatmap(
    lambda n: st.tuples(
        st.lists(st.integers(0, 10), min_size=n, max_size=n),
        st.lists(st.integers(0, 10), min_size=n, max_size=n),
    )
)


@given(paired_vectors)
@settings(max_examples=60, deadline=None)
def test_tau_matches_scipy(pair):
    x, y = pair
    if len(set(x)) < 2 or len(set(y)) < 2:
        return  # degenerate, rejected by our implementation
    ours = kendall_tau_b([float(v) for v in x], [float(v) for v in y])
    theirs = scipy_stats.kendalltau(x, y, variant="b").statistic
    assert ours == pytest.approx(theirs, abs=1e-9)


@given(st.permutations(list(range(8))))
@settings(max_examples=40, deadline=None)
def test_tau_symmetry_and_bounds(perm):
    base = list(range(8))
    tau = kendall_tau_from_orders([str(i) for i in base], [str(i) for i in perm])
    rev = kendall_tau_from_orders([str(i) for i in perm], [str(i) for i in base])
    assert tau == pytest.approx(rev)
    assert -1.0 <= tau <= 1.0


@given(st.permutations(list(range(6))))
@settings(max_examples=30, deadline=None)
def test_tau_reversal_negates(perm):
    items = [str(i) for i in perm]
    tau = kendall_tau_from_orders(items, items[::-1])
    identity = kendall_tau_from_orders(items, items)
    assert identity == pytest.approx(1.0)
    assert tau == pytest.approx(-1.0)


# ---------------------------------------------------------------------------
# Fleiss kappa
# ---------------------------------------------------------------------------

count_rows = st.lists(
    st.fixed_dictionaries(
        {},
        optional={
            "a": st.integers(0, 6),
            "b": st.integers(0, 6),
            "c": st.integers(0, 6),
        },
    ).map(lambda row: {k: v for k, v in row.items() if v > 0}),
    min_size=2,
    max_size=25,
).filter(lambda rows: sum(1 for r in rows if sum(r.values()) >= 2) >= 2)


@given(count_rows)
@settings(max_examples=60, deadline=None)
def test_kappa_bounds(rows):
    value = fleiss_kappa(rows)
    assert -1.0 <= value <= 1.0 + 1e-9
    modified = modified_kappa(rows)
    assert -1.0 <= modified <= 1.0 + 1e-9


@given(st.integers(2, 20), st.integers(2, 8))
@settings(max_examples=30, deadline=None)
def test_kappa_unanimity_is_one(n_items, n_raters):
    rows = [{"x" if i % 2 else "y": n_raters} for i in range(n_items)]
    assert fleiss_kappa(rows) == pytest.approx(1.0)
    assert modified_kappa(rows) == pytest.approx(1.0)


# ---------------------------------------------------------------------------
# Covering groups
# ---------------------------------------------------------------------------


@given(st.integers(5, 25), st.integers(2, 6), st.integers(0, 3))
@settings(max_examples=30, deadline=None)
def test_covering_groups_cover_all_pairs(n, group_size, seed):
    group_size = min(group_size, n)
    if group_size < 2:
        return
    items = [f"i{k}" for k in range(n)]
    groups = covering_groups(items, group_size, seed=seed)
    expected = {
        tuple(sorted((items[i], items[j])))
        for i in range(n)
        for j in range(i + 1, n)
    }
    assert pairs_covered(groups) >= expected
    assert all(len(group) == group_size for group in groups)


# ---------------------------------------------------------------------------
# Head-to-head and comparison graphs
# ---------------------------------------------------------------------------


@given(st.permutations(list(range(9))))
@settings(max_examples=40, deadline=None)
def test_head_to_head_recovers_any_acyclic_order(perm):
    items = [f"i{k}" for k in perm]
    position = {item: rank for rank, item in enumerate(items)}
    winners = {}
    for i in range(len(items)):
        for j in range(i + 1, len(items)):
            a, b = items[i], items[j]
            winners[(a, b)] = a if position[a] > position[b] else b
    assert head_to_head_order(sorted(items), winners) == items


@given(
    st.lists(
        st.tuples(st.integers(0, 7), st.integers(0, 7), st.integers(1, 5)),
        min_size=1,
        max_size=40,
    )
)
@settings(max_examples=40, deadline=None)
def test_cycle_breaking_always_yields_total_order(edges):
    graph = ComparisonGraph([f"n{k}" for k in range(8)])
    for a, b, w in edges:
        if a != b:
            graph.add_edge(f"n{a}", f"n{b}", w)
    break_cycles(graph)
    order = topological_order(graph)
    assert sorted(order) == sorted(graph.items)
    # Every surviving edge is respected: winner appears later (greater).
    ranks = {node: i for i, node in enumerate(order)}
    for winner, loser in graph.edges:
        assert ranks[winner] > ranks[loser]


# ---------------------------------------------------------------------------
# payload_cache_key (hits/cache.py) — the persistent store's join key
# ---------------------------------------------------------------------------

item_names = st.text(
    alphabet=st.characters(whitelist_categories=("L", "N", "P", "S", "Z")),
    min_size=1,
    max_size=12,
)

filter_corpus = st.tuples(
    item_names,
    st.lists(item_names, min_size=1, max_size=6, unique=True).map(tuple),
)
"""(task_name, item list) — the primitive data a filter unit is built from."""


def _build_filter_payloads(corpus) -> tuple:
    """Fresh payload objects from primitive data — what a restarted process
    does when it re-plans the same query from scratch."""
    from repro.hits.hit import FilterPayload, FilterQuestion

    task_name, items = corpus
    return (
        FilterPayload(task_name, tuple(FilterQuestion(item) for item in items)),
    )


@given(filter_corpus, st.integers(1, 9))
@settings(max_examples=80, deadline=None)
def test_cache_key_stable_across_rebuilds(corpus, assignments):
    """Same primitive data ⇒ same key, even from freshly constructed
    payload objects (simulating another process): the key depends only on
    payload *content*, never on object identity."""
    from repro.hits.cache import payload_cache_key

    first = payload_cache_key(_build_filter_payloads(corpus), assignments)
    second = payload_cache_key(_build_filter_payloads(corpus), assignments)
    assert first == second


@given(
    st.lists(item_names, min_size=2, max_size=5, unique=True),
    st.permutations(range(5)),
    st.integers(1, 9),
)
@settings(max_examples=60, deadline=None)
def test_cache_key_ignores_payload_tuple_order(items, perm, assignments):
    """Payload order within a HIT is presentation, not content: the key
    sorts payload reprs, so any permutation of the same payloads collides
    (which is the point — identical questions share one cache row)."""
    from repro.hits.cache import payload_cache_key
    from repro.hits.hit import FilterPayload, FilterQuestion

    payloads = tuple(
        FilterPayload(f"t{k}", (FilterQuestion(item),))
        for k, item in enumerate(items)
    )
    shuffled = tuple(payloads[i % len(payloads)] for i in perm[: len(payloads)])
    if sorted(repr(p) for p in shuffled) != sorted(repr(p) for p in payloads):
        return  # permutation dropped/duplicated payloads; not a reordering
    assert payload_cache_key(payloads, assignments) == payload_cache_key(
        shuffled, assignments
    )


@given(filter_corpus, st.integers(1, 9), st.integers(1, 9))
@settings(max_examples=80, deadline=None)
def test_cache_key_sensitive_to_replication(corpus, a, b):
    """Different replication counts must never share a row: 5 stored
    assignments cannot satisfy a 10-assignment request."""
    from repro.hits.cache import payload_cache_key

    payloads = _build_filter_payloads(corpus)
    keys_equal = payload_cache_key(payloads, a) == payload_cache_key(payloads, b)
    assert keys_equal == (a == b)


@given(st.lists(filter_corpus, min_size=2, max_size=12, unique=True))
@settings(max_examples=80, deadline=None)
def test_cache_key_no_collisions_across_distinct_corpora(corpora):
    """Distinct payload corpora (different task names or item sets) map to
    distinct keys — a persistent store row never answers for a different
    question."""
    from repro.hits.cache import payload_cache_key

    keys = {
        payload_cache_key(_build_filter_payloads(corpus), 5)
        for corpus in corpora
    }
    assert len(keys) == len(corpora)


# ---------------------------------------------------------------------------
# Misc utilities
# ---------------------------------------------------------------------------


@given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=50), st.floats(0, 100))
@settings(max_examples=60, deadline=None)
def test_percentile_within_range(values, q):
    result = percentile(values, q)
    assert min(values) <= result <= max(values)


@given(st.text(max_size=80))
@settings(max_examples=60, deadline=None)
def test_lowercase_single_space_idempotent(text):
    once = lowercase_single_space(text)
    assert lowercase_single_space(once) == once
    assert "  " not in once


# ---------------------------------------------------------------------------
# Majority vote + Dawid-Skene consistency
# ---------------------------------------------------------------------------


@given(st.lists(st.booleans(), min_size=1, max_size=15))
@settings(max_examples=60, deadline=None)
def test_majority_agrees_with_counts(values):
    from repro.combine.majority import MajorityVote
    from repro.hits.hit import Vote

    votes = [Vote(f"w{i}", v) for i, v in enumerate(values)]
    result = MajorityVote().combine_one(votes)
    yes = sum(values)
    no = len(values) - yes
    assert result is (yes > no)


@given(st.integers(0, 1000))
@settings(max_examples=30, deadline=None)
def test_unanimous_corpus_survives_dawid_skene(seed):
    """With unanimous votes, EM must return exactly those labels."""
    from repro.combine.dawid_skene import dawid_skene
    from repro.hits.hit import Vote
    from repro.util.rng import RandomSource

    rng = RandomSource(seed)
    corpus = {}
    truth = {}
    for i in range(12):
        label = rng.chance(0.5)
        truth[f"q{i}"] = label
        corpus[f"q{i}"] = [Vote(f"w{k}", label) for k in range(4)]
    if len(set(truth.values())) < 2:
        return
    result = dawid_skene(corpus)
    assert result.hard_labels() == truth


# ---------------------------------------------------------------------------
# UNKNOWN-aware selectivity algebra (joins/selectivity.py)
# ---------------------------------------------------------------------------

unit = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


@given(unit, unit, unit)
@settings(max_examples=120, deadline=None)
def test_unknown_aware_sigma_within_unit_interval(u_left, u_right, concrete):
    from repro.joins.selectivity import unknown_aware_selectivity

    sigma = unknown_aware_selectivity(u_left, u_right, concrete)
    assert 0.0 <= sigma <= 1.0
    # The wildcard mass alone is a lower bound: UNKNOWN pairs always pass.
    wildcard = u_left + u_right - u_left * u_right
    assert sigma >= wildcard - 1e-12


@given(unit, unit, unit, unit)
@settings(max_examples=120, deadline=None)
def test_unknown_aware_sigma_monotone_in_unknown_share(u_low, u_high, u_other, concrete):
    """More UNKNOWN mass can only make the feature pass more pairs."""
    from repro.joins.selectivity import unknown_aware_selectivity

    lo, hi = min(u_low, u_high), max(u_low, u_high)
    assert unknown_aware_selectivity(lo, u_other, concrete) <= (
        unknown_aware_selectivity(hi, u_other, concrete) + 1e-12
    )
    # Symmetric in the two sides.
    assert unknown_aware_selectivity(lo, u_other, concrete) == pytest.approx(
        unknown_aware_selectivity(u_other, lo, concrete)
    )


@given(
    st.lists(st.sampled_from(["a", "b", "c", None]), min_size=1, max_size=30),
    st.lists(st.sampled_from(["a", "b", "c", None]), min_size=1, max_size=30),
)
@settings(max_examples=120, deadline=None)
def test_estimate_selectivity_equals_empirical_pass_rate(left_raw, right_raw):
    """σ from sampled values is exactly the cross-product pass fraction of
    pair_passes over those samples (None stands in for UNKNOWN)."""
    from repro.joins.feature_filter import pair_passes
    from repro.joins.selectivity import estimate_selectivity
    from repro.relational.expressions import UNKNOWN

    left = [UNKNOWN if v is None else v for v in left_raw]
    right = [UNKNOWN if v is None else v for v in right_raw]
    left_map = {f"l{i}": v for i, v in enumerate(left)}
    right_map = {f"r{i}": v for i, v in enumerate(right)}
    passed = sum(
        pair_passes(l, r, [(left_map, right_map)])
        for l in left_map
        for r in right_map
    )
    empirical = passed / (len(left) * len(right))
    assert estimate_selectivity(left, right) == pytest.approx(empirical)
