"""Tests for the QualityAdjust combiner (Ipeirotis et al.)."""

import pytest

from repro.combine.quality_adjust import QualityAdjust
from repro.hits.hit import Vote
from repro.util.rng import RandomSource


def spam_corpus(seed: int = 0, n: int = 60):
    """Good workers + an always-no spammer + a random spammer."""
    rng = RandomSource(seed)
    truths = {f"q{i}": i % 3 == 0 for i in range(n)}
    corpus: dict[str, list[Vote]] = {}
    for qid, truth in truths.items():
        votes = [
            Vote(f"good{g}", truth if rng.chance(0.94) else not truth)
            for g in range(4)
        ]
        votes.append(Vote("spam_no", False))
        votes.append(Vote("spam_rand", rng.chance(0.5)))
        corpus[qid] = votes
    return corpus, truths


def test_combine_recovers_truth():
    corpus, truths = spam_corpus()
    qa = QualityAdjust()
    decisions = qa.combine(corpus)
    accuracy = sum(decisions[q] == t for q, t in truths.items()) / len(truths)
    assert accuracy > 0.92


def test_worker_quality_identifies_spammers():
    corpus, _ = spam_corpus()
    qa = QualityAdjust()
    qa.combine(corpus)
    quality = qa.worker_quality()
    assert quality["good0"] > 0.6
    assert quality["spam_no"] < 0.3
    assert quality["spam_rand"] < 0.3
    spammers = qa.identify_spammers(threshold=0.3)
    assert "spam_no" in spammers and "spam_rand" in spammers
    assert "good0" not in spammers


def test_false_negative_cost_biases_toward_positive():
    """With FN cost 2:1, a borderline posterior resolves to a match."""
    symmetric = QualityAdjust(false_negative_cost=1.0)
    asymmetric = QualityAdjust(false_negative_cost=2.0)
    posterior = {True: 0.4, False: 0.6}
    assert symmetric._boolean_decision(posterior) is False
    assert asymmetric._boolean_decision(posterior) is True


def test_worker_quality_requires_fit():
    qa = QualityAdjust()
    with pytest.raises(RuntimeError):
        qa.worker_quality()


def test_multiclass_map_decision():
    rng = RandomSource(2)
    options = ["a", "b", "c"]
    corpus = {}
    for i in range(30):
        truth = options[i % 3]
        corpus[f"q{i}"] = [
            Vote(f"w{w}", truth if rng.chance(0.9) else rng.choice(options))
            for w in range(5)
        ]
    decisions = QualityAdjust().combine(corpus)
    accuracy = sum(decisions[f"q{i}"] == options[i % 3] for i in range(30)) / 30
    assert accuracy > 0.9


def test_invalid_iterations():
    with pytest.raises(ValueError):
        QualityAdjust(iterations=0)


def test_qa_beats_majority_with_heavy_spam():
    """§3.4: 'QA significantly improves result quality … because it
    effectively filters spammers.'"""
    from repro.combine.majority import MajorityVote

    rng = RandomSource(5)
    truths = {}
    corpus = {}
    for i in range(80):
        qid = f"q{i}"
        truth = i % 4 == 0
        truths[qid] = truth
        votes = [
            Vote(f"good{g}", truth if rng.chance(0.92) else not truth)
            for g in range(2)
        ]
        votes.extend(Vote(f"spam{s}", False) for s in range(2))
        votes.append(Vote("spam_r", rng.chance(0.5)))
        corpus[qid] = votes
    mv = MajorityVote().combine(corpus)
    qa = QualityAdjust().combine(corpus)
    mv_acc = sum(mv[q] == t for q, t in truths.items()) / len(truths)
    qa_acc = sum(qa[q] == t for q, t in truths.items()) / len(truths)
    assert qa_acc > mv_acc
