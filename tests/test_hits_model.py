"""Tests for the HIT/payload data model."""

import pytest

from repro.errors import TaskError
from repro.hits.hit import (
    HIT,
    CompareGroup,
    ComparePayload,
    FilterPayload,
    FilterQuestion,
    JoinGridPayload,
    JoinPair,
    JoinPairsPayload,
    PickBestPayload,
    RatePayload,
    RateQuestion,
    compare_qid,
    filter_qid,
    generative_qid,
    join_qid,
    rate_qid,
)


def test_compare_qid_is_canonical():
    assert compare_qid("t", "b", "a") == compare_qid("t", "a", "b")
    assert compare_qid("t", "a", "b") == "t:cmp:a|b"


def test_join_qid_is_ordered():
    assert join_qid("t", "l", "r") != join_qid("t", "r", "l")


def test_other_qids():
    assert filter_qid("t", "i") == "t:filter:i"
    assert generative_qid("t", "i", "f") == "t:gen:i:f"
    assert rate_qid("t", "i") == "t:rate:i"


def test_compare_group_validation():
    with pytest.raises(TaskError):
        CompareGroup(("only",))
    with pytest.raises(TaskError):
        CompareGroup(("a", "a"))


def test_compare_group_pair_qids():
    group = CompareGroup(("a", "b", "c"))
    assert len(group.pair_qids("t")) == 3


def test_unit_counts():
    filter_payload = FilterPayload("t", (FilterQuestion("a"), FilterQuestion("b")))
    assert filter_payload.unit_count == 2
    rate = RatePayload("t", (RateQuestion("a"),))
    assert rate.unit_count == 1
    pairs = JoinPairsPayload("t", (JoinPair("a", "b"), JoinPair("a", "c")))
    assert pairs.unit_count == 2
    grid = JoinGridPayload("t", ("a", "b"), ("x", "y", "z"))
    assert grid.cell_count == 6
    compare = ComparePayload("t", (CompareGroup(("a", "b", "c")),))
    assert compare.unit_count == 3


def test_grid_requires_both_columns():
    with pytest.raises(TaskError):
        JoinGridPayload("t", (), ("x",))


def test_grid_pair_qids_cover_cells():
    grid = JoinGridPayload("t", ("a", "b"), ("x", "y"))
    assert len(grid.pair_qids()) == 4


def test_pick_best_payload():
    payload = PickBestPayload("t", ("a", "b"), pick_most=False)
    assert "min" in payload.qid()
    with pytest.raises(TaskError):
        PickBestPayload("t", ("a",))


def test_hit_validation():
    payload = FilterPayload("t", (FilterQuestion("a"),))
    hit = HIT(hit_id="h1", payloads=(payload,), assignments_requested=5)
    assert hit.unit_count == 1
    with pytest.raises(TaskError):
        HIT(hit_id="h2", payloads=())
    with pytest.raises(TaskError):
        HIT(hit_id="h3", payloads=(payload,), assignments_requested=0)


def test_assignment_duration():
    from repro.hits.hit import Assignment

    assignment = Assignment(
        assignment_id="a",
        hit_id="h",
        worker_id="w",
        answers={},
        accept_time=10.0,
        submit_time=25.0,
    )
    assert assignment.duration == 15.0
