"""Tests for worker answer-generation models."""

from collections import Counter

import pytest

from repro.crowd.behavior import answer_hit, answer_payload
from repro.crowd.truth import FeatureTruth, GroundTruth
from repro.crowd.worker import WorkerProfile, make_reliable, make_spammer
from repro.hits.hit import (
    HIT,
    CompareGroup,
    ComparePayload,
    FilterPayload,
    FilterQuestion,
    GenerativeFieldSpec,
    GenerativePayload,
    GenerativeQuestion,
    JoinGridPayload,
    JoinPair,
    JoinPairsPayload,
    PickBestPayload,
    RatePayload,
    RateQuestion,
    compare_qid,
    join_qid,
)
from repro.relational.expressions import UNKNOWN
from repro.util.rng import RandomSource


@pytest.fixture
def truth() -> GroundTruth:
    t = GroundTruth()
    t.add_filter_task("flt", {"a": True, "b": False})
    t.add_rank_task(
        "rank",
        {f"i{k}": float(k) for k in range(6)},
        comparison_ambiguity=0.05,
        rating_ambiguity=0.3,
    )
    t.add_rank_task(
        "chaos",
        {f"i{k}": float(k) for k in range(6)},
        random_answers=True,
    )
    t.add_join_task("join", {("l0", "r0"), ("l1", "r1")})
    t.add_feature_task(
        "color",
        "value",
        FeatureTruth(
            values={"a": "red", "b": "blue"},
            options=("red", "blue", UNKNOWN),
        ),
    )
    t.add_text_task("names", "common", {"a": "polar bear"})
    return t


@pytest.fixture
def reliable() -> WorkerProfile:
    return make_reliable("r1", RandomSource(1))


@pytest.fixture
def spammer() -> WorkerProfile:
    return make_spammer("s1", RandomSource(2))


def test_reliable_filter_mostly_correct(truth, reliable):
    rng = RandomSource(10)
    payload = FilterPayload("flt", (FilterQuestion("a"), FilterQuestion("b")))
    correct = 0
    for _ in range(300):
        answers = answer_payload(reliable, payload, truth, rng)
        correct += answers["flt:filter:a"] is True
        correct += answers["flt:filter:b"] is False
    assert correct / 600 > 0.9


def test_spammer_filter_ignores_truth(truth):
    rng = RandomSource(11)
    spammer = WorkerProfile(
        worker_id="s",
        archetype="spammer",
        filter_error=0.5, join_miss=0.5, join_false_alarm=0.5,
        compare_noise=10, rate_noise=10, rate_bias=0,
        feature_carelessness=1.0, yes_bias=0,
        batch_error_growth=0, effort_threshold=40, speed=0.2,
        is_spammer=True, spam_style="always_no",
    )
    payload = FilterPayload("flt", (FilterQuestion("a"),))
    answers = [answer_payload(spammer, payload, truth, rng)["flt:filter:a"] for _ in range(20)]
    assert all(a is False for a in answers)


def test_compare_group_emits_all_pairs(truth, reliable):
    rng = RandomSource(12)
    payload = ComparePayload("rank", (CompareGroup(("i0", "i1", "i2")),))
    answers = answer_payload(reliable, payload, truth, rng)
    assert len(answers) == 3
    assert compare_qid("rank", "i0", "i1") in answers


def test_compare_reliable_respects_latents(truth, reliable):
    rng = RandomSource(13)
    payload = ComparePayload("rank", (CompareGroup(("i0", "i5")),))
    wins = Counter()
    for _ in range(200):
        answers = answer_payload(reliable, payload, truth, rng)
        wins[answers[compare_qid("rank", "i0", "i5")]] += 1
    assert wins["i5"] > 190  # far-apart items almost never invert


def test_compare_random_task_is_coin_flip(truth, reliable):
    rng = RandomSource(14)
    payload = ComparePayload("chaos", (CompareGroup(("i0", "i5")),))
    wins = Counter()
    for _ in range(400):
        answers = answer_payload(reliable, payload, truth, rng)
        wins[answers[compare_qid("chaos", "i0", "i5")]] += 1
    assert 120 < wins["i5"] < 280


def test_rate_tracks_latent(truth, reliable):
    rng = RandomSource(15)
    low = RatePayload("rank", (RateQuestion("i0"),))
    high = RatePayload("rank", (RateQuestion("i5"),))
    low_mean = sum(
        answer_payload(reliable, low, truth, rng)["rank:rate:i0"] for _ in range(100)
    ) / 100
    high_mean = sum(
        answer_payload(reliable, high, truth, rng)["rank:rate:i5"] for _ in range(100)
    ) / 100
    assert high_mean - low_mean > 3.0
    assert 1 <= low_mean <= 7


def test_rate_spammer_uniform(truth, spammer):
    rng = RandomSource(16)
    payload = RatePayload("rank", (RateQuestion("i0"),))
    values = [
        answer_payload(spammer, payload, truth, rng)["rank:rate:i0"]
        for _ in range(300)
    ]
    assert set(values) == set(range(1, 8))


def test_join_pairs_miss_and_false_alarm_rates(truth, reliable):
    rng = RandomSource(17)
    match = JoinPairsPayload("join", (JoinPair("l0", "r0"),))
    nonmatch = JoinPairsPayload("join", (JoinPair("l0", "r1"),))
    hits = sum(
        answer_payload(reliable, match, truth, rng)[join_qid("join", "l0", "r0")]
        for _ in range(300)
    )
    fas = sum(
        answer_payload(reliable, nonmatch, truth, rng)[join_qid("join", "l0", "r1")]
        for _ in range(300)
    )
    assert hits / 300 > 0.8
    assert fas / 300 < 0.05


def test_grid_miss_grows_with_size(truth, reliable):
    rng = RandomSource(18)
    small = JoinGridPayload("join", ("l0",), ("r0",))
    big = JoinGridPayload(
        "join", ("l0", "l1", "x1", "x2", "x3"), ("r0", "r1", "y1", "y2", "y3")
    )
    truth.add_join_task("join", {("x1", "y1")})  # extra non-matches implicit
    small_hits = sum(
        answer_payload(reliable, small, truth, rng)[join_qid("join", "l0", "r0")]
        for _ in range(300)
    )
    big_hits = sum(
        answer_payload(reliable, big, truth, rng)[join_qid("join", "l0", "r0")]
        for _ in range(300)
    )
    assert big_hits < small_hits


def test_grid_spammer_always_no_checks_no_match_box(truth):
    spammer = WorkerProfile(
        worker_id="s", archetype="spammer",
        filter_error=0.5, join_miss=0.5, join_false_alarm=0.5,
        compare_noise=10, rate_noise=10, rate_bias=0,
        feature_carelessness=1.0, yes_bias=0,
        batch_error_growth=0, effort_threshold=40, speed=0.2,
        is_spammer=True, spam_style="always_no",
    )
    rng = RandomSource(19)
    grid = JoinGridPayload("join", ("l0", "l1"), ("r0", "r1"))
    answers = answer_payload(spammer, grid, truth, rng)
    assert not any(answers.values())


def test_categorical_feature_mostly_truth(truth, reliable):
    rng = RandomSource(20)
    payload = GenerativePayload(
        "color",
        (GenerativeQuestion("a"),),
        (GenerativeFieldSpec("value", "Radio", ("red", "blue", UNKNOWN)),),
    )
    answers = Counter(
        answer_payload(reliable, payload, truth, rng)["color:gen:a:value"]
        for _ in range(300)
    )
    assert answers["red"] / 300 > 0.9


def test_text_answer_normalizable(truth, reliable):
    rng = RandomSource(21)
    payload = GenerativePayload(
        "names",
        (GenerativeQuestion("a"),),
        (GenerativeFieldSpec("common", "Text"),),
    )
    from repro.util.text import lowercase_single_space

    values = {
        lowercase_single_space(
            answer_payload(reliable, payload, truth, rng)["names:gen:a:common"]
        )
        for _ in range(50)
    }
    # Surface variants collapse to the truth after normalisation.
    assert "polar bear" in values
    assert len(values) <= 3


def test_pick_best_prefers_extreme(truth, reliable):
    rng = RandomSource(22)
    payload = PickBestPayload("rank", ("i0", "i3", "i5"), pick_most=True)
    picks = Counter(
        answer_payload(reliable, payload, truth, rng)[payload.qid()]
        for _ in range(100)
    )
    assert picks["i5"] > 90


def test_answer_hit_covers_all_payloads(truth, reliable):
    hit = HIT(
        hit_id="h",
        payloads=(
            FilterPayload("flt", (FilterQuestion("a"),)),
            RatePayload("rank", (RateQuestion("i0"),)),
        ),
    )
    answers = answer_hit(reliable, hit, truth, RandomSource(23))
    assert "flt:filter:a" in answers
    assert "rank:rate:i0" in answers
