"""Tests for the plan executor's non-join, non-sort operators."""

import pytest

from repro.core.context import ExecutionConfig
from repro.core.executor import run_plan
from repro.core.optimizer import optimize
from repro.core.planner import build_plan
from repro.datasets import animals_dataset, celebrity_dataset
from repro.errors import ExecutionError
from repro.language.parser import parse_query

from tests.conftest import make_context


def animals_context(seed=3, **config):
    data = animals_dataset()
    ctx = make_context(
        data.truth, data.task_dsl, seed=seed, config=ExecutionConfig(**config)
    )
    ctx.catalog.register_table(data.table)
    return data, ctx


def run_query(ctx, text):
    plan = optimize(build_plan(parse_query(text), ctx.catalog))
    return run_plan(plan, ctx), plan


def test_scan_prefixes_alias():
    data, ctx = animals_context()
    rows, _ = run_query(ctx, "SELECT * FROM animals AS a")
    assert "a.name" in rows[0].schema
    assert len(rows) == 27


def test_project_star_passthrough():
    data, ctx = animals_context()
    rows, plan = run_query(ctx, "SELECT * FROM animals AS a")
    stats = ctx.node_stats[id(plan)]
    assert stats.rows_in == stats.rows_out == 27


def test_project_plain_columns():
    data, ctx = animals_context()
    rows, _ = run_query(ctx, "SELECT a.name FROM animals AS a")
    assert list(rows[0].schema.names) == ["a.name"]


def test_project_alias_output():
    data, ctx = animals_context()
    rows, _ = run_query(ctx, "SELECT a.name AS who FROM animals AS a LIMIT 2")
    assert list(rows[0].schema.names) == ["who"]
    assert len(rows) == 2


def test_project_generative_fields():
    data, ctx = animals_context()
    rows, _ = run_query(
        ctx,
        "SELECT a.name, animalInfo(a.img).common AS common, "
        "animalInfo(a.img).species AS species FROM animals AS a LIMIT 5",
    )
    assert len(rows) == 5
    # Normalised majority answers recover the names for most rows.
    matches = sum(1 for row in rows if row["common"] == row["a.name"])
    assert matches >= 4
    assert all(isinstance(row["species"], str) for row in rows)


def test_computed_filter_via_registered_function():
    data, ctx = animals_context()
    ctx.catalog.register_function("startsWith", lambda s, p: str(s).startswith(p))
    rows, _ = run_query(
        ctx, "SELECT a.name FROM animals AS a WHERE startsWith(a.name, 'w')"
    )
    assert {str(row["a.name"]) for row in rows} == {"whale", "wolf"}
    assert ctx.manager.ledger.total_hits == 0  # no crowd work needed


def test_computed_comparison_filter():
    data, ctx = animals_context()
    rows, _ = run_query(
        ctx, "SELECT a.name FROM animals AS a WHERE a.name = 'hippo'"
    )
    assert len(rows) == 1


def test_limit_zero_rows():
    data, ctx = animals_context()
    rows, _ = run_query(ctx, "SELECT a.name FROM animals AS a LIMIT 0")
    assert rows == []


def test_crowd_predicate_skips_empty_input():
    data, ctx = celebrity_context_for_filter()
    rows, _ = run_query(
        ctx,
        "SELECT c.name FROM celeb c WHERE c.name = 'nobody' AND isFemale(c)",
    )
    assert rows == []
    assert ctx.manager.ledger.total_hits == 0


def celebrity_context_for_filter():
    data = celebrity_dataset(n=6, seed=1)
    data.truth.add_filter_task(
        "isFemale",
        {ref: data.attributes[ref]["gender"] == "Female" for ref in data.celeb_refs},
    )
    ctx = make_context(data.truth, data.task_dsl, seed=1)
    from repro.language.parser import parse_task
    from repro.tasks import task_from_definition

    ctx.catalog.register_task(
        task_from_definition(
            parse_task(
                'TASK isFemale(field) TYPE Filter:\n'
                'Prompt: "<img src=\'%s\'>", tuple[field]\n'
            )
        )
    )
    ctx.catalog.register_table(data.celebs)
    return data, ctx


def test_unknown_plan_node_rejected():
    from repro.core.plan import PlanNode

    class Mystery(PlanNode):
        pass

    data, ctx = animals_context()
    with pytest.raises(ExecutionError):
        run_plan(Mystery(), ctx)
