"""The REPRO_SORTSCALE equivalence contract.

The scale-out sort engine promises that, tournament LIMIT path aside,
every fast implementation is *output-identical* to the reference it
replaces: same orders, same removed-edge sets, same hybrid repair
trajectories, bit for bit. These tests enforce that promise on random
vote corpora with planted cycles (via ``repro.experiments.sort_workload``
and ad-hoc random tournaments), and pin the LIMIT tournament path's
row-identity and HIT savings on the steep-latent workload.
"""

from __future__ import annotations

import pytest

from repro.core.context import ExecutionConfig
from repro.core.engine import Qurk
from repro.core.planner import build_plan
from repro.core.plan import SortNode
from repro.crowd import SimulatedMarketplace
from repro.errors import QurkError
from repro.experiments.sort_workload import comparison_corpus, limit_sort_setup
from repro.language.parser import parse_statements
from repro.relational.catalog import Catalog
from repro.sorting.graph import (
    ComparisonGraph,
    break_cycles,
    graph_order,
    topological_order,
)
from repro.sorting.head_to_head import WinCountIndex, head_to_head_order
from repro.sorting.hybrid import ConfidenceStrategy, HybridSorter
from repro.sorting.rating import RatingSummary
from repro.sorting.topk import tournament_top_k
from repro.util import sortscale
from repro.util.rng import RandomSource


# ---------------------------------------------------------------------------
# Graph layer: orders and removed-edge sets identical under both modes
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("n", [12, 40, 80])
@pytest.mark.parametrize("seed", [0, 3])
def test_graph_order_identical_under_toggle(n, seed):
    items, corpus = comparison_corpus(n, seed=seed)
    with sortscale.forced(False):
        reference = graph_order(items, corpus)
    with sortscale.forced(True):
        scale = graph_order(items, corpus)
    assert reference == scale


@pytest.mark.parametrize("seed", [0, 1, 5])
def test_break_cycles_removed_set_identical(seed):
    items, corpus = comparison_corpus(40, seed=seed)
    removed = {}
    final_edges = {}
    for flag in (False, True):
        graph = ComparisonGraph.from_votes(items, corpus)
        with sortscale.forced(flag):
            removed[flag] = break_cycles(graph)
        final_edges[flag] = graph.edges
    assert removed[False], "workload must actually plant cycles"
    assert set(removed[False]) == set(removed[True])
    assert final_edges[False] == final_edges[True]


@pytest.mark.parametrize("seed", [2, 9])
def test_random_tournament_identical_under_toggle(seed):
    """Dense random tournaments (one giant SCC) — not just windowed ones."""
    rng = RandomSource(seed)
    items = [f"i{k:02d}" for k in range(30)]
    edges = []
    for i in range(len(items)):
        for j in range(i + 1, len(items)):
            if rng.chance(0.5):
                edges.append((items[i], items[j], rng.randint(1, 9)))
            else:
                edges.append((items[j], items[i], rng.randint(1, 9)))
    orders = {}
    removed = {}
    for flag in (False, True):
        graph = ComparisonGraph(items)
        for winner, loser, weight in edges:
            graph.add_edge(winner, loser, weight)
        with sortscale.forced(flag):
            removed[flag] = set(break_cycles(graph))
            orders[flag] = topological_order(graph)
    assert orders[False] == orders[True]
    assert removed[False] == removed[True]


def test_topological_order_identical_on_sparse_dag():
    rng = RandomSource(11)
    items = [f"n{k:03d}" for k in range(60)]
    graph_ref = ComparisonGraph(items)
    graph_scale = ComparisonGraph(items)
    for i in range(len(items)):
        for j in range(i + 1, len(items)):
            if rng.chance(0.15):
                for graph in (graph_ref, graph_scale):
                    graph.add_edge(items[j], items[i])
    with sortscale.forced(False):
        reference = topological_order(graph_ref)
    with sortscale.forced(True):
        scale = topological_order(graph_scale)
    assert reference == scale


def test_indexed_graph_structure_matches_reference_semantics():
    graph = ComparisonGraph(["a", "b"])
    graph.add_edge("b", "a", 2)
    graph.add_edge("c", "a", 1)  # new node appended, insertion order kept
    graph.add_edge("b", "a", 3)  # accumulates
    assert graph.items == ["a", "b", "c"]
    assert graph.edges == {("b", "a"): 5, ("c", "a"): 1}
    assert graph.successors("b") == ["a"]
    assert graph.successors("missing") == []
    edges_copy = graph.edges
    edges_copy[("x", "y")] = 1.0  # public accessor stays a defensive copy
    assert ("x", "y") not in graph.edges
    graph.remove_edge("b", "a")
    assert graph.successors("b") == []


# ---------------------------------------------------------------------------
# Hybrid layer: confidence scoring and repair trajectories bit-identical
# ---------------------------------------------------------------------------


def _random_summaries(n: int, seed: int) -> dict[str, RatingSummary]:
    rng = RandomSource(seed).child("summaries")
    summaries = {}
    for k in range(n):
        item = f"item{k:02d}"
        # Coarse grid means/stds make exact ties common — the regime where
        # a float-drifting scorer would re-rank windows.
        summaries[item] = RatingSummary(
            item=item,
            mean=rng.randint(1, 7) / 2.0,
            std=rng.randint(0, 4) / 4.0,
            count=5,
        )
    return summaries


@pytest.mark.parametrize("n", [8, 21, 40])
@pytest.mark.parametrize("seed", [0, 4])
def test_confidence_window_scores_bit_identical(n, seed):
    summaries = _random_summaries(n, seed)
    order = sorted(summaries)
    size = min(5, n)
    reference = []
    for start in range(0, n - size + 1):
        window_items = [order[start + k] for k in range(size)]
        reference.append(
            ConfidenceStrategy.window_overlap(window_items, summaries)
        )
    from repro.sorting.hybrid import _window_scores_indexed

    indexed = _window_scores_indexed(order, summaries, size)
    assert [score for score, _ in indexed] == reference  # == : bit-exact


@pytest.mark.parametrize("seed", [0, 7])
def test_hybrid_confidence_trajectories_identical(seed):
    summaries = _random_summaries(24, seed)
    latents = {item: i for i, item in enumerate(sorted(summaries))}

    def oracle_compare(window):
        winners = {}
        for i in range(len(window)):
            for j in range(i + 1, len(window)):
                a, b = window[i], window[j]
                winners[(a, b)] = a if latents[a] > latents[b] else b
        return winners

    trajectories = {}
    for flag in (False, True):
        with sortscale.forced(flag):
            sorter = HybridSorter(
                summaries, ConfidenceStrategy(window_size=5), oracle_compare
            )
            trajectories[flag] = sorter.run(15)
    assert trajectories[False] == trajectories[True]


def test_win_count_index_matches_head_to_head_order():
    items = ["a", "b", "c", "d"]
    winners = {("a", "b"): "a", ("c", "b"): "c", ("a", "c"): "a", ("d", "a"): "a"}
    index = WinCountIndex(items)
    for (a, b), winner in winners.items():
        index.record(a, b, winner)
    assert index.order() == head_to_head_order(items, winners)
    assert index.wins("a") == 3 and index.wins("unknown") == 0
    with pytest.raises(QurkError):
        index.record("a", "b", "z")


# ---------------------------------------------------------------------------
# LIMIT tournament path
# ---------------------------------------------------------------------------


def test_tournament_top_k_with_scripted_picks():
    items = [f"v{k}" for k in range(11)]
    calls = []

    def pick(batch):
        calls.append(list(batch))
        return max(batch, key=lambda item: int(item[1:]))

    winners, hits = tournament_top_k(items, pick, k=3, batch_size=4)
    assert winners == ["v10", "v9", "v8"]
    assert hits == len(calls)
    # k successive tournaments over a shrinking field: ≈ k·N/(b−1) picks,
    # nowhere near C(11, 2) = 55 pairwise comparisons.
    assert hits <= 12


def test_tournament_top_k_k_exceeding_items():
    winners, _ = tournament_top_k(["b", "a"], max, k=5, batch_size=2)
    assert winners == ["b", "a"]
    with pytest.raises(QurkError):
        tournament_top_k(["a", "b"], max, k=0)


def _limit_engine(n, seed=0, **config):
    data = limit_sort_setup(n, seed=seed)
    market = SimulatedMarketplace(data.truth, seed=seed)
    engine = Qurk(
        platform=market, config=ExecutionConfig(sort_method="compare", **config)
    )
    engine.register_table(data.table)
    engine.define(data.task_dsl)
    return data, engine


@pytest.mark.parametrize("direction,labels", [
    ("DESC", ["square-197", "square-194", "square-191"]),
    ("", ["square-20", "square-23", "square-26"]),
])
def test_limit_tournament_rows_identical_and_cheaper(direction, labels):
    query = (
        "SELECT squares.label FROM squares "
        f"ORDER BY squareSorter(img) {direction} LIMIT 3"
    )
    outcomes = {}
    for flag in (False, True):
        _, engine = _limit_engine(60)
        with sortscale.forced(flag):
            outcomes[flag] = engine.execute(query)
    assert outcomes[False].column("squares.label") == labels
    assert (
        outcomes[True].column("squares.label")
        == outcomes[False].column("squares.label")
    )
    assert outcomes[True].hit_count < outcomes[False].hit_count


def test_limit_tournament_config_override_beats_toggle():
    query = (
        "SELECT squares.label FROM squares "
        "ORDER BY squareSorter(img) DESC LIMIT 3"
    )
    _, engine = _limit_engine(40)
    with sortscale.forced(True):
        full = engine.execute(
            query, config=engine.config.with_overrides(limit_sort_tournament=False)
        )
    _, engine = _limit_engine(40)
    with sortscale.forced(False):
        tournament = engine.execute(
            query, config=engine.config.with_overrides(limit_sort_tournament=True)
        )
    assert tournament.hit_count < full.hit_count
    assert tournament.column("squares.label") == full.column("squares.label")


def test_limit_tournament_records_signals():
    query = (
        "SELECT squares.label FROM squares "
        "ORDER BY squareSorter(img) DESC LIMIT 3"
    )
    _, engine = _limit_engine(40)
    with sortscale.forced(True):
        result = engine.execute(query)
    signals = {}
    for stats in result.node_stats.values():
        signals.update(stats.signals)
    assert signals.get("limit_tournament_k") == 3.0
    assert signals.get("limit_tournament_hits", 0) > 0


def test_limit_hint_not_used_for_rate_sorts():
    """Rate sorts are already O(N) HITs; the hint must leave them alone."""
    query = (
        "SELECT squares.label FROM squares "
        "ORDER BY squareSorter(img) DESC LIMIT 3"
    )
    hits = {}
    for flag in (False, True):
        data = limit_sort_setup(40)
        market = SimulatedMarketplace(data.truth, seed=0)
        engine = Qurk(
            platform=market, config=ExecutionConfig(sort_method="rate")
        )
        engine.register_table(data.table)
        engine.define(data.task_dsl)
        with sortscale.forced(flag):
            result = engine.execute(query)
        hits[flag] = result.hit_count
        assert len(result) == 3
    assert hits[False] == hits[True]


# ---------------------------------------------------------------------------
# Planner: when the limit hint is (not) attached
# ---------------------------------------------------------------------------


def _plan_catalog():
    catalog = Catalog()
    from repro.datasets.squares import squares_dataset
    from repro.tasks import task_from_definition

    data = squares_dataset(n=4)
    catalog.register_table(data.table)
    for statement in parse_statements(data.task_dsl):
        catalog.register_task(task_from_definition(statement))
    catalog.register_task(
        task_from_definition(
            parse_statements(
                'TASK describe(field) TYPE Generative:\n'
                '    Prompt: "<p>describe %s</p>", tuple[field]\n'
                '    Response: Text("Description")\n'
                '    Combiner: MajorityVote\n'
            )[0]
        )
    )
    return catalog


def _sort_node(plan):
    return next(node for node in plan.walk() if isinstance(node, SortNode))


def test_planner_sets_limit_hint_for_plain_projection():
    catalog = _plan_catalog()
    from repro.core.engine import parse_single_select

    query = parse_single_select(
        "SELECT squares.label FROM squares "
        "ORDER BY squareSorter(img) DESC LIMIT 7",
        catalog,
    )
    assert _sort_node(build_plan(query, catalog)).limit_hint == 7


def test_planner_skips_limit_hint_without_limit_or_with_crowd_projection():
    catalog = _plan_catalog()
    from repro.core.engine import parse_single_select

    no_limit = parse_single_select(
        "SELECT squares.label FROM squares ORDER BY squareSorter(img)", catalog
    )
    assert _sort_node(build_plan(no_limit, catalog)).limit_hint is None

    generative = parse_single_select(
        "SELECT describe(img).note AS note FROM squares "
        "ORDER BY squareSorter(img) LIMIT 2",
        catalog,
    )
    assert _sort_node(build_plan(generative, catalog)).limit_hint is None
