"""Tests for plan construction and the pushdown optimizer."""

import pytest

from repro.core.optimizer import optimize
from repro.core.plan import (
    ComputedFilterNode,
    CrowdPredicateNode,
    JoinNode,
    LimitNode,
    ProjectNode,
    ScanNode,
    SortNode,
    plan_tree_lines,
)
from repro.core.planner import build_plan
from repro.errors import PlanError
from repro.language.parser import parse_query, parse_statements
from repro.relational.catalog import Catalog
from repro.relational.schema import Schema
from repro.relational.table import Table
from repro.tasks import task_from_definition

DSL = """
TASK isFemale(field) TYPE Filter:
    Prompt: "<img src='%s'>", tuple[field]

TASK samePerson(f1, f2) TYPE EquiJoin:
    LeftNormal: "<img src='%s'>", tuple1[f1]
    RightNormal: "<img src='%s'>", tuple2[f2]

TASK gender(field) TYPE Generative:
    Prompt: "<img src='%s'>", tuple[field]
    Response: Radio("Gender", ["Male", "Female", UNKNOWN])

TASK quality(field) TYPE Rank:
    Html: "<img src='%s'>", tuple[field]
"""


@pytest.fixture
def catalog() -> Catalog:
    catalog = Catalog()
    catalog.register_table(Table("celeb", Schema.of("name text", "img url")))
    catalog.register_table(Table("photos", Schema.of("id integer", "img url")))
    from repro.language.ast import TaskDefinition

    for statement in parse_statements(DSL):
        assert isinstance(statement, TaskDefinition)
        catalog.register_task(task_from_definition(statement))
    catalog.register_function("startsWith", lambda s, p: str(s).startswith(p))
    return catalog


def test_basic_plan_shape(catalog):
    plan = build_plan(parse_query("SELECT c.name FROM celeb c"), catalog)
    assert isinstance(plan, ProjectNode)
    assert isinstance(plan.inputs[0], ScanNode)


def test_where_conjuncts_split(catalog):
    plan = build_plan(
        parse_query(
            "SELECT c.name FROM celeb c WHERE isFemale(c) AND c.name != 'x'"
        ),
        catalog,
    )
    kinds = [type(node).__name__ for node in plan.walk()]
    assert "CrowdPredicateNode" in kinds
    assert "ComputedFilterNode" in kinds


def test_join_plan_left_deep(catalog):
    plan = build_plan(
        parse_query(
            "SELECT c.name FROM celeb c JOIN photos p ON samePerson(c.img, p.img)"
        ),
        catalog,
    )
    joins = [node for node in plan.walk() if isinstance(node, JoinNode)]
    assert len(joins) == 1
    assert isinstance(joins[0].inputs[0], ScanNode)
    assert isinstance(joins[0].inputs[1], ScanNode)


def test_join_possibly_preserved(catalog):
    plan = build_plan(
        parse_query(
            "SELECT c.name FROM celeb c JOIN photos p ON samePerson(c.img, p.img) "
            "AND POSSIBLY gender(c.img) = gender(p.img)"
        ),
        catalog,
    )
    join = next(node for node in plan.walk() if isinstance(node, JoinNode))
    assert len(join.possibly) == 1


def test_join_condition_must_be_equijoin(catalog):
    with pytest.raises(PlanError):
        build_plan(
            parse_query("SELECT c.name FROM celeb c JOIN photos p ON isFemale(c)"),
            catalog,
        )
    with pytest.raises(PlanError):
        build_plan(
            parse_query("SELECT c.name FROM celeb c JOIN photos p ON c.img = p.img"),
            catalog,
        )


def test_unknown_table_and_udf(catalog):
    with pytest.raises(PlanError):
        build_plan(parse_query("SELECT x.a FROM missing x"), catalog)
    with pytest.raises(PlanError):
        build_plan(
            parse_query("SELECT c.name FROM celeb c WHERE mystery(c)"), catalog
        )


def test_sort_and_limit_nodes(catalog):
    plan = build_plan(
        parse_query(
            "SELECT c.name FROM celeb c ORDER BY quality(c.img) LIMIT 3"
        ),
        catalog,
    )
    assert isinstance(plan, LimitNode)
    assert any(isinstance(node, SortNode) for node in plan.walk())


def test_optimizer_pushes_computed_below_crowd(catalog):
    plan = build_plan(
        parse_query(
            "SELECT c.name FROM celeb c WHERE isFemale(c) AND startsWith(c.name, 'a')"
        ),
        catalog,
    )
    optimized = optimize(plan)
    order = [type(node).__name__ for node in optimized.walk()]
    # Walking top-down: the crowd filter now sits above the computed filter.
    assert order.index("CrowdPredicateNode") < order.index("ComputedFilterNode")


def test_optimizer_pushes_filters_into_join_side(catalog):
    plan = build_plan(
        parse_query(
            "SELECT c.name FROM celeb c JOIN photos p "
            "ON samePerson(c.img, p.img) WHERE isFemale(c)"
        ),
        catalog,
    )
    optimized = optimize(plan)
    join = next(node for node in optimized.walk() if isinstance(node, JoinNode))
    left = join.inputs[0]
    assert isinstance(left, CrowdPredicateNode)  # filter ran before the join


def test_optimizer_pushes_computed_into_right_side(catalog):
    plan = build_plan(
        parse_query(
            "SELECT c.name FROM celeb c JOIN photos p "
            "ON samePerson(c.img, p.img) WHERE p.id < 10"
        ),
        catalog,
    )
    optimized = optimize(plan)
    join = next(node for node in optimized.walk() if isinstance(node, JoinNode))
    assert isinstance(join.inputs[1], ComputedFilterNode)


def test_cross_side_predicate_stays_above_join(catalog):
    plan = build_plan(
        parse_query(
            "SELECT c.name FROM celeb c JOIN photos p "
            "ON samePerson(c.img, p.img) WHERE c.name != p.id"
        ),
        catalog,
    )
    optimized = optimize(plan)
    assert isinstance(optimized.inputs[0], ComputedFilterNode)


def test_optimizer_fixpoint_bound_scales_with_plan_depth():
    """Deep-plan regression: the pushdown loop's pass bound derives from
    the node count. A predicate sinks through one join per pass, so a
    left-deep stack of ~80 joins needs ~80 passes — the old hard-coded 64
    stranded the filter mid-stack while the docstring claimed the bound
    followed the tree size."""
    from repro.relational.expressions import ColumnRef, Comparison, Literal

    depth = 80  # > the old constant 64
    node: "ScanNode | JoinNode" = ScanNode(table_name="t0", alias="a0")
    for i in range(1, depth + 1):
        node = JoinNode(
            inputs=(node, ScanNode(table_name=f"t{i}", alias=f"a{i}"))
        )
    predicate = Comparison(
        op="=", left=ColumnRef(name="x", qualifier="a0"), right=Literal(1)
    )
    plan = ComputedFilterNode(predicate=predicate, inputs=(node,))
    optimized = optimize(plan)
    filters = [
        n for n in optimized.walk() if isinstance(n, ComputedFilterNode)
    ]
    assert len(filters) == 1
    child = filters[0].inputs[0]
    assert isinstance(child, ScanNode) and child.alias == "a0"


def test_adaptive_pass_fuses_crowd_conjunct_chains(catalog):
    """With an AdaptiveState, adjacent crowd conjuncts fuse into one
    AdaptiveFilterNode (members in query order); computed filters still
    sink below it, and single crowd conjuncts stay unfused."""
    from repro.core.adaptive import AdaptiveState
    from repro.core.plan import AdaptiveFilterNode

    plan = build_plan(
        parse_query(
            "SELECT c.name FROM celeb c "
            "WHERE isFemale(c) AND isFemale(c.img) AND c.name != 'x'"
        ),
        catalog,
    )
    state = AdaptiveState()
    optimized = optimize(plan, adapt=state)
    fused = [n for n in optimized.walk() if isinstance(n, AdaptiveFilterNode)]
    assert len(fused) == 1
    assert [str(m.predicate) for m in fused[0].members] == [
        "isFemale(c)",
        "isFemale(c.img)",
    ]
    assert state.fused_chains == 1 and state.fused_conjuncts == 2
    # The computed conjunct sank below the fused chain.
    order = [type(n).__name__ for n in optimized.walk()]
    assert order.index("AdaptiveFilterNode") < order.index("ComputedFilterNode")
    # No crowd predicate nodes remain in the tree proper.
    assert not any(isinstance(n, CrowdPredicateNode) for n in optimized.walk())


def test_adaptive_pass_leaves_single_conjuncts_alone(catalog):
    from repro.core.adaptive import AdaptiveState
    from repro.core.plan import AdaptiveFilterNode

    plan = build_plan(
        parse_query("SELECT c.name FROM celeb c WHERE isFemale(c)"), catalog
    )
    optimized = optimize(plan, adapt=AdaptiveState())
    assert not any(
        isinstance(n, AdaptiveFilterNode) for n in optimized.walk()
    )
    assert any(isinstance(n, CrowdPredicateNode) for n in optimized.walk())


def test_no_adapt_state_means_static_plan(catalog):
    from repro.core.plan import AdaptiveFilterNode

    plan = build_plan(
        parse_query(
            "SELECT c.name FROM celeb c WHERE isFemale(c) AND isFemale(c.img)"
        ),
        catalog,
    )
    optimized = optimize(plan)  # no state: the paper's static rewriter
    assert not any(
        isinstance(n, AdaptiveFilterNode) for n in optimized.walk()
    )


def test_plan_tree_lines_renders(catalog):
    plan = build_plan(parse_query("SELECT c.name FROM celeb c"), catalog)
    lines = plan_tree_lines(plan)
    assert lines[0].startswith("Project")
    assert lines[1].strip().startswith("Scan")


def test_node_labels(catalog):
    plan = build_plan(
        parse_query(
            "SELECT c.name FROM celeb c JOIN photos p ON samePerson(c.img, p.img) "
            "AND POSSIBLY gender(c.img) = gender(p.img) "
            "WHERE isFemale(c) ORDER BY quality(c.img) LIMIT 2"
        ),
        catalog,
    )
    labels = "\n".join(node.label() for node in plan.walk())
    assert "CrowdJoin" in labels and "1 POSSIBLY" in labels
    assert "Limit(2)" in labels
    assert "Sort(" in labels
