"""Tests for TASK DSL parsing — using the paper's own definitions."""

import pytest

from repro.errors import ParseError
from repro.language.ast import ResponseSpec, TaskDefinition
from repro.language.parser import parse_statements, parse_task
from repro.language.templates import PromptTemplate
from repro.relational.expressions import UNKNOWN

IS_FEMALE = """
TASK isFemale(field) TYPE Filter:
    Prompt: "<table><tr> \\
        <td><img src='%s'></td> \\
        <td>Is the person in the image a woman?</td> \\
        </tr></table>", tuple[field]
    YesText: "Yes"
    NoText: "No"
    Combiner: MajorityVote
"""

ANIMAL_INFO = """
TASK animalInfo(field) TYPE Generative:
    Prompt: "<img src='%s'>", tuple[field]
    Fields: {
        common: { Response: Text("Common name"),
                  Combiner: MajorityVote,
                  Normalizer: LowercaseSingleSpace },
        species: { Response: Text("Species"),
                   Combiner: MajorityVote,
                   Normalizer: LowercaseSingleSpace }
    }
"""

GENDER = """
TASK gender(field) TYPE Generative:
    Prompt: "<img src='%s'>", tuple[field]
    Response: Radio("Gender", ["Male", "Female", UNKNOWN])
    Combiner: MajorityVote
"""

SAME_PERSON = """
TASK samePerson(f1, f2) TYPE EquiJoin:
    SingluarName: "celebrity"
    PluralName: "celebrities"
    LeftPreview: "<img src='%s' class=smImg>", tuple1[f1]
    LeftNormal: "<img src='%s' class=lgImg>", tuple1[f1]
    RightPreview: "<img src='%s' class=smImg>", tuple2[f2]
    RightNormal: "<img src='%s' class=lgImg>", tuple2[f2]
    Combiner: MajorityVote
"""

SQUARE_SORTER = """
TASK squareSorter(field) TYPE Rank:
    SingularName: "square"
    PluralName: "squares"
    OrderDimensionName: "area"
    LeastName: "smallest"
    MostName: "largest"
    Html: "<img src='%s' class=lgImg>", tuple[field]
"""


def test_filter_task_parses():
    defn = parse_task(IS_FEMALE)
    assert defn.name == "isFemale"
    assert defn.params == ("field",)
    assert defn.task_type == "Filter"
    prompt = defn.properties["Prompt"]
    assert isinstance(prompt, PromptTemplate)
    assert prompt.text.count("%s") == 1
    assert prompt.args[0].source == "tuple"
    assert prompt.args[0].param == "field"
    assert defn.properties["YesText"].text == "Yes"


def test_generative_fields_block():
    defn = parse_task(ANIMAL_INFO)
    fields = defn.properties["Fields"]
    assert set(fields) == {"common", "species"}
    assert isinstance(fields["common"]["Response"], ResponseSpec)
    assert fields["common"]["Normalizer"] == "LowercaseSingleSpace"


def test_radio_response_with_unknown():
    defn = parse_task(GENDER)
    response = defn.properties["Response"]
    assert response.kind == "Radio"
    assert response.options == ("Male", "Female", UNKNOWN)


def test_equijoin_two_tuple_sources():
    defn = parse_task(SAME_PERSON)
    assert defn.params == ("f1", "f2")
    left = defn.properties["LeftNormal"]
    right = defn.properties["RightNormal"]
    assert left.args[0].source == "tuple1"
    assert right.args[0].source == "tuple2"


def test_rank_task_labels():
    defn = parse_task(SQUARE_SORTER)
    assert defn.properties["OrderDimensionName"].text == "area"
    assert defn.properties["LeastName"].text == "smallest"


def test_template_unknown_parameter_rejected():
    bad = 'TASK t(a) TYPE Filter:\nPrompt: "%s", tuple[missing]\n'
    with pytest.raises(ParseError):
        parse_task(bad)


def test_multiple_statements():
    statements = parse_statements(IS_FEMALE + "\n" + GENDER)
    assert [s.name for s in statements if isinstance(s, TaskDefinition)] == [
        "isFemale",
        "gender",
    ]


def test_mixed_script_with_query():
    script = GENDER + "\nSELECT c.name FROM celeb c WHERE isFemale(c)"
    statements = parse_statements(script)
    assert len(statements) == 2


def test_require_missing_property():
    defn = parse_task(GENDER)
    with pytest.raises(KeyError):
        defn.require("Nope")
    assert defn.require("Combiner") == "MajorityVote"


def test_task_numeric_property():
    defn = parse_task('TASK t(a) TYPE Rank:\nHtml: "%s", tuple[a]\nBatch: 5\n')
    assert defn.properties["Batch"] == 5


def test_adjacent_strings_concatenate():
    defn = parse_task('TASK t(a) TYPE Filter:\nPrompt: "one " "two %s", tuple[a]\n')
    assert defn.properties["Prompt"].text == "one two %s"


def test_task_str():
    assert str(parse_task(GENDER)) == "TASK gender(field) TYPE Generative"
