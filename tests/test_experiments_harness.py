"""Tests for the experiment harness and (smoke-level) the runners."""

import pytest

from repro.experiments import EXPERIMENTS, ExperimentTable, describe_experiments
from repro.experiments.harness import (
    binary_confusion,
    combine_both_ways,
    merge_vote_corpora,
    single_vote_accuracy,
)
from repro.hits.hit import Vote


def votes(*values):
    return [Vote(f"w{i}", v) for i, v in enumerate(values)]


def test_experiment_table_helpers():
    table = ExperimentTable("X", "title", headers=["name", "value"])
    table.add_row("a", 1)
    table.add_row("b", 2)
    table.note("a note")
    assert table.column("value") == [1, 2]
    assert table.row_by("name", "b") == ["b", 2]
    assert table.cell("a", "value") == 1
    text = table.format()
    assert "[X] title" in text and "a note" in text
    with pytest.raises(KeyError):
        table.row_by("name", "zzz")


def test_merge_vote_corpora():
    merged = merge_vote_corpora(
        [{"q": votes(True)}, {"q": votes(False), "r": votes(True)}]
    )
    assert len(merged["q"]) == 2
    assert len(merged["r"]) == 1


def test_binary_confusion():
    decisions = {"q1": True, "q2": False, "q3": True}
    truth = {"q1": True, "q2": True, "q3": False, "q4": False}
    tp, fn, tn, fp = binary_confusion(decisions, truth)
    assert (tp, fn, tn, fp) == (1, 1, 1, 1)


def test_single_vote_accuracy():
    corpus = {"q1": votes(True, False), "q2": votes(False, False)}
    truth = {"q1": True, "q2": False}
    assert single_vote_accuracy(corpus, truth, positives=True) == 0.5
    assert single_vote_accuracy(corpus, truth, positives=False) == 1.0


def test_combine_both_ways_agree_on_clean_corpus():
    corpus = {"q": votes(True, True, True, False)}
    mv, qa = combine_both_ways(corpus)
    assert mv["q"] is True and qa["q"] is True


def test_registry_covers_all_paper_artifacts():
    ids = {entry.experiment_id for entry in EXPERIMENTS}
    expected = {
        "EXP-T1", "EXP-F3", "EXP-F4", "EXP-S33", "EXP-T2", "EXP-T3",
        "EXP-T4", "EXP-COST", "EXP-S422a", "EXP-S422b", "EXP-S422c",
        "EXP-F6", "EXP-F7", "EXP-S424", "EXP-T5", "EXP-ABL",
    }
    assert expected <= ids
    text = describe_experiments()
    assert "EXP-T5" in text and "bench_table5_end_to_end.py" in text


def test_run_table1_smoke_small():
    from repro.experiments.join_experiments import run_table1

    table = run_table1(seed=1, n_celebs=6)
    assert table.cell("IDEAL", "TruePos (MV)") == 6
    assert len(table.rows) == 4


def test_run_table2_smoke_small():
    from repro.experiments.feature_experiments import run_table2

    table = run_table2(seed=1, n_celebs=8)
    assert len(table.rows) == 4
    for row in table.rows:
        errors, saved = row[2], row[3]
        assert 0 <= errors <= 8
        assert saved >= 0


def test_run_compare_batching_smoke():
    from repro.experiments.sort_experiments import run_compare_batching

    table = run_compare_batching(seed=1, n=12)
    sizes = table.column("Group size")
    assert sizes == [5, 10, 20]
