"""Tests for the expression AST, including UNKNOWN semantics."""

import pytest

from repro.errors import ExecutionError
from repro.relational.expressions import (
    UNKNOWN,
    And,
    BinaryOp,
    ColumnRef,
    Comparison,
    Literal,
    Not,
    Or,
    UDFCall,
    conjuncts,
    feature_equal,
)
from repro.relational.rows import Row
from repro.relational.schema import Schema


@pytest.fixture
def row() -> Row:
    return Row(
        Schema.of("c.name text", "c.age integer", "c.img url"),
        {"c.name": "ada", "c.age": 36, "c.img": "img://1"},
    )


def test_literal(row):
    assert Literal(5).evaluate(row) == 5


def test_column_ref_qualified(row):
    assert ColumnRef("name", "c").evaluate(row) == "ada"


def test_column_ref_suffix_resolution(row):
    assert ColumnRef("age").evaluate(row) == 36


def test_column_ref_ambiguous():
    row = Row(Schema.of("a.x", "b.x"), {"a.x": 1, "b.x": 2})
    with pytest.raises(ExecutionError):
        ColumnRef("x").evaluate(row)


def test_column_ref_missing(row):
    with pytest.raises(ExecutionError):
        ColumnRef("height", "c").evaluate(row)


def test_comparison_operators(row):
    age = ColumnRef("age", "c")
    assert Comparison("=", age, Literal(36)).evaluate(row) is True
    assert Comparison("!=", age, Literal(36)).evaluate(row) is False
    assert Comparison("<", age, Literal(40)).evaluate(row) is True
    assert Comparison(">=", age, Literal(36)).evaluate(row) is True


def test_comparison_rejects_unknown_operator():
    with pytest.raises(ExecutionError):
        Comparison("~", Literal(1), Literal(2))


def test_unknown_equality_wildcard():
    assert feature_equal(UNKNOWN, "brown") is True
    assert feature_equal("brown", UNKNOWN) is True
    assert feature_equal("brown", "blond") is False
    assert feature_equal("brown", "brown") is True


def test_unknown_in_comparison(row):
    eq = Comparison("=", Literal(UNKNOWN), Literal("blond"))
    assert eq.evaluate(row) is True
    ne = Comparison("!=", Literal(UNKNOWN), Literal("blond"))
    assert ne.evaluate(row) is False
    lt = Comparison("<", Literal(UNKNOWN), Literal(1))
    assert lt.evaluate(row) is True  # ordered comparisons never prune UNKNOWN


def test_unknown_is_singleton_and_falsy():
    from repro.relational.expressions import _Unknown

    assert _Unknown() is UNKNOWN
    assert not UNKNOWN
    assert repr(UNKNOWN) == "UNKNOWN"


def test_and_or_not(row):
    t = Literal(True)
    f = Literal(False)
    assert And(operands=(t, t)).evaluate(row) is True
    assert And(operands=(t, f)).evaluate(row) is False
    assert Or(operands=(f, t)).evaluate(row) is True
    assert Or(operands=(f, f)).evaluate(row) is False
    assert Not(f).evaluate(row) is True


def test_binary_op(row):
    expr = BinaryOp("+", ColumnRef("age", "c"), Literal(4))
    assert expr.evaluate(row) == 40
    with pytest.raises(ExecutionError):
        BinaryOp("+", ColumnRef("name", "c"), Literal(4)).evaluate(row)


def test_udf_call_with_env(row):
    call = UDFCall("double", (ColumnRef("age", "c"),))
    assert call.evaluate(row, {"double": lambda v: v * 2}) == 72


def test_udf_call_field_access(row):
    call = UDFCall("info", (ColumnRef("img", "c"),), field="species")
    env = {"info": lambda v: {"species": "human"}}
    assert call.evaluate(row, env) == "human"


def test_udf_call_without_binding_raises(row):
    with pytest.raises(ExecutionError):
        UDFCall("crowdThing", (Literal(1),)).evaluate(row)


def test_udf_calls_collection():
    inner = UDFCall("g", (Literal(1),))
    outer = UDFCall("f", (inner,))
    expr = And(operands=(Comparison("=", outer, Literal(2)),))
    names = [call.name for call in expr.udf_calls()]
    assert names == ["f", "g"]


def test_references():
    expr = Comparison(
        "=",
        UDFCall("f", (ColumnRef("img", "c"),)),
        ColumnRef("img", "p"),
    )
    assert expr.references() == {"c.img", "p.img"}


def test_conjuncts_flattening():
    a, b, c = Literal(1), Literal(2), Literal(3)
    nested = And(operands=(a, And(operands=(b, c))))
    assert conjuncts(nested) == [a, b, c]
    assert conjuncts(None) == []
    assert conjuncts(a) == [a]
