"""Tests for Kendall's τ-b, cross-validated against scipy."""

import pytest
from scipy import stats

from repro.errors import QurkError
from repro.metrics.kendall import kendall_tau_b, kendall_tau_from_orders


def test_perfect_correlation():
    assert kendall_tau_b([1, 2, 3, 4], [10, 20, 30, 40]) == pytest.approx(1.0)


def test_inverse_correlation():
    assert kendall_tau_b([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)


def test_matches_scipy_without_ties():
    x = [5.0, 1.0, 3.0, 2.0, 4.0, 7.0, 6.0]
    y = [6.0, 2.0, 1.0, 3.0, 5.0, 7.0, 4.0]
    expected = stats.kendalltau(x, y, variant="b").statistic
    assert kendall_tau_b(x, y) == pytest.approx(expected)


def test_matches_scipy_with_ties():
    x = [1.0, 2.0, 2.0, 3.0, 3.0, 3.0]
    y = [1.0, 3.0, 2.0, 2.0, 3.0, 1.0]
    expected = stats.kendalltau(x, y, variant="b").statistic
    assert kendall_tau_b(x, y) == pytest.approx(expected)


def test_length_mismatch():
    with pytest.raises(QurkError):
        kendall_tau_b([1, 2], [1])


def test_too_short():
    with pytest.raises(QurkError):
        kendall_tau_b([1], [1])


def test_degenerate_all_tied():
    with pytest.raises(QurkError):
        kendall_tau_b([1, 1, 1], [1, 2, 3])


def test_orders_identical():
    order = ["a", "b", "c", "d"]
    assert kendall_tau_from_orders(order, list(order)) == pytest.approx(1.0)


def test_orders_reversed():
    order = ["a", "b", "c", "d"]
    assert kendall_tau_from_orders(order, order[::-1]) == pytest.approx(-1.0)


def test_orders_one_swap():
    a = ["a", "b", "c", "d"]
    b = ["b", "a", "c", "d"]
    tau = kendall_tau_from_orders(a, b)
    assert 0.6 < tau < 1.0


def test_orders_different_items_rejected():
    with pytest.raises(QurkError):
        kendall_tau_from_orders(["a", "b"], ["a", "c"])


def test_orders_with_tied_scores():
    # Equal mean ratings keep items tied; τ-b must handle it.
    order = ["a", "b", "c"]
    scores_b = {"a": 1.0, "b": 1.0, "c": 2.0}
    tau = kendall_tau_from_orders(
        order, order, scores_b={**scores_b}, scores_a=None
    )
    expected = stats.kendalltau([0, 1, 2], [1.0, 1.0, 2.0], variant="b").statistic
    assert tau == pytest.approx(expected)
