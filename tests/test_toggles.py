"""The REPRO_PIPELINE / REPRO_FASTPATH toggles' environment contract.

Both toggles used to read their environment variable once, at import, so
``os.environ["REPRO_PIPELINE"] = "0"`` after ``import repro`` was silently
ignored. They now re-read the variable at engine/session construction
(:func:`refresh_from_env`); a *changed* environment value wins, while an
unchanged environment leaves programmatic ``set_enabled`` / ``forced``
overrides alone.
"""

from __future__ import annotations

import os

import pytest

from repro.core.engine import Qurk
from repro.core.session import EngineSession
from repro.crowd import SimulatedMarketplace
from repro.datasets import animals_dataset
from repro.util import adapt, fastpath, pipeline, resilience, sortscale, store, vector


def _require_unset(var: str) -> str | None:
    previous = os.environ.get(var)
    if previous is not None:
        pytest.skip(f"{var} is set in this environment; test assumes defaults")
    return previous


def _restore(var: str, previous: str | None) -> None:
    if previous is None:
        os.environ.pop(var, None)
    else:
        os.environ[var] = previous
    pipeline.refresh_from_env()
    fastpath.refresh_from_env()
    adapt.refresh_from_env()
    sortscale.refresh_from_env()
    resilience.refresh_from_env()
    store.refresh_from_env()
    vector.refresh_from_env()


def animals_engine():
    data = animals_dataset()
    market = SimulatedMarketplace(data.truth, seed=1)
    engine = Qurk(platform=market)
    engine.register_table(data.table)
    return engine, data


def test_pipeline_env_set_after_import_takes_effect_at_engine_construction():
    previous = _require_unset("REPRO_PIPELINE")
    try:
        os.environ["REPRO_PIPELINE"] = "0"
        assert pipeline.enabled()  # not yet re-read: construction does that
        engine, _ = animals_engine()
        assert not pipeline.enabled()
        result = engine.execute("SELECT a.name FROM animals a")
        assert result.pipeline_summary is None  # ran depth-first
    finally:
        _restore("REPRO_PIPELINE", previous)
    engine, _ = animals_engine()
    assert pipeline.enabled()
    assert engine.execute("SELECT a.name FROM animals a").pipeline_summary is not None


def test_pipeline_env_honored_by_session_construction():
    previous = _require_unset("REPRO_PIPELINE")
    try:
        os.environ["REPRO_PIPELINE"] = "0"
        data = animals_dataset()
        session = EngineSession(platform=SimulatedMarketplace(data.truth, seed=1))
        assert not pipeline.enabled()
        session.register_table(data.table)
        query = "SELECT a.name FROM animals a"
        h0, h1 = session.submit(query), session.submit(query)
        outcome = session.run()
        assert outcome[h0].pipeline_summary is None
        assert outcome[h1].pipeline_summary is None
        # With nothing pipelinable there is nothing to interleave: the
        # session must report the serial execution that actually happened.
        assert outcome.stats.mode == "serial"
    finally:
        _restore("REPRO_PIPELINE", previous)


def test_fastpath_env_set_after_import_takes_effect_at_engine_construction():
    previous = _require_unset("REPRO_FASTPATH")
    try:
        os.environ["REPRO_FASTPATH"] = "0"
        assert fastpath.enabled()
        animals_engine()
        assert not fastpath.enabled()
    finally:
        _restore("REPRO_FASTPATH", previous)
    animals_engine()
    assert fastpath.enabled()


def test_adapt_env_set_after_import_takes_effect_at_engine_construction():
    previous = _require_unset("REPRO_ADAPT")
    try:
        os.environ["REPRO_ADAPT"] = "0"
        assert adapt.enabled()  # not yet re-read: construction does that
        engine, _ = animals_engine()
        assert not adapt.enabled()
        result = engine.execute("SELECT a.name FROM animals a")
        assert result.adaptive_summary is None  # static rewriter ran
    finally:
        _restore("REPRO_ADAPT", previous)
    engine, _ = animals_engine()
    assert adapt.enabled()
    assert (
        engine.execute("SELECT a.name FROM animals a").adaptive_summary
        is not None
    )


def test_sortscale_env_set_after_import_takes_effect_at_engine_construction():
    previous = _require_unset("REPRO_SORTSCALE")
    try:
        os.environ["REPRO_SORTSCALE"] = "0"
        assert sortscale.enabled()  # not yet re-read: construction does that
        animals_engine()
        assert not sortscale.enabled()
    finally:
        _restore("REPRO_SORTSCALE", previous)
    animals_engine()
    assert sortscale.enabled()


def test_sortscale_env_honored_by_session_construction():
    previous = _require_unset("REPRO_SORTSCALE")
    try:
        os.environ["REPRO_SORTSCALE"] = "0"
        data = animals_dataset()
        EngineSession(platform=SimulatedMarketplace(data.truth, seed=1))
        assert not sortscale.enabled()
    finally:
        _restore("REPRO_SORTSCALE", previous)


def test_resilience_env_set_after_import_takes_effect_at_engine_construction():
    previous = _require_unset("REPRO_RESILIENCE")
    try:
        os.environ["REPRO_RESILIENCE"] = "0"
        assert resilience.enabled()  # not yet re-read: construction does that
        engine, _ = animals_engine()
        assert not resilience.enabled()
    finally:
        _restore("REPRO_RESILIENCE", previous)
    animals_engine()
    assert resilience.enabled()


def test_resilience_env_honored_by_session_construction():
    previous = _require_unset("REPRO_RESILIENCE")
    try:
        os.environ["REPRO_RESILIENCE"] = "0"
        data = animals_dataset()
        EngineSession(platform=SimulatedMarketplace(data.truth, seed=1))
        assert not resilience.enabled()
    finally:
        _restore("REPRO_RESILIENCE", previous)


def test_store_env_set_after_import_takes_effect_at_engine_construction(tmp_path):
    previous = _require_unset("REPRO_STORE")
    db_path = tmp_path / "answers.db"
    try:
        os.environ["REPRO_STORE"] = "0"
        assert store.enabled()  # not yet re-read: construction does that
        data = animals_dataset()
        engine = Qurk(
            platform=SimulatedMarketplace(data.truth, seed=1), store=db_path
        )
        assert not store.enabled()
        assert engine.store is None  # configured store ignored entirely
        engine.register_table(data.table)
        result = engine.execute("SELECT a.name FROM animals a")
        assert result.store_summary is None
        assert not db_path.exists()  # not even the file was opened
    finally:
        _restore("REPRO_STORE", previous)
    engine = Qurk(
        platform=SimulatedMarketplace(data.truth, seed=1), store=db_path
    )
    assert store.enabled()
    assert engine.store is not None
    engine.store.close()


def test_store_env_honored_by_session_construction(tmp_path):
    previous = _require_unset("REPRO_STORE")
    db_path = tmp_path / "answers.db"
    try:
        os.environ["REPRO_STORE"] = "0"
        data = animals_dataset()
        session = EngineSession(
            platform=SimulatedMarketplace(data.truth, seed=1), store=db_path
        )
        assert not store.enabled()
        assert session.store is None
        # With the store ignored, the session falls back to a plain
        # in-process TaskCache as its shared cross-query cache.
        from repro.hits.cache import TaskCache

        assert isinstance(session.cache, TaskCache)
        assert not db_path.exists()
    finally:
        _restore("REPRO_STORE", previous)


def test_store_refresh_does_not_clobber_forced_context(tmp_path):
    """An unchanged environment leaves forced()/set_enabled() alone, so a
    forced(False) block survives engine construction inside it."""
    data = animals_dataset()
    db_path = tmp_path / "answers.db"
    with store.forced(False):
        engine = Qurk(
            platform=SimulatedMarketplace(data.truth, seed=1), store=db_path
        )
        assert not store.enabled()
        assert engine.store is None
    assert store.enabled()


def test_vector_env_set_after_import_takes_effect_at_engine_construction():
    """REPRO_VECTOR defaults *off* (opt-in), so the env contract runs in the
    opposite direction from the other toggles: setting the variable after
    import must arm the kernel at the next engine construction."""
    previous = _require_unset("REPRO_VECTOR")
    try:
        os.environ["REPRO_VECTOR"] = "1"
        assert not vector.requested()  # not yet re-read: construction does that
        animals_engine()
        assert vector.requested()
        # enabled() additionally gates on numpy being importable.
        assert vector.enabled() == vector.available()
    finally:
        _restore("REPRO_VECTOR", previous)
    animals_engine()
    assert not vector.requested()
    assert not vector.enabled()


def test_vector_env_honored_by_session_construction():
    previous = _require_unset("REPRO_VECTOR")
    try:
        os.environ["REPRO_VECTOR"] = "1"
        data = animals_dataset()
        EngineSession(platform=SimulatedMarketplace(data.truth, seed=1))
        assert vector.requested()
    finally:
        _restore("REPRO_VECTOR", previous)


def test_vector_refresh_does_not_clobber_forced_context():
    """An unchanged environment leaves forced()/set_enabled() alone, so a
    forced(True) block survives engine construction inside it."""
    _require_unset("REPRO_VECTOR")
    with vector.forced(True):
        animals_engine()
        assert vector.requested()
    assert not vector.requested()


def test_vector_requested_without_numpy_degrades_to_scalar(monkeypatch):
    """With numpy unimportable, a requested kernel must not break anything:
    enabled() stays False, the degradation note appears, a RuntimeWarning
    fires at construction, and the query runs on the scalar path."""
    monkeypatch.setattr(vector, "_NUMPY", None)
    monkeypatch.setattr(vector, "_NUMPY_PROBED", True)
    # Both the forced() entry and engine construction warn; the whole
    # block sits inside pytest.warns so neither leaks into the run log.
    with pytest.warns(RuntimeWarning, match="REPRO_VECTOR"):
        with vector.forced(True):
            assert vector.requested()
            assert not vector.available()
            assert not vector.enabled()
            assert vector.requested_but_unavailable()
            note = vector.status_note()
            assert note is not None and "numpy" in note
            engine, _ = animals_engine()
            result = engine.execute("SELECT a.name FROM animals a")
            assert result.rows
            # The degradation note also reaches the EXPLAIN footer.
            assert "numpy is not installed" in result.explain()


def test_resilience_config_overrides_toggle():
    """ExecutionConfig.resilience beats the toggle in both directions (on a
    faulted marketplace, the only place the layer arms at all)."""
    from repro.core.context import ExecutionConfig
    from repro.crowd import FaultPlan
    from repro.datasets import animals_dataset

    data = animals_dataset()
    query = "SELECT a.name FROM animals a"

    def faulted_engine():
        market = SimulatedMarketplace(
            data.truth, seed=1, faults=FaultPlan(abandonment_rate=0.2)
        )
        engine = Qurk(platform=market)
        engine.register_table(data.table)
        return engine

    with resilience.forced(True):
        result = faulted_engine().execute(
            query, config=ExecutionConfig(resilience=False)
        )
        assert result.degradation_summary is None
    with resilience.forced(False):
        result = faulted_engine().execute(
            query, config=ExecutionConfig(resilience=True)
        )
        assert result.degradation_summary is not None


def test_adapt_config_overrides_toggle():
    from repro.core.context import ExecutionConfig

    engine, _ = animals_engine()
    with adapt.forced(True):
        result = engine.execute(
            "SELECT a.name FROM animals a", config=ExecutionConfig(adapt=False)
        )
        assert result.adaptive_summary is None
    with adapt.forced(False):
        result = engine.execute(
            "SELECT a.name FROM animals a", config=ExecutionConfig(adapt=True)
        )
        assert result.adaptive_summary is not None


def test_refresh_does_not_clobber_programmatic_overrides():
    """An unchanged environment must leave forced()/set_enabled() alone —
    constructing an engine inside a forced(False) block keeps it off."""
    with pipeline.forced(False):
        animals_engine()
        assert not pipeline.enabled()
    assert pipeline.enabled()
    with fastpath.forced(False):
        animals_engine()
        assert not fastpath.enabled()
    assert fastpath.enabled()


def test_env_change_overrides_programmatic_setting():
    previous = os.environ.get("REPRO_FASTPATH")
    try:
        fastpath.set_enabled(False)
        os.environ["REPRO_FASTPATH"] = "1"
        assert fastpath.refresh_from_env()  # changed env wins
        assert fastpath.enabled()
    finally:
        _restore("REPRO_FASTPATH", previous)
