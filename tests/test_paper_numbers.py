"""Internal consistency of the transcribed paper numbers, and cross-checks
between the paper's arithmetic and our implementations."""

import pytest

from repro.experiments import paper_numbers as paper
from repro.hits.pricing import PricingModel
from repro.joins.batching import JoinInterface, hit_count_estimate
from repro.sorting.groups import minimum_group_count


def test_pricing_constants_consistent():
    assert paper.COST_PER_ASSIGNMENT == pytest.approx(
        paper.REWARD_PER_ASSIGNMENT + paper.COMMISSION_PER_ASSIGNMENT
    )
    pricing = PricingModel()
    assert pricing.per_assignment == paper.COST_PER_ASSIGNMENT
    assert pricing.cost(900 * 10) == pytest.approx(paper.NAIVE_JOIN_900_PAIRS_10_VOTES)
    assert pricing.cost(900 * 5) == pytest.approx(paper.UNFILTERED_CELEBRITY_JOIN)


def test_cost_reduction_narrative():
    assert paper.FILTERED_CELEBRITY_JOIN < paper.UNFILTERED_CELEBRITY_JOIN / 2
    assert paper.FILTERED_AND_BATCHED_CELEBRITY_JOIN == pytest.approx(
        paper.FILTERED_CELEBRITY_JOIN / 10
    )


def test_table1_rows_bounded_by_ideal():
    for counts in paper.TABLE1.values():
        assert counts["tp_mv"] <= paper.TABLE1_IDEAL["true_pos"]
        assert counts["tn_mv"] <= paper.TABLE1_IDEAL["true_neg"]


def test_table2_saved_within_bounds():
    for row in paper.TABLE2:
        assert 0 <= row.saved_comparisons <= 870
        assert row.join_cost < paper.UNFILTERED_CELEBRITY_JOIN


def test_table2_combined_beats_isolated():
    combined = [row for row in paper.TABLE2 if row.combined]
    isolated = [row for row in paper.TABLE2 if not row.combined]
    mean = lambda rows, attr: sum(getattr(r, attr) for r in rows) / len(rows)
    assert mean(combined, "errors") < mean(isolated, "errors")
    assert mean(combined, "join_cost") < mean(isolated, "join_cost")


def test_table3_gender_most_effective():
    assert paper.TABLE3["gender"]["cost"] > paper.TABLE3["hairColor"]["cost"]
    assert paper.TABLE3["gender"]["cost"] > paper.TABLE3["skinColor"]["cost"]
    assert paper.TABLE3["hairColor"]["errors"] == 0  # dropping hair fixes errors


def test_table4_feature_ordering():
    for kappas in paper.TABLE4_FULL.values():
        assert kappas["gender"] > kappas["hair"]
    combined_skin = [
        kappas["skin"] for key, kappas in paper.TABLE4_FULL.items() if key[1]
    ]
    isolated_skin = [
        kappas["skin"] for key, kappas in paper.TABLE4_FULL.items() if not key[1]
    ]
    assert min(combined_skin) > max(isolated_skin)


def test_table5_matches_hit_arithmetic():
    """The paper's Table 5 rows follow |R||S|/(b or r·s) with 211 scenes,
    117 filter survivors, and 5 actors — validated against our estimator."""
    assert paper.TABLE5[("Join", "No Filter + Simple")] == hit_count_estimate(
        211, 5, JoinInterface.SIMPLE
    )
    assert paper.TABLE5[("Join", "No Filter + Naive")] == hit_count_estimate(
        211, 5, JoinInterface.NAIVE, batch_size=5
    )
    assert paper.TABLE5[("Join", "No Filter + Smart 5x5")] == hit_count_estimate(
        211, 5, JoinInterface.SMART, grid_rows=5, grid_cols=5
    )
    filter_hits = paper.TABLE5[("Join", "Filter")]
    assert filter_hits == 43  # ceil(211 / 5) batched extraction
    assert paper.TABLE5[("Join", "Filter + Simple")] == filter_hits + hit_count_estimate(
        117, 5, JoinInterface.SIMPLE
    )
    assert paper.TABLE5[("Join", "Filter + Naive")] == filter_hits + hit_count_estimate(
        117, 5, JoinInterface.NAIVE, batch_size=5
    )
    assert paper.TABLE5[("Join", "Filter + Smart 3x3")] == filter_hits + hit_count_estimate(
        117, 5, JoinInterface.SMART, grid_rows=3, grid_cols=3
    )
    # Smart 5x5: the paper floors 585/25 = 23.4 → 23; our estimator ceils.
    assert (
        abs(
            paper.TABLE5[("Join", "Filter + Smart 5x5")]
            - (filter_hits + hit_count_estimate(117, 5, JoinInterface.SMART, grid_rows=5, grid_cols=5))
        )
        <= 1
    )


def test_table5_totals():
    assert paper.TABLE5[("Total", "unoptimized")] == (
        paper.TABLE5[("Join", "No Filter + Simple")]
        + paper.TABLE5[("Order By", "Compare")]
    )
    assert paper.TABLE5[("Total", "optimized")] == (
        paper.TABLE5[("Join", "Filter + Smart 5x5")]
        + paper.TABLE5[("Order By", "Rate")]
    )
    assert paper.table5_reduction() == pytest.approx(
        paper.END_TO_END_REDUCTION, abs=0.1
    )


def test_movie_selectivity_consistent():
    assert 117 / paper.MOVIE_SCENES == pytest.approx(
        paper.NUM_IN_SCENE_SELECTIVITY, abs=0.01
    )


def test_fig7_compare_bound_matches_covering_design():
    assert minimum_group_count(40, 5) == pytest.approx(paper.FIG7_COMPARE_HITS)


def test_single_worker_accuracies():
    assert paper.SINGLE_WORKER_TP_SIMPLE == pytest.approx(0.783, abs=0.001)
    assert paper.SINGLE_WORKER_TP_SMART_3X3 == pytest.approx(0.527, abs=0.001)
    assert paper.MV_TP_SIMPLE > paper.SINGLE_WORKER_TP_SIMPLE
