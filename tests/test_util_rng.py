"""Tests for the seeded randomness plumbing."""

import pytest

from repro.util.rng import RandomSource, child_seed, spawn_rng


def test_same_seed_same_stream():
    a = RandomSource(42)
    b = RandomSource(42)
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_seeds_differ():
    a = RandomSource(1)
    b = RandomSource(2)
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_child_seed_is_stable_and_label_sensitive():
    assert child_seed(7, "workers") == child_seed(7, "workers")
    assert child_seed(7, "workers") != child_seed(7, "latency")
    assert child_seed(7, "a", 1) != child_seed(7, "a", 2)


def test_child_streams_are_independent():
    parent = RandomSource(9)
    left = parent.child("left")
    right = parent.child("right")
    assert [left.random() for _ in range(5)] != [right.random() for _ in range(5)]


def test_spawn_rng_matches_child():
    assert spawn_rng(5, "x").random() == RandomSource(child_seed(5, "x")).random()


def test_chance_extremes():
    rng = RandomSource(0)
    assert rng.chance(1.0) is True
    assert rng.chance(0.0) is False
    assert rng.chance(1.5) is True
    assert rng.chance(-0.5) is False


def test_chance_rate_approximates_probability():
    rng = RandomSource(3)
    hits = sum(1 for _ in range(20000) if rng.chance(0.3))
    assert 0.27 < hits / 20000 < 0.33


def test_randint_bounds():
    rng = RandomSource(1)
    values = {rng.randint(1, 3) for _ in range(200)}
    assert values == {1, 2, 3}


def test_exponential_positive_and_rate_scaling():
    rng = RandomSource(2)
    fast = [rng.exponential(10.0) for _ in range(2000)]
    slow = [rng.exponential(0.1) for _ in range(2000)]
    assert all(v > 0 for v in fast)
    assert sum(fast) / len(fast) < sum(slow) / len(slow)


def test_exponential_rejects_nonpositive_rate():
    with pytest.raises(ValueError):
        RandomSource(0).exponential(0.0)


def test_weighted_index_distribution():
    rng = RandomSource(4)
    counts = [0, 0]
    for _ in range(10000):
        counts[rng.weighted_index([3.0, 1.0])] += 1
    assert 0.70 < counts[0] / 10000 < 0.80


def test_weighted_index_rejects_zero_weights():
    with pytest.raises(ValueError):
        RandomSource(0).weighted_index([0.0, 0.0])


def test_zipf_index_favors_low_ranks():
    rng = RandomSource(5)
    counts = [0] * 10
    for _ in range(10000):
        counts[rng.zipf_index(10)] += 1
    assert counts[0] > counts[5] > 0
    assert counts[0] > counts[9]


def test_shuffled_preserves_elements():
    rng = RandomSource(6)
    items = list(range(30))
    shuffled = rng.shuffled(items)
    assert sorted(shuffled) == items
    assert items == list(range(30))  # original untouched


def test_sample_without_replacement():
    rng = RandomSource(7)
    sample = rng.sample(list(range(10)), 4)
    assert len(sample) == len(set(sample)) == 4


# -- fast-path stream preservation ------------------------------------------


def test_weighted_index_fast_matches_reference():
    from repro.util import fastpath

    weights = [1.0 / (i + 1) ** 0.9 for i in range(37)]
    with fastpath.forced(True):
        fast = [RandomSource(9).weighted_index(weights) for _ in range(1)]
        fast += [x for x in _draw_many(RandomSource(9), weights)]
    with fastpath.forced(False):
        ref = [RandomSource(9).weighted_index(weights) for _ in range(1)]
        ref += [x for x in _draw_many(RandomSource(9), weights)]
    assert fast == ref


def _draw_many(rng: RandomSource, weights) -> list[int]:
    return [rng.weighted_index(weights) for _ in range(500)]


def test_zipf_index_fast_matches_reference():
    from repro.util import fastpath

    with fastpath.forced(True):
        rng = RandomSource(12)
        fast = [rng.zipf_index(40, 0.9) for _ in range(500)]
    with fastpath.forced(False):
        rng = RandomSource(12)
        ref = [rng.zipf_index(40, 0.9) for _ in range(500)]
    assert fast == ref


def test_weighted_index_cumulative_matches_weighted_index():
    from itertools import accumulate

    weights = [0.5, 2.0, 0.25, 3.0]
    a = RandomSource(5)
    b = RandomSource(5)
    cumulative = list(accumulate(weights))
    for _ in range(200):
        assert a.weighted_index(weights) == b.weighted_index_cumulative(cumulative)


def test_weighted_index_cumulative_rejects_zero_total():
    with pytest.raises(ValueError):
        RandomSource(0).weighted_index_cumulative([0.0, 0.0])
    with pytest.raises(ValueError):
        RandomSource(0).weighted_index_cumulative([])


def test_child_seed_memoization_is_transparent():
    from repro.util import fastpath
    from repro.util.rng import child_seed_from_material

    with fastpath.forced(True):
        fast = child_seed(3, "a", 1, "b")
        fast_again = child_seed(3, "a", 1, "b")
    with fastpath.forced(False):
        ref = child_seed(3, "a", 1, "b")
    assert fast == fast_again == ref
    assert child_seed_from_material("3:a:1:b") == ref


# ---------------------------------------------------------------------------
# stable_seed: the PYTHONHASHSEED-independent replacement for hash(str)
# ---------------------------------------------------------------------------


def test_stable_seed_pinned_value():
    """blake2b is fully specified, so the mapping is pinned forever — a
    changed value here means seeds (and every experiment derived from them)
    silently shifted."""
    from repro.util.rng import stable_seed

    assert stable_seed("Q3") == 3146864962887348789
    assert [stable_seed(q) % 100 for q in ("Q1", "Q2", "Q3", "Q4", "Q5")] == [
        48, 20, 89, 14, 92,
    ]


def test_stable_seed_is_63_bit_and_distinct():
    from repro.util.rng import stable_seed

    seeds = {stable_seed(f"query-{i}") for i in range(200)}
    assert len(seeds) == 200
    assert all(0 <= seed < 2**63 for seed in seeds)


def test_stable_seed_survives_hash_randomization():
    """Mirror of test_cache_key_stable_across_processes for the fig6 seed
    derivation: a fresh interpreter under a different PYTHONHASHSEED
    computes the same seed hash(query_id) used to randomize per run
    (the RL001 bug class fixed in sort_experiments)."""
    import pathlib
    import subprocess
    import sys

    from repro.util.rng import stable_seed

    local = [(0 * 17 + stable_seed(q) % 100) for q in ("Q1", "Q2", "Q3")]
    script = (
        "from repro.util.rng import stable_seed\n"
        "print([0 * 17 + stable_seed(q) % 100 for q in ('Q1', 'Q2', 'Q3')], end='')\n"
    )
    for hashseed in ("0", "1", "424242"):
        child = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": "src", "PYTHONHASHSEED": hashseed},
            cwd=pathlib.Path(__file__).parent.parent,
            check=True,
        )
        assert child.stdout == str(local), hashseed
