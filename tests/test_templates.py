"""Tests for prompt templates."""

import pytest

from repro.errors import TaskError
from repro.language.templates import PromptTemplate, TemplateArg


def test_render_substitutes_in_order():
    template = PromptTemplate(
        "<img src='%s'> vs <img src='%s'>",
        (TemplateArg("tuple1", "f1"), TemplateArg("tuple2", "f2")),
    )
    html = template.render(
        {("tuple1", "f1"): "img://a", ("tuple2", "f2"): "img://b"}
    )
    assert html == "<img src='img://a'> vs <img src='img://b'>"


def test_hole_count_validated():
    with pytest.raises(TaskError):
        PromptTemplate("%s %s", (TemplateArg("tuple", "f"),))
    with pytest.raises(TaskError):
        PromptTemplate("no holes", (TemplateArg("tuple", "f"),))


def test_missing_binding():
    template = PromptTemplate("%s", (TemplateArg("tuple", "f"),))
    with pytest.raises(TaskError):
        template.render({})


def test_escape_option():
    template = PromptTemplate("%s", (TemplateArg("tuple", "f"),))
    html = template.render({("tuple", "f"): "<script>"}, escape=True)
    assert html == "&lt;script&gt;"


def test_invalid_source_rejected():
    with pytest.raises(TaskError):
        TemplateArg("tuple3", "f")


def test_required_params():
    template = PromptTemplate(
        "%s %s", (TemplateArg("tuple1", "a"), TemplateArg("tuple2", "b"))
    )
    assert template.required_params() == {("tuple1", "a"), ("tuple2", "b")}


def test_str_rendering():
    assert str(PromptTemplate("plain")) == "'plain'"
    template = PromptTemplate("%s", (TemplateArg("tuple", "f"),))
    assert "tuple[f]" in str(template)
