"""Tests for Fleiss' κ and the modified (uniform-prior) κ."""

import pytest

from repro.errors import QurkError
from repro.metrics.fleiss import fleiss_kappa, modified_kappa


def test_fleiss_textbook_example():
    """The classic 14-rater, 10-subject, 5-category worked example
    (Wikipedia's Fleiss' kappa table): κ ≈ 0.210."""
    table = [
        {1: 0, 2: 0, 3: 0, 4: 0, 5: 14},
        {1: 0, 2: 2, 3: 6, 4: 4, 5: 2},
        {1: 0, 2: 0, 3: 3, 4: 5, 5: 6},
        {1: 0, 2: 3, 3: 9, 4: 2, 5: 0},
        {1: 2, 2: 2, 3: 8, 4: 1, 5: 1},
        {1: 7, 2: 7, 3: 0, 4: 0, 5: 0},
        {1: 3, 2: 2, 3: 6, 4: 3, 5: 0},
        {1: 2, 2: 5, 3: 3, 4: 2, 5: 2},
        {1: 6, 2: 5, 3: 2, 4: 1, 5: 0},
        {1: 0, 2: 2, 3: 2, 4: 3, 5: 7},
    ]
    assert fleiss_kappa(table) == pytest.approx(0.210, abs=0.005)


def test_perfect_agreement():
    table = [{"a": 5}, {"b": 5}, {"a": 5}]
    assert fleiss_kappa(table) == pytest.approx(1.0)


def test_single_category_degenerate():
    assert fleiss_kappa([{"a": 5}, {"a": 5}]) == 1.0


def test_random_votes_near_zero():
    from repro.util.rng import RandomSource

    rng = RandomSource(1)
    table = []
    for _ in range(300):
        yes = sum(1 for _ in range(6) if rng.chance(0.5))
        table.append({True: yes, False: 6 - yes})
    assert abs(fleiss_kappa(table)) < 0.05
    assert abs(modified_kappa(table, categories=2)) < 0.05


def test_modified_kappa_uniform_prior():
    # All raters unanimous: both κs are 1.
    table = [{"x": 4}, {"y": 4}]
    assert modified_kappa(table) == pytest.approx(1.0)


def test_modified_kappa_skewed_dataset():
    """With one dominant category, empirical-prior κ punishes agreement the
    modified κ keeps — the reason the paper dropped the compensation."""
    table = [{"small": 5} for _ in range(19)] + [{"small": 3, "big": 2}]
    standard = fleiss_kappa(table)
    modified = modified_kappa(table, categories=2)
    assert modified > standard


def test_modified_kappa_explicit_categories():
    table = [{"a": 3, "b": 2}]
    two = modified_kappa(table, categories=2)
    four = modified_kappa(table, categories=4)
    assert four > two  # more categories → lower chance agreement


def test_items_with_single_rating_skipped():
    table = [{"a": 1}, {"a": 3, "b": 2}]
    # Only the second row is usable.
    assert fleiss_kappa(table) == fleiss_kappa([{"a": 3, "b": 2}])


def test_no_usable_items():
    with pytest.raises(QurkError):
        fleiss_kappa([{"a": 1}])
    with pytest.raises(QurkError):
        modified_kappa([])


def test_unequal_rater_counts_tolerated():
    table = [{"a": 4, "b": 1}, {"a": 3, "b": 3}, {"b": 2}]
    value = fleiss_kappa(table)
    assert -1.0 <= value <= 1.0


def test_kappa_orders_by_agreement():
    """Gender-like (clean) beats hair-like (messy) — the Table 4 ordering."""
    clean = [{"m": 5} for _ in range(15)] + [{"f": 5} for _ in range(15)]
    messy = [{"blond": 3, "white": 2} for _ in range(15)] + [
        {"brown": 2, "black": 2, "blond": 1} for _ in range(15)
    ]
    assert fleiss_kappa(clean) > fleiss_kappa(messy)
