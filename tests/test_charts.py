"""Tests for ASCII chart rendering."""

import pytest

from repro.util.charts import ascii_chart, sparkline


def test_chart_renders_series_markers():
    chart = ascii_chart({"a": [0, 1, 2, 3], "b": [3, 2, 1, 0]}, height=6, width=20)
    assert "o" in chart and "x" in chart
    assert "o=a" in chart and "x=b" in chart


def test_chart_axis_labels():
    chart = ascii_chart({"s": [1.0, 2.0]}, height=4, width=10, y_label="tau")
    assert chart.splitlines()[0] == "tau"
    assert "2.00" in chart and "1.00" in chart


def test_chart_fixed_y_range():
    chart = ascii_chart({"s": [0.5]}, height=4, width=10, y_min=0.0, y_max=1.0)
    assert "1.00" in chart and "0.00" in chart


def test_chart_flat_series_does_not_crash():
    chart = ascii_chart({"s": [2.0, 2.0, 2.0]}, height=4, width=12)
    assert "o" in chart


def test_chart_validation():
    with pytest.raises(ValueError):
        ascii_chart({})
    with pytest.raises(ValueError):
        ascii_chart({"s": [1.0]}, height=1)
    with pytest.raises(ValueError):
        ascii_chart({"s": []})


def test_sparkline_shape():
    line = sparkline([0, 1, 2, 3, 2, 1, 0])
    assert len(line) == 7
    assert line[0] == "▁" and line[3] == "█"
    with pytest.raises(ValueError):
        sparkline([])


def test_sparkline_flat():
    assert sparkline([5, 5, 5]) == "▁▁▁"
