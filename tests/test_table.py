"""Tests for in-memory tables and TSV import/export."""

import pytest

from repro.errors import SchemaError
from repro.relational.schema import Schema
from repro.relational.table import Table


@pytest.fixture
def table() -> Table:
    t = Table("people", Schema.of("name text", "age integer"))
    t.extend([{"name": "ada", "age": 36}, {"name": "bob", "age": 25}])
    return t


def test_insert_and_len(table):
    assert len(table) == 2
    table.insert({"name": "carol", "age": 51})
    assert len(table) == 3


def test_insert_validates(table):
    with pytest.raises(SchemaError):
        table.insert({"name": "dave", "age": "old"})


def test_scan_order(table):
    assert [row["name"] for row in table.scan()] == ["ada", "bob"]


def test_filter_returns_new_table(table):
    adults = table.filter(lambda row: row["age"] > 30)
    assert len(adults) == 1
    assert len(table) == 2


def test_project(table):
    names = table.project(["name"])
    assert names.schema.names == ("name",)
    assert names.column_values("name") == ["ada", "bob"]


def test_column_values_unknown_column(table):
    with pytest.raises(SchemaError):
        table.column_values("height")


def test_head(table):
    assert len(table.head(1)) == 1
    assert len(table.head(10)) == 2


def test_tsv_roundtrip(table):
    text = table.to_tsv()
    parsed = Table.from_tsv("people", text, table.schema)
    assert [row.as_dict() for row in parsed] == [row.as_dict() for row in table]


def test_tsv_type_coercion():
    parsed = Table.from_tsv(
        "t", "a\tb\tc\n1\t2.5\ttrue", Schema.of("a integer", "b float", "c boolean")
    )
    row = parsed.rows[0]
    assert row["a"] == 1 and row["b"] == 2.5 and row["c"] is True


def test_tsv_untyped_coerces_best_effort():
    parsed = Table.from_tsv("t", "a\tb\n1\thello")
    assert parsed.rows[0]["a"] == 1
    assert parsed.rows[0]["b"] == "hello"


def test_tsv_header_mismatch():
    with pytest.raises(SchemaError):
        Table.from_tsv("t", "x\n1", Schema.of("a integer"))


def test_tsv_ragged_row():
    with pytest.raises(SchemaError):
        Table.from_tsv("t", "a\tb\n1")


def test_tsv_empty_input():
    with pytest.raises(SchemaError):
        Table.from_tsv("t", "   \n  ")


def test_tsv_empty_cell_is_none():
    parsed = Table.from_tsv("t", "a\tb\n\tx", Schema.of("a integer", "b text"))
    assert parsed.rows[0]["a"] is None


def test_table_requires_name():
    with pytest.raises(SchemaError):
        Table("", Schema.of("a"))
