"""The determinism linter's own contract: rules, suppressions, baseline, CLI.

Three layers of coverage:

1. per-rule positive/negative fixtures — minimal snippets linted at a
   synthetic repo-relative path (the path is what scopes rules);
2. framework semantics — inline suppressions (justification required,
   RL000 unsuppressable), shrink-only baseline, JSON schema, exit codes;
3. the meta-test: the *live tree* has zero non-baselined findings, and the
   three historical bug classes (PR 3 import-time env capture, PR 7
   hash()-based cache keys, PR 4 budget float drift) are each caught when
   their pre-fix shape is linted as a fixture.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import baseline as baseline_mod
from repro.analysis.cli import main as cli_main
from repro.analysis.engine import (
    Finding,
    RULES,
    lint_paths,
    lint_source,
    load_rules,
)

REPO_ROOT = Path(__file__).resolve().parent.parent

ENGINE_PATH = "src/repro/core/somemodule.py"
UTIL_PATH = "src/repro/util/sometoggle.py"
SRC_PATH = "src/repro/experiments/somemodule.py"


def rules_of(findings):
    return [f.rule for f in findings]


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------


def test_registry_has_the_eleven_rules():
    rules = load_rules()
    assert sorted(rules) == [f"RL{n:03d}" for n in range(1, 12)]
    for rule in rules.values():
        assert rule.title and rule.rationale


# ---------------------------------------------------------------------------
# RL001 — hash() seeds/cache keys
# ---------------------------------------------------------------------------


def test_rl001_flags_hash_of_id():
    findings = lint_source("seed = 17 + hash(query_id) % 100\n", SRC_PATH)
    assert rules_of(findings) == ["RL001"]


def test_rl001_allows_hash_inside_dunder_hash():
    src = (
        "class Row:\n"
        "    def __hash__(self):\n"
        "        return hash((self.a, self.b))\n"
    )
    assert lint_source(src, SRC_PATH) == []


def test_rl001_skips_tests():
    assert lint_source("x = hash('abc')\n", "tests/test_something.py") == []


# ---------------------------------------------------------------------------
# RL002 — os.environ outside util/
# ---------------------------------------------------------------------------


def test_rl002_flags_environ_read_outside_util():
    src = "import os\n\nMODE = os.environ.get('REPRO_MODE', '1')\n"
    assert "RL002" in rules_of(lint_source(src, ENGINE_PATH))


def test_rl002_flags_from_os_import_environ():
    src = "from os import environ\n"
    assert rules_of(lint_source(src, SRC_PATH)) == ["RL002"]


def test_rl002_allows_util_toggles_and_tests():
    src = "import os\nRAW = os.environ.get('REPRO_X')\n"
    assert "RL002" not in rules_of(lint_source(src, UTIL_PATH))
    assert lint_source(src, "tests/test_toggles_like.py") == []


# ---------------------------------------------------------------------------
# RL003 — import-time capture without refresh hook (the PR 3 bug class)
# ---------------------------------------------------------------------------

PRE_PR3_TOGGLE = (
    "import os\n"
    "\n"
    "_ENABLED = os.environ.get('REPRO_PIPELINE', '1') != '0'\n"
    "\n"
    "def enabled():\n"
    "    return _ENABLED\n"
)


def test_rl003_catches_the_pr3_import_time_capture_bug():
    findings = lint_source(PRE_PR3_TOGGLE, "src/repro/util/pipeline.py")
    assert rules_of(findings) == ["RL003"]
    assert "refresh_from_env" in findings[0].message


def test_rl003_satisfied_by_refresh_hook():
    src = PRE_PR3_TOGGLE + (
        "\n"
        "def refresh_from_env():\n"
        "    global _ENABLED\n"
        "    _ENABLED = os.environ.get('REPRO_PIPELINE', '1') != '0'\n"
        "    return _ENABLED\n"
    )
    assert lint_source(src, "src/repro/util/pipeline.py") == []


def test_rl003_ignores_function_local_env_reads():
    src = (
        "import os\n"
        "def peek():\n"
        "    return os.environ.get('REPRO_X')\n"
    )
    assert lint_source(src, UTIL_PATH) == []


# ---------------------------------------------------------------------------
# RL004 — wall clock / global RNG in engine paths
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "snippet",
    [
        "import time\nstamp = time.time()\n",
        "from time import time\nstamp = time()\n",
        "from datetime import datetime\nnow = datetime.now()\n",
        "import uuid\nhit_id = uuid.uuid4()\n",
        "import random\npick = random.random()\n",
        "import random\nrng = random.Random()\n",
    ],
)
def test_rl004_flags_nondeterminism_sources(snippet):
    assert "RL004" in rules_of(lint_source(snippet, ENGINE_PATH))


def test_rl004_allows_injected_clock_default_and_seeded_rng():
    src = (
        "import random\n"
        "import time\n"
        "\n"
        "def open_store(clock=time.time):\n"  # reference, not a call
        "    return clock\n"
        "\n"
        "rng = random.Random(42)\n"
    )
    assert lint_source(src, ENGINE_PATH) == []


def test_rl004_scoped_to_engine_dirs():
    assert lint_source("import time\nt = time.time()\n", SRC_PATH) == []


def test_rl004_does_not_resolve_unrelated_methods():
    src = "def f(obj):\n    return obj.time() + obj.now()\n"
    assert lint_source(src, ENGINE_PATH) == []


# ---------------------------------------------------------------------------
# RL005 — set iteration order in engine paths
# ---------------------------------------------------------------------------


def test_rl005_flags_direct_set_iteration():
    src = "for hit_id in set(ids):\n    post(hit_id)\n"
    assert rules_of(lint_source(src, ENGINE_PATH)) == ["RL005"]


def test_rl005_flags_iteration_over_tracked_set_variable():
    src = (
        "def settle(ids):\n"
        "    incomplete = set(ids)\n"
        "    return [repost(h) for h in incomplete]\n"
    )
    assert rules_of(lint_source(src, ENGINE_PATH)) == ["RL005"]


def test_rl005_flags_list_of_set():
    src = "order = list({a, b, c})\n"
    assert rules_of(lint_source(src, ENGINE_PATH)) == ["RL005"]


def test_rl005_allows_sorted_membership_and_rebound_names():
    src = (
        "def ok(ids, rows):\n"
        "    seen = set(ids)\n"
        "    for ref in sorted(seen):\n"       # sorted: fine
        "        use(ref)\n"
        "    hits = [r for r in rows if r in seen]\n"  # membership: fine
        "    maybe = set(ids)\n"
        "    maybe = list(ids)\n"              # rebound to list: untracked
        "    for m in maybe:\n"
        "        use(m)\n"
        "    return hits\n"
    )
    assert lint_source(src, ENGINE_PATH) == []


def test_rl005_scoped_to_engine_dirs():
    src = "for x in set(items):\n    print(x)\n"
    assert lint_source(src, SRC_PATH) == []


# ---------------------------------------------------------------------------
# RL006 — float equality on money (the PR 4 drift class)
# ---------------------------------------------------------------------------

PRE_PR4_DRIFT = (
    "def trim(allocations, budget):\n"
    "    spent = sum(a.cost for a in allocations)\n"
    "    while spent != budget:\n"
    "        spent -= 0.05\n"
    "    return spent\n"
)


def test_rl006_catches_the_pr4_budget_drift_bug():
    findings = lint_source(PRE_PR4_DRIFT, "src/repro/core/budget.py")
    assert rules_of(findings) == ["RL006"]
    assert "drift" in findings[0].message


@pytest.mark.parametrize(
    "snippet",
    [
        "ok = total_cost == expected_cost\n",
        "done = ledger.total_cost != 0.0\n",
        "flat = price == base_price\n",
    ],
)
def test_rl006_flags_money_equality(snippet):
    assert "RL006" in rules_of(lint_source(snippet, SRC_PATH))


@pytest.mark.parametrize(
    "snippet",
    [
        "ok = total_cost >= expected_cost\n",        # ordering is fine
        "ok = total_hits == 3\n",                    # not money
        "ok = cost_label == 'dollars'\n",            # string category check
        "ok = budget is None\n",                     # identity
    ],
)
def test_rl006_negative_cases(snippet):
    assert lint_source(snippet, SRC_PATH) == []


# ---------------------------------------------------------------------------
# RL007 — mutable defaults
# ---------------------------------------------------------------------------


def test_rl007_flags_mutable_defaults():
    src = "def post(batch=[], options={}, seen=set()):\n    return batch\n"
    assert rules_of(lint_source(src, SRC_PATH)) == ["RL007"] * 3


def test_rl007_applies_to_tests_too():
    src = "def helper(rows=[]):\n    return rows\n"
    assert rules_of(lint_source(src, "tests/test_helper.py")) == ["RL007"]


def test_rl007_allows_none_and_immutable_defaults():
    src = "def post(batch=None, retries=3, mode='fast', pair=()):\n    return batch\n"
    assert lint_source(src, SRC_PATH) == []


# ---------------------------------------------------------------------------
# RL008 — toggle contract (project rule)
# ---------------------------------------------------------------------------


def run_project_rule(tmp_path, toggle_src, toggles_text, api_text):
    from repro.analysis.engine import ModuleInfo

    (tmp_path / "tests").mkdir()
    (tmp_path / "docs").mkdir()
    (tmp_path / "tests" / "test_toggles.py").write_text(toggles_text)
    (tmp_path / "docs" / "API.md").write_text(api_text)
    module = ModuleInfo("src/repro/util/newtoggle.py", toggle_src)
    rule = RULES["RL008"]
    return list(rule.check_project([module], tmp_path))


TOGGLE_DECL = '_ENV_VAR = "REPRO_NEWTOGGLE"\n\ndef refresh_from_env():\n    pass\n'


def test_rl008_flags_undocumented_untested_toggle(tmp_path):
    findings = run_project_rule(tmp_path, TOGGLE_DECL, "# nothing\n", "# nothing\n")
    assert rules_of(findings) == ["RL008", "RL008"]
    messages = " ".join(f.message for f in findings)
    assert "test_toggles.py" in messages and "API.md" in messages


def test_rl008_satisfied_when_both_contract_files_mention_it(tmp_path):
    findings = run_project_rule(
        tmp_path,
        TOGGLE_DECL,
        "REPRO_NEWTOGGLE env contract\n",
        "| `REPRO_NEWTOGGLE` | `1` | ... |\n",
    )
    assert findings == []


def test_rl008_ignores_non_env_var_string_constants(tmp_path):
    findings = run_project_rule(
        tmp_path,
        'BANNER = "REPRO_SOMETHING mentioned in prose"\n',
        "# nothing\n",
        "# nothing\n",
    )
    assert findings == []


# ---------------------------------------------------------------------------
# RL009 — cache payload mutation
# ---------------------------------------------------------------------------


def test_rl009_flags_mutating_lookup_result():
    src = (
        "def merge(cache, hit, extra):\n"
        "    payload = cache.lookup(hit)\n"
        "    payload.append(extra)\n"
        "    return payload\n"
    )
    assert rules_of(lint_source(src, SRC_PATH)) == ["RL009"]


def test_rl009_flags_chained_and_subscript_mutation():
    src = (
        "def patch(cache, hit):\n"
        "    cache.lookup(hit).sort()\n"
        "    row = cache.lookup(hit)\n"
        "    row[0] = None\n"
    )
    assert rules_of(lint_source(src, SRC_PATH)) == ["RL009", "RL009"]


def test_rl009_allows_copy_then_mutate():
    src = (
        "def merge(cache, hit, extra):\n"
        "    payload = list(cache.lookup(hit))\n"
        "    payload.append(extra)\n"
        "    return tuple(payload)\n"
    )
    assert lint_source(src, SRC_PATH) == []


# ---------------------------------------------------------------------------
# RL010 — swallowed exceptions
# ---------------------------------------------------------------------------


def test_rl010_flags_bare_and_broad_pass():
    src = (
        "def harvest(pending):\n"
        "    try:\n"
        "        pending.result()\n"
        "    except Exception:\n"
        "        pass\n"
    )
    assert rules_of(lint_source(src, SRC_PATH)) == ["RL010"]
    src_bare = src.replace("except Exception:", "except:")
    assert rules_of(lint_source(src_bare, SRC_PATH)) == ["RL010"]


def test_rl010_allows_specific_or_handled():
    src = (
        "def harvest(pending, log):\n"
        "    try:\n"
        "        pending.result()\n"
        "    except ValueError:\n"
        "        pass\n"
        "    try:\n"
        "        pending.result()\n"
        "    except Exception as exc:\n"
        "        log.append(exc)\n"
    )
    assert lint_source(src, SRC_PATH) == []


# ---------------------------------------------------------------------------
# RL011 — isinstance/TaskType dispatch ladders
# ---------------------------------------------------------------------------


def test_rl011_flags_isinstance_ladder_over_engine_classes():
    src = (
        "def run(node):\n"
        "    if isinstance(node, ScanNode):\n"
        "        return 1\n"
        "    if isinstance(node, (JoinNode, SortNode)):\n"
        "        return 2\n"
    )
    findings = lint_source(src, ENGINE_PATH)
    assert rules_of(findings) == ["RL011"]
    assert "JoinNode, ScanNode, SortNode" in findings[0].message


def test_rl011_flags_task_type_enum_outside_tasks():
    src = "def role(task):\n    return task.task_type == TaskType.FILTER\n"
    assert rules_of(lint_source(src, ENGINE_PATH)) == ["RL011"]
    # Inside src/repro/tasks/ the builtins legitimately name their enum.
    assert lint_source(src, "src/repro/tasks/filter.py") == []


def test_rl011_allows_single_class_checks_and_registry():
    src = (
        "def is_scan(node):\n"
        "    return isinstance(node, ScanNode)\n"
        "def other(x):\n"
        "    return isinstance(x, (int, str))\n"
    )
    assert lint_source(src, ENGINE_PATH) == []
    ladder = (
        "def run(node):\n"
        "    return isinstance(node, ScanNode) or isinstance(node, JoinNode)\n"
    )
    assert lint_source(ladder, "src/repro/tasks/registry.py") == []
    assert lint_source(ladder, "tests/test_something.py") == []


# ---------------------------------------------------------------------------
# suppressions
# ---------------------------------------------------------------------------

SWALLOW = (
    "def settle(pending):\n"
    "    try:\n"
    "        pending.result()\n"
    "    except Exception:{comment}\n"
    "        pass\n"
)


def test_suppression_with_justification_silences_the_finding():
    src = SWALLOW.format(
        comment="  # repro-lint: disable=RL010 -- settle path, abort propagates"
    )
    assert lint_source(src, SRC_PATH) == []


def test_suppression_block_above_the_statement_works():
    src = (
        "def settle(pending):\n"
        "    try:\n"
        "        pending.result()\n"
        "    # repro-lint: disable=RL010 -- settle path, abort propagates\n"
        "    except Exception:\n"
        "        pass\n"
    )
    assert lint_source(src, SRC_PATH) == []


def test_suppression_without_justification_is_rejected_and_reported():
    src = SWALLOW.format(comment="  # repro-lint: disable=RL010")
    found = rules_of(lint_source(src, SRC_PATH))
    assert "RL010" in found  # not silenced
    assert "RL000" in found  # and the bad suppression is itself a finding


def test_suppression_of_unknown_rule_is_reported():
    src = SWALLOW.format(comment="  # repro-lint: disable=RL999 -- because")
    found = rules_of(lint_source(src, SRC_PATH))
    assert "RL010" in found and "RL000" in found


def test_suppression_only_covers_its_own_line():
    src = (
        "seed_a = hash(qid)  # repro-lint: disable=RL001 -- fixture\n"
        "seed_b = hash(qid)\n"
    )
    findings = lint_source(src, SRC_PATH)
    assert rules_of(findings) == ["RL001"]
    assert findings[0].line == 2


def test_marker_inside_strings_is_inert():
    src = 'DOC = "# repro-lint: disable=RL001 -- not a comment"\n'
    assert lint_source(src, SRC_PATH) == []


# ---------------------------------------------------------------------------
# baseline semantics
# ---------------------------------------------------------------------------


def make_finding(rule="RL001", path=SRC_PATH, line=10, message="m"):
    return Finding(path=path, line=line, col=0, rule=rule, message=message)


def test_baseline_matching_ignores_line_but_counts_multiplicity(tmp_path):
    baseline_file = tmp_path / "baseline.json"
    grandfathered = make_finding(line=10)
    baseline_mod.write_baseline(baseline_file, [grandfathered])
    entries = baseline_mod.load_baseline(baseline_file)

    # same key at a different line -> still baselined
    new, baselined, stale = baseline_mod.partition([make_finding(line=99)], entries)
    assert (len(new), len(baselined), len(stale)) == (0, 1, 0)

    # a second identical finding exceeds the baseline budget -> new
    new, baselined, stale = baseline_mod.partition(
        [make_finding(line=10), make_finding(line=11)], entries
    )
    assert (len(new), len(baselined), len(stale)) == (1, 1, 0)


def test_baseline_shrink_only_reports_stale_entries(tmp_path):
    baseline_file = tmp_path / "baseline.json"
    baseline_mod.write_baseline(baseline_file, [make_finding()])
    entries = baseline_mod.load_baseline(baseline_file)
    new, baselined, stale = baseline_mod.partition([], entries)
    assert (len(new), len(baselined), len(stale)) == (0, 0, 1)
    assert stale[0].rule == "RL001"


def test_baseline_rejects_garbage(tmp_path):
    bad = tmp_path / "baseline.json"
    bad.write_text("{not json")
    with pytest.raises(baseline_mod.BaselineError):
        baseline_mod.load_baseline(bad)
    bad.write_text(json.dumps({"version": 999, "findings": []}))
    with pytest.raises(baseline_mod.BaselineError):
        baseline_mod.load_baseline(bad)


# ---------------------------------------------------------------------------
# CLI: formats, exit codes, baseline wiring
# ---------------------------------------------------------------------------


def write_fixture_tree(tmp_path: Path) -> Path:
    """A mini-repo with one deliberate RL001 finding."""
    (tmp_path / "setup.py").write_text("# marker\n")
    pkg = tmp_path / "src" / "repro" / "core"
    pkg.mkdir(parents=True)
    (pkg / "bad.py").write_text("seed = hash(query_id) % 100\n")
    return tmp_path


def test_cli_text_output_and_exit_code(tmp_path, capsys):
    root = write_fixture_tree(tmp_path)
    code = cli_main([str(root / "src"), "--no-baseline"])
    out = capsys.readouterr().out
    assert code == 1
    assert "RL001" in out and "src/repro/core/bad.py:1" in out


def test_cli_json_schema(tmp_path, capsys):
    root = write_fixture_tree(tmp_path)
    code = cli_main([str(root / "src"), "--no-baseline", "--format=json"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert payload["version"] == 1
    assert payload["ok"] is False
    assert set(payload["counts"]) == {"new", "baselined", "suppressed", "stale_baseline"}
    assert payload["counts"]["new"] == 1
    (finding,) = payload["findings"]
    assert set(finding) == {"rule", "path", "line", "col", "message", "baselined"}
    assert finding["rule"] == "RL001" and finding["baselined"] is False


def test_cli_baseline_roundtrip_and_shrink_only(tmp_path, capsys):
    root = write_fixture_tree(tmp_path)
    baseline_file = tmp_path / "baseline.json"

    # write-baseline grandfathers the finding ...
    assert cli_main(
        [str(root / "src"), "--baseline", str(baseline_file), "--write-baseline"]
    ) == 0
    capsys.readouterr()
    # ... after which the same tree is green
    assert cli_main([str(root / "src"), "--baseline", str(baseline_file)]) == 0
    out = capsys.readouterr().out
    assert "1 baselined" in out

    # fixing the finding turns the entry stale: shrink-only fails the run
    (root / "src" / "repro" / "core" / "bad.py").write_text(
        "from repro.util.rng import stable_seed\nseed = stable_seed(query_id) % 100\n"
    )
    assert cli_main([str(root / "src"), "--baseline", str(baseline_file)]) == 1
    out = capsys.readouterr().out
    assert "stale baseline entry" in out
    # ... unless explicitly allowed (local runs)
    assert cli_main(
        [str(root / "src"), "--baseline", str(baseline_file), "--allow-stale"]
    ) == 0


def test_cli_missing_path_is_usage_error(tmp_path, capsys):
    assert cli_main([str(tmp_path / "nope")]) == 2


def test_cli_list_rules(capsys):
    assert cli_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in RULES:
        assert rule_id in out


# ---------------------------------------------------------------------------
# the meta-test: the live tree is lint-clean
# ---------------------------------------------------------------------------


def test_live_tree_has_zero_non_baselined_findings():
    """The CI gate, as a test: src/ + tests/ lint clean against the
    checked-in baseline, and the baseline carries no stale entries."""
    report = lint_paths(
        [REPO_ROOT / "src", REPO_ROOT / "tests"], repo_root=REPO_ROOT
    )
    entries = baseline_mod.load_baseline(baseline_mod.DEFAULT_BASELINE)
    new, _baselined, stale = baseline_mod.partition(report.findings, entries)
    assert new == [], "non-baselined lint findings:\n" + "\n".join(
        f.render() for f in new
    )
    assert stale == [], "stale baseline entries:\n" + "\n".join(
        e.render() for e in stale
    )


def test_every_suppression_in_the_live_tree_is_justified():
    report = lint_paths(
        [REPO_ROOT / "src", REPO_ROOT / "tests"], repo_root=REPO_ROOT
    )
    for finding, justification in report.suppressed:
        assert justification.strip(), finding.render()


# ---------------------------------------------------------------------------
# the three historical bug classes, as reverted-snippet fixtures
# ---------------------------------------------------------------------------


def test_historical_bugs_are_each_caught():
    # PR 3: import-time env capture (REPRO_PIPELINE frozen at import)
    assert rules_of(lint_source(PRE_PR3_TOGGLE, "src/repro/util/pipeline.py")) == [
        "RL003"
    ]
    # PR 7 class: hash()-derived cache keys / seeds (PYTHONHASHSEED-salted)
    pre_pr7 = (
        "def payload_cache_key(payloads, assignments):\n"
        "    return f'{hash(payloads)}:{assignments}'\n"
    )
    assert rules_of(lint_source(pre_pr7, "src/repro/hits/cache.py")) == ["RL001"]
    # PR 4: float-drift exact equality on budget trims
    assert rules_of(lint_source(PRE_PR4_DRIFT, "src/repro/core/budget.py")) == [
        "RL006"
    ]
