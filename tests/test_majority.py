"""Tests for the MajorityVote combiner."""

import pytest

from repro.combine.base import combine_corpus
from repro.combine.majority import MajorityVote, vote_fractions
from repro.errors import CombinerError
from repro.hits.hit import Vote


def votes(*values):
    return [Vote(worker_id=f"w{i}", value=v) for i, v in enumerate(values)]


def test_simple_majority():
    combiner = MajorityVote()
    assert combiner.combine_one(votes(True, True, False)) is True
    assert combiner.combine_one(votes("a", "b", "b")) == "b"


def test_binary_tie_is_negative():
    # "identify a join pair if the number of positive votes outweighs the
    # negative votes" — a tie does not outweigh.
    combiner = MajorityVote()
    assert combiner.combine_one(votes(True, False)) is False


def test_non_binary_tie_deterministic():
    combiner = MajorityVote()
    assert combiner.combine_one(votes("x", "y")) == combiner.combine_one(votes("y", "x"))


def test_corpus_combination():
    combiner = MajorityVote()
    result = combiner.combine({"q1": votes(True, True, False), "q2": votes(False)})
    assert result == {"q1": True, "q2": False}


def test_empty_votes_raise():
    with pytest.raises(CombinerError):
        MajorityVote().combine_one([])


def test_combine_corpus_validates():
    with pytest.raises(CombinerError):
        combine_corpus(MajorityVote(), {"q": []})


def test_vote_fractions():
    fractions = vote_fractions(votes("a", "a", "b", "c"))
    assert fractions["a"] == 0.5
    assert fractions["b"] == 0.25
    assert vote_fractions([]) == {}
