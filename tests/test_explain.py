"""Tests for the EXPLAIN output (§6 iterative-debugging extension)."""

from repro import ExecutionConfig, JoinInterface, Qurk, SimulatedMarketplace
from repro.core.context import OperatorStats
from repro.core.explain import render_explain
from repro.core.plan import ProjectNode, ScanNode
from repro.datasets import celebrity_dataset


def test_render_includes_stats_and_signals():
    scan = ScanNode(table_name="t", alias="t")
    project = ProjectNode(star=True, inputs=(scan,))
    stats = {
        id(scan): OperatorStats(
            label="Scan", rows_in=10, rows_out=10, hits=3, assignments=15,
            signals={"gender.kappa": 0.9},
        )
    }
    text = render_explain(project, stats)
    assert "rows 10->10" in text
    assert "hits=3" in text
    assert "gender.kappa=0.900" in text


def test_low_kappa_flagged():
    scan = ScanNode(table_name="t", alias="t")
    stats = {
        id(scan): OperatorStats(
            label="Scan", rows_in=1, rows_out=1,
            signals={"hair.kappa": 0.10},
        )
    }
    text = render_explain(scan, stats)
    assert "[!]" in text and "ambiguous" in text


def test_low_agreement_flagged():
    scan = ScanNode(table_name="t", alias="t")
    stats = {
        id(scan): OperatorStats(
            label="Scan", rows_in=1, rows_out=1,
            signals={"mean_pair_agreement": 0.55},
        )
    }
    assert "workers disagree" in render_explain(scan, stats)


def test_end_to_end_explain_signals():
    data = celebrity_dataset(n=10, seed=1)
    market = SimulatedMarketplace(data.truth, seed=1)
    engine = Qurk(
        platform=market,
        config=ExecutionConfig(join_interface=JoinInterface.NAIVE, naive_batch_size=5),
    )
    engine.register_table(data.celebs)
    engine.register_table(data.photos)
    engine.define(data.task_dsl)
    result = engine.execute(
        "SELECT c.name FROM celeb c JOIN photos p ON samePerson(c.img, p.img) "
        "AND POSSIBLY gender(c.img) = gender(p.img)"
    )
    text = result.explain()
    assert "CrowdJoin" in text
    assert "gender.kappa" in text
    assert "candidate_pairs" in text
    assert "Scan(celeb AS c)" in text
