"""Tests for the catalog."""

import pytest

from repro.errors import CatalogError
from repro.language.parser import parse_task
from repro.relational.catalog import Catalog
from repro.relational.schema import Schema
from repro.relational.table import Table
from repro.tasks import task_from_definition

TASK = task_from_definition(
    parse_task(
        'TASK isCat(field) TYPE Filter:\n'
        'Prompt: "<img src=\'%s\'>", tuple[field]\n'
    )
)


def test_table_registration_and_lookup():
    catalog = Catalog()
    table = Table("t", Schema.of("a"))
    catalog.register_table(table)
    assert catalog.table("t") is table
    assert catalog.has_table("t")
    assert list(catalog.tables()) == [table]


def test_table_duplicate_and_replace():
    catalog = Catalog()
    catalog.register_table(Table("t", Schema.of("a")))
    with pytest.raises(CatalogError):
        catalog.register_table(Table("t", Schema.of("b")))
    replacement = Table("t", Schema.of("b"))
    catalog.register_table(replacement, replace=True)
    assert catalog.table("t") is replacement


def test_unknown_table():
    with pytest.raises(CatalogError):
        Catalog().table("missing")


def test_task_registration():
    catalog = Catalog()
    catalog.register_task(TASK)
    assert catalog.task("isCat") is TASK
    assert catalog.has_task("isCat")
    with pytest.raises(CatalogError):
        catalog.register_task(TASK)
    with pytest.raises(CatalogError):
        catalog.task("missing")


def test_function_registration():
    catalog = Catalog()
    catalog.register_function("inc", lambda x: x + 1)
    assert catalog.function("inc")(1) == 2
    assert catalog.has_function("inc")
    assert not catalog.has_function("dec")
    with pytest.raises(CatalogError):
        catalog.register_function("inc", lambda x: x)
    env = catalog.functions()
    assert env["inc"](5) == 6
    with pytest.raises(CatalogError):
        catalog.function("missing")
