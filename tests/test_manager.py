"""Tests for the Task Manager: merging, combining, grouping, accounting."""

import pytest

from repro.crowd import GroundTruth, SimulatedMarketplace
from repro.errors import TaskError
from repro.hits import TaskManager
from repro.hits.cache import TaskCache
from repro.hits.hit import (
    FilterPayload,
    FilterQuestion,
    GenerativeFieldSpec,
    GenerativePayload,
    GenerativeQuestion,
)


def filter_units(n: int):
    return [
        [FilterPayload("isEven", (FilterQuestion(item=f"img://item/{i}"),))]
        for i in range(n)
    ]


@pytest.fixture
def manager(binary_filter_truth) -> TaskManager:
    return TaskManager(SimulatedMarketplace(binary_filter_truth, seed=1))


def test_merging_batches_tuples(manager):
    hits = manager.build_hits(filter_units(10), batch_size=4, assignments=5, label="f")
    assert len(hits) == 3
    assert [hit.unit_count for hit in hits] == [4, 4, 2]
    # Each HIT has one merged payload.
    assert all(len(hit.payloads) == 1 for hit in hits)


def test_combining_merges_tasks_per_tuple(manager):
    gen_a = GenerativePayload(
        "taskA", (GenerativeQuestion("i"),), (GenerativeFieldSpec("v", "Radio", ("x",)),)
    )
    gen_b = GenerativePayload(
        "taskB", (GenerativeQuestion("i"),), (GenerativeFieldSpec("v", "Radio", ("x",)),)
    )
    hits = manager.build_hits([[gen_a, gen_b]], batch_size=1, assignments=5, label="g")
    assert len(hits) == 1
    assert len(hits[0].payloads) == 2  # both tasks in one HIT


def test_build_hits_compiles_html_and_effort(manager):
    hits = manager.build_hits(filter_units(2), batch_size=2, assignments=5, label="f")
    assert hits[0].html.startswith("<form")
    assert hits[0].effort_seconds > 0


def test_run_units_collects_votes(manager):
    outcome = manager.run_units(filter_units(6), batch_size=3, assignments=5, label="f")
    assert outcome.hit_count == 2
    assert outcome.assignment_count == 10
    assert len(outcome.votes) == 6
    assert all(len(votes) == 5 for votes in outcome.votes.values())


def test_ledger_records_hits_and_assignments(manager):
    manager.run_units(filter_units(4), batch_size=2, assignments=5, label="phase1")
    assert manager.ledger.hits_for("phase1") == 2
    assert manager.ledger.assignments_for("phase1") == 10
    assert manager.ledger.total_cost == pytest.approx(10 * 0.015)


def test_empty_units(manager):
    outcome = manager.run_units([], label="f")
    assert outcome.hit_count == 0
    assert outcome.votes == {}


def test_invalid_batch_size(manager):
    with pytest.raises(TaskError):
        manager.build_hits(filter_units(1), batch_size=0, assignments=5, label="f")


def test_empty_unit_rejected(manager):
    with pytest.raises(TaskError):
        manager.build_hits([[]], batch_size=1, assignments=5, label="f")


def test_latencies_are_positive_and_ordered(manager):
    outcome = manager.run_units(filter_units(4), batch_size=2, assignments=3, label="f")
    latencies = outcome.assignment_latencies()
    assert all(latency > 0 for latency in latencies)
    assert outcome.finish_time >= outcome.post_time


def test_cache_avoids_reposting(binary_filter_truth):
    market = SimulatedMarketplace(binary_filter_truth, seed=2)
    manager = TaskManager(market, cache=TaskCache())
    first = manager.run_units(filter_units(4), batch_size=2, assignments=5, label="f")
    cost_after_first = manager.ledger.total_cost
    second = manager.run_units(filter_units(4), batch_size=2, assignments=5, label="f")
    assert manager.ledger.total_cost == cost_after_first  # nothing re-paid
    assert second.votes.keys() == first.votes.keys()


def test_outcome_merge():
    from repro.hits.manager import BatchOutcome
    from repro.hits.hit import Vote

    a = BatchOutcome(post_time=0.0, finish_time=5.0)
    a.votes["q"] = [Vote("w1", True)]
    b = BatchOutcome(post_time=1.0, finish_time=9.0)
    b.votes["q"] = [Vote("w2", False)]
    a.merge(b)
    assert len(a.votes["q"]) == 2
    assert a.finish_time == 9.0
