"""Shared fixtures: small datasets, marketplaces, and engines."""

from __future__ import annotations

import pytest

from repro.core.context import ExecutionConfig, QueryContext
from repro.crowd import GroundTruth, SimulatedMarketplace
from repro.hits import TaskManager
from repro.language.parser import parse_statements
from repro.relational.catalog import Catalog
from repro.tasks import task_from_definition


@pytest.fixture
def binary_filter_truth() -> GroundTruth:
    """A filter task where even-numbered items are 'yes'."""
    truth = GroundTruth()
    truth.add_filter_task(
        "isEven", {f"img://item/{i}": i % 2 == 0 for i in range(20)}
    )
    return truth


@pytest.fixture
def simple_rank_truth() -> GroundTruth:
    """A rank task over ten items with crisp latent values."""
    truth = GroundTruth()
    truth.add_rank_task(
        "sizeRank",
        {f"img://item/{i}": float(i) for i in range(10)},
        comparison_ambiguity=0.2,
        rating_ambiguity=0.8,
    )
    return truth


def make_marketplace(truth: GroundTruth, seed: int = 0) -> SimulatedMarketplace:
    """A deterministic marketplace over a truth oracle."""
    return SimulatedMarketplace(truth, seed=seed)


def make_context(
    truth: GroundTruth,
    dsl: str = "",
    seed: int = 0,
    config: ExecutionConfig | None = None,
) -> QueryContext:
    """A query context wired to a fresh simulated marketplace."""
    catalog = Catalog()
    if dsl:
        for statement in parse_statements(dsl):
            catalog.register_task(task_from_definition(statement))
    market = SimulatedMarketplace(truth, seed=seed)
    return QueryContext(
        catalog=catalog,
        manager=TaskManager(market),
        config=config or ExecutionConfig(),
    )
