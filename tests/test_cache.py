"""Tests for the task cache."""

from repro.hits.cache import TaskCache, payload_cache_key
from repro.hits.hit import HIT, Assignment, FilterPayload, FilterQuestion


def make_hit(item: str = "a", assignments: int = 5) -> HIT:
    return HIT(
        hit_id=f"h-{item}",
        payloads=(FilterPayload("t", (FilterQuestion(item),)),),
        assignments_requested=assignments,
    )


def make_assignment(hit: HIT) -> Assignment:
    return Assignment(
        assignment_id="a1", hit_id=hit.hit_id, worker_id="w", answers={"q": True}
    )


def test_cache_miss_then_hit():
    cache = TaskCache()
    hit = make_hit()
    assert cache.lookup(hit) is None
    cache.store(hit, [make_assignment(hit)])
    cached = cache.lookup(hit)
    assert cached is not None and len(cached) == 1
    assert cache.hits == 1 and cache.misses == 1


def test_cache_key_ignores_hit_id():
    # Two HITs asking the same question share a cache entry.
    first = make_hit()
    second = make_hit()
    assert payload_cache_key(first.payloads, 5) == payload_cache_key(second.payloads, 5)


def test_cache_key_sensitive_to_content_and_replication():
    a = make_hit("a")
    b = make_hit("b")
    assert payload_cache_key(a.payloads, 5) != payload_cache_key(b.payloads, 5)
    assert payload_cache_key(a.payloads, 5) != payload_cache_key(a.payloads, 10)


def test_lookup_returns_immutable_tuple():
    # The cache stores and returns tuples (no defensive copies): results
    # cannot be mutated, and repeat lookups return the same object.
    cache = TaskCache()
    hit = make_hit()
    cache.store(hit, [make_assignment(hit)])
    first = cache.lookup(hit)
    assert isinstance(first, tuple) and len(first) == 1
    assert cache.lookup(hit) is first


def test_store_accepts_any_sequence():
    cache = TaskCache()
    hit = make_hit()
    assignment = make_assignment(hit)
    cache.store(hit, (assignment,))
    cached = cache.lookup(hit)
    assert cached == (assignment,)


def test_hit_cache_key_matches_function_and_is_cached():
    hit = make_hit()
    assert hit.cache_key == payload_cache_key(hit.payloads, hit.assignments_requested)
    assert hit.cache_key is hit.cache_key


def test_clear():
    cache = TaskCache()
    hit = make_hit()
    cache.store(hit, [make_assignment(hit)])
    cache.clear()
    assert len(cache) == 0
    assert cache.lookup(hit) is None
