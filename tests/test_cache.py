"""Tests for the task cache: key stability, the view ownership contract,
and budget pre-flight's reliance on ``contains_key`` ⇔ lookup-would-hit."""

import subprocess
import sys

from repro.hits.cache import TaskCache, TaskCacheView, payload_cache_key
from repro.hits.hit import HIT, Assignment, FilterPayload, FilterQuestion
from repro.hits.manager import TaskManager


def make_hit(item: str = "a", assignments: int = 5) -> HIT:
    return HIT(
        hit_id=f"h-{item}",
        payloads=(FilterPayload("t", (FilterQuestion(item),)),),
        assignments_requested=assignments,
    )


def make_assignment(hit: HIT) -> Assignment:
    return Assignment(
        assignment_id="a1", hit_id=hit.hit_id, worker_id="w", answers={"q": True}
    )


def test_cache_miss_then_hit():
    cache = TaskCache()
    hit = make_hit()
    assert cache.lookup(hit) is None
    cache.store(hit, [make_assignment(hit)])
    cached = cache.lookup(hit)
    assert cached is not None and len(cached) == 1
    assert cache.hits == 1 and cache.misses == 1


def test_cache_key_ignores_hit_id():
    # Two HITs asking the same question share a cache entry.
    first = make_hit()
    second = make_hit()
    assert payload_cache_key(first.payloads, 5) == payload_cache_key(second.payloads, 5)


def test_cache_key_sensitive_to_content_and_replication():
    a = make_hit("a")
    b = make_hit("b")
    assert payload_cache_key(a.payloads, 5) != payload_cache_key(b.payloads, 5)
    assert payload_cache_key(a.payloads, 5) != payload_cache_key(a.payloads, 10)


def test_lookup_returns_immutable_tuple():
    # The cache stores and returns tuples (no defensive copies): results
    # cannot be mutated, and repeat lookups return the same object.
    cache = TaskCache()
    hit = make_hit()
    cache.store(hit, [make_assignment(hit)])
    first = cache.lookup(hit)
    assert isinstance(first, tuple) and len(first) == 1
    assert cache.lookup(hit) is first


def test_store_accepts_any_sequence():
    cache = TaskCache()
    hit = make_hit()
    assignment = make_assignment(hit)
    cache.store(hit, (assignment,))
    cached = cache.lookup(hit)
    assert cached == (assignment,)


def test_hit_cache_key_matches_function_and_is_cached():
    hit = make_hit()
    assert hit.cache_key == payload_cache_key(hit.payloads, hit.assignments_requested)
    assert hit.cache_key is hit.cache_key


def test_clear():
    cache = TaskCache()
    hit = make_hit()
    cache.store(hit, [make_assignment(hit)])
    cache.clear()
    assert len(cache) == 0
    assert cache.lookup(hit) is None


def test_cache_key_stable_across_processes():
    """The key a fresh interpreter computes for the same payloads is the
    byte-for-byte same string — the property the persistent answer store
    leans on when a restarted process looks up yesterday's answers. Run
    under a different PYTHONHASHSEED to prove no hash-randomized ordering
    (set/dict iteration, object hashes) leaks into the key."""
    payloads = (
        FilterPayload("t", (FilterQuestion("b"), FilterQuestion("a"))),
        FilterPayload("other", (FilterQuestion("z"),)),
    )
    local_key = payload_cache_key(payloads, 5)
    script = (
        "from repro.hits.cache import payload_cache_key\n"
        "from repro.hits.hit import FilterPayload, FilterQuestion\n"
        "payloads = (\n"
        "    FilterPayload('t', (FilterQuestion('b'), FilterQuestion('a'))),\n"
        "    FilterPayload('other', (FilterQuestion('z'),)),\n"
        ")\n"
        "print(payload_cache_key(payloads, 5), end='')\n"
    )
    for hashseed in ("0", "1", "424242"):
        child = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": "src", "PYTHONHASHSEED": hashseed},
            cwd=__import__("pathlib").Path(__file__).parent.parent,
            check=True,
        )
        assert child.stdout == local_key, hashseed


# ---------------------------------------------------------------------------
# TaskCacheView ownership contract
# ---------------------------------------------------------------------------


def make_view_pair() -> tuple[TaskCacheView, TaskCacheView, TaskCache]:
    shared = TaskCache()
    owners: dict[str, str] = {}
    view_a = TaskCacheView(shared=shared, owner="a", owners=owners)
    view_b = TaskCacheView(shared=shared, owner="b", owners=owners)
    return view_a, view_b, shared


def test_view_ownership_is_attribution_only():
    """Neither lookup nor contains_key filters by owner: every client sees
    every shared entry, and `owners` only decides *cross* attribution."""
    view_a, view_b, shared = make_view_pair()
    hit = make_hit()
    view_a.store(hit, [make_assignment(hit)])

    assert view_b.contains_key(hit.cache_key)  # other owner's entry visible
    cached = view_b.lookup(hit)  # ... and servable
    assert cached is not None
    assert view_b.cross_hits == 1 and view_b.cross_assignments == 1
    # The owner's own traffic is a plain (non-cross) hit.
    assert view_a.lookup(hit) is cached
    assert view_a.cross_hits == 0


def test_view_contains_key_matches_lookup_would_hit():
    """contains_key(k) ⇔ an immediately following lookup would hit — for
    every view over the shared cache, regardless of who stored the key."""
    view_a, view_b, shared = make_view_pair()
    hit = make_hit()
    for view in (view_a, view_b):
        assert not view.contains_key(hit.cache_key)
        assert view.lookup(hit) is None
    view_a.store(hit, [make_assignment(hit)])
    for view in (view_a, view_b):
        assert view.contains_key(hit.cache_key)
        assert view.lookup(hit) is not None


def test_preflight_through_view_counts_cross_owner_hits():
    """Budget pre-flight running through one client's view must count the
    hits the executor will actually get — including entries another client
    stored — so `projected_new_assignments` never overcounts."""
    view_a, view_b, _ = make_view_pair()
    unit = [FilterPayload("t", (FilterQuestion("a"),))]
    merged = TaskManager.merge_units([unit], 1)[0]
    hit = HIT(hit_id="h-pre", payloads=merged, assignments_requested=5)

    manager_b = TaskManager(platform=None, cache=view_b)
    assert manager_b.projected_new_assignments([unit], 1, 5) == 5
    view_a.store(hit, [make_assignment(hit)])  # owned by the *other* client
    assert manager_b.projected_new_assignments([unit], 1, 5) == 0
