"""Tests for the simulated marketplace."""

import pytest

from repro.crowd import GroundTruth, SimulatedMarketplace
from repro.crowd.latency import LatencyConfig, LatencyModel
from repro.hits.compiler import HITCompiler
from repro.hits.hit import HIT, CompareGroup, ComparePayload, FilterPayload, FilterQuestion


def filter_hits(n_hits: int, assignments: int = 5, hit_prefix: str = "h") -> list[HIT]:
    compiler = HITCompiler()
    hits = []
    for i in range(n_hits):
        hit = HIT(
            hit_id=f"{hit_prefix}{i}",
            payloads=(FilterPayload("flt", (FilterQuestion(f"item{i}"),)),),
            assignments_requested=assignments,
        )
        compiler.compile(hit)
        hits.append(hit)
    return hits


@pytest.fixture
def truth() -> GroundTruth:
    t = GroundTruth()
    t.add_filter_task("flt", {f"item{i}": i % 2 == 0 for i in range(50)})
    return t


def test_all_assignments_complete(truth):
    market = SimulatedMarketplace(truth, seed=1)
    assignments = market.post_hit_group(filter_hits(10), group_id="g1")
    assert len(assignments) == 50
    assert market.stats.assignments_completed == 50
    assert market.stats.uncompleted_hits == 0


def test_clock_advances(truth):
    market = SimulatedMarketplace(truth, seed=2)
    before = market.clock_seconds
    market.post_hit_group(filter_hits(5), group_id="g")
    assert market.clock_seconds > before


def test_no_worker_does_same_hit_twice(truth):
    market = SimulatedMarketplace(truth, seed=3)
    assignments = market.post_hit_group(filter_hits(4, assignments=8), group_id="g")
    per_hit: dict[str, set[str]] = {}
    for assignment in assignments:
        workers = per_hit.setdefault(assignment.hit_id, set())
        assert assignment.worker_id not in workers
        workers.add(assignment.worker_id)


def test_determinism(truth):
    a = SimulatedMarketplace(truth, seed=4).post_hit_group(filter_hits(5), "g")
    b = SimulatedMarketplace(truth, seed=4).post_hit_group(filter_hits(5), "g")
    assert [(x.worker_id, x.submit_time) for x in a] == [
        (y.worker_id, y.submit_time) for y in b
    ]


def test_different_seeds_differ(truth):
    a = SimulatedMarketplace(truth, seed=5).post_hit_group(filter_hits(5), "g")
    b = SimulatedMarketplace(truth, seed=6).post_hit_group(filter_hits(5), "g")
    assert [x.worker_id for x in a] != [y.worker_id for y in b]


def test_oversized_batch_goes_uncompleted(truth):
    """A compare group of 20 items is beyond every worker's threshold —
    the §4.2.2 refusal wall."""
    t = GroundTruth()
    t.add_rank_task("rank", {f"i{k}": float(k) for k in range(20)})
    market = SimulatedMarketplace(t, seed=7)
    compiler = HITCompiler()
    hit = HIT(
        hit_id="big",
        payloads=(
            ComparePayload("rank", (CompareGroup(tuple(f"i{k}" for k in range(20))),)),
        ),
        assignments_requested=5,
    )
    compiler.compile(hit)
    assert hit.effort_seconds >= 50
    assignments = market.post_hit_group([hit], group_id="g")
    assert len(assignments) < 5
    assert market.stats.refusals > 0


def test_reasonable_batch_completes(truth):
    t = GroundTruth()
    t.add_rank_task("rank", {f"i{k}": float(k) for k in range(5)})
    market = SimulatedMarketplace(t, seed=8)
    compiler = HITCompiler()
    hit = HIT(
        hit_id="ok",
        payloads=(
            ComparePayload("rank", (CompareGroup(tuple(f"i{k}" for k in range(5))),)),
        ),
        assignments_requested=5,
    )
    compiler.compile(hit)
    assert len(market.post_hit_group([hit], "g")) == 5


def test_empty_group(truth):
    market = SimulatedMarketplace(truth, seed=9)
    assert market.post_hit_group([], "g") == []


def test_advance_clock(truth):
    market = SimulatedMarketplace(truth, seed=10)
    market.advance_clock(100.0)
    assert market.clock_seconds == 100.0
    with pytest.raises(ValueError):
        market.advance_clock(-1.0)


def test_worker_assignment_counts_tracked(truth):
    market = SimulatedMarketplace(truth, seed=11)
    market.post_hit_group(filter_hits(20), "g")
    counts = market.stats.worker_assignment_counts
    assert sum(counts.values()) == 100
    # Zipfian concentration: busiest worker well above the median.
    busiest = max(counts.values())
    assert busiest >= 5


def test_time_of_day_accepted_as_string(truth):
    market = SimulatedMarketplace(truth, seed=12, time_of_day="evening")
    from repro.crowd.latency import TimeOfDay

    assert market.time_of_day is TimeOfDay.EVENING


def test_considerations_per_assignment(truth):
    market = SimulatedMarketplace(truth, seed=13)
    # Nothing completed yet: the ratio is defined as 0, not a crash.
    assert market.stats.considerations_per_assignment == 0.0
    market.post_hit_group(filter_hits(10), "g")
    stats = market.stats
    ratio = stats.considerations_per_assignment
    assert ratio == stats.considerations / stats.assignments_completed
    # Every completion takes at least one consideration.
    assert ratio >= 1.0


def test_considerations_per_assignment_counts_refusals():
    """Oversized batches burn considerations without completing work."""
    t = GroundTruth()
    t.add_rank_task("rank", {f"i{k}": float(k) for k in range(20)})
    market = SimulatedMarketplace(t, seed=14)
    compiler = HITCompiler()
    hit = HIT(
        hit_id="big",
        payloads=(
            ComparePayload("rank", (CompareGroup(tuple(f"i{k}" for k in range(20))),)),
        ),
        assignments_requested=5,
    )
    compiler.compile(hit)
    market.post_hit_group([hit], "g")
    assert market.stats.refusals > 0
    assert market.stats.considerations > market.stats.assignments_completed
    if market.stats.assignments_completed:
        assert market.stats.considerations_per_assignment > 1.0


def test_fast_and_reference_dispatch_agree(truth):
    """The two dispatch implementations emit identical assignments."""
    from repro.util import fastpath

    with fastpath.forced(True):
        fast = SimulatedMarketplace(truth, seed=15).post_hit_group(filter_hits(12), "g")
    with fastpath.forced(False):
        ref = SimulatedMarketplace(truth, seed=15).post_hit_group(filter_hits(12), "g")
    assert [
        (a.assignment_id, a.hit_id, a.worker_id, a.answers, a.accept_time, a.submit_time)
        for a in fast
    ] == [
        (a.assignment_id, a.hit_id, a.worker_id, a.answers, a.accept_time, a.submit_time)
        for a in ref
    ]
