"""Statistical equivalence of the REPRO_VECTOR dispatch kernel.

The numpy kernel (:mod:`repro.crowd.vector`) cannot replay the scalar
``random.Random`` draw stream — it is a *second* determinism domain pinned
by its own golden trace (``tests/test_determinism_trace.py``). What it
*must* share with the scalar path is the marketplace's distributional
behaviour. This module pins that contract across a panel of seeds:

* **assignment counts** — a fully-completing group fills exactly the same
  slots (per HIT and in total) under either dispatcher;
* **per-worker load** — the Zipfian pick-up skew produces the same
  distinct-worker and max-load statistics within tolerance;
* **latency quantiles** — accept and submit latency medians/q90s agree
  within tolerance;
* **run-to-run bit reproducibility** — the vector path, run twice with the
  same seed, emits identical :class:`~repro.hits.hit.Assignment` tuples,
  answers included.

Tolerances are calibrated against a 2000-seed independent Monte-Carlo
referee of the worker-selection process (both implementations sit within
~2σ of it); the residual gap between the two paths is micro-dynamics
noise, not bias, so load statistics get 10% and latency quantiles 15%.
Everything here skips without numpy (the ``[vector]`` extra).
"""

from __future__ import annotations

from statistics import mean

import pytest

from repro.crowd import GroundTruth, SimulatedMarketplace
from repro.hits.hit import FilterPayload, FilterQuestion
from repro.hits.manager import BatchOutcome, TaskManager
from repro.util import vector as vector_toggle

if not vector_toggle.available():
    pytest.skip(
        "numpy not installed; REPRO_VECTOR kernel inactive", allow_module_level=True
    )

SEEDS = range(100, 148)  # 48 seeds, disjoint from the golden-trace seeds
N_ITEMS = 40
BATCH_SIZE = 5
ASSIGNMENTS = 5  # 8 HITs x 5 slots = 40 assignments per group


def _post_group(seed: int, vector_on: bool):
    """Post one filter group and return (market, completed assignments)."""
    items = [f"img://item/{i}" for i in range(N_ITEMS)]
    truth = GroundTruth()
    truth.add_filter_task("keep", {item: i % 3 != 0 for i, item in enumerate(items)})
    market = SimulatedMarketplace(truth, seed=seed)
    manager = TaskManager(market)
    units = [[FilterPayload("keep", (FilterQuestion(item),))] for item in items]
    hits = manager.build_hits(
        units, batch_size=BATCH_SIZE, assignments=ASSIGNMENTS, label="t"
    )
    with vector_toggle.forced(vector_on):
        completed = market.post_hit_group(hits, group_id="g")
    return market, completed


def _load_stats(assignments):
    counts: dict[str, int] = {}
    for assignment in assignments:
        counts[assignment.worker_id] = counts.get(assignment.worker_id, 0) + 1
    return len(counts), max(counts.values())


@pytest.fixture(scope="module")
def panel():
    """(scalar, vector) completed-assignment lists for every panel seed."""
    runs = []
    for seed in SEEDS:
        _, scalar = _post_group(seed, vector_on=False)
        _, vectorized = _post_group(seed, vector_on=True)
        runs.append((scalar, vectorized))
    return runs


def test_assignment_counts_match_scalar(panel):
    """An amply-deadlined group fills every slot under both dispatchers, so
    the totals and the per-HIT counts are *equal*, not merely close."""
    expected_total = (N_ITEMS // BATCH_SIZE) * ASSIGNMENTS
    for scalar, vectorized in panel:
        assert len(scalar) == expected_total
        assert len(vectorized) == expected_total

        def per_hit(assignments):
            counts: dict[str, int] = {}
            for a in assignments:
                counts[a.hit_id] = counts.get(a.hit_id, 0) + 1
            return counts

        assert per_hit(scalar) == per_hit(vectorized)


def test_no_worker_doubles_up_within_a_hit(panel):
    """The one-assignment-per-worker-per-HIT marketplace rule holds in the
    vector domain too (the kernel's exclusion matrix)."""
    for _, vectorized in panel:
        seen = set()
        for a in vectorized:
            key = (a.hit_id, a.worker_id)
            assert key not in seen
            seen.add(key)


def test_worker_load_statistically_equivalent(panel):
    """Distinct-worker and max-load panel means agree within 10%."""
    scalar_distinct, scalar_max, vector_distinct, vector_max = [], [], [], []
    for scalar, vectorized in panel:
        d, m = _load_stats(scalar)
        scalar_distinct.append(d)
        scalar_max.append(m)
        d, m = _load_stats(vectorized)
        vector_distinct.append(d)
        vector_max.append(m)
    assert mean(vector_distinct) == pytest.approx(mean(scalar_distinct), rel=0.10)
    # Max load is the noisiest statistic of the panel (it is an extreme
    # value); the 2000-seed referee puts the true gap near 4%, so 15%
    # bounds bias without flaking on panel noise.
    assert mean(vector_max) == pytest.approx(mean(scalar_max), rel=0.15)


def test_latency_quantiles_statistically_equivalent(panel):
    """Accept/submit q50 and q90 panel means agree within 15%."""
    for kind in ("accept", "submit"):
        scalar_qs, vector_qs = [], []
        for scalar, vectorized in panel:
            scalar_qs.append(
                BatchOutcome(assignments=list(scalar)).latency_quantiles(kind=kind)
            )
            vector_qs.append(
                BatchOutcome(assignments=list(vectorized)).latency_quantiles(kind=kind)
            )
        for position in (0, 1):  # q50, q90
            scalar_mean = mean(qs[position] for qs in scalar_qs)
            vector_mean = mean(qs[position] for qs in vector_qs)
            assert vector_mean == pytest.approx(scalar_mean, rel=0.15), (
                kind,
                position,
            )


def test_answer_distribution_statistically_equivalent(panel):
    """The yes-vote fraction over all filter answers agrees within 10% —
    the kernel's batched behaviour model draws from the same marginals as
    the scalar per-worker model."""

    def yes_fraction(runs):
        yes = total = 0
        for assignments in runs:
            for assignment in assignments:
                for value in assignment.answers.values():
                    total += 1
                    yes += bool(value)
        return yes / total

    scalar_yes = yes_fraction(s for s, _ in panel)
    vector_yes = yes_fraction(v for _, v in panel)
    assert vector_yes == pytest.approx(scalar_yes, rel=0.10)


def test_vector_run_to_run_bit_reproducible():
    """Same seed, two runs: identical Assignment tuples, answers included."""
    for seed in (101, 107):
        _, first = _post_group(seed, vector_on=True)
        _, second = _post_group(seed, vector_on=True)
        assert first == second


def test_vector_stats_counters_consistent():
    """Marketplace counters stay self-consistent in the vector domain:
    every consideration is an acceptance or a refusal, and completions
    match the harvested assignment list."""
    market, completed = _post_group(111, vector_on=True)
    stats = market.stats
    assert stats.assignments_completed == len(completed)
    assert stats.considerations == stats.refusals + stats.assignments_completed
    assert sum(stats.worker_assignment_counts.values()) == len(completed)
