"""Tests for feature filtering and automatic feature selection."""

import pytest

from repro.errors import QurkError
from repro.hits.hit import Vote
from repro.joins.feature_filter import (
    error_contribution,
    evaluate_features,
    filter_candidates,
    leave_one_out,
    pair_passes,
)
from repro.relational.expressions import UNKNOWN

LEFT = ["l0", "l1", "l2"]
RIGHT = ["r0", "r1", "r2"]

GENDER = (
    {"l0": "m", "l1": "f", "l2": "m"},
    {"r0": "m", "r1": "f", "r2": "f"},
)
HAIR = (
    {"l0": "brown", "l1": "blond", "l2": UNKNOWN},
    {"r0": "brown", "r1": "white", "r2": "black"},
)


def test_pair_passes_agreement():
    assert pair_passes("l0", "r0", [GENDER])
    assert not pair_passes("l0", "r1", [GENDER])


def test_pair_passes_unknown_wildcard():
    assert pair_passes("l2", "r2", [HAIR])  # left is UNKNOWN
    assert pair_passes("l2", "r0", [GENDER, HAIR])


def test_pair_passes_missing_item_treated_unknown():
    assert pair_passes("l9", "r0", [GENDER])


def test_filter_candidates_all_features():
    candidates = filter_candidates(LEFT, RIGHT, [GENDER, HAIR])
    assert ("l0", "r0") in candidates  # agrees on both
    assert ("l1", "r1") not in candidates  # blond vs white hair
    assert ("l2", "r0") in candidates  # UNKNOWN hair never prunes


def test_filter_candidates_no_features_is_cross_product():
    assert len(filter_candidates(LEFT, RIGHT, [])) == 9


def test_leave_one_out():
    features = {"gender": GENDER, "hair": HAIR}
    without_hair = leave_one_out(LEFT, RIGHT, features, omit="hair")
    with_all = filter_candidates(LEFT, RIGHT, [GENDER, HAIR])
    assert set(with_all) <= set(without_hair)
    assert ("l1", "r1") in without_hair  # hair was what pruned it
    with pytest.raises(QurkError):
        leave_one_out(LEFT, RIGHT, features, omit="nope")


def test_error_contribution():
    features = {"gender": GENDER, "hair": HAIR}
    # Reference result (true matches): diagonal pairs.
    matches = [("l0", "r0"), ("l1", "r1")]
    fraction = error_contribution(LEFT, RIGHT, features, "hair", matches)
    assert fraction == pytest.approx(0.5)  # hair prunes (l1, r1)
    assert error_contribution(LEFT, RIGHT, features, "gender", []) == 0.0


def agree_votes(value, n=5):
    return [Vote(f"w{i}", value) for i in range(n)]


def split_votes():
    return [Vote("w0", "a"), Vote("w1", "b"), Vote("w2", "a"), Vote("w3", "b"), Vote("w4", "c")]


def test_evaluate_features_keeps_good_drops_ambiguous():
    features = {"gender": GENDER, "hair": HAIR}
    corpora = {
        "gender": {
            f"gender:gen:{item}:value": agree_votes("m")
            for item in LEFT + RIGHT
        },
        "hair": {f"hair:gen:{item}:value": split_votes() for item in LEFT + RIGHT},
    }
    report = evaluate_features(LEFT, RIGHT, features, corpora)
    assert "gender" in report.kept
    assert "hair" in report.dropped
    hair_decision = next(d for d in report.decisions if d.name == "hair")
    assert "ambiguous" in hair_decision.reason
    assert "drop" in str(hair_decision)


def test_evaluate_features_drops_ineffective():
    same = ({"l0": "x", "l1": "x"}, {"r0": "x", "r1": "x"})
    corpora = {"const": {f"q{i}": agree_votes("x") for i in range(4)}}
    report = evaluate_features(
        ["l0", "l1"], ["r0", "r1"], {"const": same}, corpora
    )
    assert report.dropped == ["const"]
    assert "ineffective" in report.decisions[0].reason


def test_evaluate_features_drops_unsound():
    # A selective, agreed-upon feature that nevertheless prunes true matches.
    unstable = ({"l0": "a", "l1": "b"}, {"r0": "b", "r1": "a"})
    corpora = {"f": {f"q{i}": agree_votes("a") for i in range(4)}}
    report = evaluate_features(
        ["l0", "l1"],
        ["r0", "r1"],
        {"f": unstable},
        corpora,
        sampled_matches=[("l0", "r0"), ("l1", "r1")],
    )
    assert report.dropped == ["f"]
    assert "unsound" in report.decisions[0].reason


def test_evaluate_features_missing_corpus_assumes_agreement():
    features = {"gender": GENDER}
    report = evaluate_features(LEFT, RIGHT, features, {})
    assert report.kept == ["gender"]
