"""Tests for immutable rows."""

import pytest

from repro.errors import SchemaError
from repro.relational.rows import Row
from repro.relational.schema import Schema


@pytest.fixture
def row() -> Row:
    return Row(Schema.of("name text", "img url"), {"name": "ada", "img": "img://1"})


def test_mapping_interface(row):
    assert row["name"] == "ada"
    assert list(row) == ["name", "img"]
    assert len(row) == 2
    assert dict(row) == {"name": "ada", "img": "img://1"}


def test_get_with_default(row):
    assert row.get("missing", 42) == 42
    assert row.get("name") == "ada"


def test_validation_on_construction():
    with pytest.raises(SchemaError):
        Row(Schema.of("a integer"), {"a": "nope"})


def test_hash_and_equality(row):
    same = Row(row.schema, {"name": "ada", "img": "img://1"})
    other = Row(row.schema, {"name": "bob", "img": "img://2"})
    assert row == same
    assert hash(row) == hash(same)
    assert row != other
    assert len({row, same, other}) == 2


def test_project(row):
    projected = row.project(["img"])
    assert list(projected) == ["img"]
    assert projected["img"] == "img://1"


def test_prefixed(row):
    prefixed = row.prefixed("c")
    assert prefixed["c.name"] == "ada"
    assert "name" not in prefixed.schema


def test_merged(row):
    other = Row(Schema.of("id integer"), {"id": 7})
    merged = row.merged(other)
    assert merged["id"] == 7
    assert merged["name"] == "ada"


def test_merged_overlap_fails(row):
    with pytest.raises(SchemaError):
        row.merged(Row(Schema.of("name text"), {"name": "x"}))


def test_extended(row):
    extended = row.extended("extra", [1, 2])
    assert extended["extra"] == [1, 2]
    assert len(extended) == 3


def test_as_dict_is_copy(row):
    d = row.as_dict()
    d["name"] = "changed"
    assert row["name"] == "ada"
