"""Golden-trace regression: the fast path must not move a single vote.

The perf overhaul (memoized seed derivation, cumulative-weight sampling,
Fenwick slot table, lazy HTML, hoisted behaviour loops) promises to be
*stream-preserving*: for a fixed seed, the emitted per-qid vote stream, the
virtual clock, and the cost-ledger totals are bit-identical to the seed
implementation. This module enforces that promise two ways:

1. against a golden trace (``tests/golden/determinism_trace.json``)
   captured from the pre-optimization implementation, and
2. by running the same query with the fast path forced on and off and
   asserting the two traces are equal.

If a future PR *must* break the stream (e.g. a semantically different
sampler), regenerate the golden with
``python scripts/regen_golden_trace.py`` and say so loudly in the PR — see
README.md, "Performance & determinism contract".
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core.context import ExecutionConfig
from repro.core.engine import Qurk
from repro.crowd import SimulatedMarketplace
from repro.datasets.movie import movie_dataset
from repro.experiments.end_to_end import QUERY_WITH_FILTER
from repro.joins.batching import JoinInterface
from repro.util import fastpath

GOLDEN_PATH = Path(__file__).parent / "golden" / "determinism_trace.json"
VECTOR_GOLDEN_PATH = Path(__file__).parent / "golden" / "determinism_trace_vector.json"


class RecordingPlatform:
    """Delegates to a marketplace while recording every completed assignment."""

    def __init__(self, inner: SimulatedMarketplace) -> None:
        self.inner = inner
        self.completed = []

    def post_hit_group(self, hits, group_id=None):
        assignments = self.inner.post_hit_group(hits, group_id=group_id)
        self.completed.extend(assignments)
        return assignments

    @property
    def clock_seconds(self) -> float:
        return self.inner.clock_seconds


def collect_trace(
    seed: int = 0, through_session: bool = False, faults=None, store=None
) -> dict:
    """Run the fixed-seed join + sort query and trace everything observable.

    This is the movie query under the paper's optimized plan (numInScene
    filter + Smart 5x5 join + Rate sort), exercising generative, join-grid,
    and rating HITs in one pass. With ``through_session`` the same query
    runs as a single-query :class:`~repro.core.session.EngineSession`
    instead of a plain engine — the session layer's fidelity contract says
    the trace must be identical. ``faults`` installs a
    :class:`~repro.crowd.faults.FaultPlan` on the marketplace (a zero-rate
    plan must leave the trace untouched). ``store`` passes a persistent
    answer-store spec through to the facade — under ``REPRO_STORE=0`` a
    configured store must leave the trace untouched too.
    """
    data = movie_dataset(seed=seed)
    market = SimulatedMarketplace(data.truth, seed=seed, faults=faults)
    platform = RecordingPlatform(market)
    config = ExecutionConfig(
        join_interface=JoinInterface.SMART,
        grid_rows=5,
        grid_cols=5,
        use_feature_filters=True,
        generative_batch_size=5,
        sort_method="rate",
        compare_group_size=5,
        rate_batch_size=5,
    )
    if through_session:
        from repro.core.session import EngineSession

        session = EngineSession(platform=platform, config=config, store=store)
        session.register_table(data.actors)
        session.register_table(data.scenes)
        session.define(data.task_dsl)
        handle = session.submit(QUERY_WITH_FILTER)
        result = session.run()[handle]
        ledger = handle.ledger
    else:
        engine = Qurk(platform=platform, config=config, store=store)
        engine.register_table(data.actors)
        engine.register_table(data.scenes)
        engine.define(data.task_dsl)
        result = engine.execute(QUERY_WITH_FILTER)
        ledger = engine.ledger
    votes = []
    for assignment in platform.completed:
        for qid, value in assignment.answers.items():
            votes.append([qid, assignment.worker_id, repr(value)])
    return {
        "seed": seed,
        "result_rows": len(result.rows),
        "votes": votes,
        "clock_seconds": market.clock_seconds,
        "ledger": {
            "total_hits": ledger.total_hits,
            "total_assignments": ledger.total_assignments,
            "total_cost": round(ledger.total_cost, 10),
        },
        "stats": {
            "hits_posted": market.stats.hits_posted,
            "considerations": market.stats.considerations,
            "refusals": market.stats.refusals,
            "assignments_completed": market.stats.assignments_completed,
        },
        "assignment_ids": [a.assignment_id for a in platform.completed[-5:]],
        "submit_times": [
            platform.completed[i].submit_time
            for i in (0, len(platform.completed) // 2, -1)
        ],
    }


@pytest.fixture(scope="module")
def fast_trace() -> dict:
    with fastpath.forced(True):
        return collect_trace(seed=0)


def test_fast_path_matches_golden(fast_trace):
    """Votes, clock, and ledger are bit-identical to the seed implementation."""
    golden = json.loads(GOLDEN_PATH.read_text())
    assert fast_trace["votes"] == golden["votes"]
    assert fast_trace["clock_seconds"] == golden["clock_seconds"]
    assert fast_trace["ledger"] == golden["ledger"]
    assert fast_trace["stats"] == golden["stats"]
    assert fast_trace["assignment_ids"] == golden["assignment_ids"]
    assert fast_trace["submit_times"] == golden["submit_times"]
    assert fast_trace["result_rows"] == golden["result_rows"]


def test_reference_path_matches_golden():
    """The retained reference implementations still reproduce the golden."""
    with fastpath.forced(False):
        trace = collect_trace(seed=0)
    golden = json.loads(GOLDEN_PATH.read_text())
    assert trace == golden


def test_single_query_session_reproduces_golden_trace():
    """A one-query EngineSession is the plain engine, bit for bit: same
    votes, clock, ledger, and marketplace counters as the golden trace."""
    trace = collect_trace(seed=0, through_session=True)
    golden = json.loads(GOLDEN_PATH.read_text())
    assert trace == golden


def test_sortscale_reference_matches_golden():
    """REPRO_SORTSCALE=0 reverts bit-identically: the golden query's rate
    sort goes through the same graph/ordering layer entry points, and the
    reference implementations must reproduce the pinned trace."""
    from repro.util import sortscale

    with sortscale.forced(False):
        trace = collect_trace(seed=0)
    golden = json.loads(GOLDEN_PATH.read_text())
    assert trace == golden


def test_resilience_disabled_matches_golden():
    """REPRO_RESILIENCE=0 reverts bit-identically: with the toggle off the
    retry/repost machinery never arms and the golden query reproduces the
    pinned trace exactly."""
    from repro.util import resilience

    with resilience.forced(False):
        trace = collect_trace(seed=0)
    golden = json.loads(GOLDEN_PATH.read_text())
    assert trace == golden


def test_store_disabled_matches_golden(tmp_path):
    """REPRO_STORE=0 reverts bit-identically: a *configured* persistent
    store is ignored entirely — the pinned trace reproduces exactly and
    the store file is never even created — through both facades."""
    from repro.util import store as store_toggle

    golden = json.loads(GOLDEN_PATH.read_text())
    for through_session in (False, True):
        db_path = tmp_path / f"session-{through_session}.db"
        with store_toggle.forced(False):
            trace = collect_trace(
                seed=0, through_session=through_session, store=db_path
            )
        assert trace == golden
        assert not db_path.exists()


def test_zero_rate_fault_plan_matches_golden():
    """A zero-rate FaultPlan consumes no draws: installing it on the
    marketplace (with the resilience toggle at its default) leaves votes,
    clock, ledger, and counters bit-identical to the golden trace."""
    from repro.crowd import FaultPlan

    trace = collect_trace(seed=0, faults=FaultPlan())
    golden = json.loads(GOLDEN_PATH.read_text())
    assert trace == golden


def test_zero_rate_fault_plan_matches_golden_with_toggle_forced_on():
    """Same pin with REPRO_RESILIENCE explicitly forced on: arming the
    layer against a fault-free marketplace must still change nothing."""
    from repro.crowd import FaultPlan
    from repro.util import resilience

    with resilience.forced(True):
        trace = collect_trace(seed=0, faults=FaultPlan())
    golden = json.loads(GOLDEN_PATH.read_text())
    assert trace == golden


def test_vector_disabled_matches_golden():
    """REPRO_VECTOR=0 reverts bit-identically: with the vector kernel off
    (its default) the scalar fast path runs untouched and the golden query
    reproduces the pinned trace exactly."""
    from repro.util import vector

    with vector.forced(False):
        trace = collect_trace(seed=0)
    golden = json.loads(GOLDEN_PATH.read_text())
    assert trace == golden


def test_vector_path_matches_vector_golden():
    """REPRO_VECTOR=1 is a *second* pinned determinism domain: the numpy
    kernel draws from its own PCG64 stream, so its trace differs from the
    scalar golden but is pinned against its own
    (``determinism_trace_vector.json``, regenerated with
    ``python scripts/regen_golden_trace.py --vector``)."""
    from repro.util import vector

    if not vector.available():
        pytest.skip("numpy not installed; vector determinism domain inactive")
    with vector.forced(True):
        trace = collect_trace(seed=0)
    golden = json.loads(VECTOR_GOLDEN_PATH.read_text())
    assert trace == golden


def test_vector_path_bit_reproducible_run_to_run():
    """Two identical runs under REPRO_VECTOR=1 emit identical traces —
    votes, clock, ledger, counters, assignment ids, and submit times."""
    from repro.util import vector

    if not vector.available():
        pytest.skip("numpy not installed; vector determinism domain inactive")
    with vector.forced(True):
        first = collect_trace(seed=3)
        second = collect_trace(seed=3)
    assert first == second


def test_fast_and_reference_agree_on_other_seeds(fast_trace):
    """Fast vs reference equality on a seed the golden does not cover."""
    with fastpath.forced(True):
        fast = collect_trace(seed=7)
    with fastpath.forced(False):
        ref = collect_trace(seed=7)
    assert fast == ref


def test_reseed_matches_fresh_construction():
    """RandomSource.reseed is draw-for-draw a fresh RandomSource."""
    from repro.util.rng import RandomSource

    reused = RandomSource(1)
    for seed in (0, 1, 42, 2**61 + 7):
        fresh = RandomSource(seed)
        reused.reseed(seed)
        draws = [
            fresh.random(),
            fresh.gauss(0.0, 1.0),
            fresh.randint(0, 10**6),
            fresh.lognormal(0.0, 0.3),
        ]
        assert draws == [
            reused.random(),
            reused.gauss(0.0, 1.0),
            reused.randint(0, 10**6),
            reused.lognormal(0.0, 0.3),
        ]
