"""Tests for rating aggregation and the hybrid sorter."""

import pytest

from repro.errors import QurkError
from repro.hits.hit import Vote
from repro.sorting.hybrid import (
    ConfidenceStrategy,
    HybridSorter,
    RandomStrategy,
    SlidingWindowStrategy,
)
from repro.sorting.rating import RatingSummary, order_by_rating, summarize_ratings


def rating_corpus(mapping):
    return {
        f"t:rate:{item}": [Vote(f"w{i}", score) for i, score in enumerate(scores)]
        for item, scores in mapping.items()
    }


def test_summarize_ratings():
    summaries = summarize_ratings(rating_corpus({"a": [1, 2, 3], "b": [7, 7]}))
    assert summaries["a"].mean == pytest.approx(2.0)
    assert summaries["a"].count == 3
    assert summaries["b"].std == 0.0


def test_summarize_malformed_qid():
    with pytest.raises(QurkError):
        summarize_ratings({"bogus": [Vote("w", 1)]})


def test_order_by_rating_ascending_with_deterministic_ties():
    summaries = {
        "x": RatingSummary("x", 3.0, 0.1, 5),
        "y": RatingSummary("y", 1.0, 0.1, 5),
        "z": RatingSummary("z", 3.0, 0.1, 5),
    }
    assert order_by_rating(summaries) == ["y", "x", "z"]


def perfect_compare(window):
    """Oracle comparisons consistent with lexicographic item order."""
    winners = {}
    items = list(window)
    for i in range(len(items)):
        for j in range(i + 1, len(items)):
            a, b = items[i], items[j]
            winners[(a, b)] = max(a, b)
    return winners


def noisy_summaries(n=12, noise_seed=3):
    """Items i00..i11 whose ratings are a noisy version of their index."""
    from repro.util.rng import RandomSource

    rng = RandomSource(noise_seed)
    summaries = {}
    for k in range(n):
        item = f"i{k:02d}"
        summaries[item] = RatingSummary(
            item, mean=k + rng.gauss(0, 1.6), std=1.0, count=5
        )
    return summaries


def test_hybrid_improves_toward_truth():
    summaries = noisy_summaries()
    truth = sorted(summaries)
    sorter = HybridSorter(
        summaries, SlidingWindowStrategy(window_size=5, stride=4), perfect_compare
    )
    from repro.metrics.kendall import kendall_tau_from_orders

    tau_before = kendall_tau_from_orders(sorter.order, truth)
    sorter.run(15)
    tau_after = kendall_tau_from_orders(sorter.order, truth)
    assert tau_after > tau_before
    assert sorter.hits_spent == 15


def test_hybrid_preserves_item_set():
    summaries = noisy_summaries()
    sorter = HybridSorter(
        summaries, RandomStrategy(window_size=4, seed=1), perfect_compare
    )
    before = sorted(sorter.order)
    sorter.run(10)
    assert sorted(sorter.order) == before


def test_random_strategy_positions_valid():
    strategy = RandomStrategy(window_size=5, seed=2)
    order = [f"i{k}" for k in range(9)]
    for iteration in range(10):
        positions = strategy.next_window(order, {}, iteration)
        assert len(positions) == 5
        assert len(set(positions)) == 5
        assert all(0 <= p < 9 for p in positions)


def test_sliding_window_wraps_and_shifts_phase():
    strategy = SlidingWindowStrategy(window_size=3, stride=2)
    order = [f"i{k}" for k in range(5)]
    w0 = strategy.next_window(order, {}, 0)
    w1 = strategy.next_window(order, {}, 1)
    assert w0 == [0, 1, 2]
    assert w1 == [2, 3, 4]
    w2 = strategy.next_window(order, {}, 2)
    assert w2 == [4, 0, 1]  # wraps around


def test_sliding_window_stride_validation():
    with pytest.raises(QurkError):
        SlidingWindowStrategy(window_size=3, stride=0)


def test_confidence_strategy_prioritizes_overlap():
    # Two clearly separated items and two overlapping ones: the window
    # containing the overlapping pair must come first.
    summaries = {
        "a": RatingSummary("a", 1.0, 0.05, 5),
        "b": RatingSummary("b", 3.0, 0.05, 5),
        "c": RatingSummary("c", 5.0, 2.0, 5),
        "d": RatingSummary("d", 5.1, 2.0, 5),
    }
    strategy = ConfidenceStrategy(window_size=2)
    order = order_by_rating(summaries)
    first = strategy.next_window(order, summaries, 0)
    window_items = {order[p] for p in first}
    assert window_items == {"c", "d"}


def test_confidence_strategy_cycles_through_windows():
    summaries = noisy_summaries(n=6)
    strategy = ConfidenceStrategy(window_size=3)
    order = sorted(summaries)
    seen = {tuple(strategy.next_window(order, summaries, i)) for i in range(4)}
    assert len(seen) == 4


def test_hybrid_rejects_empty():
    with pytest.raises(QurkError):
        HybridSorter({}, RandomStrategy(3), perfect_compare)


def test_hybrid_window_migration_across_wrap():
    """An item stuck at the wrong end migrates via wrapped windows."""
    items = [f"i{k:02d}" for k in range(8)]
    summaries = {item: RatingSummary(item, float(k), 0.5, 5) for k, item in enumerate(items)}
    # Place the largest item's rating at the bottom.
    summaries["i07"] = RatingSummary("i07", -1.0, 0.5, 5)
    sorter = HybridSorter(
        summaries, SlidingWindowStrategy(window_size=4, stride=3), perfect_compare
    )
    assert sorter.order[0] == "i07"
    sorter.run(12)
    assert sorter.order.index("i07") >= 5
