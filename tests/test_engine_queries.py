"""Integration tests: full queries through the Qurk engine."""

import pytest

from repro import ExecutionConfig, JoinInterface, Qurk, SimulatedMarketplace
from repro.datasets import (
    animals_dataset,
    celebrity_dataset,
    movie_dataset,
    squares_dataset,
)
from repro.errors import PlanError
from repro.metrics import kendall_tau_from_orders


def make_squares_engine(n=15, seed=7, **config):
    data = squares_dataset(n=n, seed=seed)
    market = SimulatedMarketplace(data.truth, seed=seed)
    engine = Qurk(platform=market, config=ExecutionConfig(**config))
    engine.register_table(data.table)
    engine.define(data.task_dsl)
    return data, engine


def test_compare_sort_recovers_true_order():
    data, engine = make_squares_engine(sort_method="compare")
    result = engine.execute(
        "SELECT squares.label FROM squares ORDER BY squareSorter(img)"
    )
    expected = [f"square-{20 + 3 * i}" for i in range(15)]
    tau = kendall_tau_from_orders(result.column("squares.label"), expected)
    assert tau > 0.95
    assert result.hit_count > 0
    assert result.total_cost > 0


def test_rate_sort_close_but_cheaper():
    data, engine_compare = make_squares_engine(sort_method="compare")
    compare_result = engine_compare.execute(
        "SELECT squares.label FROM squares ORDER BY squareSorter(img)"
    )
    _, engine_rate = make_squares_engine(sort_method="rate")
    rate_result = engine_rate.execute(
        "SELECT squares.label FROM squares ORDER BY squareSorter(img)"
    )
    expected = [f"square-{20 + 3 * i}" for i in range(15)]
    rate_tau = kendall_tau_from_orders(rate_result.column("squares.label"), expected)
    assert rate_result.hit_count < compare_result.hit_count
    assert rate_tau > 0.55


def test_sort_desc_reverses():
    _, engine = make_squares_engine(sort_method="compare")
    asc = engine.execute("SELECT squares.label FROM squares ORDER BY squareSorter(img)")
    desc = engine.execute(
        "SELECT squares.label FROM squares ORDER BY squareSorter(img) DESC"
    )
    assert list(reversed(asc.column("squares.label"))) == desc.column("squares.label")


def test_limit_top_k():
    _, engine = make_squares_engine(sort_method="compare")
    result = engine.execute(
        "SELECT squares.label FROM squares ORDER BY squareSorter(img) DESC LIMIT 3"
    )
    assert len(result) == 3
    assert result.rows[0]["squares.label"] == "square-62"


def test_hybrid_sort_runs():
    _, engine = make_squares_engine(
        n=12, sort_method="hybrid", hybrid_iterations=8, hybrid_strategy="window"
    )
    result = engine.execute(
        "SELECT squares.label FROM squares ORDER BY squareSorter(img)"
    )
    expected = [f"square-{20 + 3 * i}" for i in range(12)]
    tau = kendall_tau_from_orders(result.column("squares.label"), expected)
    assert tau > 0.6


def celebrity_engine(n=15, seed=1, **config):
    data = celebrity_dataset(n=n, seed=seed)
    market = SimulatedMarketplace(data.truth, seed=seed)
    engine = Qurk(platform=market, config=ExecutionConfig(**config))
    engine.register_table(data.celebs)
    engine.register_table(data.photos)
    engine.define(data.task_dsl)
    return data, engine


JOIN_QUERY = (
    "SELECT c.name, p.id FROM celeb c JOIN photos p ON samePerson(c.img, p.img)"
)
FILTERED_JOIN_QUERY = (
    "SELECT c.name, p.id FROM celeb c JOIN photos p ON samePerson(c.img, p.img) "
    "AND POSSIBLY gender(c.img) = gender(p.img) "
    "AND POSSIBLY skinColor(c.img) = skinColor(p.img)"
)


def join_accuracy(result, n):
    true_positives = sum(
        1
        for row in result.rows
        if str(row["c.name"]).rsplit("-", 1)[1] == str(row["p.id"])
    )
    false_positives = len(result) - true_positives
    return true_positives, false_positives


def test_simple_join_finds_matches():
    data, engine = celebrity_engine(join_interface=JoinInterface.SIMPLE)
    result = engine.execute(JOIN_QUERY)
    tp, fp = join_accuracy(result, 15)
    assert tp >= 13
    assert fp <= 2
    assert result.hit_count == 225


def test_feature_filtering_cuts_hits_without_losing_matches():
    _, plain_engine = celebrity_engine(join_interface=JoinInterface.SIMPLE)
    plain = plain_engine.execute(JOIN_QUERY)
    _, filtered_engine = celebrity_engine(join_interface=JoinInterface.SIMPLE)
    filtered = filtered_engine.execute(FILTERED_JOIN_QUERY)
    assert filtered.hit_count < plain.hit_count
    tp, _ = join_accuracy(filtered, 15)
    assert tp >= 12


def test_use_feature_filters_false_ignores_possibly():
    _, engine = celebrity_engine(
        join_interface=JoinInterface.SIMPLE, use_feature_filters=False
    )
    result = engine.execute(FILTERED_JOIN_QUERY)
    assert result.hit_count == 225  # full cross product, no extraction pass


def test_smart_join_uses_grid_hits():
    _, engine = celebrity_engine(
        join_interface=JoinInterface.SMART, grid_rows=5, grid_cols=5,
        use_feature_filters=False,
    )
    result = engine.execute(JOIN_QUERY)
    assert result.hit_count == 9  # ceil(15/5)² grids


def test_join_then_sort_grouped_by_name():
    data = movie_dataset(seed=2)
    market = SimulatedMarketplace(data.truth, seed=2)
    engine = Qurk(
        platform=market,
        config=ExecutionConfig(
            join_interface=JoinInterface.SMART,
            grid_rows=5,
            grid_cols=5,
            sort_method="rate",
        ),
    )
    engine.register_table(data.actors)
    engine.register_table(data.scenes)
    engine.define(data.task_dsl)
    result = engine.execute(
        "SELECT a.name, s.img FROM actors a JOIN scenes s "
        "ON inScene(a.img, s.img) "
        "AND POSSIBLY numInScene(s.img) = 1 "
        "ORDER BY a.name, quality(s.img)"
    )
    names = result.column("a.name")
    assert names == sorted(names)  # grouped by actor
    assert len(result) > 20


def test_generative_select_fields():
    data = animals_dataset()
    market = SimulatedMarketplace(data.truth, seed=3)
    engine = Qurk(platform=market)
    engine.register_table(data.table)
    engine.define(data.task_dsl)
    result = engine.execute(
        "SELECT animals.name, animalInfo(img).common AS common FROM animals LIMIT 27"
    )
    matches = sum(
        1 for row in result.rows if row["common"] == row["animals.name"]
    )
    assert matches >= 24  # normalization + majority recovers names


def test_where_crowd_filter():
    data = celebrity_dataset(n=10, seed=4)
    truth = data.truth
    truth.add_filter_task(
        "isFemale",
        {
            ref: data.attributes[ref]["gender"] == "Female"
            for ref in data.celeb_refs
        },
    )
    market = SimulatedMarketplace(truth, seed=4)
    engine = Qurk(platform=market)
    engine.register_table(data.celebs)
    engine.define(data.task_dsl)
    engine.define(
        'TASK isFemale(field) TYPE Filter:\n'
        'Prompt: "<img src=\'%s\'>", tuple[field]\n'
    )
    result = engine.execute("SELECT c.name FROM celeb c WHERE isFemale(c)")
    expected = {
        f"celebrity-{i}"
        for i, ref in enumerate(data.celeb_refs)
        if data.attributes[ref]["gender"] == "Female"
    }
    got = set(result.column("c.name"))
    # At most one boundary mistake from crowd noise.
    assert len(got ^ expected) <= 1


def test_budget_enforcement():
    from repro.errors import BudgetExceededError

    _, engine = celebrity_engine(
        join_interface=JoinInterface.SIMPLE, max_budget=0.10
    )
    with pytest.raises(BudgetExceededError):
        engine.execute(JOIN_QUERY)


def test_define_rejects_select():
    _, engine = celebrity_engine()
    with pytest.raises(PlanError):
        engine.define("SELECT c.name FROM celeb c")


def test_execute_rejects_multiple_selects():
    _, engine = celebrity_engine()
    with pytest.raises(PlanError):
        engine.execute("SELECT c.name FROM celeb c SELECT c.name FROM celeb c")


def test_result_helpers():
    _, engine = make_squares_engine(n=5, sort_method="rate")
    result = engine.execute("SELECT squares.label FROM squares ORDER BY squareSorter(img)")
    assert len(result.as_dicts()) == 5
    assert "Sort" in result.explain()
    assert result.elapsed_seconds > 0


def test_extreme_tournament():
    data, engine = make_squares_engine(n=13, sort_method="compare")
    winner, hits = engine.extreme("squareSorter", data.items, most=True)
    assert winner == data.true_order[-1]
    assert hits >= 3


def test_engine_explain_without_execution():
    _, engine = make_squares_engine(n=5)
    text = engine.explain(
        "SELECT squares.label FROM squares ORDER BY squareSorter(img)"
    )
    assert "Scan(squares" in text
