"""Tests for normalizers and the adaptive assignment policy."""

import pytest

from repro.combine.adaptive import AdaptivePolicy, needs_more_votes, vote_margin
from repro.combine.normalize import get_normalizer, register_normalizer
from repro.hits.hit import Vote


def votes(*values):
    return [Vote(f"w{i}", v) for i, v in enumerate(values)]


def test_lowercase_single_space_registered():
    normalizer = get_normalizer("LowercaseSingleSpace")
    assert normalizer("  Polar  BEAR ") == "polar bear"


def test_none_is_identity():
    assert get_normalizer(None)("  X ") == "  X "
    assert get_normalizer("None")(" Y") == " Y"


def test_unknown_normalizer():
    with pytest.raises(KeyError):
        get_normalizer("Nope")


def test_register_custom_and_duplicate():
    register_normalizer("TestUpper", str.upper)
    assert get_normalizer("TestUpper")("ab") == "AB"
    with pytest.raises(KeyError):
        register_normalizer("TestUpper", str.upper)
    register_normalizer("TestUpper", str.title, replace=True)
    assert get_normalizer("TestUpper")("ab cd") == "Ab Cd"


def test_vote_margin():
    assert vote_margin(votes()) == 0
    assert vote_margin(votes(True)) == 1
    assert vote_margin(votes(True, True, False)) == 1
    assert vote_margin(votes(True, True, True, False)) == 2


def test_policy_validation():
    with pytest.raises(ValueError):
        AdaptivePolicy(initial_votes=0)
    with pytest.raises(ValueError):
        AdaptivePolicy(max_votes=2, initial_votes=3)
    with pytest.raises(ValueError):
        AdaptivePolicy(margin=0)


def test_needs_more_votes_margin_reached():
    policy = AdaptivePolicy(initial_votes=3, max_votes=9, margin=2)
    assert not needs_more_votes(votes(True, True, True), policy)  # margin 3


def test_needs_more_votes_contested():
    policy = AdaptivePolicy(initial_votes=3, max_votes=9, margin=2)
    assert needs_more_votes(votes(True, True, False), policy)  # margin 1


def test_needs_more_votes_budget_exhausted():
    policy = AdaptivePolicy(initial_votes=3, max_votes=5, margin=2)
    assert not needs_more_votes(votes(True, False, True, False, True), policy)


def test_needs_more_votes_unreachable_margin_stops_early():
    # Margin 3 needed, current margin 0, only 1 vote left: unreachable.
    tight = AdaptivePolicy(initial_votes=3, max_votes=5, margin=3)
    assert not needs_more_votes(votes(True, False, True, False), tight)
