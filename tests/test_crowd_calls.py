"""Tests for crowd-call execution helpers."""

import pytest

from repro.core.crowd_calls import (
    adaptive_single_question_votes,
    call_item_ref,
    evaluate_arg,
    evaluate_with_crowd,
    run_filter_call,
    run_generative_units,
    run_predicate_calls,
)
from repro.combine.adaptive import AdaptivePolicy
from repro.core.context import ExecutionConfig
from repro.crowd.truth import FeatureTruth, GroundTruth
from repro.errors import PlanError
from repro.hits.hit import FilterPayload, FilterQuestion
from repro.language.parser import parse_expression
from repro.relational.expressions import UNKNOWN, ColumnRef, UDFCall
from repro.relational.rows import Row
from repro.relational.schema import Schema

from tests.conftest import make_context

FILTER_DSL = (
    'TASK isEven(field) TYPE Filter:\nPrompt: "<img src=\'%s\'>", tuple[field]\n'
)
GEN_DSL = (
    'TASK color(field) TYPE Generative:\n'
    'Prompt: "<img src=\'%s\'>", tuple[field]\n'
    'Response: Radio("Color", ["red", "blue", UNKNOWN])\n'
)
RANK_DSL = 'TASK rk(field) TYPE Rank:\nHtml: "<img src=\'%s\'>", tuple[field]\n'


def color_truth() -> GroundTruth:
    truth = GroundTruth()
    truth.add_feature_task(
        "color",
        "value",
        FeatureTruth(
            values={f"img://item/{i}": ("red" if i % 2 else "blue") for i in range(10)},
            options=("red", "blue", UNKNOWN),
        ),
    )
    return truth


def rows_with_items(n: int, alias: str = "t") -> list[Row]:
    schema = Schema.of(f"{alias}.id integer", f"{alias}.img url")
    return [
        Row(schema, {f"{alias}.id": i, f"{alias}.img": f"img://item/{i}"})
        for i in range(n)
    ]


def test_evaluate_arg_whole_row_alias():
    row = rows_with_items(1)[0]
    value = evaluate_arg(ColumnRef("t"), row, {})
    assert isinstance(value, dict)
    assert value["t.img"] == "img://item/0"


def test_evaluate_arg_qualified_column():
    row = rows_with_items(1)[0]
    assert evaluate_arg(ColumnRef("img", "t"), row, {}) == "img://item/0"


def test_call_item_ref_uses_first_arg():
    row = rows_with_items(1)[0]
    call = UDFCall("isEven", (ColumnRef("img", "t"),))
    assert call_item_ref(call, row, {}) == "img://item/0"


def test_call_item_ref_requires_args():
    row = rows_with_items(1)[0]
    from repro.errors import ExecutionError

    with pytest.raises(ExecutionError):
        call_item_ref(UDFCall("f", ()), row, {})


def test_run_filter_call(binary_filter_truth):
    ctx = make_context(binary_filter_truth, FILTER_DSL, seed=1)
    rows = rows_with_items(10)
    call = UDFCall("isEven", (ColumnRef("img", "t"),))
    answers, outcome = run_filter_call(call, rows, ctx, "test")
    assert len(answers) == 10
    correct = sum(
        answers[f"img://item/{i}"] == (i % 2 == 0) for i in range(10)
    )
    assert correct >= 9
    assert outcome.hit_count == 2  # batch size 5


def test_run_filter_call_wrong_task_type(simple_rank_truth):
    ctx = make_context(simple_rank_truth, RANK_DSL, seed=1)
    call = UDFCall("rk", (ColumnRef("img", "t"),))
    with pytest.raises(PlanError):
        run_filter_call(call, rows_with_items(2), ctx, "test")


def test_run_generative_units_combines_answers():
    ctx = make_context(color_truth(), GEN_DSL, seed=2)
    items = [f"img://item/{i}" for i in range(6)]
    results, outcome, corpora = run_generative_units({"color": items}, ctx, "gen")
    correct = sum(
        results["color"][item]["value"] == ("red" if i % 2 else "blue")
        for i, item in enumerate(items)
    )
    assert correct >= 5
    assert len(corpora["color"]) == 6


def test_run_predicate_calls_and_evaluation(binary_filter_truth):
    ctx = make_context(binary_filter_truth, FILTER_DSL, seed=3)
    rows = rows_with_items(10)
    predicate = parse_expression("isEven(t.img)")
    bindings = run_predicate_calls(predicate, rows, ctx, "where")
    kept = [row for row in rows if evaluate_with_crowd(predicate, row, bindings, ctx)]
    assert 3 <= len(kept) <= 7
    assert all(int(str(row["t.id"])) % 2 == 0 for row in kept) or len(kept) >= 4


def test_evaluate_with_crowd_generative_comparison():
    ctx = make_context(color_truth(), GEN_DSL, seed=4)
    rows = rows_with_items(6)
    predicate = parse_expression('color(t.img) = "red"')
    bindings = run_predicate_calls(predicate, rows, ctx, "where")
    kept = [row for row in rows if evaluate_with_crowd(predicate, row, bindings, ctx)]
    ids = {int(str(row["t.id"])) for row in kept}
    assert ids and all(i % 2 == 1 for i in ids)


def test_evaluate_with_crowd_computed_udf_passthrough():
    ctx = make_context(color_truth(), GEN_DSL, seed=5)
    ctx.catalog.register_function("always", lambda v: True)
    row = rows_with_items(1)[0]
    predicate = parse_expression("always(t.img)")
    from repro.core.crowd_calls import CrowdBindings

    assert evaluate_with_crowd(predicate, row, CrowdBindings(), ctx) is True


def test_rank_task_rejected_in_predicate(simple_rank_truth):
    ctx = make_context(simple_rank_truth, RANK_DSL, seed=6)
    predicate = parse_expression("rk(t.img) = 1")
    with pytest.raises(PlanError):
        run_predicate_calls(predicate, rows_with_items(2), ctx, "where")


def test_adaptive_collection_spends_fewer_assignments(binary_filter_truth):
    policy = AdaptivePolicy(initial_votes=3, step_votes=2, max_votes=9, margin=2)
    ctx = make_context(
        binary_filter_truth,
        FILTER_DSL,
        seed=7,
        config=ExecutionConfig(adaptive=policy, filter_batch_size=1),
    )
    units = [
        [FilterPayload("isEven", (FilterQuestion(f"img://item/{i}"),))]
        for i in range(10)
    ]
    qids = [f"isEven:filter:img://item/{i}" for i in range(10)]
    votes, outcome = adaptive_single_question_votes(units, qids, ctx, "adaptive")
    counts = [len(votes[qid]) for qid in qids]
    assert all(3 <= count <= 9 for count in counts)
    # Most questions settle with the initial three votes.
    assert sum(counts) < 10 * 9
