"""Tests for the crowd-sort execution layer."""

import pytest

from repro.core.context import ExecutionConfig
from repro.core.plan import SortNode
from repro.core.sort_exec import (
    compare_sort,
    execute_sort,
    hybrid_sort,
    make_strategy,
    rate_sort,
)
from repro.datasets import squares_dataset
from repro.errors import PlanError
from repro.language.ast import OrderItem
from repro.language.parser import parse_expression
from repro.metrics.kendall import kendall_tau_from_orders
from repro.relational.rows import Row
from repro.relational.schema import Schema
from repro.sorting.hybrid import ConfidenceStrategy, RandomStrategy, SlidingWindowStrategy

from tests.conftest import make_context


def squares_context(seed=5, n=12, **config):
    data = squares_dataset(n=n, seed=seed)
    ctx = make_context(
        data.truth, data.task_dsl, seed=seed, config=ExecutionConfig(seed=seed, **config)
    )
    return data, ctx


def task_of(ctx):
    return ctx.catalog.task("squareSorter")


def test_compare_sort_recovers_order():
    data, ctx = squares_context()
    order, corpus = compare_sort(task_of(ctx), data.items, ctx)
    assert kendall_tau_from_orders(order, data.true_order) > 0.9
    assert corpus  # raw votes exposed for κ analysis


def test_rate_sort_returns_summaries():
    data, ctx = squares_context()
    order, summaries = rate_sort(task_of(ctx), data.items, ctx)
    assert set(order) == set(data.items)
    assert all(summaries[ref].count > 0 for ref in data.items)
    assert kendall_tau_from_orders(order, data.true_order) > 0.4


def test_hybrid_sort_between_rate_and_compare():
    data, ctx = squares_context(hybrid_iterations=10)
    order, sorter = hybrid_sort(task_of(ctx), data.items, ctx)
    assert sorter.hits_spent == 10
    assert kendall_tau_from_orders(order, data.true_order) > 0.6


def test_make_strategy_dispatch():
    assert isinstance(make_strategy("random", 5, 6, 0), RandomStrategy)
    assert isinstance(make_strategy("confidence", 5, 6, 0), ConfidenceStrategy)
    assert isinstance(make_strategy("window", 5, 6, 0), SlidingWindowStrategy)
    with pytest.raises(PlanError):
        make_strategy("bogus", 5, 6, 0)


def make_rows(data, extra_column=None):
    names = ["s.img"] + ([extra_column] if extra_column else [])
    schema = Schema.of(*names)
    rows = []
    for i, ref in enumerate(data.items):
        values = {"s.img": ref}
        if extra_column:
            values[extra_column] = f"group-{i % 2}"
        rows.append(Row(schema, values))
    return rows


def test_execute_sort_plain_only():
    data, ctx = squares_context()
    rows = make_rows(data, extra_column="s.name")
    node = SortNode(
        order_items=(OrderItem(parse_expression("s.name")),),
        inputs=(),
    )
    ordered = execute_sort(node, rows, ctx)
    names = [row["s.name"] for row in ordered]
    assert names == sorted(names)


def test_execute_sort_crowd_only():
    data, ctx = squares_context()
    rows = make_rows(data)
    node = SortNode(
        order_items=(OrderItem(parse_expression("squareSorter(s.img)")),),
        inputs=(),
    )
    ordered = execute_sort(node, rows, ctx)
    refs = [str(row["s.img"]) for row in ordered]
    assert kendall_tau_from_orders(refs, data.true_order) > 0.9


def test_execute_sort_grouped_prefix():
    data, ctx = squares_context()
    rows = make_rows(data, extra_column="s.name")
    node = SortNode(
        order_items=(
            OrderItem(parse_expression("s.name")),
            OrderItem(parse_expression("squareSorter(s.img)")),
        ),
        inputs=(),
    )
    ordered = execute_sort(node, rows, ctx)
    groups = [str(row["s.name"]) for row in ordered]
    assert groups == sorted(groups)  # grouped by the plain prefix


def test_execute_sort_rejects_two_crowd_items():
    data, ctx = squares_context()
    node = SortNode(
        order_items=(
            OrderItem(parse_expression("squareSorter(s.img)")),
            OrderItem(parse_expression("squareSorter(s.img)")),
        ),
        inputs=(),
    )
    with pytest.raises(PlanError):
        execute_sort(node, make_rows(data), ctx)


def test_execute_sort_rejects_plain_after_crowd():
    data, ctx = squares_context()
    node = SortNode(
        order_items=(
            OrderItem(parse_expression("squareSorter(s.img)")),
            OrderItem(parse_expression("s.img")),
        ),
        inputs=(),
    )
    with pytest.raises(PlanError):
        execute_sort(node, make_rows(data), ctx)


def test_execute_sort_singleton_groups_cost_nothing():
    data, ctx = squares_context()
    rows = make_rows(data, extra_column="s.name")[:1]
    node = SortNode(
        order_items=(OrderItem(parse_expression("squareSorter(s.img)")),),
        inputs=(),
    )
    execute_sort(node, rows, ctx)
    assert ctx.manager.ledger.total_hits == 0  # nothing to compare
