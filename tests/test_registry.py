"""The pluggable task-executor registry (ROADMAP item 2).

Edge cases for the registry itself (deterministic duplicate rejection,
unknown-type errors naming the available types, registration-order
independence) plus the headline guarantee: a toy task type defined
entirely in this test file — task class, payload kind, behaviour model,
truth oracle — runs end-to-end through the unmodified engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

import pytest

from repro.core.context import ExecutionConfig
from repro.core.engine import Qurk
from repro.crowd import GroundTruth, SimulatedMarketplace
from repro.crowd.behavior import PAYLOAD_ANSWERERS, register_payload_answerer
from repro.errors import ParseError, TaskError
from repro.hits.compiler import (
    PAYLOAD_EFFORTS,
    PAYLOAD_MERGERS,
    PAYLOAD_RENDERERS,
    register_payload_kind,
)
from repro.hits.hit import filter_qid
from repro.language.ast import TaskDefinition
from repro.relational.schema import Schema
from repro.relational.table import Table
from repro.tasks.base import Task
from repro.tasks.registry import (
    ROLE_FILTER,
    DispatchTable,
    TaskTypeSpec,
    default_registry,
    spec_for_task,
)


def _noop_builder(defn):  # pragma: no cover - never built in these tests
    raise AssertionError("not built")


def _spec(key: str) -> TaskTypeSpec:
    return TaskTypeSpec(key=key, role=ROLE_FILTER, builder=_noop_builder)


# ---------------------------------------------------------------------------
# Registry edge cases
# ---------------------------------------------------------------------------


def test_duplicate_registration_is_rejected_deterministically():
    registry = default_registry()
    with registry.temporary(_spec("EdgeA")):
        with pytest.raises(TaskError, match="'EdgeA' already registered"):
            registry.register(_spec("EdgeA"))
        # replace=True is the explicit override path.
        replacement = _spec("EdgeA")
        assert registry.register(replacement, replace=True) is replacement
    assert not registry.has("EdgeA")


def test_unknown_type_error_names_available_types():
    registry = default_registry()
    with pytest.raises(TaskError) as excinfo:
        registry.get("Nope")
    message = str(excinfo.value)
    assert "unknown task type 'Nope'" in message
    for builtin in ("Filter", "Generative", "Rank", "EquiJoin"):
        assert builtin in message
    assert "register_task_type" in message


def test_unknown_type_rejected_at_parse_time():
    engine = Qurk(SimulatedMarketplace(GroundTruth(), seed=0))
    with pytest.raises(ParseError) as excinfo:
        engine.define('TASK f(x) TYPE Nope:\n    Question: "?"')
    message = str(excinfo.value)
    assert "unknown task type 'Nope'" in message
    assert "Filter" in message


def test_unknown_type_rejected_at_build_time():
    defn = TaskDefinition(name="f", params=("x",), task_type="Missing")
    with pytest.raises(TaskError, match="unknown task type 'Missing'"):
        default_registry().build(defn)


def test_task_without_type_key_is_rejected():
    class Bare(Task):
        pass

    with pytest.raises(TaskError, match="declares no type_key"):
        spec_for_task(Bare("bare", ("x",)))


def test_dispatch_table_duplicates_and_unknown_kinds():
    table = DispatchTable("toy handler")
    table.register("a", lambda: 1)
    with pytest.raises(TaskError, match="toy handler for kind 'a' already registered"):
        table.register("a", lambda: 2)
    assert table.lookup("missing") is None
    with pytest.raises(TaskError, match="no toy handler registered for kind 'missing'"):
        table.resolve("missing")
    assert table.available() == ["a"]


def test_registration_order_does_not_affect_execution():
    """Extra registrations, in any order, leave query results untouched."""
    registry = default_registry()

    def run() -> tuple:
        truth = GroundTruth()
        truth.add_filter_task(
            "isEven", {f"img://item/{i}": i % 2 == 0 for i in range(8)}
        )
        items = Table("items", Schema.of("id integer", "img url"))
        for i in range(8):
            items.insert({"id": i, "img": f"img://item/{i}"})
        engine = Qurk(SimulatedMarketplace(truth, seed=7))
        engine.register_table(items)
        engine.define(
            'TASK isEven(field) TYPE Filter:\n'
            '    Prompt: "<img src=\'%s\'> Even?", tuple[field]\n'
            "    Combiner: MajorityVote"
        )
        result = engine.execute("SELECT i.id FROM items i WHERE isEven(i.img)")
        return (
            [row["i.id"] for row in result.rows],
            engine.ledger.total_hits,
            engine.platform.clock_seconds,
        )

    baseline = run()
    with registry.temporary(_spec("OrderA"), _spec("OrderB")):
        first = run()
    with registry.temporary(_spec("OrderB"), _spec("OrderA")):
        second = run()
    assert first == baseline
    assert second == baseline


# ---------------------------------------------------------------------------
# The zero-engine-edits toy task
# ---------------------------------------------------------------------------

TOY_KIND = "toy_screen"

TOY_DSL = """
TASK passesScreen(field) TYPE ToyScreen:
    Note: "keep only shortlisted items"
"""


@dataclass(frozen=True)
class ToyScreenPayload:
    """A bare-bones filter-style payload: just item refs, no prompt."""

    kind: ClassVar[str] = TOY_KIND

    task_name: str
    items: tuple[str, ...]

    @property
    def unit_count(self) -> int:
        return len(self.items)


class ToyScreenTask(Task):
    """A filter-role task with no prompt machinery at all."""

    type_key = "ToyScreen"

    @classmethod
    def from_definition(cls, defn):
        return cls(name=defn.name, params=defn.params)


def _toy_payload(task, call, row, env):
    from repro.core.crowd_calls import call_item_ref

    return ToyScreenPayload(task_name=task.name, items=(call_item_ref(call, row, env),))


def _toy_answer(worker, payload, truth, rng, units, combined):
    shortlist = truth.custom_answer(TOY_KIND, payload.task_name)
    return {
        filter_qid(payload.task_name, item): item in shortlist
        for item in payload.items
    }


TOY_SPEC = TaskTypeSpec(
    key=ToyScreenTask.type_key,
    role=ROLE_FILTER,
    builder=ToyScreenTask.from_definition,
    unit_effort_seconds=1.0,
    payload_builder=_toy_payload,
    truth_hook=lambda truth, name, data: truth.add_custom_task(TOY_KIND, name, data),
)


@pytest.fixture
def toy_type():
    """Register the toy task type + payload kind; tear both down after."""
    register_payload_kind(
        TOY_KIND,
        effort=lambda model, payload: 1.0 * len(payload.items),
        renderer=lambda compiler, payload: "<p>shortlist?</p>",
        merger=lambda payloads: ToyScreenPayload(
            task_name=payloads[0].task_name,
            items=tuple(item for p in payloads for item in p.items),
        ),
    )
    register_payload_answerer(TOY_KIND, _toy_answer)
    try:
        with default_registry().temporary(TOY_SPEC):
            yield
    finally:
        for table in (PAYLOAD_EFFORTS, PAYLOAD_RENDERERS, PAYLOAD_MERGERS, PAYLOAD_ANSWERERS):
            table.unregister(TOY_KIND)


def test_toy_task_runs_end_to_end_with_zero_engine_edits(toy_type):
    truth = GroundTruth()
    shortlist = {"img://toy/0", "img://toy/2", "img://toy/5"}
    from repro.tasks.registry import install_truth

    install_truth(truth, "ToyScreen", "passesScreen", shortlist)

    items = Table("items", Schema.of("id integer", "img url"))
    for i in range(6):
        items.insert({"id": i, "img": f"img://toy/{i}"})

    engine = Qurk(
        SimulatedMarketplace(truth, seed=0),
        config=ExecutionConfig(filter_batch_size=4),
    )
    engine.register_table(items)
    engine.define(TOY_DSL)

    explain = engine.explain("SELECT i.id FROM items i WHERE passesScreen(i.img)")
    assert "passesScreen=ToyScreen" in explain

    result = engine.execute("SELECT i.id FROM items i WHERE passesScreen(i.img)")
    assert [row["i.id"] for row in result.rows] == [0, 2, 5]
    # Batching went through the toy merger: 6 items at batch 4 → 2 HITs
    # per assignment round.
    assert engine.ledger.total_hits > 0

    task = engine.catalog.task("passesScreen")
    assert task.unit_effort_seconds() == 1.0


def test_toy_type_gone_after_teardown():
    assert not default_registry().has("ToyScreen")
    assert PAYLOAD_ANSWERERS.lookup(TOY_KIND) is None
