"""Tests for worker profiles and the pool."""

import pytest

from repro.crowd.pool import PoolConfig, WorkerPool
from repro.crowd.worker import make_reliable, make_sloppy, make_spammer
from repro.util.rng import RandomSource


def test_pool_config_fractions_must_sum():
    with pytest.raises(ValueError):
        PoolConfig(reliable_fraction=0.5, sloppy_fraction=0.2, spammer_fraction=0.2)


def test_pool_build_composition():
    pool = WorkerPool.build(PoolConfig(size=100), seed=1)
    counts = pool.archetype_counts()
    assert counts["reliable"] == 77
    assert counts["sloppy"] == 17
    assert counts["spammer"] == 6
    assert len(pool) == 100


def test_pool_is_deterministic():
    a = WorkerPool.build(seed=5)
    b = WorkerPool.build(seed=5)
    assert [w.worker_id for w in a.workers] == [w.worker_id for w in b.workers]
    assert [w.archetype for w in a.workers] == [w.archetype for w in b.workers]


def test_archetype_parameter_ranges():
    rng = RandomSource(0)
    reliable = make_reliable("r", rng.child("r"))
    sloppy = make_sloppy("s", rng.child("s"))
    spammer = make_spammer("x", rng.child("x"))
    assert reliable.filter_error < sloppy.filter_error
    assert reliable.join_miss < sloppy.join_miss
    assert spammer.is_spammer and not reliable.is_spammer
    assert spammer.spam_style in ("random", "always_yes", "always_no", "first_option")


def test_batch_factor_grows_and_caps():
    worker = make_reliable("r", RandomSource(1))
    assert worker.batch_factor(1) == 1.0
    assert worker.batch_factor(5) > 1.0
    assert worker.batch_factor(1000) == 3.0


def test_error_rate_capped():
    worker = make_sloppy("s", RandomSource(2))
    assert worker.error_rate(0.9, 1000) <= 0.95


def test_acceptance_probability_monotone():
    worker = make_reliable("r", RandomSource(3))
    easy = worker.acceptance_probability(5.0)
    hard = worker.acceptance_probability(60.0)
    assert easy > 0.9 > 0.1 > hard


def test_pick_candidate_zipfian_concentration():
    pool = WorkerPool.build(PoolConfig(size=50), seed=4)
    rng = RandomSource(9)
    counts: dict[str, int] = {}
    for _ in range(5000):
        worker = pool.pick_candidate(rng)
        assert worker is not None
        counts[worker.worker_id] = counts.get(worker.worker_id, 0) + 1
    shares = sorted(counts.values(), reverse=True)
    # Zipfian: the top worker does far more than the median worker.
    assert shares[0] > 5 * shares[len(shares) // 2]


def test_pick_candidate_spammer_batch_affinity():
    pool = WorkerPool.build(PoolConfig(size=200, spammer_batch_affinity=0.2), seed=6)
    rng = RandomSource(10)
    spam_small = sum(
        1 for _ in range(4000) if pool.pick_candidate(rng, batch_units=1).is_spammer
    )
    spam_large = sum(
        1 for _ in range(4000) if pool.pick_candidate(rng, batch_units=25).is_spammer
    )
    assert spam_large > spam_small * 1.5


def test_pick_candidate_respects_exclusions():
    pool = WorkerPool.build(PoolConfig(size=10), seed=7)
    rng = RandomSource(11)
    all_ids = {worker.worker_id for worker in pool.workers}
    excluded = set(list(all_ids)[:9])
    for _ in range(20):
        worker = pool.pick_candidate(rng, exclude=excluded)
        assert worker is not None
        assert worker.worker_id not in excluded
    assert pool.pick_candidate(rng, exclude=all_ids) is None


def test_ban_removes_workers_from_pickup():
    pool = WorkerPool.build(PoolConfig(size=10), seed=8)
    rng = RandomSource(12)
    victim = pool.workers[0].worker_id
    pool.ban([victim])
    assert victim in pool.banned
    for _ in range(200):
        worker = pool.pick_candidate(rng)
        assert worker.worker_id != victim


def test_by_id():
    pool = WorkerPool.build(PoolConfig(size=10), seed=9)
    worker = pool.workers[3]
    assert pool.by_id(worker.worker_id) is worker
    with pytest.raises(KeyError):
        pool.by_id("nobody")
