"""Tests for the latency model."""

from repro.crowd.latency import LatencyConfig, LatencyModel, TimeOfDay
from repro.crowd.worker import make_reliable
from repro.util.rng import RandomSource


def test_time_of_day_factors():
    assert TimeOfDay.MORNING.rate_factor > TimeOfDay.EVENING.rate_factor


def test_pickup_rate_grows_with_remaining_work():
    model = LatencyModel()
    small = model.pickup_rate(remaining=5, total=1000, time_of_day=TimeOfDay.MORNING)
    large = model.pickup_rate(remaining=900, total=1000, time_of_day=TimeOfDay.MORNING)
    assert large > small


def test_straggler_regime_slows_rate():
    model = LatencyModel()
    # 40/1000 remaining is under the 5% straggler threshold.
    straggler = model.pickup_rate(40, 1000, TimeOfDay.MORNING)
    normal = model.pickup_rate(60, 1000, TimeOfDay.MORNING)
    assert straggler < normal * 0.5


def test_evening_slower_than_morning():
    model = LatencyModel()
    morning = model.pickup_rate(100, 100, TimeOfDay.MORNING)
    evening = model.pickup_rate(100, 100, TimeOfDay.EVENING)
    assert evening < morning


def test_work_seconds_scale_with_effort():
    model = LatencyModel(LatencyConfig(work_time_sigma=0.01))
    worker = make_reliable("w", RandomSource(1))
    rng = RandomSource(2)
    quick = sum(model.work_seconds(worker, 3.0, rng) for _ in range(50)) / 50
    slow = sum(model.work_seconds(worker, 30.0, rng) for _ in range(50)) / 50
    assert slow > quick * 3


def test_gap_sampling_positive():
    model = LatencyModel()
    rng = RandomSource(3)
    for _ in range(100):
        gap = model.next_consideration_gap(rng, 10, 100, TimeOfDay.MORNING)
        assert gap > 0


def test_trial_rate_factor_varies():
    model = LatencyModel()
    factors = {round(model.trial_rate_factor(RandomSource(s)), 6) for s in range(5)}
    assert len(factors) > 1
    assert all(f > 0 for f in factors)


def test_deadline_seconds():
    model = LatencyModel(LatencyConfig(deadline_hours=2.0))
    assert model.deadline_seconds == 7200.0
