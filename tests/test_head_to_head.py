"""Tests for head-to-head ordering."""

import pytest

from repro.errors import QurkError
from repro.hits.hit import Vote, compare_qid
from repro.sorting.head_to_head import (
    head_to_head_order,
    pair_winners_from_votes,
    win_fractions,
)


def corpus_for_order(items, votes_per_pair=5, flips=()):
    """Votes consistent with the given order, with optional flipped pairs."""
    corpus = {}
    for i in range(len(items)):
        for j in range(i + 1, len(items)):
            a, b = items[i], items[j]
            winner = b if (a, b) not in flips else a
            qid = compare_qid("t", a, b)
            corpus[qid] = [Vote(f"w{k}", winner) for k in range(votes_per_pair)]
    return corpus


def test_exact_recovery_when_acyclic():
    items = ["a", "b", "c", "d", "e"]
    winners = pair_winners_from_votes(corpus_for_order(items))
    assert head_to_head_order(items, winners) == items


def test_majority_voting_per_pair():
    corpus = {
        compare_qid("t", "a", "b"): [
            Vote("w1", "a"), Vote("w2", "b"), Vote("w3", "b")
        ]
    }
    winners = pair_winners_from_votes(corpus)
    assert winners[("a", "b")] == "b"


def test_tie_breaks_deterministically():
    corpus = {compare_qid("t", "a", "b"): [Vote("w1", "a"), Vote("w2", "b")]}
    assert pair_winners_from_votes(corpus)[("a", "b")] == "a"


def test_single_flip_moves_one_item():
    items = ["a", "b", "c", "d"]
    winners = pair_winners_from_votes(
        corpus_for_order(items, flips={("c", "d")})
    )
    order = head_to_head_order(items, winners)
    # c and d swap win counts: both have 2 wins; tie broken by name.
    assert order.index("a") == 0 and order.index("b") == 1


def test_cycle_still_produces_total_order():
    # a>b, b>c, c>a: every item has 1 win; order falls back to item name.
    winners = {("a", "b"): "a", ("b", "c"): "b", ("a", "c"): "c"}
    order = head_to_head_order(["a", "b", "c"], winners)
    assert sorted(order) == ["a", "b", "c"]


def test_winner_must_belong_to_pair():
    with pytest.raises(QurkError):
        head_to_head_order(["a", "b"], {("a", "b"): "z"})


def test_malformed_qid():
    with pytest.raises(QurkError):
        pair_winners_from_votes({"not-a-cmp-qid": [Vote("w", "a")]})


def test_win_fractions():
    items = ["a", "b"]
    corpus = {
        compare_qid("t", "a", "b"): [Vote("w1", "b"), Vote("w2", "b"), Vote("w3", "a")]
    }
    fractions = win_fractions(items, corpus)
    assert fractions["b"] == pytest.approx(2 / 3)
    assert fractions["a"] == pytest.approx(1 / 3)


def test_empty_votes_ignored():
    winners = pair_winners_from_votes({compare_qid("t", "a", "b"): []})
    assert winners == {}
