"""Tests for schemas and column types."""

import pytest

from repro.errors import SchemaError
from repro.relational.schema import Column, ColumnType, Schema


def test_schema_of_parses_types():
    schema = Schema.of("name text", "img url", "n integer", "score float", "ok boolean", "blob")
    assert schema.column("name").type is ColumnType.TEXT
    assert schema.column("img").type is ColumnType.URL
    assert schema.column("n").type is ColumnType.INTEGER
    assert schema.column("score").type is ColumnType.FLOAT
    assert schema.column("ok").type is ColumnType.BOOLEAN
    assert schema.column("blob").type is ColumnType.ANY


def test_schema_of_rejects_unknown_type():
    with pytest.raises(SchemaError):
        Schema.of("x varchar")


def test_schema_rejects_duplicates():
    with pytest.raises(SchemaError):
        Schema.of("a", "a")


def test_column_requires_name():
    with pytest.raises(SchemaError):
        Column("")


def test_type_acceptance():
    assert ColumnType.INTEGER.accepts(3)
    assert not ColumnType.INTEGER.accepts(True)  # bool is not an integer here
    assert not ColumnType.INTEGER.accepts("3")
    assert ColumnType.FLOAT.accepts(3)
    assert ColumnType.FLOAT.accepts(2.5)
    assert ColumnType.BOOLEAN.accepts(False)
    assert ColumnType.TEXT.accepts("hi")
    assert not ColumnType.TEXT.accepts(5)
    assert ColumnType.ANY.accepts(object())
    assert ColumnType.TEXT.accepts(None)  # NULLs allowed everywhere


def test_validate_catches_missing_extra_and_badly_typed():
    schema = Schema.of("a integer", "b text")
    schema.validate({"a": 1, "b": "x"})
    with pytest.raises(SchemaError):
        schema.validate({"a": 1})
    with pytest.raises(SchemaError):
        schema.validate({"a": 1, "b": "x", "c": 2})
    with pytest.raises(SchemaError):
        schema.validate({"a": "one", "b": "x"})


def test_project_preserves_order_and_types():
    schema = Schema.of("a integer", "b text", "c float")
    projected = schema.project(["c", "a"])
    assert projected.names == ("c", "a")
    assert projected.column("c").type is ColumnType.FLOAT


def test_prefixed():
    schema = Schema.of("name text").prefixed("c")
    assert schema.names == ("c.name",)


def test_concat_and_extended():
    left = Schema.of("a")
    right = Schema.of("b")
    combined = left.concat(right)
    assert combined.names == ("a", "b")
    extended = combined.extended(Column("c"))
    assert extended.names == ("a", "b", "c")


def test_concat_duplicate_fails():
    with pytest.raises(SchemaError):
        Schema.of("a").concat(Schema.of("a"))


def test_index_of_and_contains():
    schema = Schema.of("a", "b")
    assert schema.index_of("b") == 1
    assert "a" in schema and "z" not in schema
    with pytest.raises(SchemaError):
        schema.index_of("z")


def test_equality_and_hash():
    assert Schema.of("a integer") == Schema.of("a integer")
    assert Schema.of("a integer") != Schema.of("a text")
    assert hash(Schema.of("a")) == hash(Schema.of("a"))
