"""Tests for join pair enumeration and interface batch shaping."""

import pytest

from repro.errors import QurkError
from repro.joins.batching import (
    JoinInterface,
    all_pairs,
    hit_count_estimate,
    naive_batches,
    smart_grids,
    smart_grids_for_candidates,
)


def test_all_pairs_cross_product():
    pairs = all_pairs(["a", "b"], ["x", "y", "z"])
    assert len(pairs) == 6
    assert ("a", "x") in pairs and ("b", "z") in pairs


def test_naive_batches_slicing():
    pairs = all_pairs(["a", "b", "c"], ["x", "y", "z"])
    batches = naive_batches(pairs, 4)
    assert [len(b) for b in batches] == [4, 4, 1]
    assert sum(len(b) for b in batches) == 9


def test_naive_batch_validation():
    with pytest.raises(QurkError):
        naive_batches([], 0)


def test_smart_grids_cover_cross_product():
    grids = smart_grids([f"l{i}" for i in range(7)], [f"r{i}" for i in range(5)], 3, 3)
    covered = {
        (l, r) for left, right in grids for l in left for r in right
    }
    assert len(covered) == 35
    assert len(grids) == 3 * 2  # ceil(7/3) × ceil(5/3)


def test_smart_grid_validation():
    with pytest.raises(QurkError):
        smart_grids(["a"], ["b"], 0, 1)


def test_smart_grids_for_candidates_covers_all():
    candidates = [("l0", "r0"), ("l0", "r1"), ("l1", "r0"), ("l2", "r5")]
    grids = smart_grids_for_candidates(candidates, 2, 2)
    covered = {(l, r) for left, right in grids for l in left for r in right}
    assert set(candidates) <= covered


def test_hit_count_estimates_match_paper_table5():
    """Table 5 arithmetic: 211 scenes × 5 actors."""
    assert hit_count_estimate(211, 5, JoinInterface.SIMPLE) == 1055
    assert hit_count_estimate(211, 5, JoinInterface.NAIVE, batch_size=5) == 211
    assert hit_count_estimate(211, 5, JoinInterface.SMART, grid_rows=5, grid_cols=5) == 43
    # Filtered: 117 scenes pass numInScene.
    assert hit_count_estimate(117, 5, JoinInterface.SIMPLE) == 585
    assert hit_count_estimate(117, 5, JoinInterface.NAIVE, batch_size=5) == 117
    assert hit_count_estimate(117, 5, JoinInterface.SMART, grid_rows=3, grid_cols=3) == 65
    assert hit_count_estimate(117, 5, JoinInterface.SMART, grid_rows=5, grid_cols=5) == 24


def test_hit_count_celebrity_join():
    """§3.3.2: 30×30 join = 900 HITs simple, 90 naive-10, 100 smart-3×3."""
    assert hit_count_estimate(30, 30, JoinInterface.SIMPLE) == 900
    assert hit_count_estimate(30, 30, JoinInterface.NAIVE, batch_size=10) == 90
    assert hit_count_estimate(30, 30, JoinInterface.SMART, grid_rows=3, grid_cols=3) == 100
