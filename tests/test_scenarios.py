"""The scenario pack: out-of-tree task types through the full stack.

Both scenario types live in ``src/repro/scenarios/`` and register through
the public plugin API — these tests drive them parse → plan → execute →
EXPLAIN and check the declarative validation their builders add.
"""

from __future__ import annotations

import pytest

from repro.core.context import ExecutionConfig
from repro.core.engine import Qurk
from repro.crowd import SimulatedMarketplace
from repro.errors import TaskError
from repro.joins.batching import JoinInterface
from repro.language.parser import parse_statements
from repro.scenarios.categorize import (
    CATEGORIZE_QUERY,
    CategorizeTask,
    categorize_dataset,
    run_categorize_variant,
)
from repro.scenarios.er_join import (
    ER_QUERY,
    EntityResolutionJoinTask,
    er_join_dataset,
    run_er_join_variant,
)
from repro.tasks import task_from_definition
from repro.tasks.registry import default_registry


def _task_from_dsl(dsl: str):
    (stmt,) = parse_statements(dsl)
    return task_from_definition(stmt)


# ---------------------------------------------------------------------------
# Entity-resolution join
# ---------------------------------------------------------------------------


def test_er_join_registers_and_builds_from_dsl():
    data = er_join_dataset(seed=0)
    assert default_registry().has("ErJoin")
    task = _task_from_dsl(data.task_dsl)
    assert isinstance(task, EntityResolutionJoinTask)
    assert task.pair_question().startswith("Do these two product listings")
    assert "one from each column" in task.grid_question()
    assert task.unit_effort_seconds() == 4.5


def test_er_join_requires_two_parameters():
    with pytest.raises(TaskError, match="exactly two parameters"):
        EntityResolutionJoinTask("oneArg", ("x",), "q?", "grid?")


def test_er_join_dataset_is_deterministic():
    first = er_join_dataset(seed=3)
    second = er_join_dataset(seed=3)
    assert first.matches == second.matches
    assert [dict(row) for row in first.listings] == [
        dict(row) for row in second.listings
    ]


def test_er_join_explain_names_the_scenario_type():
    data = er_join_dataset(seed=0)
    engine = Qurk(SimulatedMarketplace(data.truth, seed=0))
    engine.register_table(data.catalog)
    engine.register_table(data.listings)
    engine.define(data.task_dsl)
    explain = engine.explain(ER_QUERY)
    assert "CrowdJoin(sameProduct(c.listing, l.listing))" in explain
    assert "sameProduct=ErJoin" in explain


def test_er_join_runs_end_to_end_per_interface():
    data = er_join_dataset(seed=0)
    simple = run_er_join_variant(data, "Simple", JoinInterface.SIMPLE, seed=1)
    smart = run_er_join_variant(data, "Smart", JoinInterface.SMART, grid=3, seed=1)
    # Pairwise HITs scale with |R||S|; grids compress them hard.
    assert simple.total_hits > 3 * smart.total_hits
    # Dirty duplicates mean more matches than catalog rows.
    assert len(data.matches) > len(data.catalog.rows)
    assert simple.precision == 1.0
    assert simple.recall == 1.0
    assert smart.recall >= 0.7


# ---------------------------------------------------------------------------
# Multi-class categorization
# ---------------------------------------------------------------------------


def test_categorize_registers_and_builds_from_dsl():
    data = categorize_dataset(seed=0)
    assert default_registry().has("Categorize")
    task = _task_from_dsl(data.task_dsl)
    assert isinstance(task, CategorizeTask)
    assert task.categories == ("electronics", "apparel", "home", "toys")
    field = task.single_field
    assert field.name == "category"
    assert field.is_categorical
    assert field.options == task.categories
    # Effort scales with the label space: 1.5 + 0.25 * 4.
    assert task.unit_effort_seconds() == 2.5


def test_categorize_requires_at_least_three_classes():
    with pytest.raises(TaskError, match="at least 3 categories"):
        _task_from_dsl(
            'TASK twoWay(field) TYPE Categorize:\n'
            '    Prompt: "%s?", tuple[field]\n'
            '    Categories: ["yes", "no"]'
        )


def test_categorize_rejects_non_list_categories():
    with pytest.raises(TaskError, match="Categories list"):
        _task_from_dsl(
            'TASK broken(field) TYPE Categorize:\n'
            '    Prompt: "%s?", tuple[field]\n'
            '    Categories: "electronics"'
        )


def test_categorize_explain_names_the_scenario_type():
    data = categorize_dataset(seed=0)
    engine = Qurk(SimulatedMarketplace(data.truth, seed=0))
    engine.register_table(data.products)
    engine.define(data.task_dsl)
    explain = engine.explain(CATEGORIZE_QUERY)
    assert "department=Categorize" in explain


def test_categorize_runs_end_to_end_and_batches():
    data = categorize_dataset(seed=0)
    unbatched = run_categorize_variant(data, "Unbatched", batch_size=1, seed=2)
    batched = run_categorize_variant(data, "Batch 6", batch_size=6, seed=2)
    assert unbatched.result_rows == len(data.products.rows)
    assert batched.result_rows == unbatched.result_rows
    assert batched.total_hits * 4 <= unbatched.total_hits
    assert unbatched.accuracy >= 0.85
    assert batched.accuracy >= 0.85


def test_categorize_works_in_a_where_predicate():
    data = categorize_dataset(n=12, seed=1)
    engine = Qurk(
        SimulatedMarketplace(data.truth, seed=5),
        config=ExecutionConfig(generative_batch_size=4),
    )
    engine.register_table(data.products)
    engine.define(data.task_dsl)
    result = engine.execute(
        "SELECT p.listing FROM products p WHERE department(p.listing) = 'toys'"
    )
    reported = {str(row["p.listing"]) for row in result.rows}
    true_toys = {ref for ref, dept in data.departments.items() if dept == "toys"}
    # Majority vote over the confusion kernels keeps this tight but not
    # necessarily perfect.
    assert len(reported & true_toys) >= max(1, len(true_toys) - 1)
