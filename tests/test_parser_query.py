"""Tests for SELECT parsing."""

import pytest

from repro.errors import ParseError
from repro.language.parser import parse_expression, parse_query
from repro.relational.expressions import (
    UNKNOWN,
    And,
    ColumnRef,
    Comparison,
    Literal,
    Or,
    UDFCall,
)


def test_minimal_select():
    q = parse_query("SELECT c.name FROM celeb AS c")
    assert q.base.name == "celeb" and q.base.alias == "c"
    assert len(q.select) == 1
    assert q.select[0].expr == ColumnRef("name", "c")


def test_select_star():
    q = parse_query("SELECT * FROM t")
    assert q.select_star and not q.select


def test_implicit_alias():
    q = parse_query("SELECT c.name FROM celeb c")
    assert q.base.alias == "c"
    assert q.base.binding == "c"


def test_no_alias_binding_is_table_name():
    q = parse_query("SELECT squares.label FROM squares")
    assert q.base.binding == "squares"


def test_where_filter_udf():
    q = parse_query("SELECT c.name FROM celeb c WHERE isFemale(c)")
    assert isinstance(q.where, UDFCall)
    assert q.where.args == (ColumnRef("c"),)


def test_join_with_possibly_clauses():
    q = parse_query(
        """
        SELECT c.name
        FROM celeb c JOIN photos p
        ON samePerson(c.img, p.img)
        AND POSSIBLY gender(c.img) = gender(p.img)
        AND POSSIBLY hairColor(c.img) = hairColor(p.img)
        """
    )
    assert len(q.joins) == 1
    join = q.joins[0]
    assert isinstance(join.on, UDFCall) and join.on.name == "samePerson"
    assert len(join.possibly) == 2
    assert isinstance(join.possibly[0], Comparison)


def test_join_extra_on_conjunct_without_possibly():
    q = parse_query(
        "SELECT a.x FROM a JOIN b ON match(a.x, b.x) AND a.x != b.x"
    )
    assert isinstance(q.joins[0].on, And)
    assert not q.joins[0].possibly


def test_order_by_udf_and_direction():
    q = parse_query(
        "SELECT s.label FROM squares s ORDER BY name, squareSorter(img) DESC"
    )
    assert len(q.order_by) == 2
    assert q.order_by[0].ascending is True
    assert q.order_by[1].ascending is False
    assert isinstance(q.order_by[1].expr, UDFCall)


def test_limit():
    q = parse_query("SELECT a.x FROM a LIMIT 5")
    assert q.limit == 5


def test_limit_requires_integer():
    with pytest.raises(ParseError):
        parse_query("SELECT a.x FROM a LIMIT 2.5")


def test_generative_field_access():
    q = parse_query("SELECT id, animalInfo(img).common FROM animals AS a")
    call = q.select[1].expr
    assert isinstance(call, UDFCall)
    assert call.field == "common"


def test_select_alias():
    q = parse_query("SELECT c.name AS who FROM celeb c")
    assert q.select[0].alias == "who"
    assert q.select[0].output_name == "who"


def test_comma_join_rejected():
    with pytest.raises(ParseError):
        parse_query("SELECT a.x FROM a, b")


def test_trailing_garbage_rejected():
    with pytest.raises(ParseError):
        parse_query("SELECT a.x FROM a extra garbage ,,,")


def test_missing_from():
    with pytest.raises(ParseError):
        parse_query("SELECT a.x")


def test_expression_precedence():
    expr = parse_expression("a = 1 OR b = 2 AND c = 3")
    assert isinstance(expr, Or)
    assert isinstance(expr.operands[1], And)


def test_expression_not():
    expr = parse_expression("NOT a = 1")
    from repro.relational.expressions import Not

    assert isinstance(expr, Not)


def test_expression_arithmetic_precedence():
    expr = parse_expression("1 + 2 * 3")
    from repro.relational.expressions import BinaryOp

    assert isinstance(expr, BinaryOp) and expr.op == "+"
    assert isinstance(expr.right, BinaryOp) and expr.right.op == "*"


def test_expression_literals():
    assert parse_expression("TRUE") == Literal(True)
    assert parse_expression("NULL") == Literal(None)
    assert parse_expression("UNKNOWN") == Literal(UNKNOWN)
    assert parse_expression("'text'") == Literal("text")
    assert parse_expression("2.5") == Literal(2.5)


def test_parenthesized_expression():
    expr = parse_expression("(a = 1 OR b = 2) AND c = 3")
    assert isinstance(expr, And)


def test_query_str_roundtrip_parses():
    q = parse_query(
        "SELECT c.name FROM celeb c JOIN photos p ON samePerson(c.img, p.img) "
        "AND POSSIBLY gender(c.img) = gender(p.img) "
        "WHERE isFemale(c) ORDER BY quality(p.img) LIMIT 3"
    )
    again = parse_query(str(q))
    assert str(again) == str(q)


def test_udf_calls_enumeration():
    q = parse_query(
        "SELECT info(a.img).name FROM a JOIN b ON match(a.img, b.img) "
        "AND POSSIBLY f(a.img) = f(b.img) WHERE g(a) ORDER BY h(a.img)"
    )
    names = [call.name for call in q.udf_calls()]
    assert names == ["info", "match", "f", "f", "g", "h"]
