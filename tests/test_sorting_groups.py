"""Tests for comparison-group covering designs."""

import pytest

from repro.errors import QurkError
from repro.sorting.groups import covering_groups, minimum_group_count, pairs_covered


def all_pairs(items):
    return {
        tuple(sorted((items[i], items[j])))
        for i in range(len(items))
        for j in range(i + 1, len(items))
    }


def test_covers_every_pair():
    items = [f"i{k}" for k in range(12)]
    groups = covering_groups(items, group_size=4, seed=0)
    assert pairs_covered(groups) >= all_pairs(items)


def test_group_sizes_fixed():
    items = [f"i{k}" for k in range(10)]
    groups = covering_groups(items, 5, seed=1)
    assert all(len(group) == 5 for group in groups)
    assert all(len(set(group)) == 5 for group in groups)


def test_group_count_near_lower_bound():
    items = [f"i{k}" for k in range(40)]
    groups = covering_groups(items, 5, seed=2)
    bound = minimum_group_count(40, 5)  # = 78
    assert bound <= len(groups) <= bound * 1.8


def test_paper_bound_value():
    # §4.2.4: 40 squares at S=5 → 78 comparison HITs.
    assert minimum_group_count(40, 5) == pytest.approx(78.0)


def test_deterministic_per_seed():
    items = [f"i{k}" for k in range(15)]
    assert covering_groups(items, 4, seed=3) == covering_groups(items, 4, seed=3)


def test_group_size_two_is_all_pairs():
    items = ["a", "b", "c", "d"]
    groups = covering_groups(items, 2, seed=0)
    assert pairs_covered(groups) == all_pairs(items)
    assert len(groups) == 6


def test_validation():
    with pytest.raises(QurkError):
        covering_groups(["a", "a"], 2)
    with pytest.raises(QurkError):
        covering_groups(["a", "b"], 1)
    with pytest.raises(QurkError):
        covering_groups(["a", "b"], 3)


def test_whole_set_single_group():
    items = ["a", "b", "c"]
    groups = covering_groups(items, 3, seed=0)
    assert len(groups) == 1
