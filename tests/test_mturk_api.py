"""Tests for the boto-style MTurk API shim."""

import pytest

from repro.crowd import GroundTruth, SimulatedMarketplace
from repro.crowd.mturk_api import HITTypeParams, MTurkConnection
from repro.errors import MarketplaceError
from repro.hits.hit import FilterPayload, FilterQuestion


@pytest.fixture
def connection() -> MTurkConnection:
    truth = GroundTruth()
    truth.add_filter_task("flt", {"a": True, "b": False})
    return MTurkConnection(SimulatedMarketplace(truth, seed=1))


PARAMS = HITTypeParams(title="Filter things", reward=0.01, assignments=5)


def payloads(item: str):
    return (FilterPayload("flt", (FilterQuestion(item),)),)


def test_create_and_review_cycle(connection):
    hit_id = connection.create_hit(payloads("a"), PARAMS)
    assert hit_id in connection.get_reviewable_hits()
    assignments = connection.get_assignments(hit_id)
    assert len(assignments) == 5
    assert all("flt:filter:a" in a.answers for a in assignments)


def test_approve_assignment(connection):
    hit_id = connection.create_hit(payloads("a"), PARAMS)
    assignment = connection.get_assignments(hit_id)[0]
    connection.approve_assignment(hit_id, assignment.assignment_id)
    with pytest.raises(MarketplaceError):
        connection.approve_assignment(hit_id, "not-an-assignment")


def test_approve_all(connection):
    hit_id = connection.create_hit(payloads("b"), PARAMS)
    assert connection.approve_all(hit_id) == 5


def test_dispose(connection):
    hit_id = connection.create_hit(payloads("a"), PARAMS)
    connection.dispose_hit(hit_id)
    assert hit_id not in connection.get_reviewable_hits()


def test_hit_html_available(connection):
    hit_id = connection.create_hit(payloads("a"), PARAMS)
    assert "<form" in connection.hit_html(hit_id)


def test_unknown_hit_id(connection):
    with pytest.raises(MarketplaceError):
        connection.get_assignments("nope")
