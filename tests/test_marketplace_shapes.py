"""Marketplace behaviour shapes: latency, attraction, straggler, banning."""

from repro.crowd import GroundTruth, SimulatedMarketplace
from repro.hits.compiler import HITCompiler
from repro.hits.hit import HIT, FilterPayload, FilterQuestion
from repro.util.stats import percentile


def make_truth(n: int = 100) -> GroundTruth:
    truth = GroundTruth()
    truth.add_filter_task("flt", {f"item{i}": i % 2 == 0 for i in range(n)})
    return truth


def filter_hits(n_hits: int, per_hit: int = 1, assignments: int = 5) -> list[HIT]:
    compiler = HITCompiler()
    hits = []
    for i in range(n_hits):
        questions = tuple(
            FilterQuestion(f"item{(i * per_hit + j) % 100}") for j in range(per_hit)
        )
        hit = HIT(
            hit_id=f"h{i}",
            payloads=(FilterPayload("flt", questions),),
            assignments_requested=assignments,
        )
        compiler.compile(hit)
        hits.append(hit)
    return hits


def test_bigger_groups_finish_proportionally_faster_per_assignment():
    """HIT-group attraction: throughput per assignment improves with group
    size (Turkers gravitate to big groups)."""
    truth = make_truth()
    small_market = SimulatedMarketplace(truth, seed=3)
    small = small_market.post_hit_group(filter_hits(5), "small")
    small_rate = small_market.clock_seconds / len(small)

    big_market = SimulatedMarketplace(truth, seed=3)
    big = big_market.post_hit_group(filter_hits(80), "big")
    big_rate = big_market.clock_seconds / len(big)
    assert big_rate < small_rate


def test_straggler_tail_shape():
    """The last few percent of assignments take a disproportionate share of
    the wall clock (§3.3.2 / Figure 4)."""
    truth = make_truth()
    market = SimulatedMarketplace(truth, seed=5)
    assignments = market.post_hit_group(filter_hits(60), "g")
    times = sorted(a.submit_time for a in assignments)
    p50 = percentile(times, 50)
    p95 = percentile(times, 95)
    p100 = percentile(times, 100)
    # The 95→100 stretch is long relative to the 50→95 stretch per task.
    per_task_mid = (p95 - p50) / (0.45 * len(times))
    per_task_tail = (p100 - p95) / (0.05 * len(times))
    assert per_task_tail > 2 * per_task_mid


def test_evening_trials_run_slower():
    truth = make_truth()
    morning = SimulatedMarketplace(truth, seed=7, time_of_day="morning")
    evening = SimulatedMarketplace(truth, seed=7, time_of_day="evening")
    morning.post_hit_group(filter_hits(30), "g")
    evening.post_hit_group(filter_hits(30), "g")
    assert evening.clock_seconds > morning.clock_seconds


def test_banned_workers_do_no_further_work():
    truth = make_truth()
    market = SimulatedMarketplace(truth, seed=9)
    first = market.post_hit_group(filter_hits(20), "g1")
    heavy = max(
        market.stats.worker_assignment_counts,
        key=market.stats.worker_assignment_counts.get,
    )
    market.pool.ban([heavy])
    second = market.post_hit_group(filter_hits(20, assignments=5), "g2")
    assert all(a.worker_id != heavy for a in second)


def test_spam_share_rises_with_batch_size():
    truth = make_truth()
    market_small = SimulatedMarketplace(truth, seed=11)
    small = market_small.post_hit_group(filter_hits(60, per_hit=1), "small")

    market_big = SimulatedMarketplace(truth, seed=11)
    big = market_big.post_hit_group(filter_hits(6, per_hit=10), "big")

    def spam_share(market, assignments):
        spam = sum(
            1 for a in assignments if market.pool.by_id(a.worker_id).is_spammer
        )
        return spam / len(assignments)

    assert spam_share(market_big, big) >= spam_share(market_small, small)
