"""Tests for agreement tables, sampled metrics, and the accuracy regression."""

import pytest

from repro.errors import QurkError
from repro.hits.hit import Vote
from repro.metrics.agreement import (
    comparison_agreement_table,
    comparison_kappa,
    feature_kappa,
    vote_count_table,
    worker_accuracies,
)
from repro.metrics.regression import accuracy_regression, linear_fit
from repro.metrics.sampling import estimate_on_samples


def votes(*values):
    return [Vote(f"w{i}", v) for i, v in enumerate(values)]


def test_vote_count_table():
    corpus = {"q1": votes("a", "a", "b"), "q2": votes("b")}
    table = vote_count_table(corpus)
    assert {"a": 2, "b": 1} in table
    assert {"b": 1} in table


def test_comparison_kappa_unanimous():
    corpus = {
        "t:cmp:a|b": votes("a", "a", "a", "a", "a"),
        "t:cmp:b|c": votes("c", "c", "c", "c", "c"),
    }
    assert comparison_kappa(corpus) == pytest.approx(1.0)


def test_comparison_kappa_split():
    corpus = {"t:cmp:a|b": votes("a", "a", "b", "b")}
    # Evenly split: agreement at chance level for k=2.
    assert comparison_kappa(corpus) == pytest.approx(-0.33333, abs=0.01)


def test_feature_kappa_runs_on_generative_corpus():
    corpus = {
        "gender:gen:i1:value": votes("Male", "Male", "Male", "Female", "Male"),
        "gender:gen:i2:value": votes("Female", "Female", "Female", "Female", "Male"),
    }
    assert 0.0 < feature_kappa(corpus) <= 1.0


def test_comparison_agreement_table():
    corpus = {"q": votes("a", "a", "b")}
    assert comparison_agreement_table(corpus)["q"] == pytest.approx(2 / 3)


def test_worker_accuracies():
    corpus = {
        "q1": [Vote("w1", True), Vote("w2", False)],
        "q2": [Vote("w1", True), Vote("w2", True)],
    }
    stats = worker_accuracies(corpus, truth=lambda qid: True)
    assert stats["w1"] == (2, 1.0)
    assert stats["w2"] == (2, 0.5)


def test_worker_accuracies_min_tasks():
    corpus = {"q1": [Vote("w1", True)], "q2": [Vote("w1", True), Vote("w2", True)]}
    stats = worker_accuracies(corpus, truth=lambda qid: True, min_tasks=2)
    assert "w2" not in stats and "w1" in stats


def test_estimate_on_samples_tracks_full_metric():
    items = list(range(100))
    result = estimate_on_samples(
        items, metric=lambda subset: sum(subset) / len(subset),
        sample_fraction=0.25, n_samples=50, seed=1,
    )
    assert result.mean == pytest.approx(49.5, abs=5.0)
    assert result.std > 0
    assert len(result.samples) == 50
    assert "(" in str(result)


def test_estimate_on_samples_size_mode():
    result = estimate_on_samples(
        list(range(20)), metric=len, sample_size=10, n_samples=3, seed=0
    )
    assert result.mean == 10


def test_estimate_on_samples_validation():
    with pytest.raises(QurkError):
        estimate_on_samples([1, 2], metric=len, sample_size=1, sample_fraction=0.5)
    with pytest.raises(QurkError):
        estimate_on_samples([1, 2], metric=len)
    with pytest.raises(QurkError):
        estimate_on_samples([1, 2], metric=len, sample_size=5)


def test_estimate_on_samples_skips_failures():
    def flaky(subset):
        if min(subset) < 2:
            raise QurkError("degenerate")
        return 1.0

    result = estimate_on_samples(
        list(range(10)), metric=flaky, sample_size=3, n_samples=50, seed=2
    )
    assert result.mean == 1.0


def test_accuracy_regression_shape():
    """Volume explains little accuracy variance — the §3.3.3 result."""
    from repro.util.rng import RandomSource

    rng = RandomSource(5)
    stats = {}
    for w in range(60):
        tasks = 1 + int(100 * rng.random() ** 3)  # Zipf-ish volumes
        accuracy = min(1.0, max(0.0, 0.85 + rng.gauss(0, 0.08)))
        stats[f"w{w}"] = (tasks, accuracy)
    fit = accuracy_regression(stats)
    assert fit.r_squared < 0.2
    assert fit.n == 60
    assert "R^2" in str(fit)


def test_accuracy_regression_validation():
    with pytest.raises(QurkError):
        accuracy_regression({"w1": (1, 0.5), "w2": (2, 0.6)})
    with pytest.raises(QurkError):
        accuracy_regression({"w1": (3, 0.5), "w2": (3, 0.6), "w3": (3, 0.7)})


def test_linear_fit():
    fit = linear_fit([1, 2, 3, 4], [2, 4, 6, 8])
    assert fit.slope == pytest.approx(2.0)
    assert fit.r_squared == pytest.approx(1.0)
    with pytest.raises(QurkError):
        linear_fit([1, 2], [1, 2])
    with pytest.raises(QurkError):
        linear_fit([1, 2, 3], [1, 2])
