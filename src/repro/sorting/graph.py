"""Comparison digraphs: the paper's alternative ordering strategy (§4.1.1).

"One way to resolve such ambiguities is to build a directed graph of items,
where there is an edge from item i to item j if i > j. We can run a
cycle-breaking algorithm on the graph, and perform a topological sort to
compute an approximate order."

Cycle breaking deletes, within each strongly connected component, the edge
with the weakest support (vote margin) until the graph is acyclic. SCCs are
found with Tarjan's algorithm, implemented from scratch (iteratively, to
dodge recursion limits).
"""

from __future__ import annotations

from collections import Counter
from typing import Mapping, Sequence

from repro.errors import QurkError
from repro.hits.hit import Vote


class ComparisonGraph:
    """A weighted digraph: edge u → v means "u beats v" with a vote margin."""

    def __init__(self, items: Sequence[str]) -> None:
        self.items = list(dict.fromkeys(items))
        self._edges: dict[tuple[str, str], float] = {}

    @classmethod
    def from_votes(
        cls, items: Sequence[str], corpus: Mapping[str, Sequence[Vote]]
    ) -> "ComparisonGraph":
        """Build from comparison votes: one edge per pair, winner → loser,
        weighted by the winning margin (ties produce no edge)."""
        graph = cls(items)
        for qid, votes in corpus.items():
            parts = qid.rsplit(":cmp:", 1)
            if len(parts) != 2:
                raise QurkError(f"malformed comparison qid {qid!r}")
            a, b = parts[1].split("|", 1)
            counts = Counter(str(vote.value) for vote in votes)
            wins_a, wins_b = counts.get(a, 0), counts.get(b, 0)
            if wins_a > wins_b:
                graph.add_edge(a, b, wins_a - wins_b)
            elif wins_b > wins_a:
                graph.add_edge(b, a, wins_b - wins_a)
        return graph

    def add_edge(self, winner: str, loser: str, weight: float = 1.0) -> None:
        """Record that ``winner`` beats ``loser`` with the given margin."""
        if winner == loser:
            raise QurkError("self-comparison edge")
        for node in (winner, loser):
            if node not in self.items:
                self.items.append(node)
        self._edges[(winner, loser)] = self._edges.get((winner, loser), 0.0) + weight

    @property
    def edges(self) -> dict[tuple[str, str], float]:
        """Edge map (winner, loser) → margin."""
        return dict(self._edges)

    def successors(self, node: str) -> list[str]:
        """Nodes this node beats."""
        return [loser for (winner, loser) in self._edges if winner == node]

    def remove_edge(self, winner: str, loser: str) -> None:
        """Delete one edge."""
        del self._edges[(winner, loser)]


def strongly_connected_components(graph: ComparisonGraph) -> list[list[str]]:
    """Tarjan's SCC algorithm (iterative)."""
    index_counter = 0
    indices: dict[str, int] = {}
    lowlinks: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    components: list[list[str]] = []

    adjacency: dict[str, list[str]] = {node: [] for node in graph.items}
    for winner, loser in graph.edges:
        adjacency[winner].append(loser)

    for root in graph.items:
        if root in indices:
            continue
        work = [(root, iter(adjacency[root]))]
        indices[root] = lowlinks[root] = index_counter
        index_counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in indices:
                    indices[succ] = lowlinks[succ] = index_counter
                    index_counter += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(adjacency[succ])))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlinks[node] = min(lowlinks[node], indices[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlinks[parent] = min(lowlinks[parent], lowlinks[node])
            if lowlinks[node] == indices[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
    return components


def break_cycles(graph: ComparisonGraph) -> list[tuple[str, str]]:
    """Delete minimum-margin edges inside SCCs until the graph is acyclic.

    Returns the removed edges. Low-margin edges are the least trustworthy
    comparisons, so sacrificing them first preserves the most crowd signal.
    """
    removed: list[tuple[str, str]] = []
    while True:
        cyclic = [
            component
            for component in strongly_connected_components(graph)
            if len(component) > 1
        ]
        if not cyclic:
            return removed
        for component in cyclic:
            members = set(component)
            internal = [
                (edge, weight)
                for edge, weight in graph.edges.items()
                if edge[0] in members and edge[1] in members
            ]
            victim = min(internal, key=lambda pair: (pair[1], pair[0]))[0]
            graph.remove_edge(*victim)
            removed.append(victim)


def topological_order(graph: ComparisonGraph) -> list[str]:
    """Kahn topological sort, least → most.

    An edge winner → loser means the winner is *greater*, so nodes with no
    incoming edges are maxima; we compute the standard order and reverse it.
    Raises :class:`QurkError` if the graph still has cycles.
    """
    in_degree: dict[str, int] = {node: 0 for node in graph.items}
    for _, loser in graph.edges:
        in_degree[loser] += 1
    ready = sorted(node for node, degree in in_degree.items() if degree == 0)
    order: list[str] = []
    adjacency: dict[str, list[str]] = {node: [] for node in graph.items}
    for winner, loser in graph.edges:
        adjacency[winner].append(loser)
    while ready:
        node = ready.pop(0)
        order.append(node)
        for succ in sorted(adjacency[node]):
            in_degree[succ] -= 1
            if in_degree[succ] == 0:
                ready.append(succ)
        ready.sort()
    if len(order) != len(graph.items):
        raise QurkError("graph has cycles; run break_cycles first")
    order.reverse()
    return order


def graph_order(
    items: Sequence[str], corpus: Mapping[str, Sequence[Vote]]
) -> list[str]:
    """Convenience: votes → cycle-broken topological order (least → most)."""
    graph = ComparisonGraph.from_votes(items, corpus)
    break_cycles(graph)
    return topological_order(graph)
