"""Comparison digraphs: the paper's alternative ordering strategy (§4.1.1).

"One way to resolve such ambiguities is to build a directed graph of items,
where there is an edge from item i to item j if i > j. We can run a
cycle-breaking algorithm on the graph, and perform a topological sort to
compute an approximate order."

Cycle breaking deletes, within each strongly connected component, the edge
with the weakest support (vote margin) until the graph is acyclic. SCCs are
found with Tarjan's algorithm, implemented from scratch (iteratively, to
dodge recursion limits).

Two implementations share this module, switched by the ``REPRO_SORTSCALE``
toggle (:mod:`repro.util.sortscale`):

* the **reference** path — full Tarjan over the whole graph on every
  edge-removal sweep, victim scans over a fresh ``edges`` dict copy, and a
  re-sorting Kahn queue — kept verbatim so the scale-out claims stay
  measurable and the seed behaviour reproducible;
* the **scale** path — after deleting an SCC's weakest edge, SCCs are
  recomputed only within that component's node set, the victim scan walks
  the component's own adjacency instead of every edge in the graph, and
  the topological sort drains a heap.

Both paths produce the same orders and the same removed-edge *set*; only
the removal *sequence* (interleaving across independent components) and
the wall-clock differ (``tests/test_sort_scale.py``). The graph itself is
always indexed — a maintained item set kills ``add_edge``'s old O(n) list
scan, and forward adjacency makes ``successors`` allocation-free — because
those fixes are observationally identical to the seed structure.
"""

from __future__ import annotations

import heapq
from collections import Counter
from typing import Iterable, Mapping, Sequence

from repro.errors import QurkError
from repro.hits.hit import Vote
from repro.util import sortscale


class ComparisonGraph:
    """A weighted digraph: edge u → v means "u beats v" with a vote margin."""

    def __init__(self, items: Sequence[str]) -> None:
        self.items = list(dict.fromkeys(items))
        self._item_set: set[str] = set(self.items)
        self._edges: dict[tuple[str, str], float] = {}
        # Forward adjacency: winner → {loser: margin}, maintained alongside
        # _edges. Per-winner dicts preserve edge insertion order, so
        # successors() enumerates losers exactly as the old all-edges scan
        # did.
        self._succ: dict[str, dict[str, float]] = {item: {} for item in self.items}

    @classmethod
    def from_votes(
        cls, items: Sequence[str], corpus: Mapping[str, Sequence[Vote]]
    ) -> "ComparisonGraph":
        """Build from comparison votes: one edge per pair, winner → loser,
        weighted by the winning margin (ties produce no edge)."""
        graph = cls(items)
        for qid, votes in corpus.items():
            parts = qid.rsplit(":cmp:", 1)
            if len(parts) != 2:
                raise QurkError(f"malformed comparison qid {qid!r}")
            a, b = parts[1].split("|", 1)
            counts = Counter(str(vote.value) for vote in votes)
            wins_a, wins_b = counts.get(a, 0), counts.get(b, 0)
            if wins_a > wins_b:
                graph.add_edge(a, b, wins_a - wins_b)
            elif wins_b > wins_a:
                graph.add_edge(b, a, wins_b - wins_a)
        return graph

    def add_edge(self, winner: str, loser: str, weight: float = 1.0) -> None:
        """Record that ``winner`` beats ``loser`` with the given margin."""
        if winner == loser:
            raise QurkError("self-comparison edge")
        for node in (winner, loser):
            if node not in self._item_set:
                self._item_set.add(node)
                self.items.append(node)
                self._succ[node] = {}
        total = self._edges.get((winner, loser), 0.0) + weight
        self._edges[(winner, loser)] = total
        self._succ[winner][loser] = total

    @property
    def edges(self) -> dict[tuple[str, str], float]:
        """Edge map (winner, loser) → margin (a defensive copy)."""
        return dict(self._edges)

    def successors(self, node: str) -> list[str]:
        """Nodes this node beats."""
        return list(self._succ.get(node, ()))

    def remove_edge(self, winner: str, loser: str) -> None:
        """Delete one edge."""
        del self._edges[(winner, loser)]
        del self._succ[winner][loser]


def strongly_connected_components(graph: ComparisonGraph) -> list[list[str]]:
    """Tarjan's SCC algorithm (iterative), over the whole graph.

    This is the reference entry point (it rebuilds adjacency from the
    copying ``edges`` accessor); the scale path runs the same algorithm
    through :func:`_tarjan_components` on the graph's live index instead.
    """
    adjacency: dict[str, list[str]] = {node: [] for node in graph.items}
    for winner, loser in graph.edges:
        adjacency[winner].append(loser)
    return _tarjan_components(graph.items, adjacency, None)


def _tarjan_components(
    roots: Sequence[str],
    adjacency: Mapping[str, Iterable[str]],
    members: set[str] | None,
) -> list[list[str]]:
    """Iterative Tarjan over ``roots``, optionally restricted to ``members``.

    With ``members`` set, only nodes inside it are visited and edges
    leaving the set are ignored — recomputing the SCCs of one component's
    induced subgraph without touching the rest of the graph. Components
    are emitted in completion order, matching the original implementation.
    """
    index_counter = 0
    indices: dict[str, int] = {}
    lowlinks: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    components: list[list[str]] = []

    for root in roots:
        if root in indices:
            continue
        work = [(root, iter(adjacency[root]))]
        indices[root] = lowlinks[root] = index_counter
        index_counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if members is not None and succ not in members:
                    continue
                if succ not in indices:
                    indices[succ] = lowlinks[succ] = index_counter
                    index_counter += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(adjacency[succ])))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlinks[node] = min(lowlinks[node], indices[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlinks[parent] = min(lowlinks[parent], lowlinks[node])
            if lowlinks[node] == indices[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
    return components


def break_cycles(graph: ComparisonGraph) -> list[tuple[str, str]]:
    """Delete minimum-margin edges inside SCCs until the graph is acyclic.

    Returns the removed edges. Low-margin edges are the least trustworthy
    comparisons, so sacrificing them first preserves the most crowd signal.

    Components evolve independently (removing edges only ever *splits*
    SCCs), so the reference sweep — one weakest edge per cyclic component,
    then full Tarjan again — and the scale path's per-component worklist
    remove the same edge *set*; they interleave independent components
    differently, so the returned order may differ between toggle modes.
    """
    if sortscale.enabled():
        return _break_cycles_scale(graph)
    removed: list[tuple[str, str]] = []
    while True:
        cyclic = [
            component
            for component in strongly_connected_components(graph)
            if len(component) > 1
        ]
        if not cyclic:
            return removed
        for component in cyclic:
            members = set(component)
            internal = [
                (edge, weight)
                for edge, weight in graph.edges.items()
                if edge[0] in members and edge[1] in members
            ]
            victim = min(internal, key=lambda pair: (pair[1], pair[0]))[0]
            graph.remove_edge(*victim)
            removed.append(victim)


def _break_cycles_scale(graph: ComparisonGraph) -> list[tuple[str, str]]:
    """Incremental cycle breaking over the graph's live adjacency index.

    One full Tarjan seeds a worklist of cyclic components; thereafter each
    victim deletion recomputes SCCs only inside the affected component's
    node set, and the victim scan enumerates the component's own adjacency
    rows (its per-component edge index) instead of sweeping every edge in
    the graph. The weakest-edge choice within a component is the same
    (margin, edge) minimum the reference takes, so per-component removal
    sequences — and therefore the removed-edge set — are identical.
    """
    succ = graph._succ
    removed: list[tuple[str, str]] = []
    work = [
        component
        for component in _tarjan_components(graph.items, succ, None)
        if len(component) > 1
    ]
    while work:
        component = work.pop()
        members = set(component)
        internal = [
            ((winner, loser), weight)
            for winner in component
            for loser, weight in succ[winner].items()
            if loser in members
        ]
        victim = min(internal, key=lambda pair: (pair[1], pair[0]))[0]
        graph.remove_edge(*victim)
        removed.append(victim)
        for sub in _tarjan_components(component, succ, members):
            if len(sub) > 1:
                work.append(sub)
    return removed


def topological_order(graph: ComparisonGraph) -> list[str]:
    """Kahn topological sort, least → most.

    An edge winner → loser means the winner is *greater*, so nodes with no
    incoming edges are maxima; we compute the standard order and reverse it.
    Raises :class:`QurkError` if the graph still has cycles.

    Both the reference (re-sorted ready list) and the scale path (min-heap)
    always emit the lexicographically smallest ready node next, so their
    orders are identical.
    """
    if sortscale.enabled():
        return _topological_order_heap(graph)
    in_degree: dict[str, int] = {node: 0 for node in graph.items}
    for _, loser in graph.edges:
        in_degree[loser] += 1
    ready = sorted(node for node, degree in in_degree.items() if degree == 0)
    order: list[str] = []
    adjacency: dict[str, list[str]] = {node: [] for node in graph.items}
    for winner, loser in graph.edges:
        adjacency[winner].append(loser)
    while ready:
        node = ready.pop(0)
        order.append(node)
        for succ in sorted(adjacency[node]):
            in_degree[succ] -= 1
            if in_degree[succ] == 0:
                ready.append(succ)
        ready.sort()
    if len(order) != len(graph.items):
        raise QurkError("graph has cycles; run break_cycles first")
    order.reverse()
    return order


def _topological_order_heap(graph: ComparisonGraph) -> list[str]:
    """Kahn with a min-heap ready queue over the live adjacency index."""
    succ = graph._succ
    in_degree: dict[str, int] = {node: 0 for node in graph.items}
    for targets in succ.values():
        for loser in targets:
            in_degree[loser] += 1
    ready = [node for node, degree in in_degree.items() if degree == 0]
    heapq.heapify(ready)
    order: list[str] = []
    while ready:
        node = heapq.heappop(ready)
        order.append(node)
        for target in succ[node]:
            in_degree[target] -= 1
            if in_degree[target] == 0:
                heapq.heappush(ready, target)
    if len(order) != len(graph.items):
        raise QurkError("graph has cycles; run break_cycles first")
    order.reverse()
    return order


def graph_order(
    items: Sequence[str], corpus: Mapping[str, Sequence[Vote]]
) -> list[str]:
    """Convenience: votes → cycle-broken topological order (least → most)."""
    graph = ComparisonGraph.from_votes(items, corpus)
    break_cycles(graph)
    return topological_order(graph)
