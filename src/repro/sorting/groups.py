"""Group generation for comparison sorts (§4.1.1).

The comparison interface shows S items per group and yields C(S, 2)
pairwise comparisons per group, so covering all C(N, 2) pairs needs at
least N(N−1)/(S(S−1)) groups. The greedy generator below may emit
overlapping groups — as the paper notes, "our batch-generation algorithm
may generate overlapping groups, so some pairs may be shown more than 5
times" — but always covers every pair.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import QurkError
from repro.util.rng import RandomSource


def pairs_covered(groups: Sequence[Sequence[str]]) -> set[tuple[str, str]]:
    """The set of (sorted) item pairs appearing together in some group."""
    covered: set[tuple[str, str]] = set()
    for group in groups:
        for i in range(len(group)):
            for j in range(i + 1, len(group)):
                a, b = sorted((group[i], group[j]))
                covered.add((a, b))
    return covered


def minimum_group_count(n_items: int, group_size: int) -> float:
    """The paper's lower bound N(N−1)/(S(S−1)) on group count."""
    return (n_items * (n_items - 1)) / (group_size * (group_size - 1))


def covering_groups(
    items: Sequence[str], group_size: int, seed: int = 0
) -> list[tuple[str, ...]]:
    """Greedy covering design: groups of ``group_size`` covering all pairs.

    Strategy: repeatedly build a group seeded with the item participating in
    the most uncovered pairs, then grow it with the item covering the most
    new pairs against the current members. Ties break randomly (seeded) so
    repeated trials explore different designs.
    """
    unique = list(dict.fromkeys(items))
    if len(unique) != len(items):
        raise QurkError("items must be distinct")
    if group_size < 2:
        raise QurkError("group size must be at least 2")
    if group_size > len(unique):
        raise QurkError(
            f"group size {group_size} exceeds item count {len(unique)}"
        )
    rng = RandomSource(seed).child("covering-groups")
    uncovered: set[tuple[str, str]] = set()
    for i in range(len(unique)):
        for j in range(i + 1, len(unique)):
            uncovered.add(tuple(sorted((unique[i], unique[j]))))  # type: ignore[arg-type]

    degree: dict[str, int] = {item: len(unique) - 1 for item in unique}

    def uncovered_with(item: str, members: list[str]) -> int:
        return sum(
            1 for member in members if tuple(sorted((item, member))) in uncovered
        )

    groups: list[tuple[str, ...]] = []
    while uncovered:
        max_degree = max(degree.values())
        seeds = [item for item, d in degree.items() if d == max_degree]
        group = [rng.choice(seeds)]
        while len(group) < group_size:
            best_gain = -1
            candidates: list[str] = []
            for item in unique:
                if item in group:
                    continue
                gain = uncovered_with(item, group)
                if gain > best_gain:
                    best_gain = gain
                    candidates = [item]
                elif gain == best_gain:
                    candidates.append(item)
            group.append(rng.choice(candidates))
        for i in range(len(group)):
            for j in range(i + 1, len(group)):
                pair = tuple(sorted((group[i], group[j])))
                if pair in uncovered:
                    uncovered.discard(pair)  # type: ignore[arg-type]
                    degree[pair[0]] -= 1
                    degree[pair[1]] -= 1
        groups.append(tuple(group))
    return groups
