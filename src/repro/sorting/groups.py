"""Group generation for comparison sorts (§4.1.1).

The comparison interface shows S items per group and yields C(S, 2)
pairwise comparisons per group, so covering all C(N, 2) pairs needs at
least N(N−1)/(S(S−1)) groups. The greedy generator below may emit
overlapping groups — as the paper notes, "our batch-generation algorithm
may generate overlapping groups, so some pairs may be shown more than 5
times" — but always covers every pair.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import QurkError
from repro.util import fastpath
from repro.util.rng import RandomSource


def pairs_covered(groups: Sequence[Sequence[str]]) -> set[tuple[str, str]]:
    """The set of (sorted) item pairs appearing together in some group."""
    covered: set[tuple[str, str]] = set()
    for group in groups:
        for i in range(len(group)):
            for j in range(i + 1, len(group)):
                a, b = sorted((group[i], group[j]))
                covered.add((a, b))
    return covered


def minimum_group_count(n_items: int, group_size: int) -> float:
    """The paper's lower bound N(N−1)/(S(S−1)) on group count."""
    return (n_items * (n_items - 1)) / (group_size * (group_size - 1))


def covering_groups(
    items: Sequence[str], group_size: int, seed: int = 0
) -> list[tuple[str, ...]]:
    """Greedy covering design: groups of ``group_size`` covering all pairs.

    Strategy: repeatedly build a group seeded with the item participating in
    the most uncovered pairs, then grow it with the item covering the most
    new pairs against the current members. Ties break randomly (seeded) so
    repeated trials explore different designs.
    """
    unique = list(dict.fromkeys(items))
    if len(unique) != len(items):
        raise QurkError("items must be distinct")
    if group_size < 2:
        raise QurkError("group size must be at least 2")
    if group_size > len(unique):
        raise QurkError(
            f"group size {group_size} exceeds item count {len(unique)}"
        )
    rng = RandomSource(seed).child("covering-groups")
    if fastpath.enabled():
        return _covering_groups_fast(unique, group_size, rng)
    uncovered: set[tuple[str, str]] = set()
    for i in range(len(unique)):
        for j in range(i + 1, len(unique)):
            uncovered.add(tuple(sorted((unique[i], unique[j]))))  # type: ignore[arg-type]

    degree: dict[str, int] = {item: len(unique) - 1 for item in unique}

    def uncovered_with(item: str, members: list[str]) -> int:
        return sum(
            1 for member in members if tuple(sorted((item, member))) in uncovered
        )

    groups: list[tuple[str, ...]] = []
    while uncovered:
        max_degree = max(degree.values())
        seeds = [item for item, d in degree.items() if d == max_degree]
        group = [rng.choice(seeds)]
        while len(group) < group_size:
            best_gain = -1
            candidates: list[str] = []
            for item in unique:
                if item in group:
                    continue
                gain = uncovered_with(item, group)
                if gain > best_gain:
                    best_gain = gain
                    candidates = [item]
                elif gain == best_gain:
                    candidates.append(item)
            group.append(rng.choice(candidates))
        for i in range(len(group)):
            for j in range(i + 1, len(group)):
                pair = tuple(sorted((group[i], group[j])))
                if pair in uncovered:
                    uncovered.discard(pair)  # type: ignore[arg-type]
                    degree[pair[0]] -= 1
                    degree[pair[1]] -= 1
        groups.append(tuple(group))
    return groups


class _ArgmaxView:
    """Lazy sequence of the items whose score equals ``best``, in item order.

    ``random.Random.choice(seq)`` consumes one ``_randbelow(len(seq))`` draw
    and reads ``seq[i]`` once. Exposing the argmax candidates through this
    view therefore consumes exactly the draws the reference's materialized
    candidate list would — with the same length and the same i-th element —
    without allocating the list on every greedy pick. Occurrence lookup
    rides on C-level ``list.index``.
    """

    __slots__ = ("scores", "best", "items", "count")

    def __init__(
        self, scores: list[int], best: int, items: list[str], count: int
    ) -> None:
        self.scores = scores
        self.best = best
        self.items = items
        self.count = count

    def __len__(self) -> int:
        return self.count

    def __getitem__(self, index: int) -> str:
        scores = self.scores
        best = self.best
        position = scores.index(best)
        for _ in range(index):
            position = scores.index(best, position + 1)
        return self.items[position]


def _covering_groups_fast(
    unique: list[str], group_size: int, rng: RandomSource
) -> list[tuple[str, ...]]:
    """The greedy covering above, restructured around incremental gains.

    Identical output and RNG consumption: every ``rng.choice`` sees a
    candidate sequence with the same length and the same elements in the
    same (item-index) order as the reference's list, so it draws and picks
    identically. The wins are structural:

    * "is this pair uncovered?" is an integer-set membership instead of a
      sorted string-tuple allocation per probe;
    * per-pick gains are maintained incrementally in an int array (adding a
      member bumps the gain of its uncovered partners) instead of being
      recomputed member-by-member for every item; group members sit at a
      large negative sentinel so they can never tie a real candidate, and
      the argmax/count/select steps all run as C-level list primitives;
    * candidate argmax sets are exposed lazily via :class:`_ArgmaxView`
      instead of materialized per pick.
    """
    n = len(unique)
    index_of = {item: i for i, item in enumerate(unique)}
    partners: list[set[int]] = [
        set(range(i)) | set(range(i + 1, n)) for i in range(n)
    ]
    degree = [n - 1] * n
    uncovered_count = n * (n - 1) // 2
    # Members get this sentinel in the gain array; at most group_size
    # increments can land on it afterwards, so it stays below zero while
    # every real candidate's gain is >= 0.
    member_sentinel = -(n + group_size + 1)

    groups: list[tuple[str, ...]] = []
    while uncovered_count:
        # Seed pick: argmax over degree (every item is a candidate).
        best = max(degree)
        first = rng.choice(_ArgmaxView(degree, best, unique, degree.count(best)))
        first_id = index_of[first]
        group = [first]
        group_ids = [first_id]
        # gain[i] = number of current members whose pair with i is uncovered.
        gain = [0] * n
        for p in partners[first_id]:
            gain[p] = 1
        gain[first_id] = member_sentinel
        while len(group) < group_size:
            best = max(gain)
            chosen = rng.choice(_ArgmaxView(gain, best, unique, gain.count(best)))
            chosen_id = index_of[chosen]
            group.append(chosen)
            group_ids.append(chosen_id)
            for p in partners[chosen_id]:
                gain[p] += 1
            gain[chosen_id] = member_sentinel
        for i in range(len(group_ids)):
            a = group_ids[i]
            pa = partners[a]
            for j in range(i + 1, len(group_ids)):
                b = group_ids[j]
                if b in pa:
                    pa.discard(b)
                    partners[b].discard(a)
                    uncovered_count -= 1
                    degree[a] -= 1
                    degree[b] -= 1
        groups.append(tuple(group))
    return groups
