"""Head-to-head ordering (§4.1.1).

"We can compute the number of HITs in which each item was ranked higher
than other items. This approach, which we call 'head-to-head', provides an
intuitively correct ordering on the data, which is identical to the true
ordering when there are no cycles."

Items are scored by pairwise wins (after per-pair majority voting) and
sorted ascending by score, so the returned order runs least → most — the
same direction as the latent values.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.errors import QurkError
from repro.hits.hit import Vote, count_vote_values


def pair_winners_from_votes(
    corpus: Mapping[str, Sequence[Vote]]
) -> dict[tuple[str, str], str]:
    """Majority winner per comparison question.

    Question ids follow the ``task:cmp:a|b`` convention; the vote values are
    winning item references. Ties break toward the lexicographically smaller
    item for determinism.
    """
    winners: dict[tuple[str, str], str] = {}
    for qid, votes in corpus.items():
        if not votes:
            continue
        try:
            pair_part = qid.rsplit(":cmp:", 1)[1]
            a, b = pair_part.split("|", 1)
        except (IndexError, ValueError) as exc:
            raise QurkError(f"malformed comparison qid {qid!r}") from exc
        counts = count_vote_values(votes)
        top = max(counts.values())
        leaders = sorted(
            [value for value, count in counts.items() if count == top], key=str
        )
        winners[(a, b)] = str(leaders[0])
    return winners


class WinCountIndex:
    """Maintained per-item win tallies over a stream of pair outcomes.

    The win-count side of :func:`head_to_head_order`, factored out as a
    maintained index: callers that *accumulate* outcomes — folding in one
    comparison group's winners at a time instead of materialising the
    whole winners map first — pay O(1) per outcome and can read the
    current order (or just the extremes) at any point. Ordering ties
    break by item reference, matching :func:`head_to_head_order` exactly.
    """

    def __init__(self, items: Sequence[str]) -> None:
        self._wins: dict[str, int] = {item: 0 for item in items}

    def record(self, a: str, b: str, winner: str) -> None:
        """Fold in one pair outcome (winner must be one of the two sides)."""
        if winner not in (a, b):
            raise QurkError(
                f"winner {winner!r} is neither side of the pair ({a!r}, {b!r})"
            )
        if winner in self._wins:
            self._wins[winner] += 1

    def wins(self, item: str) -> int:
        """Current win count (0 for unknown items)."""
        return self._wins.get(item, 0)

    def order(self) -> list[str]:
        """Items ascending by (wins, item) — least → most."""
        return sorted(self._wins, key=lambda item: (self._wins[item], item))


def head_to_head_order(
    items: Sequence[str],
    winners: Mapping[tuple[str, str], str],
) -> list[str]:
    """Order items ascending by number of pairwise wins.

    ``winners`` maps (a, b) pairs (any orientation) to the winning item.
    Items never appearing in a pair score zero. Win-count ties break by item
    reference for determinism.
    """
    index = WinCountIndex(items)
    for (a, b), winner in winners.items():
        index.record(a, b, winner)
    # Sort the caller's sequence (not the index keys) so pathological
    # duplicate inputs keep their historical behaviour.
    return sorted(items, key=lambda item: (index.wins(item), item))


def win_fractions(
    items: Sequence[str], corpus: Mapping[str, Sequence[Vote]]
) -> dict[str, float]:
    """Raw vote-level win share per item (no per-pair majority first).

    A smoother score than whole-pair wins; used by EXPLAIN output and the
    hybrid sorter's diagnostics.
    """
    wins: dict[str, int] = {item: 0 for item in items}
    appearances: dict[str, int] = {item: 0 for item in items}
    for qid, votes in corpus.items():
        pair_part = qid.rsplit(":cmp:", 1)
        if len(pair_part) != 2:
            raise QurkError(f"malformed comparison qid {qid!r}")
        a, b = pair_part[1].split("|", 1)
        for vote in votes:
            for side in (a, b):
                if side in appearances:
                    appearances[side] += 1
            if vote.value in wins:
                wins[str(vote.value)] += 1
    return {
        item: (wins[item] / appearances[item]) if appearances[item] else 0.0
        for item in items
    }
