"""Top-K and MAX/MIN aggregates over crowd orderings (§2.3).

"For top-K, we simply perform a complete sort and extract the top-K items.
For MAX/MIN, we use an interface that extracts the best element from a
batch at a time."
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.errors import QurkError


def top_k(order: Sequence[str], k: int, most: bool = True) -> list[str]:
    """The top (or bottom) k items of a least→most ordering."""
    if k < 1:
        raise QurkError("k must be positive")
    if k > len(order):
        raise QurkError(f"k={k} exceeds item count {len(order)}")
    return list(reversed(order[-k:])) if most else list(order[:k])


PickFunction = Callable[[Sequence[str]], str]
"""Runs one best-of-batch HIT; returns the chosen item."""


def pick_extreme_order(
    items: Sequence[str],
    pick: PickFunction,
    batch_size: int = 5,
) -> tuple[str, int]:
    """Tournament MAX/MIN: repeatedly pick the best of each batch.

    Returns (winner, number of HITs spent). The HIT count is
    ≈ ceil(N/b) + ceil(N/b²) + … ≈ N/(b−1), linear in N — far cheaper than
    a full sort when only the extreme is needed.
    """
    if not items:
        raise QurkError("cannot pick from an empty item set")
    if batch_size < 2:
        raise QurkError("batch size must be at least 2")
    remaining = list(items)
    hits = 0
    while len(remaining) > 1:
        next_round: list[str] = []
        for start in range(0, len(remaining), batch_size):
            batch = remaining[start : start + batch_size]
            if len(batch) == 1:
                next_round.append(batch[0])
                continue
            winner = pick(batch)
            if winner not in batch:
                raise QurkError(f"picked item {winner!r} not in batch {batch}")
            hits += 1
            next_round.append(winner)
        remaining = next_round
    return remaining[0], hits


def tournament_top_k(
    items: Sequence[str],
    pick: PickFunction,
    k: int,
    batch_size: int = 5,
) -> tuple[list[str], int]:
    """Successive best-of-batch tournaments for the leading k items.

    Runs :func:`pick_extreme_order` k times, removing each round's winner,
    so the ``ORDER BY rank(...) LIMIT k`` path spends
    ≈ k·N/(b−1) HITs instead of a full sort's C(N, 2)/C(b, 2) pair
    coverage — O(N·k/b) versus O(N²). Returns (winners in pick order —
    best first — and the HITs spent). The extremeness direction is the
    ``pick`` function's: hand it a max-picker for DESC, a min-picker for
    ASC.
    """
    if k < 1:
        raise QurkError("k must be positive")
    remaining = list(items)
    winners: list[str] = []
    hits = 0
    for _ in range(min(k, len(remaining))):
        if len(remaining) == 1:
            winners.append(remaining.pop())
            break
        best, spent = pick_extreme_order(remaining, pick, batch_size=batch_size)
        hits += spent
        winners.append(best)
        remaining.remove(best)
    return winners, hits
