"""Sort algorithms over crowd answers (§4).

The crowd provides *information* — pairwise comparisons or per-item ratings
— and these modules turn it into orders:

* :mod:`repro.sorting.groups` — covering designs: groups of S items whose
  internal rankings jointly cover every pair.
* :mod:`repro.sorting.head_to_head` — the paper's "head-to-head" ordering
  by number of pairwise wins.
* :mod:`repro.sorting.graph` — the alternative: comparison digraph, cycle
  breaking, topological sort.
* :mod:`repro.sorting.rating` — mean/σ rating summaries and rating order.
* :mod:`repro.sorting.hybrid` — iterative refinement of a rating order
  using comparison windows (random / confidence / sliding selection).
* :mod:`repro.sorting.topk` — top-K and MAX/MIN aggregates.
"""

from repro.sorting.graph import (
    ComparisonGraph,
    break_cycles,
    strongly_connected_components,
    topological_order,
)
from repro.sorting.groups import covering_groups, pairs_covered
from repro.sorting.head_to_head import (
    WinCountIndex,
    head_to_head_order,
    pair_winners_from_votes,
)
from repro.sorting.hybrid import (
    ConfidenceStrategy,
    HybridSorter,
    RandomStrategy,
    SlidingWindowStrategy,
    WindowStrategy,
)
from repro.sorting.rating import RatingSummary, order_by_rating, summarize_ratings
from repro.sorting.topk import pick_extreme_order, top_k, tournament_top_k

__all__ = [
    "ComparisonGraph",
    "ConfidenceStrategy",
    "HybridSorter",
    "RandomStrategy",
    "RatingSummary",
    "SlidingWindowStrategy",
    "WinCountIndex",
    "WindowStrategy",
    "break_cycles",
    "covering_groups",
    "head_to_head_order",
    "order_by_rating",
    "pair_winners_from_votes",
    "pairs_covered",
    "pick_extreme_order",
    "strongly_connected_components",
    "summarize_ratings",
    "top_k",
    "topological_order",
    "tournament_top_k",
]
