"""Hybrid sort (§4.1.3): rate first, then repair with comparison windows.

The hybrid algorithm starts from the rating-based order L and iteratively
picks windows of S items to re-order with one comparison HIT each. The user
buys accuracy one HIT at a time, interpolating between Rate quality
(~τ 0.78 on squares) and Compare quality (τ 1.0) — Figure 7.

Three window-selection strategies from the paper:

* **Random** — S random items per iteration.
* **Confidence-based** — consecutive windows scored by rating-uncertainty
  overlap Rᵢ = Σ max(μa + σa − μb − σb, 0) over in-window pairs (μa < μb);
  windows with the most overlap (least confidence) are repaired first.
* **Sliding window** — consecutive windows advancing by a stride t, wrapping
  around the list; strides that are not divisors of N shift phase on each
  pass, letting far-from-home items keep migrating (why Window 6 beats
  Window 5 on 40 items).
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

from repro.errors import QurkError
from repro.sorting.head_to_head import head_to_head_order
from repro.sorting.rating import RatingSummary, order_by_rating
from repro.util import sortscale
from repro.util.rng import RandomSource

CompareFunction = Callable[[Sequence[str]], Mapping[tuple[str, str], str]]
"""Runs one comparison HIT on a window; returns per-pair winners."""


class WindowStrategy:
    """Chooses which positions of the current order to repair next."""

    def next_window(
        self,
        order: Sequence[str],
        summaries: Mapping[str, RatingSummary],
        iteration: int,
    ) -> list[int]:
        """Positions (indices into ``order``) of the next window."""
        raise NotImplementedError


class RandomStrategy(WindowStrategy):
    """Pick S random items each iteration."""

    def __init__(self, window_size: int, seed: int = 0) -> None:
        self.window_size = window_size
        self._rng = RandomSource(seed).child("hybrid-random")

    def next_window(
        self,
        order: Sequence[str],
        summaries: Mapping[str, RatingSummary],
        iteration: int,
    ) -> list[int]:
        size = min(self.window_size, len(order))
        return sorted(self._rng.sample(range(len(order)), size))


class ConfidenceStrategy(WindowStrategy):
    """Repair the least-confident consecutive windows first.

    Window scores are computed once from the initial rating statistics and
    consumed in decreasing order (wrapping around when iterations exceed the
    number of windows), per §4.1.3.
    """

    def __init__(self, window_size: int) -> None:
        self.window_size = window_size
        self._ranked_starts: list[int] | None = None

    @staticmethod
    def window_overlap(
        window_items: Sequence[str], summaries: Mapping[str, RatingSummary]
    ) -> float:
        """Rᵢ: total pairwise σ-interval overlap within a window."""
        total = 0.0
        for i in range(len(window_items)):
            for j in range(len(window_items)):
                if i == j:
                    continue
                a = summaries[window_items[i]]
                b = summaries[window_items[j]]
                if a.mean < b.mean or (a.mean == b.mean and i < j):
                    total += max(a.mean + a.std - (b.mean - b.std), 0.0)
        return total

    def next_window(
        self,
        order: Sequence[str],
        summaries: Mapping[str, RatingSummary],
        iteration: int,
    ) -> list[int]:
        size = min(self.window_size, len(order))
        if self._ranked_starts is None:
            if sortscale.enabled():
                scores = _window_scores_indexed(order, summaries, size)
            else:
                scores = []
                for start in range(0, len(order) - size + 1):
                    window_items = [order[start + k] for k in range(size)]
                    scores.append(
                        (self.window_overlap(window_items, summaries), start)
                    )
            scores.sort(key=lambda pair: (-pair[0], pair[1]))
            self._ranked_starts = [start for _, start in scores]
        starts = self._ranked_starts
        start = starts[iteration % len(starts)]
        return list(range(start, start + size))


def _window_scores_indexed(
    order: Sequence[str],
    summaries: Mapping[str, RatingSummary],
    size: int,
) -> list[tuple[float, int]]:
    """Every consecutive window's Rᵢ via a sliding pair-contribution index.

    The reference recomputes :meth:`ConfidenceStrategy.window_overlap` from
    the summaries for each of the N−S+1 windows — O(S²) mean/σ lookups and
    ``max`` evaluations per window, with the same pair re-derived in up to
    S−1 neighbouring windows. Here each qualifying ordered pair (p, q)
    within sliding distance (|p−q| < S) is scored exactly once — advancing
    the window by one position only ever introduces the S−1 pairs that end
    at the entering item — and windows then *sum* their pairs from the
    index. Sums deliberately re-add the S² table entries per window in the
    reference's (p, q) iteration order rather than sliding the float total
    itself: float addition is not associative, and a drifting running sum
    could re-rank windows whose reference scores tie exactly (the ranked
    order feeds the hybrid repair trajectory, which must be bit-identical
    under both toggle modes).
    """
    n = len(order)
    means = [summaries[item].mean for item in order]
    stds = [summaries[item].std for item in order]
    rows: list[list[tuple[int, float]]] = []
    for p in range(n):
        row: list[tuple[int, float]] = []
        for q in range(max(0, p - size + 1), min(n, p + size)):
            if q == p:
                continue
            if means[p] < means[q] or (means[p] == means[q] and p < q):
                row.append(
                    (q, max(means[p] + stds[p] - (means[q] - stds[q]), 0.0))
                )
        rows.append(row)
    scores: list[tuple[float, int]] = []
    for start in range(0, n - size + 1):
        end = start + size
        total = 0.0
        for p in range(start, end):
            for q, value in rows[p]:
                if start <= q < end:
                    total += value
        scores.append((total, start))
    return scores


class SlidingWindowStrategy(WindowStrategy):
    """Consecutive windows advancing by stride t, wrapping mod N."""

    def __init__(self, window_size: int, stride: int) -> None:
        if stride < 1:
            raise QurkError("stride must be positive")
        self.window_size = window_size
        self.stride = stride

    def next_window(
        self,
        order: Sequence[str],
        summaries: Mapping[str, RatingSummary],
        iteration: int,
    ) -> list[int]:
        size = min(self.window_size, len(order))
        n = len(order)
        offset = (iteration * self.stride) % n
        return [(offset + k) % n for k in range(size)]


class HybridSorter:
    """Iteratively repairs a rating order with comparison windows.

    Each :meth:`step` spends exactly one comparison HIT. Window items are
    re-ordered by head-to-head wins and written back into the window's
    positions in ascending order — including across a wrap, which is what
    lets items migrate between the ends of the list over multiple passes.
    """

    def __init__(
        self,
        summaries: Mapping[str, RatingSummary],
        strategy: WindowStrategy,
        compare: CompareFunction,
    ) -> None:
        if not summaries:
            raise QurkError("cannot sort an empty item set")
        self.summaries = dict(summaries)
        self.strategy = strategy
        self.compare = compare
        self.order: list[str] = order_by_rating(self.summaries)
        self.iterations = 0
        self.hits_spent = 0

    def step(self) -> list[str]:
        """Run one repair iteration (one comparison HIT); returns the order."""
        positions = self.strategy.next_window(
            self.order, self.summaries, self.iterations
        )
        if len(set(positions)) != len(positions):
            raise QurkError(f"strategy returned duplicate positions {positions}")
        window_items = [self.order[position] for position in positions]
        winners = self.compare(window_items)
        repaired = head_to_head_order(window_items, winners)
        for position, item in zip(sorted(positions), repaired):
            self.order[position] = item
        self.iterations += 1
        self.hits_spent += 1
        return list(self.order)

    def run(self, iterations: int) -> list[list[str]]:
        """Run several iterations; returns the order after each one."""
        return [self.step() for _ in range(iterations)]
