"""Rating aggregation (§4.1.2): mean Likert scores and the order they imply."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.errors import QurkError
from repro.hits.hit import Vote
from repro.util.stats import mean, stddev


@dataclass(frozen=True)
class RatingSummary:
    """Aggregate of one item's ratings: μ, σ, and vote count.

    The hybrid sorter's confidence strategy consumes μ ± σ overlaps.
    """

    item: str
    mean: float
    std: float
    count: int


def summarize_ratings(
    corpus: Mapping[str, Sequence[Vote]]
) -> dict[str, RatingSummary]:
    """Per-item rating summaries from a ``task:rate:item`` vote corpus."""
    summaries: dict[str, RatingSummary] = {}
    for qid, votes in corpus.items():
        parts = qid.rsplit(":rate:", 1)
        if len(parts) != 2:
            raise QurkError(f"malformed rating qid {qid!r}")
        item = parts[1]
        values = [float(vote.value) for vote in votes]  # type: ignore[arg-type]
        if not values:
            continue
        summaries[item] = RatingSummary(
            item=item, mean=mean(values), std=stddev(values), count=len(values)
        )
    return summaries


def order_by_rating(summaries: Mapping[str, RatingSummary]) -> list[str]:
    """Items ascending by mean rating (ties by item ref, deterministic)."""
    return sorted(summaries, key=lambda item: (summaries[item].mean, item))
