"""Multi-class categorization scenario: product listings into departments.

An out-of-tree task type registered through :mod:`repro.tasks.registry`
with **zero engine edits**: ``Categorize`` declares role ``generative`` and
subclasses :class:`~repro.tasks.generative.GenerativeTask`, so the
generative lane (batched HIT compilation, MajorityVote combination,
predicate and projection use) runs it unchanged. The DSL declaration is a
``Categories`` list instead of the generic ``Response``/``Fields`` blocks —
the type's builder enforces a >= 3-class label space and synthesises the
Radio field itself.

The worker model gives each department its own confusion kernel: home and
toys bleed into each other (a juicer-shaped toy is genuinely ambiguous),
electronics is crisp.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

from repro.crowd.truth import FeatureTruth, GroundTruth
from repro.errors import TaskError
from repro.language.ast import ResponseSpec
from repro.relational.schema import Schema
from repro.relational.table import Table
from repro.tasks.base import _string_property, _template_property
from repro.tasks.generative import GenerativeField, GenerativeTask
from repro.tasks.registry import (
    ROLE_GENERATIVE,
    TaskTypeSpec,
    default_registry,
    install_truth,
    register_task_type,
)
from repro.util.rng import RandomSource

if TYPE_CHECKING:  # pragma: no cover
    from repro.language.ast import TaskDefinition

TYPE_KEY = "Categorize"
CATEGORIZE_TASK = "department"
FIELD_NAME = "category"

CATEGORIES = ("electronics", "apparel", "home", "toys")
CATEGORY_WEIGHTS = (0.3, 0.25, 0.25, 0.2)

CATEGORIZE_QUERY = "SELECT p.listing, department(p.listing) FROM products p"

TASK_DSL = """
TASK department(field) TYPE Categorize:
    Prompt: "<div class=listing>%s</div> Which department sells this product?", tuple[field]
    Categories: ["electronics", "apparel", "home", "toys"]
    Combiner: MajorityVote
"""


class CategorizeTask(GenerativeTask):
    """A single-field Radio classification over a fixed label space.

    Declared with ``Categories: [...]`` (>= 3 labels); builds the one
    categorical field itself, so scenario DSL stays a flat label list.
    """

    type_key = TYPE_KEY

    def __init__(
        self,
        name: str,
        params: tuple[str, ...],
        prompt,
        categories: tuple[str, ...],
        combiner: str = "MajorityVote",
    ) -> None:
        if len(categories) < 3:
            raise TaskError(
                f"categorize task {name!r} needs at least 3 categories, "
                f"got {list(categories)}"
            )
        if len(set(categories)) != len(categories):
            raise TaskError(f"categorize task {name!r} has duplicate categories")
        field = GenerativeField(
            name=FIELD_NAME,
            response=ResponseSpec(
                kind="Radio", label="Category", options=tuple(categories)
            ),
            combiner=combiner,
        )
        super().__init__(name, params, prompt, (field,), combiner)
        self.categories = tuple(categories)

    @classmethod
    def from_definition(cls, defn: "TaskDefinition") -> "CategorizeTask":
        """Build from a parsed ``TASK ... TYPE Categorize`` definition."""
        prompt = _template_property(defn, "Prompt")
        categories = defn.properties.get("Categories")
        if not isinstance(categories, tuple) or not all(
            isinstance(value, str) for value in categories
        ):
            raise TaskError(
                f"categorize task {defn.name!r} needs a Categories list "
                "of label strings"
            )
        return cls(
            name=defn.name,
            params=defn.params,
            prompt=prompt,
            categories=categories,
            combiner=_string_property(defn, "Combiner", "MajorityVote"),
        )


def _install_categorize_truth(
    truth: GroundTruth, task_name: str, data: Mapping
) -> None:
    """Install per-field categorical truth (field name -> FeatureTruth)."""
    for field_name, feature in data.items():
        truth.add_feature_task(task_name, field_name, feature)


SPEC = TaskTypeSpec(
    key=TYPE_KEY,
    role=ROLE_GENERATIVE,
    builder=CategorizeTask.from_definition,
    combiner_default="MajorityVote",
    # One radio click; scanning the label list grows with the label space.
    unit_effort_seconds=lambda task: 1.5 + 0.25 * len(task.categories),
    truth_hook=_install_categorize_truth,
    explain_label="Categorize",
)
"""The multi-class categorization scenario's registry plugin."""


def register() -> None:
    """Idempotently register ``Categorize`` (safe to call from every importer)."""
    if not default_registry().has(TYPE_KEY):
        register_task_type(SPEC)


def _category_confusion() -> dict[object, dict[object, float]]:
    """Per-department careful-worker kernels; home/toys bleed together."""
    return {
        "electronics": {"electronics": 0.94, "home": 0.04, "toys": 0.02},
        "apparel": {"apparel": 0.92, "home": 0.05, "toys": 0.03},
        "home": {"home": 0.78, "toys": 0.12, "apparel": 0.06, "electronics": 0.04},
        "toys": {"toys": 0.74, "home": 0.16, "electronics": 0.06, "apparel": 0.04},
    }


@dataclass
class CategorizeDataset:
    """Products table + oracle + DSL + true departments per item ref."""

    products: Table
    truth: GroundTruth
    task_dsl: str
    departments: dict[str, str]
    """item ref -> true department."""


def categorize_dataset(n: int = 24, seed: int = 0) -> CategorizeDataset:
    """Build an N-product categorization dataset."""
    register()
    rng = RandomSource(seed).child("categorize")
    products = Table("products", Schema.of("id integer", "listing url"))
    truth = GroundTruth()

    departments: dict[str, str] = {}
    for i in range(n):
        ref = f"cat://item/{i}"
        products.insert({"id": i, "listing": ref})
        departments[ref] = CATEGORIES[rng.weighted_index(CATEGORY_WEIGHTS)]

    install_truth(
        truth,
        TYPE_KEY,
        CATEGORIZE_TASK,
        {
            FIELD_NAME: FeatureTruth(
                values=dict(departments),
                options=CATEGORIES,
                confusion=_category_confusion(),
                confusion_combined=_category_confusion(),
            )
        },
    )
    return CategorizeDataset(
        products=products,
        truth=truth,
        task_dsl=TASK_DSL,
        departments=departments,
    )


@dataclass
class CategorizeOutcome:
    """Measured counts for one batching variant."""

    label: str
    total_hits: int
    result_rows: int
    accuracy: float
    cost: float


def run_categorize_variant(
    data: CategorizeDataset, label: str, *, batch_size: int, seed: int = 0
) -> CategorizeOutcome:
    """Execute the categorize query at one generative batch size."""
    from repro.core.context import ExecutionConfig
    from repro.core.engine import Qurk
    from repro.crowd import SimulatedMarketplace

    market = SimulatedMarketplace(data.truth, seed=seed)
    config = ExecutionConfig(generative_batch_size=batch_size)
    engine = Qurk(platform=market, config=config)
    engine.register_table(data.products)
    engine.define(data.task_dsl)
    result = engine.execute(CATEGORIZE_QUERY)

    correct = sum(
        1
        for row in result.rows
        if str(row["department(p.listing)"]) == data.departments[str(row["p.listing"])]
    )
    accuracy = correct / len(result) if len(result) else 0.0
    return CategorizeOutcome(
        label=label,
        total_hits=engine.ledger.total_hits,
        result_rows=len(result),
        accuracy=accuracy,
        cost=engine.ledger.total_cost,
    )


def run_categorize_suite(seed: int = 0) -> list[CategorizeOutcome]:
    """Batch-size comparison (§6 merging economics) for categorization."""
    data = categorize_dataset(seed=seed)
    return [
        run_categorize_variant(data, "Unbatched", batch_size=1, seed=seed * 31 + 7),
        run_categorize_variant(data, "Batch 6", batch_size=6, seed=seed * 31 + 8),
    ]
