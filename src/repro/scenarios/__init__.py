"""Scenario pack: crowd task types registered outside the engine.

Each scenario module defines a task type (a :class:`TaskTypeSpec` plugin),
a dataset with ground truth, and a benchmark experiment — none of them
touch ``core/``, ``hits/``, or ``crowd/``. Importing this package (or any
scenario module) registers the types idempotently.
"""

from repro.scenarios import categorize, er_join

er_join.register()
categorize.register()

__all__ = ["categorize", "er_join"]
