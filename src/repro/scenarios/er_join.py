"""Entity-resolution join scenario: dirty product listings vs a catalog.

An out-of-tree task type registered through the public plugin surface
(:mod:`repro.tasks.registry`) with **zero engine edits**: the ``ErJoin``
type declares role ``join`` and duck-types the join lane's task protocol
(``pair_question()`` / ``grid_question()``), so the Simple/Naive/Smart
interfaces, POSSIBLY feature filtering machinery, batching arithmetic, and
combiners all apply unchanged.

Unlike the celebrity join (§3.3, strictly one photo per celebrity), entity
resolution is many-to-one: each catalog product has one or more scraped
listings (retailer duplicates, OCR'd titles), plus distractor listings that
match nothing. Selectivity stays low, which is exactly the regime where
SmartBatch grids win (§3.1.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.crowd.truth import GroundTruth
from repro.errors import TaskError
from repro.relational.schema import Schema
from repro.relational.table import Table
from repro.tasks.base import Task, _string_property
from repro.tasks.registry import (
    ROLE_JOIN,
    TaskTypeSpec,
    default_registry,
    install_truth,
    register_task_type,
)
from repro.util.rng import RandomSource

if TYPE_CHECKING:  # pragma: no cover
    from repro.language.ast import TaskDefinition

TYPE_KEY = "ErJoin"
JOIN_TASK = "sameProduct"

ER_QUERY = """
SELECT c.listing, l.listing
FROM catalog c JOIN listings l
ON sameProduct(c.listing, l.listing)
"""

TASK_DSL = """
TASK sameProduct(l1, l2) TYPE ErJoin:
    Question: "Do these two product listings describe the same product?"
    GridQuestion: "Click on pairs of listings (one from each column) \\
        that describe the same product."
    Combiner: MajorityVote
"""


class EntityResolutionJoinTask(Task):
    """A pairwise "same product?" question over textual listings.

    Listings are text blobs rather than photos, so the pair/grid instruction
    lines come from the DSL declaration instead of the EquiJoin template's
    image-centric defaults.
    """

    type_key = TYPE_KEY

    def __init__(
        self,
        name: str,
        params: tuple[str, ...],
        question: str,
        grid_question: str,
        combiner: str = "MajorityVote",
    ) -> None:
        super().__init__(name, params, combiner)
        if len(params) != 2:
            raise TaskError(
                f"er-join task {name!r} must declare exactly two parameters "
                f"(left listing, right listing), got {list(params)}"
            )
        self.question = question
        self._grid_question = grid_question

    @classmethod
    def from_definition(cls, defn: "TaskDefinition") -> "EntityResolutionJoinTask":
        """Build from a parsed ``TASK ... TYPE ErJoin`` definition."""
        return cls(
            name=defn.name,
            params=defn.params,
            question=_string_property(
                defn,
                "Question",
                "Do these two listings describe the same product?",
            ),
            grid_question=_string_property(
                defn,
                "GridQuestion",
                "Click on pairs of listings (one from each column) "
                "that describe the same product.",
            ),
            combiner=_string_property(defn, "Combiner", "MajorityVote"),
        )

    # Join-lane task protocol (duck-typed by core/join_exec.py).

    def pair_question(self) -> str:
        """The instruction line shown with each candidate pair."""
        return self.question

    def grid_question(self) -> str:
        """The instruction line for a SmartBatch grid."""
        return self._grid_question


SPEC = TaskTypeSpec(
    key=TYPE_KEY,
    role=ROLE_JOIN,
    builder=EntityResolutionJoinTask.from_definition,
    combiner_default="MajorityVote",
    # Vetting two textual listings (model numbers, pack sizes) is slower
    # than eyeballing two photos.
    unit_effort_seconds=4.5,
    truth_hook=lambda truth, name, data: truth.add_join_task(name, data),
    explain_label="ErJoin",
)
"""The entity-resolution join's registry plugin."""


def register() -> None:
    """Idempotently register ``ErJoin`` (safe to call from every importer)."""
    if not default_registry().has(TYPE_KEY):
        register_task_type(SPEC)


@dataclass
class ErJoinDataset:
    """Catalog + scraped listings + oracle + DSL + true match pairs."""

    catalog: Table
    listings: Table
    truth: GroundTruth
    task_dsl: str
    matches: list[tuple[str, str]]
    """(catalog listing ref, scraped listing ref) true pairs."""


def er_join_dataset(
    n_products: int = 10,
    max_duplicates: int = 2,
    distractors: int = 5,
    seed: int = 0,
) -> ErJoinDataset:
    """Build a dirty-duplicates entity-resolution dataset.

    Each catalog product gets 1..``max_duplicates`` scraped listings;
    ``distractors`` extra listings match no catalog product at all.
    """
    register()
    rng = RandomSource(seed).child("er-join")
    catalog = Table("catalog", Schema.of("sku text", "listing url"))
    listings = Table("listings", Schema.of("id integer", "listing url"))
    truth = GroundTruth()

    matches: list[tuple[str, str]] = []
    listing_id = 0
    for i in range(n_products):
        catalog_ref = f"er://catalog/{i}"
        catalog.insert({"sku": f"sku-{i:03d}", "listing": catalog_ref})
        duplicates = 1 + rng.weighted_index(
            tuple(1.0 for _ in range(max_duplicates))
        )
        for _ in range(duplicates):
            scraped_ref = f"er://scrape/{listing_id}"
            listings.insert({"id": listing_id, "listing": scraped_ref})
            matches.append((catalog_ref, scraped_ref))
            listing_id += 1
    for _ in range(distractors):
        scraped_ref = f"er://scrape/{listing_id}"
        listings.insert({"id": listing_id, "listing": scraped_ref})
        listing_id += 1

    install_truth(truth, TYPE_KEY, JOIN_TASK, set(matches))
    return ErJoinDataset(
        catalog=catalog,
        listings=listings,
        truth=truth,
        task_dsl=TASK_DSL,
        matches=matches,
    )


@dataclass
class ErJoinOutcome:
    """Measured counts for one interface variant."""

    label: str
    total_hits: int
    result_rows: int
    precision: float
    recall: float
    cost: float


def run_er_join_variant(
    data: ErJoinDataset,
    label: str,
    interface: "object",
    *,
    grid: int = 3,
    naive_batch: int = 5,
    seed: int = 0,
) -> ErJoinOutcome:
    """Execute the ER query under one join interface and score it."""
    from repro.core.context import ExecutionConfig
    from repro.core.engine import Qurk
    from repro.crowd import SimulatedMarketplace

    market = SimulatedMarketplace(data.truth, seed=seed)
    config = ExecutionConfig(
        join_interface=interface,
        naive_batch_size=naive_batch,
        grid_rows=grid,
        grid_cols=grid,
    )
    engine = Qurk(platform=market, config=config)
    engine.register_table(data.catalog)
    engine.register_table(data.listings)
    engine.define(data.task_dsl)
    result = engine.execute(ER_QUERY)

    reported = {
        (str(row["c.listing"]), str(row["l.listing"])) for row in result.rows
    }
    true_pairs = set(data.matches)
    hit_pairs = reported & true_pairs
    precision = len(hit_pairs) / len(reported) if reported else 1.0
    recall = len(hit_pairs) / len(true_pairs) if true_pairs else 1.0
    return ErJoinOutcome(
        label=label,
        total_hits=engine.ledger.total_hits,
        result_rows=len(result),
        precision=precision,
        recall=recall,
        cost=engine.ledger.total_cost,
    )


def run_er_join_suite(seed: int = 0) -> list[ErJoinOutcome]:
    """Table-5-style interface comparison for the ER join scenario."""
    from repro.joins.batching import JoinInterface

    data = er_join_dataset(seed=seed)
    variants = [
        ("Simple", JoinInterface.SIMPLE, {}),
        ("Naive 5", JoinInterface.NAIVE, {"naive_batch": 5}),
        ("Smart 3x3", JoinInterface.SMART, {"grid": 3}),
    ]
    return [
        run_er_join_variant(data, label, interface, seed=seed * 31 + 7, **kwargs)
        for label, interface, kwargs in variants
    ]
