"""Exception hierarchy for the repro package.

All library-raised errors derive from :class:`QurkError` so callers can catch
the package's failures with a single except clause while letting programming
errors (TypeError etc.) propagate.
"""

from __future__ import annotations


class QurkError(Exception):
    """Base class for all errors raised by this package."""


class SchemaError(QurkError):
    """A schema was malformed or a row did not conform to its schema."""


class CatalogError(QurkError):
    """A table or task was missing from, or duplicated in, the catalog."""


class ParseError(QurkError):
    """The query or TASK-DSL text could not be parsed.

    Carries the offending line/column when known.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        location = ""
        if line is not None:
            location = f" at line {line}"
            if column is not None:
                location += f", column {column}"
        super().__init__(message + location)
        self.line = line
        self.column = column


class PlanError(QurkError):
    """The planner could not translate a parsed query into a plan."""


class ExecutionError(QurkError):
    """An operator failed while executing a plan."""


class TaskError(QurkError):
    """A task template was malformed or misused."""


class MarketplaceError(QurkError):
    """The crowd platform rejected or could not complete a request."""


class TransientMarketplaceError(MarketplaceError):
    """A platform API call failed in a way that is safe to retry.

    The fault-injection layer (:mod:`repro.crowd.faults`) raises this on
    simulated post/harvest failures; a real platform shim would raise it
    for throttling or 5xx responses. The Task Manager's resilience layer
    retries these behind a circuit breaker; callers without that layer see
    it as an ordinary :class:`MarketplaceError`.
    """


class HITUncompletedError(MarketplaceError):
    """A posted HIT attracted no willing workers within the deadline.

    The paper observes this with compare groups of size 20 (§4.2.2): the HITs
    sat uncompleted for hours because the work/price ratio was unacceptable.
    """

    def __init__(self, message: str, hit_ids: list[str] | None = None):
        super().__init__(message)
        self.hit_ids = hit_ids or []


class BudgetExceededError(QurkError):
    """A query or operator would exceed its allocated budget."""


class BatchTuningError(QurkError):
    """Batch-size tuning found no acceptable size — even the minimum batch
    failed its probe.

    Carries the failing :class:`~repro.core.batch_tuner.ProbeResult` so the
    caller can tell refusal from an accuracy or latency violation and decide
    whether to raise pay or abandon the task.
    """

    def __init__(self, message: str, probe=None):
        super().__init__(message)
        self.probe = probe


class CombinerError(QurkError):
    """Answer combination failed (e.g. no votes to combine)."""
