"""QualityAdjust: the Ipeirotis et al. quality-management combiner [6].

Runs Dawid-Skene EM (worker confusion + bias estimation), then makes
cost-sensitive decisions. For the paper's join pairs, false negatives are
penalised twice as heavily as false positives (§3.3.2): a missing true match
is worse than an extra candidate pair.

Also exposes per-worker quality scores — the expected misclassification cost
of a worker's (bias-corrected) soft labels, normalised so that a perfect
worker scores 1.0 and a worker indistinguishable from the prior scores 0.0.
Spam workers land near zero regardless of whether they answer randomly or
with a constant pattern, which simple accuracy cannot do; §6 suggests using
these scores to ban bad workers.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.combine.base import Combiner
from repro.combine.dawid_skene import DawidSkeneResult, dawid_skene
from repro.hits.hit import Vote


class QualityAdjust(Combiner):
    """EM-based combiner with asymmetric decision costs.

    ``false_negative_cost`` applies when the label space is boolean: deciding
    ``False`` when the truth is ``True`` costs this much (default 2.0, per
    the paper), any other confusion costs 1.0. For non-boolean label spaces
    a uniform 0/1 cost is used, i.e. MAP decisions.
    """

    def __init__(
        self,
        iterations: int = 5,
        false_negative_cost: float = 2.0,
        smoothing: float = 0.01,
    ) -> None:
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        self.iterations = iterations
        self.false_negative_cost = false_negative_cost
        self.smoothing = smoothing
        self.last_result: DawidSkeneResult | None = None
        self.last_vote_counts: dict[str, int] = {}

    def fit(self, corpus: Mapping[str, Sequence[Vote]]) -> DawidSkeneResult:
        """Run the EM and keep the fitted model for inspection."""
        self.last_result = dawid_skene(
            corpus, iterations=self.iterations, smoothing=self.smoothing
        )
        self.last_vote_counts = {}
        for votes in corpus.values():
            for vote in votes:
                self.last_vote_counts[vote.worker_id] = (
                    self.last_vote_counts.get(vote.worker_id, 0) + 1
                )
        return self.last_result

    def combine(self, corpus: Mapping[str, Sequence[Vote]]) -> dict[str, object]:
        result = self.fit(corpus)
        is_boolean = set(result.labels) <= {True, False}
        decisions: dict[str, object] = {}
        for qid, posterior in result.posteriors.items():
            if is_boolean:
                decisions[qid] = self._boolean_decision(posterior)
            else:
                best = max(posterior.values())
                winners = [label for label, p in posterior.items() if p == best]
                decisions[qid] = sorted(winners, key=repr)[0]
        return decisions

    def _boolean_decision(self, posterior: Mapping[object, float]) -> bool:
        p_true = posterior.get(True, 0.0)
        p_false = posterior.get(False, 0.0)
        # Expected cost of answering False = P(truth=True) × FN cost;
        # expected cost of answering True = P(truth=False) × FP cost (1.0).
        cost_if_false = p_true * self.false_negative_cost
        cost_if_true = p_false * 1.0
        return cost_if_false > cost_if_true

    # ------------------------------------------------------------------

    def worker_quality(self) -> dict[str, float]:
        """Per-worker quality in [0, 1] from the last fit.

        Implements the Ipeirotis expected-cost measure: for each label a
        worker emits, form the bias-corrected soft label (posterior over
        truths given the worker said that), take its expected
        misclassification cost, and average weighted by how often the worker
        emits each label. Normalised against the cost of the prior
        distribution itself (the best a content-blind spammer can do).
        """
        result = self.last_result
        if result is None:
            raise RuntimeError("call combine()/fit() before worker_quality()")
        labels = result.labels
        priors = result.priors

        def soft_label_cost(soft: Mapping[object, float]) -> float:
            return sum(
                soft[a] * soft[b]
                for a in labels
                for b in labels
                if a is not b and a != b
            )

        baseline = soft_label_cost(priors)
        qualities: dict[str, float] = {}
        for worker, confusion in result.worker_confusion.items():
            expected_cost = 0.0
            for emitted in labels:
                # P(worker emits this label) and the soft truth given it.
                p_emit = sum(
                    priors[true] * confusion[true][emitted] for true in labels
                )
                if p_emit <= 0.0:
                    continue
                soft = {
                    true: priors[true] * confusion[true][emitted] / p_emit
                    for true in labels
                }
                expected_cost += p_emit * soft_label_cost(soft)
            if baseline <= 0.0:
                qualities[worker] = 1.0
            else:
                qualities[worker] = max(0.0, min(1.0, 1.0 - expected_cost / baseline))
        return qualities

    def balanced_worker_accuracy(self) -> dict[str, float]:
        """Per-worker accuracy averaged *uniformly over classes*.

        On heavily class-imbalanced corpora (a join has 1/N positives) raw
        accuracy and the expected-cost score both reward constant-"no"
        spammers. The class-balanced mean of the confusion diagonal does
        not: an always-no worker scores ≈ 0.5 (perfect on negatives, zero
        on positives), a random worker ≈ 0.5, an honest worker well above.
        """
        result = self.last_result
        if result is None:
            raise RuntimeError("call combine()/fit() before balanced accuracy")
        scores: dict[str, float] = {}
        for worker, confusion in result.worker_confusion.items():
            diagonal = [confusion[label].get(label, 0.0) for label in result.labels]
            scores[worker] = sum(diagonal) / len(diagonal)
        return scores

    def identify_spammers(
        self, threshold: float = 0.25, min_votes: int = 1
    ) -> list[str]:
        """Workers whose quality score falls below ``threshold``.

        ``min_votes`` guards against accusing low-volume workers: with only
        a handful of votes the EM cannot distinguish an unlucky honest
        worker from a spammer, so their confusion rows (and hence quality
        scores) are uninformative.
        """
        counts = getattr(self, "last_vote_counts", {})
        return sorted(
            worker
            for worker, quality in self.worker_quality().items()
            if quality < threshold and counts.get(worker, 0) >= min_votes
        )
