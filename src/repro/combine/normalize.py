"""Text normalizers (§2.2): canonicalise free-text answers before combining.

The TASK DSL references normalizers by name (``Normalizer:
LowercaseSingleSpace``); this registry resolves them. Custom normalizers can
be registered by advanced users.
"""

from __future__ import annotations

from typing import Callable

from repro.util.text import lowercase_single_space

Normalizer = Callable[[str], str]

_REGISTRY: dict[str, Normalizer] = {}


def register_normalizer(name: str, fn: Normalizer, replace: bool = False) -> None:
    """Register a normalizer under a DSL-visible name."""
    if name in _REGISTRY and not replace:
        raise KeyError(f"normalizer {name!r} already registered")
    _REGISTRY[name] = fn


def get_normalizer(name: str | None) -> Normalizer:
    """Resolve a normalizer name; ``None`` resolves to the identity."""
    if name is None or name == "None":
        return lambda text: text
    try:
        return _REGISTRY[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown normalizer {name!r}; available: {sorted(_REGISTRY)}"
        ) from exc


register_normalizer("LowercaseSingleSpace", lowercase_single_space)
register_normalizer("Strip", str.strip)
register_normalizer("Lowercase", str.lower)
