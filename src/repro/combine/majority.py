"""MajorityVote: the most popular answer wins (§2.1).

Ties break pessimistically for binary questions — the paper identifies a
join pair only "if the number of positive votes outweighs the negative
votes", so an even split is not a match. For general labels, ties break
deterministically by sorted representation so results are reproducible.
"""

from __future__ import annotations

from collections import Counter
from typing import Mapping, Sequence

from repro.combine.base import Combiner
from repro.errors import CombinerError
from repro.hits.hit import Vote, count_vote_values


class MajorityVote(Combiner):
    """Per-question plurality with deterministic, pessimistic tie-breaks."""

    def combine(self, corpus: Mapping[str, Sequence[Vote]]) -> dict[str, object]:
        return {qid: self._majority(qid, votes) for qid, votes in corpus.items()}

    @staticmethod
    def _majority(qid: str, votes: Sequence[Vote]) -> object:
        if not votes:
            raise CombinerError(f"no votes for question {qid!r}")
        counts = count_vote_values(votes)
        best_count = max(counts.values())
        winners = [value for value, count in counts.items() if count == best_count]
        if len(winners) == 1:
            return winners[0]
        # Binary tie: positives did not outweigh negatives.
        if set(counts) <= {True, False}:
            return False
        return sorted(winners, key=repr)[0]


def vote_fractions(votes: Sequence[Vote]) -> dict[object, float]:
    """Share of votes per label (used by agreement metrics and EXPLAIN)."""
    if not votes:
        return {}
    counts = Counter(vote.value for vote in votes)
    total = sum(counts.values())
    return {value: count / total for value, count in counts.items()}
