"""Dawid & Skene (1979): EM estimation of true labels and worker error rates.

Given a corpus of categorical votes — question × worker × label — the
algorithm alternates:

* **M-step**: from current soft labels, estimate class priors and each
  worker's confusion matrix π_w[j][k] = P(worker answers k | truth is j);
* **E-step**: recompute each question's soft label from the priors and the
  confusion matrices of the workers who answered it.

This is the foundation the paper's QualityAdjust combiner [Ipeirotis et al.
2010] builds on; it identifies spammers (flat confusion rows) and corrects
for per-worker bias. The paper runs five iterations (§3.3.2).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.errors import CombinerError
from repro.hits.hit import Vote


@dataclass
class DawidSkeneResult:
    """Everything the EM run estimated."""

    labels: list[object]
    posteriors: dict[str, dict[object, float]]
    priors: dict[object, float]
    worker_confusion: dict[str, dict[object, dict[object, float]]]
    iterations: int

    def hard_labels(self) -> dict[str, object]:
        """Maximum-a-posteriori label per question (ties break by repr)."""
        result = {}
        for qid, posterior in self.posteriors.items():
            best = max(posterior.values())
            winners = [label for label, p in posterior.items() if p == best]
            result[qid] = sorted(winners, key=repr)[0]
        return result

    def worker_accuracy_estimate(self, worker_id: str) -> float:
        """Estimated probability the worker answers correctly, averaged over
        classes weighted by the priors."""
        confusion = self.worker_confusion.get(worker_id)
        if confusion is None:
            raise KeyError(worker_id)
        return sum(
            self.priors[label] * confusion[label].get(label, 0.0)
            for label in self.labels
        )


def dawid_skene(
    corpus: Mapping[str, Sequence[Vote]],
    iterations: int = 5,
    smoothing: float = 0.01,
) -> DawidSkeneResult:
    """Run EM over a categorical vote corpus.

    ``smoothing`` is a Laplace pseudo-count keeping confusion entries off
    zero (a single surprising vote must not produce -inf likelihoods).
    """
    if not corpus:
        raise CombinerError("cannot run Dawid-Skene on an empty corpus")
    if iterations < 1:
        raise CombinerError("need at least one EM iteration")

    labels = sorted(
        {vote.value for votes in corpus.values() for vote in votes}, key=repr
    )
    if not labels:
        raise CombinerError("corpus contains no votes")
    workers = sorted(
        {vote.worker_id for votes in corpus.values() for vote in votes}
    )
    question_ids = list(corpus.keys())

    # Initialise posteriors with per-question vote fractions (majority soft).
    posteriors: dict[str, dict[object, float]] = {}
    for qid in question_ids:
        counts = Counter(vote.value for vote in corpus[qid])
        total = sum(counts.values())
        if total == 0:
            raise CombinerError(f"question {qid!r} has no votes")
        posteriors[qid] = {label: counts.get(label, 0) / total for label in labels}

    priors: dict[object, float] = {}
    confusion: dict[str, dict[object, dict[object, float]]] = {}

    for _ in range(iterations):
        # ---- M-step -----------------------------------------------------
        priors = {
            label: sum(posteriors[qid][label] for qid in question_ids)
            / len(question_ids)
            for label in labels
        }
        confusion = {}
        for worker in workers:
            confusion[worker] = {
                true_label: {answer: smoothing for answer in labels}
                for true_label in labels
            }
        for qid in question_ids:
            posterior = posteriors[qid]
            for vote in corpus[qid]:
                rows = confusion[vote.worker_id]
                for true_label in labels:
                    rows[true_label][vote.value] += posterior[true_label]
        for worker in workers:
            for true_label in labels:
                row = confusion[worker][true_label]
                total = sum(row.values())
                for answer in labels:
                    row[answer] /= total

        # ---- E-step -----------------------------------------------------
        for qid in question_ids:
            scores: dict[object, float] = {}
            for true_label in labels:
                likelihood = priors[true_label]
                for vote in corpus[qid]:
                    likelihood *= confusion[vote.worker_id][true_label][vote.value]
                scores[true_label] = likelihood
            total = sum(scores.values())
            if total <= 0.0:
                # Degenerate corner: fall back to the priors.
                posteriors[qid] = dict(priors)
            else:
                posteriors[qid] = {
                    label: score / total for label, score in scores.items()
                }

    return DawidSkeneResult(
        labels=labels,
        posteriors=posteriors,
        priors=priors,
        worker_confusion=confusion,
        iterations=iterations,
    )
