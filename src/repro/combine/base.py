"""Combiner interface.

A combiner receives the whole *corpus* of votes for one logical question set
(e.g. every pair of a join) at once, because the QualityAdjust EM learns
per-worker confusion across questions. Per-question combiners like majority
vote simply iterate.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.errors import CombinerError
from repro.hits.hit import Vote


class Combiner:
    """Base class: corpus of votes → one answer per question."""

    def combine(self, corpus: Mapping[str, Sequence[Vote]]) -> dict[str, object]:
        """Combined answer for every question id in the corpus."""
        raise NotImplementedError

    def combine_one(self, votes: Sequence[Vote]) -> object:
        """Convenience for a single question."""
        result = self.combine({"q": votes})
        return result["q"]


def combine_corpus(
    combiner: Combiner, corpus: Mapping[str, Sequence[Vote]]
) -> dict[str, object]:
    """Run a combiner, validating that every question has votes."""
    empty = [qid for qid, votes in corpus.items() if not votes]
    if empty:
        raise CombinerError(
            f"{len(empty)} question(s) have no votes to combine, e.g. {empty[0]!r}"
        )
    return combiner.combine(corpus)
