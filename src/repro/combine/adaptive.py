"""Adaptive assignment counts (§2.1/§6 extension).

Instead of always buying five assignments per question, start with a small
number and buy more only for questions whose votes are still contested. The
stopping rule is a vote-margin test: stop once the leading answer leads by
``margin`` votes, or the budget of ``max_votes`` is exhausted.

This is the "algorithms for adaptively deciding whether another answer is
needed" the paper defers to future work; operators expose it via their
``adaptive`` option, and the ablation benchmark measures the assignment
savings at equal accuracy.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Sequence

from repro.hits.hit import Vote


@dataclass(frozen=True)
class AdaptivePolicy:
    """Parameters of the adaptive collection loop."""

    initial_votes: int = 3
    step_votes: int = 2
    max_votes: int = 9
    margin: int = 2

    def __post_init__(self) -> None:
        if self.initial_votes < 1 or self.step_votes < 1:
            raise ValueError("vote counts must be positive")
        if self.max_votes < self.initial_votes:
            raise ValueError("max_votes must be >= initial_votes")
        if self.margin < 1:
            raise ValueError("margin must be >= 1")


def vote_margin(votes: Sequence[Vote]) -> int:
    """Lead of the most popular answer over the runner-up."""
    if not votes:
        return 0
    counts = Counter(vote.value for vote in votes).most_common()
    if len(counts) == 1:
        return counts[0][1]
    return counts[0][1] - counts[1][1]


def needs_more_votes(votes: Sequence[Vote], policy: AdaptivePolicy) -> bool:
    """Whether the stopping rule wants another round for this question."""
    if len(votes) >= policy.max_votes:
        return False
    # An unreachable margin within budget also stops collection early.
    remaining = policy.max_votes - len(votes)
    current = vote_margin(votes)
    if current >= policy.margin:
        return False
    return current + remaining >= policy.margin
