"""Answer combination: turning multiple worker votes into one answer.

Provides the paper's two combiners — :class:`MajorityVote` and
:class:`QualityAdjust` (the Ipeirotis et al. bias-aware extension of the
Dawid & Skene EM estimator) — plus text normalizers and the §6 adaptive
assignment-count extension.
"""

from repro.combine.adaptive import AdaptivePolicy, needs_more_votes
from repro.combine.base import Combiner, combine_corpus
from repro.combine.dawid_skene import DawidSkeneResult, dawid_skene
from repro.combine.majority import MajorityVote
from repro.combine.normalize import get_normalizer, register_normalizer
from repro.combine.quality_adjust import QualityAdjust

_COMBINERS = {
    "MajorityVote": MajorityVote,
    "QualityAdjust": QualityAdjust,
}


def get_combiner(name: str, **kwargs) -> Combiner:
    """Instantiate a combiner by its TASK-DSL name."""
    try:
        return _COMBINERS[name](**kwargs)
    except KeyError as exc:
        raise KeyError(
            f"unknown combiner {name!r}; available: {sorted(_COMBINERS)}"
        ) from exc


__all__ = [
    "AdaptivePolicy",
    "Combiner",
    "DawidSkeneResult",
    "MajorityVote",
    "QualityAdjust",
    "combine_corpus",
    "dawid_skene",
    "get_combiner",
    "get_normalizer",
    "needs_more_votes",
    "register_normalizer",
]
