"""The squares dataset (§4.2.1).

"Each square is n × n pixels, and the smallest is 20×20. A dataset of size
N contains squares of sizes {(20+3i) × (20+3i) | i ∈ [0, N)}. This dataset
is designed so that the sort metric (square area) is clearly defined, and we
know the correct ordering."

Side-by-side size comparison is crisp (low comparison ambiguity); absolute
rating on a 7-point scale is much harder (higher rating ambiguity), which is
what makes Rate land at τ ≈ 0.78 while Compare reaches 1.0.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crowd.truth import GroundTruth
from repro.relational.schema import Schema
from repro.relational.table import Table

SORT_TASK = "squareSorter"

TASK_DSL = """
TASK squareSorter(field) TYPE Rank:
    SingularName: "square"
    PluralName: "squares"
    OrderDimensionName: "area"
    LeastName: "smallest"
    MostName: "largest"
    Html: "<img src='%s' class=lgImg>", tuple[field]
"""

COMPARISON_AMBIGUITY = 0.22
"""Relative size judgements on visible squares are nearly unambiguous."""

RATING_AMBIGUITY = 1.05
"""Absolute area ratings carry much more perceptual noise (no reference)."""


@dataclass
class SquaresDataset:
    """Table + oracle + DSL + the known correct ordering."""

    table: Table
    truth: GroundTruth
    task_dsl: str
    true_order: list[str]
    """Item refs, smallest → largest."""

    sizes: dict[str, int]
    """Item ref → side length in pixels."""

    @property
    def items(self) -> list[str]:
        """All item refs (in true order)."""
        return list(self.true_order)


def squares_dataset(
    n: int = 40,
    smallest: int = 20,
    step: int = 3,
    seed: int = 0,
    scale: int = 1,
    comparison_ambiguity: float | None = None,
    rating_ambiguity: float | None = None,
) -> SquaresDataset:
    """Build the synthetic squares dataset of size ``n·scale``.

    ``scale`` multiplies the paper's 40-square default for the scale-out
    sort workloads (``repro.experiments.sort_workload``); the ambiguity
    overrides let those workloads model sharper or fuzzier judgements than
    the paper's defaults without rebuilding the ground truth by hand.
    """
    if scale < 1:
        raise ValueError("scale must be >= 1")
    n = n * scale
    if n < 2:
        raise ValueError("need at least two squares")
    schema = Schema.of("label text", "img url")
    table = Table("squares", schema)
    truth = GroundTruth()
    sizes: dict[str, int] = {}
    latents: dict[str, float] = {}
    order: list[str] = []
    for i in range(n):
        side = smallest + step * i
        ref = f"img://squares/{side}x{side}"
        table.insert({"label": f"square-{side}", "img": ref})
        sizes[ref] = side
        latents[ref] = float(side * side)
        order.append(ref)
    truth.add_rank_task(
        SORT_TASK,
        latents,
        comparison_ambiguity=(
            COMPARISON_AMBIGUITY if comparison_ambiguity is None else comparison_ambiguity
        ),
        rating_ambiguity=(
            RATING_AMBIGUITY if rating_ambiguity is None else rating_ambiguity
        ),
    )
    return SquaresDataset(
        table=table,
        truth=truth,
        task_dsl=TASK_DSL,
        true_order=order,
        sizes=sizes,
    )
