"""The animals dataset (§4.2.1): 25 animals plus a rock and a flower.

The paper's own Compare results serve as ground truth for the three
meaningful orderings (size, dangerousness, "belongs on Saturn"), with
per-query ambiguity levels that grow as the question gets stranger. Q5
("random") makes workers answer uniformly at random — the paper generated
such responses artificially to calibrate the κ floor.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crowd.truth import GroundTruth
from repro.relational.schema import Schema
from repro.relational.table import Table

# The paper's reported Compare ground-truth orders (§4.2.3), least → most.
SIZE_ORDER = [
    "ant", "bee", "flower", "grasshopper", "parrot", "rock", "rat",
    "octopus", "skunk", "tazmanian devil", "turkey", "eagle", "lemur",
    "hyena", "dog", "komodo dragon", "baboon", "wolf", "panther", "dolphin",
    "elephant seal", "moose", "tiger", "camel", "great white shark",
    "hippo", "whale",
]

DANGER_ORDER = [
    "flower", "ant", "grasshopper", "rock", "bee", "turkey", "dolphin",
    "parrot", "baboon", "rat", "tazmanian devil", "lemur", "camel",
    "octopus", "dog", "eagle", "elephant seal", "skunk", "hippo", "hyena",
    "great white shark", "moose", "komodo dragon", "wolf", "tiger", "whale",
    "panther",
]

SATURN_ORDER = [
    "whale", "octopus", "dolphin", "elephant seal", "great white shark",
    "bee", "flower", "grasshopper", "hippo", "dog", "lemur", "wolf",
    "moose", "camel", "hyena", "skunk", "tazmanian devil", "tiger",
    "baboon", "eagle", "parrot", "turkey", "rat", "panther",
    "komodo dragon", "ant", "rock",
]

ANIMAL_QUERIES: dict[str, str] = {
    "Q1": "squareSorter",
    "Q2": "sizeSort",
    "Q3": "dangerSort",
    "Q4": "saturnSort",
    "Q5": "randomSort",
}
"""Figure 6's query ids → the rank task implementing each."""

_TASK_SPECS: list[tuple[str, str, float, float, bool]] = [
    # (task, dimension, comparison ambiguity, rating ambiguity, random?)
    ("sizeSort", "adult size", 0.9, 1.3, False),
    ("dangerSort", "dangerousness", 1.8, 2.3, False),
    ("saturnSort", "how much this animal belongs on Saturn", 5.5, 6.0, False),
    ("randomSort", "random", 1.0, 1.0, True),
]

TASK_DSL = """
TASK sizeSort(field) TYPE Rank:
    SingularName: "animal"
    PluralName: "animals"
    OrderDimensionName: "adult size"
    LeastName: "smallest"
    MostName: "largest"
    Html: "<img src='%s' class=lgImg>", tuple[field]

TASK dangerSort(field) TYPE Rank:
    SingularName: "animal"
    PluralName: "animals"
    OrderDimensionName: "dangerousness"
    LeastName: "least dangerous"
    MostName: "most dangerous"
    Html: "<img src='%s' class=lgImg>", tuple[field]

TASK saturnSort(field) TYPE Rank:
    SingularName: "animal"
    PluralName: "animals"
    OrderDimensionName: "how much this animal belongs on Saturn"
    LeastName: "least Saturn-suited"
    MostName: "most Saturn-suited"
    Html: "<img src='%s' class=lgImg>", tuple[field]

TASK randomSort(field) TYPE Rank:
    SingularName: "animal"
    PluralName: "animals"
    OrderDimensionName: "nothing in particular"
    LeastName: "least"
    MostName: "most"
    Html: "<img src='%s' class=lgImg>", tuple[field]

TASK animalInfo(field) TYPE Generative:
    Prompt: "<table><tr><td><img src='%s'></td>\\
        <td>What is the common name and species of this animal?</td>\\
        </tr></table>", tuple[field]
    Fields: {
        common: { Response: Text("Common name"),
                  Combiner: MajorityVote,
                  Normalizer: LowercaseSingleSpace },
        species: { Response: Text("Species"),
                   Combiner: MajorityVote,
                   Normalizer: LowercaseSingleSpace }
    }
"""

# A light-hearted species map for the generative example/tests.
SPECIES = {
    "ant": "formica rufa", "bee": "apis mellifera", "flower": "taraxacum officinale",
    "grasshopper": "caelifera sp", "parrot": "ara macao", "rock": "saxum inanimatum",
    "rat": "rattus norvegicus", "octopus": "octopus vulgaris",
    "skunk": "mephitis mephitis", "tazmanian devil": "sarcophilus harrisii",
    "turkey": "meleagris gallopavo", "eagle": "aquila chrysaetos",
    "lemur": "lemur catta", "hyena": "crocuta crocuta", "dog": "canis familiaris",
    "komodo dragon": "varanus komodoensis", "baboon": "papio anubis",
    "wolf": "canis lupus", "panther": "panthera pardus",
    "dolphin": "tursiops truncatus", "elephant seal": "mirounga leonina",
    "moose": "alces alces", "tiger": "panthera tigris", "camel": "camelus dromedarius",
    "great white shark": "carcharodon carcharias", "hippo": "hippopotamus amphibius",
    "whale": "balaenoptera musculus",
}


@dataclass
class AnimalsDataset:
    """Table + oracle + DSL + the true order per query."""

    table: Table
    truth: GroundTruth
    task_dsl: str
    orders: dict[str, list[str]]
    """task name → item refs in true (least → most) order."""

    @property
    def items(self) -> list[str]:
        """All item refs (size order)."""
        return list(self.orders["sizeSort"])


def _ref(name: str) -> str:
    return "img://animals/" + name.replace(" ", "-")


def animals_dataset() -> AnimalsDataset:
    """Build the 27-item animals dataset with the paper's ground truths."""
    schema = Schema.of("name text", "img url")
    table = Table("animals", schema)
    for name in SIZE_ORDER:
        table.insert({"name": name, "img": _ref(name)})

    truth = GroundTruth()
    orders: dict[str, list[str]] = {}
    order_by_task = {
        "sizeSort": SIZE_ORDER,
        "dangerSort": DANGER_ORDER,
        "saturnSort": SATURN_ORDER,
        "randomSort": SIZE_ORDER,  # latents unused; answers are random
    }
    for task, dimension, cmp_amb, rate_amb, is_random in _TASK_SPECS:
        order = order_by_task[task]
        latents = {_ref(name): float(position) for position, name in enumerate(order)}
        truth.add_rank_task(
            task,
            latents,
            comparison_ambiguity=cmp_amb,
            rating_ambiguity=rate_amb,
            random_answers=is_random,
        )
        orders[task] = [_ref(name) for name in order]

    truth.add_text_task(
        "animalInfo", "common", {_ref(name): name for name in SIZE_ORDER}
    )
    truth.add_text_task(
        "animalInfo", "species", {_ref(name): SPECIES[name] for name in SIZE_ORDER}
    )
    return AnimalsDataset(
        table=table, truth=truth, task_dsl=TASK_DSL, orders=orders
    )
