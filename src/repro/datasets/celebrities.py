"""The celebrity join dataset (§3.3.1).

Two tables — ``celeb(name, img)`` with profile photos and
``photos(id, img)`` with event photos — where photo i shows celebrity i.
Joining N corresponding rows naively takes N² comparisons with selectivity
1/N.

Feature ground truth drives the §3.3.4 findings:

* **gender** is stable and easy (κ ≈ 0.9);
* **hairColor** is genuinely ambiguous (blond vs white confusions, κ ≈
  0.3–0.45) *and* unstable across the two photos of the same person (dyed
  hair / lighting), so hair is responsible for essentially all feature-
  filtering errors;
* **skinColor** is judged much more reliably in the combined interface
  than in isolation (workers "may feel uncomfortable answering questions
  about skin color in isolation").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crowd.truth import FeatureTruth, GroundTruth
from repro.relational.expressions import UNKNOWN
from repro.relational.schema import Schema
from repro.relational.table import Table
from repro.util.rng import RandomSource

JOIN_TASK = "samePerson"
FEATURE_TASKS = ("gender", "hairColor", "skinColor")

GENDERS = ("Male", "Female")
HAIR_COLORS = ("black", "brown", "blond", "white")
SKIN_COLORS = ("light", "medium", "dark")

# Oscar-arrivals demographics: even gender split, brown hair and light skin
# dominant — which is what keeps hair/skin selectivity mild (§3.3.4).
GENDER_WEIGHTS = (0.5, 0.5)
HAIR_WEIGHTS = (0.08, 0.74, 0.13, 0.05)
SKIN_WEIGHTS = (0.85, 0.11, 0.04)

TASK_DSL = """
TASK samePerson(f1, f2) TYPE EquiJoin:
    SingularName: "celebrity"
    PluralName: "celebrities"
    LeftPreview: "<img src='%s' class=smImg>", tuple1[f1]
    LeftNormal: "<img src='%s' class=lgImg>", tuple1[f1]
    RightPreview: "<img src='%s' class=smImg>", tuple2[f2]
    RightNormal: "<img src='%s' class=lgImg>", tuple2[f2]
    Combiner: MajorityVote

TASK gender(field) TYPE Generative:
    Prompt: "<table><tr><td><img src='%s'></td>\\
        <td>What is this person's gender?</td></tr></table>", tuple[field]
    Response: Radio("Gender", ["Male", "Female", UNKNOWN])
    Combiner: MajorityVote

TASK hairColor(field) TYPE Generative:
    Prompt: "<table><tr><td><img src='%s'></td>\\
        <td>What is this person's hair color?</td></tr></table>", tuple[field]
    Response: Radio("Hair color", ["black", "brown", "blond", "white", UNKNOWN])
    Combiner: MajorityVote

TASK skinColor(field) TYPE Generative:
    Prompt: "<table><tr><td><img src='%s'></td>\\
        <td>What is this person's skin color?</td></tr></table>", tuple[field]
    Response: Radio("Skin color", ["light", "medium", "dark", UNKNOWN])
    Combiner: MajorityVote
"""


def _gender_confusion() -> dict[object, dict[object, float]]:
    table: dict[object, dict[object, float]] = {}
    for value in GENDERS:
        other = GENDERS[1 - GENDERS.index(value)]
        table[value] = {value: 0.985, other: 0.01, UNKNOWN: 0.005}
    return table


def _hair_confusion(combined: bool) -> dict[object, dict[object, float]]:
    """Hair is hard; the combined interface noticeably improves it
    (workers treat it as "a simple demographic survey", §3.3.4)."""
    if combined:
        return {
            "black": {"black": 0.90, "brown": 0.06, UNKNOWN: 0.04},
            "brown": {"brown": 0.86, "black": 0.07, "blond": 0.03, UNKNOWN: 0.04},
            "blond": {"blond": 0.76, "white": 0.17, UNKNOWN: 0.07},
            "white": {"white": 0.70, "blond": 0.22, UNKNOWN: 0.08},
        }
    return {
        "black": {"black": 0.82, "brown": 0.11, UNKNOWN: 0.07},
        "brown": {"brown": 0.74, "black": 0.11, "blond": 0.07, UNKNOWN: 0.08},
        "blond": {"blond": 0.56, "white": 0.28, "brown": 0.06, UNKNOWN: 0.10},
        "white": {"white": 0.54, "blond": 0.33, UNKNOWN: 0.13},
    }


def _skin_confusion(combined: bool) -> dict[object, dict[object, float]]:
    """Skin agreement is much higher in the combined interface."""
    if combined:
        return {
            "light": {"light": 0.96, "medium": 0.02, UNKNOWN: 0.02},
            "medium": {"medium": 0.90, "light": 0.05, "dark": 0.03, UNKNOWN: 0.02},
            "dark": {"dark": 0.94, "medium": 0.04, UNKNOWN: 0.02},
        }
    return {
        "light": {"light": 0.82, "medium": 0.08, UNKNOWN: 0.10},
        "medium": {"medium": 0.68, "light": 0.14, "dark": 0.08, UNKNOWN: 0.10},
        "dark": {"dark": 0.76, "medium": 0.12, UNKNOWN: 0.12},
    }


@dataclass
class CelebrityDataset:
    """Both tables + oracle + DSL + per-item attribute truth."""

    celebs: Table
    photos: Table
    truth: GroundTruth
    task_dsl: str
    matches: list[tuple[str, str]]
    """(celeb img ref, photo img ref) true pairs."""

    attributes: dict[str, dict[str, object]]
    """item ref → {gender, hairColor, skinColor} true values."""

    @property
    def celeb_refs(self) -> list[str]:
        """Celebrity-table image refs, in row order."""
        return [str(row["img"]) for row in self.celebs]

    @property
    def photo_refs(self) -> list[str]:
        """Photo-table image refs, in row order."""
        return [str(row["img"]) for row in self.photos]


def celebrity_dataset(
    n: int = 30, seed: int = 0, hair_instability: float = 0.12
) -> CelebrityDataset:
    """Build an N-celebrity join dataset.

    ``hair_instability`` is the probability a celebrity's *true* hair color
    differs between their profile photo and event photo (dye, lighting) —
    the root cause of the paper's feature-filtering errors.
    """
    rng = RandomSource(seed).child("celebrities")
    celebs = Table("celeb", Schema.of("name text", "img url"))
    photos = Table("photos", Schema.of("id integer", "img url"))
    truth = GroundTruth()

    matches: list[tuple[str, str]] = []
    attributes: dict[str, dict[str, object]] = {}
    gender_values: dict[str, object] = {}
    hair_values: dict[str, object] = {}
    skin_values: dict[str, object] = {}

    for i in range(n):
        celeb_ref = f"img://celeb/{i}"
        photo_ref = f"img://photo/{i}"
        celebs.insert({"name": f"celebrity-{i}", "img": celeb_ref})
        photos.insert({"id": i, "img": photo_ref})
        matches.append((celeb_ref, photo_ref))

        gender = GENDERS[rng.weighted_index(GENDER_WEIGHTS)]
        hair = HAIR_COLORS[rng.weighted_index(HAIR_WEIGHTS)]
        skin = SKIN_COLORS[rng.weighted_index(SKIN_WEIGHTS)]
        photo_hair = hair
        if rng.chance(hair_instability):
            alternatives = [color for color in HAIR_COLORS if color != hair]
            photo_hair = rng.choice(alternatives)

        for ref, hair_value in ((celeb_ref, hair), (photo_ref, photo_hair)):
            gender_values[ref] = gender
            hair_values[ref] = hair_value
            skin_values[ref] = skin
            attributes[ref] = {
                "gender": gender,
                "hairColor": hair_value,
                "skinColor": skin,
            }

    truth.add_join_task(JOIN_TASK, set(matches))
    truth.add_feature_task(
        "gender",
        "value",
        FeatureTruth(
            values=gender_values,
            options=(*GENDERS, UNKNOWN),
            confusion=_gender_confusion(),
            confusion_combined=_gender_confusion(),
        ),
    )
    truth.add_feature_task(
        "hairColor",
        "value",
        FeatureTruth(
            values=hair_values,
            options=(*HAIR_COLORS, UNKNOWN),
            confusion=_hair_confusion(combined=False),
            confusion_combined=_hair_confusion(combined=True),
        ),
    )
    truth.add_feature_task(
        "skinColor",
        "value",
        FeatureTruth(
            values=skin_values,
            options=(*SKIN_COLORS, UNKNOWN),
            confusion=_skin_confusion(combined=False),
            confusion_combined=_skin_confusion(combined=True),
        ),
    )
    return CelebrityDataset(
        celebs=celebs,
        photos=photos,
        truth=truth,
        task_dsl=TASK_DSL,
        matches=matches,
        attributes=attributes,
    )
