"""The end-to-end movie dataset (§5).

"The dataset was created by extracting 211 stills at one second intervals
from a three-minute movie; actor profile photos came from the Web."

Cardinalities are tuned to reproduce Table 5's HIT arithmetic:

* 211 scene stills, 5 actors;
* the ``numInScene`` feature passes 117 scenes (selectivity ≈ 55%);
* 55 scenes truly match an actor (main focus), skewed [30, 12, 7, 4, 2]
  across actors — the frame counts that drive the ORDER BY HIT totals;
* scene ``quality`` is highly subjective (Rate ≈ Compare, §5.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crowd.truth import FeatureTruth, GroundTruth
from repro.relational.expressions import UNKNOWN
from repro.relational.schema import Schema
from repro.relational.table import Table
from repro.util.rng import RandomSource

JOIN_TASK = "inScene"
FILTER_TASK = "numInScene"
SORT_TASK = "quality"

SCENE_COUNT = 211
ACTOR_COUNT = 5
SINGLE_PERSON_SCENES = 117
MATCHES_PER_ACTOR = (30, 12, 7, 4, 2)

TASK_DSL = """
TASK numInScene(field) TYPE Generative:
    Prompt: "<table><tr><td><img src='%s'></td>\\
        <td>How many people are in this scene?</td></tr></table>", tuple[field]
    Response: Radio("Number of people", [0, 1, 2, 3, UNKNOWN])
    Combiner: MajorityVote

TASK inScene(f1, f2) TYPE EquiJoin:
    SingularName: "actor"
    PluralName: "actors"
    LeftPreview: "<img src='%s' class=smImg>", tuple1[f1]
    LeftNormal: "<img src='%s' class=lgImg>", tuple1[f1]
    RightPreview: "<img src='%s' class=smImg>", tuple2[f2]
    RightNormal: "<img src='%s' class=lgImg>", tuple2[f2]
    Combiner: MajorityVote

TASK quality(field) TYPE Rank:
    SingularName: "scene"
    PluralName: "scenes"
    OrderDimensionName: "how flattering the scene is"
    LeastName: "least flattering"
    MostName: "most flattering"
    Html: "<img src='%s' class=lgImg>", tuple[field]
"""

QUALITY_COMPARISON_AMBIGUITY = 4.0
QUALITY_RATING_AMBIGUITY = 4.2
"""'the scene quality operator had high variance and was quite subjective;
in such cases Rate works just as well as Compare' (§5.2)."""


@dataclass
class MovieDataset:
    """Both tables + oracle + DSL + the ground-truth assignment."""

    actors: Table
    scenes: Table
    truth: GroundTruth
    task_dsl: str
    matches: list[tuple[str, str]]
    """(actor ref, scene ref) pairs where the actor is the scene's focus."""

    num_in_scene: dict[str, int]
    """scene ref → true number of people."""

    @property
    def actor_refs(self) -> list[str]:
        """Actor image refs in row order."""
        return [str(row["img"]) for row in self.actors]

    @property
    def scene_refs(self) -> list[str]:
        """Scene image refs in row order."""
        return [str(row["img"]) for row in self.scenes]

    @property
    def single_person_scenes(self) -> list[str]:
        """Scene refs with exactly one person (the feature-filter survivors)."""
        return [ref for ref, count in self.num_in_scene.items() if count == 1]


def movie_dataset(seed: int = 0, scale: int = 1) -> MovieDataset:
    """Build the 211-scene, 5-actor end-to-end dataset.

    ``scale`` multiplies the scene-side cardinalities (scene count,
    single-person scenes, matches per actor) for scaled-up performance
    runs; ``scale=1`` reproduces the paper's Table 5 dataset exactly,
    including the RNG stream consumed while building it.
    """
    if scale < 1:
        raise ValueError(f"scale must be >= 1, got {scale}")
    scene_count = SCENE_COUNT * scale
    single_person_scenes = SINGLE_PERSON_SCENES * scale
    matches_per_actor = tuple(count * scale for count in MATCHES_PER_ACTOR)
    rng = RandomSource(seed).child("movie")
    actors = Table("actors", Schema.of("name text", "img url"))
    scenes = Table("scenes", Schema.of("id integer", "img url"))
    truth = GroundTruth()

    actor_refs = []
    for i in range(ACTOR_COUNT):
        ref = f"img://actor/{i}"
        actors.insert({"name": f"actor-{i}", "img": ref})
        actor_refs.append(ref)

    # Assign people counts: 117·scale single-person scenes, the rest 0/2/3.
    scene_refs = [f"img://scene/{i:03d}" for i in range(scene_count)]
    num_in_scene: dict[str, int] = {}
    multi_counts = [0, 2, 3]
    for index, ref in enumerate(scene_refs):
        if index < single_person_scenes:
            num_in_scene[ref] = 1
        else:
            num_in_scene[ref] = multi_counts[index % len(multi_counts)]
    # Shuffle so single-person scenes are not a prefix of the movie.
    shuffled = rng.shuffled(scene_refs)
    num_in_scene = {ref: num_in_scene[scene_refs[i]] for i, ref in enumerate(shuffled)}
    scene_refs = shuffled
    for index, ref in enumerate(sorted(scene_refs)):
        scenes.insert({"id": index, "img": ref})

    # Among single-person scenes, assign the skewed actor matches.
    singles = [ref for ref in scene_refs if num_in_scene[ref] == 1]
    matches: list[tuple[str, str]] = []
    cursor = 0
    for actor_index, count in enumerate(matches_per_actor):
        for _ in range(count):
            matches.append((actor_refs[actor_index], singles[cursor]))
            cursor += 1
    # Remaining single-person scenes show non-principal people: no match.

    truth.add_join_task(JOIN_TASK, set(matches))
    truth.add_feature_task(
        FILTER_TASK,
        "value",
        FeatureTruth(
            values=dict(num_in_scene),
            options=(0, 1, 2, 3, UNKNOWN),
            # 'The numInScene task was very accurate' (§5.2).
            confusion={
                0: {0: 0.97, 1: 0.03},
                1: {1: 0.96, 2: 0.03, 0: 0.01},
                2: {2: 0.92, 1: 0.04, 3: 0.04},
                3: {3: 0.93, 2: 0.07},
            },
        ),
    )
    quality_latents = {ref: rng.random() for ref in scene_refs}
    truth.add_rank_task(
        SORT_TASK,
        quality_latents,
        comparison_ambiguity=QUALITY_COMPARISON_AMBIGUITY,
        rating_ambiguity=QUALITY_RATING_AMBIGUITY,
    )
    return MovieDataset(
        actors=actors,
        scenes=scenes,
        truth=truth,
        task_dsl=TASK_DSL,
        matches=matches,
        num_in_scene=num_in_scene,
    )
