"""Datasets reproducing the paper's four workloads.

Each builder returns tables, a ground-truth oracle for the simulated crowd,
the TASK DSL defining the crowd UDFs, and the metadata experiments need
(true orders, match sets, expected counts). Where the paper used real images
(IMDB headshots, Oscar photos, movie stills) we use synthetic entities with
latent attributes — see docs/ARCHITECTURE.md ("the virtual-clock
determinism substitution") for why each substitution preserves the
measured behaviour.
"""

from repro.datasets.animals import ANIMAL_QUERIES, AnimalsDataset, animals_dataset
from repro.datasets.celebrities import CelebrityDataset, celebrity_dataset
from repro.datasets.movie import MovieDataset, movie_dataset
from repro.datasets.squares import SquaresDataset, squares_dataset

__all__ = [
    "ANIMAL_QUERIES",
    "AnimalsDataset",
    "CelebrityDataset",
    "MovieDataset",
    "SquaresDataset",
    "animals_dataset",
    "celebrity_dataset",
    "movie_dataset",
    "squares_dataset",
]
