"""The Qurk engine facade: register data and tasks, run queries.

Typical use::

    market = SimulatedMarketplace(truth, seed=1)
    q = Qurk(platform=market)
    q.register_table(celebs)
    q.register_table(photos)
    q.define(SAME_PERSON_TASK_DSL)
    result = q.execute("SELECT c.name FROM celeb c JOIN photos p "
                       "ON samePerson(c.img, p.img)")
    result.rows, result.total_cost, result.hit_count, result.explain()
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.core.adaptive import SelectivityBook, build_state, preflight
from repro.core.context import ExecutionConfig, OperatorStats, QueryContext
from repro.core.executor import run_plan
from repro.core.explain import plan_task_labels, render_explain
from repro.core.optimizer import optimize
from repro.core.plan import PlanNode
from repro.core.planner import build_plan
from repro.errors import BudgetExceededError, MarketplaceError, PlanError
from repro.hits.cache import TaskCache
from repro.hits.manager import CrowdPlatform, TaskManager
from repro.hits.pricing import CostLedger
from repro.hits.resilience import build_resilience
from repro.hits.store import PersistentAnswerStore, StoreSpec, open_store
from repro.language.ast import SelectQuery, TaskDefinition
from repro.language.parser import parse_statements
from repro.relational.catalog import Catalog
from repro.relational.rows import Row
from repro.relational.table import Table
from repro.sorting.topk import pick_extreme_order
from repro.tasks.base import task_from_definition
from repro.tasks.registry import ROLE_RANK, task_role
from repro.util import adapt as adapt_toggle
from repro.util import fastpath
from repro.util import pipeline as pipeline_toggle
from repro.util import resilience as resilience_toggle
from repro.util import sortscale as sortscale_toggle
from repro.util import store as store_toggle
from repro.util import vector as vector_toggle


_STORE_COUNTERS = (
    "hits",
    "misses",
    "persistent_hits",
    "assignments_reused",
    "evictions_ttl",
    "evictions_budget",
)
"""Persistent-store counters snapshotted per query for the store summary."""


def resolve_store(
    spec: StoreSpec | None, cache: object | None
) -> PersistentAnswerStore | None:
    """The one store-attachment policy the engine and session share.

    Returns the opened store to use as the task cache, or ``None`` when
    nothing should be attached. With ``REPRO_STORE=0`` a configured store
    is ignored *entirely* — not even the file is opened — so the facade
    behaves bit-identically to one constructed without a store. A store
    and an explicit cache are mutually exclusive (the store *is* the
    cache).
    """
    if spec is None:
        return None
    if cache is not None:
        raise PlanError(
            "pass either cache= or store=, not both: a persistent store "
            "serves as the task cache"
        )
    if not store_toggle.enabled():
        return None
    return open_store(spec)


def store_counters(store: PersistentAnswerStore) -> dict[str, int]:
    """Counter snapshot used for per-query store-summary deltas."""
    return {name: getattr(store, name) for name in _STORE_COUNTERS}


def store_summary_delta(
    store: PersistentAnswerStore,
    before: dict[str, int],
    pricing,
) -> dict[str, object]:
    """Per-query (or per-session-run) store summary from a counter delta.

    ``cost_saved`` prices the assignments served from *disk* — the dollars
    a fresh process did not re-spend thanks to persistence. In-process
    memory-layer hits are the plain task cache's win and are reported as
    plain ``hits``.
    """
    delta = {
        name: getattr(store, name) - before[name] for name in _STORE_COUNTERS
    }
    summary: dict[str, object] = dict(delta)
    summary["cost_saved"] = pricing.cost(delta["assignments_reused"])
    summary["rows"] = store.row_count()
    if store.rebuilds:
        summary["rebuilds"] = store.rebuilds
    if store.degraded:
        summary["degraded"] = True
    return summary


def register_task_definitions(
    catalog: Catalog, dsl_text: str, replace: bool = False
) -> list[str]:
    """Parse TASK definitions into a catalog; returns the task names.

    The body of ``define()`` on both the engine and session facades.
    """
    names: list[str] = []
    for statement in parse_statements(dsl_text):
        if not isinstance(statement, TaskDefinition):
            raise PlanError(
                "define() accepts TASK definitions; execute queries separately"
            )
        task = task_from_definition(statement)
        catalog.register_task(task, replace=replace)
        names.append(task.name)
    return names


def parse_single_select(query: str | SelectQuery, catalog: Catalog) -> SelectQuery:
    """Parse query text to exactly one SELECT, registering any TASK
    definitions that ride along in the same text into ``catalog``.

    Shared by the engine and session facades so their query-text handling
    cannot drift apart.
    """
    if isinstance(query, SelectQuery):
        return query
    statements = parse_statements(query)
    queries = [s for s in statements if isinstance(s, SelectQuery)]
    for statement in statements:
        if isinstance(statement, TaskDefinition):
            catalog.register_task(task_from_definition(statement), replace=True)
    if len(queries) != 1:
        raise PlanError(f"expected exactly one SELECT, found {len(queries)}")
    return queries[0]


_FAULT_COUNTERS = (
    "abandoned_assignments",
    "expired_slots",
    "spam_assignments",
    "straggler_assignments",
    "transient_errors",
)
"""Marketplace fault-injection counters snapshotted per query for the
degradation summary."""


@dataclass(frozen=True)
class MarketplaceSnapshot:
    """Per-query delta of the platform's marketplace counters.

    A snapshot rather than the live stats object so that a
    :class:`QueryResult`'s EXPLAIN footer describes *this* query, like the
    sibling cost/clock fields, instead of mutating as later queries run.
    """

    considerations: int = 0
    refusals: int = 0
    assignments_completed: int = 0

    @property
    def considerations_per_assignment(self) -> float:
        """See :meth:`MarketplaceStats.considerations_per_assignment`."""
        if self.assignments_completed == 0:
            return 0.0
        return self.considerations / self.assignments_completed


@dataclass
class QueryResult:
    """Rows plus the execution economics and diagnostics."""

    rows: list[Row]
    plan: PlanNode
    hit_count: int = 0
    assignment_count: int = 0
    total_cost: float = 0.0
    elapsed_seconds: float = 0.0
    node_stats: dict[int, OperatorStats] = field(default_factory=dict)
    marketplace_stats: MarketplaceSnapshot | None = None
    """This query's marketplace-counter deltas, when the platform exposes
    stats (the simulated marketplace does)."""
    pipeline_summary: dict[str, float] | None = None
    """Whole-query overlap telemetry when the pipelined executor ran
    (stages, groups, peak outstanding, makespan vs serial latency)."""
    adaptive_summary: dict[str, object] | None = None
    """Re-plan telemetry when the adaptive optimizer ran: replan/round
    counts, predicted vs. actual HITs and dollars, and the event log;
    None under ``REPRO_ADAPT=0``."""
    degradation_summary: dict[str, object] | None = None
    """What the resilience layer did for this query (transient retries,
    reposts, recovered/unfilled slots, degraded operators, injected-fault
    counts, and ``aborted`` when the query was cut short and completed
    with partial rows); None when the layer was inert — toggle off or a
    fault-free platform."""
    store_summary: dict[str, object] | None = None
    """Persistent-answer-store traffic for this query (hits/misses, the
    disk hits and assignments a fresh process reused, eviction counts, and
    the dollars persistence saved); None when no store is attached
    (including under ``REPRO_STORE=0``)."""
    task_labels: dict[str, str] | None = None
    """task name → registry EXPLAIN label for the crowd tasks this query
    used (each task type's declared ``explain_label``)."""

    def __len__(self) -> int:
        return len(self.rows)

    def column(self, name: str) -> list[object]:
        """One output column's values in row order."""
        return [row[name] for row in self.rows]

    def as_dicts(self) -> list[dict[str, object]]:
        """Rows as plain dicts."""
        return [row.as_dict() for row in self.rows]

    def explain(self) -> str:
        """EXPLAIN-style tree with per-operator quality signals (§6)."""
        return render_explain(
            self.plan,
            self.node_stats,
            marketplace_stats=self.marketplace_stats,
            pipeline_summary=self.pipeline_summary,
            adaptive_summary=self.adaptive_summary,
            degradation_summary=self.degradation_summary,
            store_summary=self.store_summary,
            task_labels=self.task_labels,
        )


class Qurk:
    """A crowd-powered declarative query engine (the paper's system)."""

    def __init__(
        self,
        platform: CrowdPlatform,
        config: ExecutionConfig | None = None,
        catalog: Catalog | None = None,
        ledger: CostLedger | None = None,
        cache: TaskCache | None = None,
        store: StoreSpec | None = None,
    ) -> None:
        # Honour REPRO_* environment changes made after import (the
        # toggles' import-time capture used to swallow them silently).
        pipeline_toggle.refresh_from_env()
        fastpath.refresh_from_env()
        adapt_toggle.refresh_from_env()
        sortscale_toggle.refresh_from_env()
        resilience_toggle.refresh_from_env()
        store_toggle.refresh_from_env()
        vector_toggle.refresh_from_env()
        self.platform = platform
        self.config = config or ExecutionConfig()
        self.catalog = catalog or Catalog()
        self.ledger = ledger or CostLedger()
        self.store = resolve_store(store, cache)
        """The attached persistent answer store (``None`` when no ``store=``
        was configured or ``REPRO_STORE=0`` ignored it)."""
        # Explicit None test: an *empty* store is falsy (len() == 0) but
        # must still be attached.
        self.manager = TaskManager(
            platform,
            ledger=self.ledger,
            cache=self.store if self.store is not None else cache,
        )
        self.book = SelectivityBook()
        """The engine's online selectivity estimates, shared across its
        (serial) queries: a repeated workload's later queries start from
        the pass rates the earlier ones observed."""

    def session(
        self,
        cache: TaskCache | None = None,
        store: StoreSpec | None = None,
    ) -> "EngineSession":
        """A multi-query session over this engine's platform and catalog.

        The session shares the engine's catalog (tables/tasks registered
        here are visible to session queries) and default config, but keeps
        its own per-query ledgers; pass a :class:`TaskCache` to seed the
        session's shared cross-query cache, or a store spec to persist it.
        An engine constructed with ``store=`` hands its (already opened)
        store to sessions by default, so session queries reuse — and feed
        — the same cross-run answers. See
        :class:`repro.core.session.EngineSession`.
        """
        from repro.core.session import EngineSession

        if store is None and cache is None:
            store = self.store
        return EngineSession(
            self.platform,
            config=self.config,
            catalog=self.catalog,
            cache=cache,
            store=store,
        )

    # -- registration ------------------------------------------------------

    def register_table(self, table: Table, replace: bool = False) -> None:
        """Make a table queryable."""
        self.catalog.register_table(table, replace=replace)

    def register_function(
        self, name: str, fn: Callable[..., object], replace: bool = False
    ) -> None:
        """Register a computer-evaluable scalar function."""
        self.catalog.register_function(name, fn, replace=replace)

    def define(self, dsl_text: str, replace: bool = False) -> list[str]:
        """Parse and register TASK definitions; returns the task names."""
        return register_task_definitions(self.catalog, dsl_text, replace=replace)

    # -- execution ---------------------------------------------------------

    def plan(self, query: str | SelectQuery) -> PlanNode:
        """Parse, plan, and optimize a query without running it.

        Reflects the adaptive optimizer's plan-time decisions (crowd
        conjunct fusion) under the engine's default config; the throwaway
        state shares the engine's selectivity book but records nothing.
        """
        return self._optimized(query, build_state(self.config, book=self.book))

    def _optimized(self, query: str | SelectQuery, state) -> PlanNode:
        """The one plan-construction pipeline ``plan`` and ``execute`` share."""
        return optimize(
            build_plan(self._parse(query), self.catalog), adapt=state
        )

    def execute(
        self, query: str | SelectQuery, config: ExecutionConfig | None = None
    ) -> QueryResult:
        """Run a query against the crowd platform."""
        effective = config or self.config
        state = build_state(effective, book=self.book)
        plan = self._optimized(query, state)
        if state is not None:
            preflight(state, plan, self.catalog, effective, self.ledger.pricing)
        res_state = build_resilience(effective, self.platform)
        self.manager.resilience = res_state
        ctx = QueryContext(
            catalog=self.catalog,
            manager=self.manager,
            config=effective,
            adapt=state,
        )
        hits_before = self.ledger.total_hits
        assignments_before = self.ledger.total_assignments
        cost_before = self.ledger.total_cost
        clock_before = self.platform.clock_seconds
        store_before = (
            store_counters(self.store) if self.store is not None else None
        )
        live_stats = getattr(self.platform, "stats", None)
        if live_stats is not None:
            considerations_before = getattr(live_stats, "considerations", 0)
            refusals_before = getattr(live_stats, "refusals", 0)
            completed_before = getattr(live_stats, "assignments_completed", 0)
            faults_before = {
                name: getattr(live_stats, name, 0) for name in _FAULT_COUNTERS
            }
        try:
            rows = run_plan(plan, ctx)
        except (BudgetExceededError, MarketplaceError) as exc:
            # Graceful query-level degradation: with the resilience layer
            # armed, a budget/platform failure completes the query with
            # whatever rows were produced (none, for the all-or-nothing
            # depth-first interpreter) instead of raising; the summary says
            # why. Without it, today's strict raise is preserved.
            if res_state is None:
                raise
            res_state.aborted = f"{type(exc).__name__}: {exc}"
            rows = []
        degradation = None
        if res_state is not None:
            degradation = res_state.summary.as_dict()
            if live_stats is not None:
                for name in _FAULT_COUNTERS:
                    degradation[name] = (
                        getattr(live_stats, name, 0) - faults_before[name]
                    )
            if res_state.aborted is not None:
                degradation["aborted"] = res_state.aborted
        snapshot = None
        if live_stats is not None:
            snapshot = MarketplaceSnapshot(
                considerations=getattr(live_stats, "considerations", 0)
                - considerations_before,
                refusals=getattr(live_stats, "refusals", 0) - refusals_before,
                assignments_completed=getattr(live_stats, "assignments_completed", 0)
                - completed_before,
            )
        return QueryResult(
            rows=rows,
            plan=plan,
            hit_count=self.ledger.total_hits - hits_before,
            assignment_count=self.ledger.total_assignments - assignments_before,
            total_cost=self.ledger.total_cost - cost_before,
            elapsed_seconds=self.platform.clock_seconds - clock_before,
            node_stats=ctx.node_stats,
            marketplace_stats=snapshot,
            pipeline_summary=ctx.pipeline_summary,
            adaptive_summary=state.summary(
                actual_hits=self.ledger.total_hits - hits_before,
                actual_cost=self.ledger.total_cost - cost_before,
            )
            if state is not None
            else None,
            degradation_summary=degradation,
            store_summary=store_summary_delta(
                self.store, store_before, self.ledger.pricing
            )
            if self.store is not None and store_before is not None
            else None,
            task_labels=plan_task_labels(plan, self.catalog),
        )

    def explain(self, query: str | SelectQuery) -> str:
        """The optimized plan tree without executing (no stats)."""
        plan = self.plan(query)
        return render_explain(
            plan, {}, task_labels=plan_task_labels(plan, self.catalog)
        )

    def _parse(self, query: str | SelectQuery) -> SelectQuery:
        return parse_single_select(query, self.catalog)

    # -- aggregates ----------------------------------------------------------

    def extreme(
        self,
        task_name: str,
        items: Sequence[str],
        most: bool = True,
        batch_size: int = 5,
        assignments: int | None = None,
    ) -> tuple[str, int]:
        """MAX/MIN via the best-of-batch tournament interface (§2.3).

        Returns (winning item ref, HITs spent).
        """
        from repro.core.sort_exec import pick_best_payload, tally_pick_votes

        task = self.catalog.task(task_name)
        if task_role(task) != ROLE_RANK:
            raise PlanError(f"extreme() needs a Rank task, got {type(task).__name__}")
        votes_requested = assignments or self.config.assignments

        def pick(batch: Sequence[str]) -> str:
            payload = pick_best_payload(task, batch, most)
            outcome = self.manager.run_units(
                [[payload]],
                batch_size=1,
                assignments=votes_requested,
                label="aggregate:extreme",
            )
            return tally_pick_votes(payload, outcome.votes.get(payload.qid(), []))

        return pick_extreme_order(items, pick, batch_size=batch_size)
