"""The Qurk query engine: plans, operators, executors, and facade.

The public entry point is :class:`~repro.core.engine.Qurk`: register tables,
define tasks in the TASK DSL, and execute SELECT queries whose filters,
joins, and sorts run on a crowd platform. Execution is handled by the
event-driven pipelined scheduler (:mod:`repro.core.scheduler`, default) or
the depth-first interpreter (:mod:`repro.core.executor`,
``REPRO_PIPELINE=0``) — identical results, different latency. Plans pass
the static rewriter plus, by default, the cost-based adaptive re-optimizer
(:mod:`repro.core.adaptive`, ``REPRO_ADAPT=0`` to disable); see
docs/ARCHITECTURE.md.
"""

from repro.core.adaptive import AdaptiveState, ReplanEvent, SelectivityBook
from repro.core.batch_tuner import BatchTuner, ProbeResult
from repro.core.budget import BudgetPlan, PreflightReport, allocate_budget, plan_preflight
from repro.core.context import ExecutionConfig, PipelineStats, QueryContext
from repro.core.cost_model import (
    OperatorCost,
    PlanCostEstimate,
    estimate_plan_cost,
    operator_estimates,
)
from repro.core.engine import QueryResult, Qurk
from repro.core.session import EngineSession, SessionQuery, SessionResult, SessionStats
from repro.core.plan import (
    AdaptiveFilterNode,
    ComputedFilterNode,
    CrowdPredicateNode,
    JoinNode,
    LimitNode,
    PlanNode,
    ProjectNode,
    ScanNode,
    SortNode,
)
from repro.core.planner import build_plan
from repro.core.optimizer import optimize

__all__ = [
    "AdaptiveFilterNode",
    "AdaptiveState",
    "BatchTuner",
    "BudgetPlan",
    "ComputedFilterNode",
    "CrowdPredicateNode",
    "EngineSession",
    "ExecutionConfig",
    "JoinNode",
    "LimitNode",
    "OperatorCost",
    "PipelineStats",
    "PlanCostEstimate",
    "PlanNode",
    "PreflightReport",
    "ProbeResult",
    "ProjectNode",
    "QueryContext",
    "QueryResult",
    "Qurk",
    "ReplanEvent",
    "ScanNode",
    "SelectivityBook",
    "SessionQuery",
    "SessionResult",
    "SessionStats",
    "SortNode",
    "allocate_budget",
    "build_plan",
    "estimate_plan_cost",
    "operator_estimates",
    "optimize",
    "plan_preflight",
]
