"""The Qurk query engine: plans, operators, executors, and facade.

The public entry point is :class:`~repro.core.engine.Qurk`: register tables,
define tasks in the TASK DSL, and execute SELECT queries whose filters,
joins, and sorts run on a crowd platform. Execution is handled by the
event-driven pipelined scheduler (:mod:`repro.core.scheduler`, default) or
the depth-first interpreter (:mod:`repro.core.executor`,
``REPRO_PIPELINE=0``) — identical results, different latency; see
docs/ARCHITECTURE.md.
"""

from repro.core.batch_tuner import BatchTuner, ProbeResult
from repro.core.budget import BudgetPlan, allocate_budget
from repro.core.context import ExecutionConfig, PipelineStats, QueryContext
from repro.core.engine import QueryResult, Qurk
from repro.core.session import EngineSession, SessionQuery, SessionResult, SessionStats
from repro.core.plan import (
    ComputedFilterNode,
    CrowdPredicateNode,
    JoinNode,
    LimitNode,
    PlanNode,
    ProjectNode,
    ScanNode,
    SortNode,
)
from repro.core.planner import build_plan
from repro.core.optimizer import optimize

__all__ = [
    "BatchTuner",
    "BudgetPlan",
    "ComputedFilterNode",
    "CrowdPredicateNode",
    "EngineSession",
    "ExecutionConfig",
    "JoinNode",
    "LimitNode",
    "PipelineStats",
    "PlanNode",
    "ProbeResult",
    "ProjectNode",
    "QueryContext",
    "QueryResult",
    "Qurk",
    "ScanNode",
    "SessionQuery",
    "SessionResult",
    "SessionStats",
    "SortNode",
    "allocate_budget",
    "build_plan",
    "optimize",
]
