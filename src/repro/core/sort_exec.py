"""Crowd sort execution (§4): Compare, Rate, and Hybrid.

ORDER BY clauses mix plain expressions with at most one Rank-task UDF: rows
first group by the plain prefix (e.g. ``ORDER BY name, quality(img)`` sorts
scenes per actor), then each group's distinct items are ordered by the
crowd using the configured method.

The per-group Compare/Rate sorts are independent of one another, so their
HIT batches are *begun* for every group before any group's votes are
collected: under the pipelined executor the groups' postings share one
virtual interval (five per-actor Rate batches finish in the time of the
slowest one, §2.6), while against the blocking manager each begin resolves
at posting time and the execution is the serial group-by-group loop,
draw-for-draw. Hybrid sorting stays serial per group — its comparison
windows are chosen from the evolving order, an inherently sequential
repair loop.
"""

from __future__ import annotations

from collections import Counter
from typing import TYPE_CHECKING, Mapping, Sequence

from repro.core.context import QueryContext
from repro.core.crowd_calls import call_item_ref, evaluate_arg
from repro.core.plan import SortNode
from repro.errors import PlanError
from repro.hits.hit import (
    CompareGroup,
    ComparePayload,
    Payload,
    PickBestPayload,
    RatePayload,
    RateQuestion,
)
from repro.hits.manager import collect_pending
from repro.language.ast import OrderItem
from repro.metrics.agreement import comparison_kappa
from repro.relational.expressions import UDFCall
from repro.relational.rows import Row
from repro.sorting.groups import covering_groups
from repro.sorting.head_to_head import head_to_head_order, pair_winners_from_votes
from repro.sorting.hybrid import (
    ConfidenceStrategy,
    HybridSorter,
    RandomStrategy,
    SlidingWindowStrategy,
    WindowStrategy,
)
from repro.sorting.rating import RatingSummary, order_by_rating, summarize_ratings
from repro.sorting.topk import tournament_top_k
from repro.tasks.registry import ROLE_RANK, task_role
from repro.util import sortscale
from repro.util.rng import RandomSource

if TYPE_CHECKING:  # pragma: no cover
    from repro.tasks.rank import RankTask


def execute_sort(node: SortNode, rows: Sequence[Row], ctx: QueryContext) -> list[Row]:
    """Order rows per the ORDER BY items."""
    stats = ctx.stats_for(node)
    stats.rows_in = len(rows)
    env = ctx.catalog.functions()

    plain_items: list[OrderItem] = []
    crowd_item: OrderItem | None = None
    for item in node.order_items:
        calls = [
            call for call in item.expr.udf_calls() if not ctx.catalog.has_function(call.name)
        ]
        if not calls:
            if crowd_item is not None:
                raise PlanError(
                    "plain ORDER BY expressions must precede the Rank UDF"
                )
            plain_items.append(item)
        else:
            if crowd_item is not None:
                raise PlanError("at most one Rank UDF per ORDER BY is supported")
            if not isinstance(item.expr, UDFCall):
                raise PlanError(
                    f"crowd ORDER BY item must be a bare Rank call, got {item.expr}"
                )
            crowd_item = item

    working = list(rows)
    if crowd_item is None:
        keyed = [
            (_plain_key(row, plain_items, env), index, row)
            for index, row in enumerate(working)
        ]
        keyed.sort(key=lambda triple: (triple[0], triple[1]))
        ordered = [row for _, _, row in keyed]
        stats.rows_out = len(ordered)
        return ordered

    call = crowd_item.expr
    assert isinstance(call, UDFCall)
    task = ctx.catalog.task(call.name)
    if task_role(task) != ROLE_RANK:
        raise PlanError(f"ORDER BY task {call.name!r} must be a Rank task")

    # Group rows by the plain prefix, then crowd-sort within each group.
    groups: dict[tuple, list[Row]] = {}
    group_order: list[tuple] = []
    for row in working:
        key = _plain_key(row, plain_items, env)
        if key not in groups:
            groups[key] = []
            group_order.append(key)
        groups[key].append(row)
    group_order.sort()

    # LIMIT-aware fast path: a single-group Compare sort capped by a
    # row-preserving LIMIT k only ever surfaces its leading k items, so a
    # tournament extracts them directly instead of covering every pair.
    if (
        not plain_items
        and len(group_order) == 1
        and _limit_tournament_applies(node, ctx)
    ):
        ref_map = {}
        for row in groups[group_order[0]]:
            ref = call_item_ref(call, row, env)
            ref_map.setdefault(ref, []).append(row)
        refs = list(ref_map)
        k = node.limit_hint
        assert k is not None
        if 1 <= k < len(refs):
            leading = limit_tournament_refs(
                task, refs, k, ctx, node, most=not crowd_item.ascending
            )
            ordered_rows = []
            for ref in leading:
                ordered_rows.extend(ref_map[ref])
            stats.rows_out = len(ordered_rows)
            return ordered_rows

    # Phase 1: post every group's sort HITs (begin); phase 2: harvest in
    # virtual-finish order; phase 3: combine per group. Hybrid groups (and
    # trivial ones) carry no pending work and sort inline in phase 3.
    group_sorts: list[tuple[tuple, dict[str, list[Row]], _PendingGroupSort | None]] = []
    for key in group_order:
        group_rows = groups[key]
        ref_map: dict[str, list[Row]] = {}
        for row in group_rows:
            ref = call_item_ref(call, row, env)
            ref_map.setdefault(ref, []).append(row)
        refs = list(ref_map)
        pending: _PendingGroupSort | None = None
        if len(refs) >= 2 and ctx.config.sort_method == "compare":
            pending = begin_compare_sort(task, refs, ctx)
        elif len(refs) >= 2 and ctx.config.sort_method == "rate":
            pending = begin_rate_sort(task, refs, ctx)
        group_sorts.append((key, ref_map, pending))
    collect_pending(
        [plan.batch for _, _, plan in group_sorts if plan is not None]
    )

    ordered_rows: list[Row] = []
    for key, ref_map, pending in group_sorts:
        if pending is not None:
            ordered_refs = pending.finish(node)[0]
        else:
            ordered_refs = crowd_sort_items(task, list(ref_map), ctx, node)
        if not crowd_item.ascending:
            ordered_refs = list(reversed(ordered_refs))
        for ref in ordered_refs:
            ordered_rows.extend(ref_map[ref])
    stats.rows_out = len(ordered_rows)
    return ordered_rows


def _plain_key(row: Row, items: Sequence[OrderItem], env: Mapping) -> tuple:
    key = []
    for item in items:
        value = item.expr.evaluate(row, env)
        key.append(_Reversible(value, item.ascending))
    return tuple(key)


class _Reversible:
    """Sort key wrapper supporting DESC on arbitrary comparable values.

    Hashable so that plain-prefix group keys can serve as dict keys.
    """

    __slots__ = ("value", "ascending")

    def __init__(self, value, ascending: bool) -> None:
        self.value = value
        self.ascending = ascending

    def __lt__(self, other: "_Reversible") -> bool:
        if self.ascending:
            return self.value < other.value
        return other.value < self.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Reversible) and self.value == other.value

    def __hash__(self) -> int:
        return hash(self.value)


# ---------------------------------------------------------------------------
# LIMIT-aware tournament sort (scale-out path)
# ---------------------------------------------------------------------------


def _limit_tournament_applies(node: SortNode, ctx: QueryContext) -> bool:
    """Whether this sort may satisfy its LIMIT hint with tournaments.

    Requires the planner's hint, the Compare method (Rate is already O(N)
    HITs; Hybrid's repair loop needs the whole order), and the tournament
    switch: ``ExecutionConfig.limit_sort_tournament`` when set, else the
    ``REPRO_SORTSCALE`` toggle.
    """
    if node.limit_hint is None or ctx.config.sort_method != "compare":
        return False
    active = ctx.config.limit_sort_tournament
    if active is None:
        active = sortscale.enabled()
    return bool(active)


def pick_best_payload(
    task: RankTask, batch: Sequence[str], most: bool
) -> PickBestPayload:
    """The best-of-batch HIT payload (§2.3), shared question wording.

    Used by both :meth:`repro.core.engine.Qurk.extreme` and the LIMIT
    tournament path so the MAX/MIN interface's HIT text cannot drift
    between the aggregate and sort entry points.
    """
    direction = task.most_name if most else task.least_name
    return PickBestPayload(
        task_name=task.name,
        items=tuple(batch),
        question=(
            f"Which of these {task.plural_name} is the {direction} "
            f"by {task.order_dimension_name}?"
        ),
        pick_most=most,
    )


def tally_pick_votes(payload: PickBestPayload, votes: Sequence) -> str:
    """Majority winner of one pick-best question (shared tie-break).

    Ties break toward the higher vote count, then the larger item
    reference — the same rule for the engine's ``extreme()`` aggregate and
    the sort tournament, so tied crowds cannot rank differently depending
    on which entry point asked.
    """
    counts = Counter(str(vote.value) for vote in votes)
    if not counts:
        raise PlanError(
            f"no votes for pick batch {list(payload.items)!r} — cannot rank"
        )
    winner, _ = max(counts.items(), key=lambda kv: (kv[1], kv[0]))
    return winner


def limit_tournament_refs(
    task: RankTask,
    refs: Sequence[str],
    k: int,
    ctx: QueryContext,
    node: SortNode | None = None,
    most: bool = True,
) -> list[str]:
    """The leading k refs via successive best-of-batch tournaments (§2.3).

    Spends ≈ k·N/(b−1) pick HITs instead of the full comparison sort's
    C(N, 2)/C(b, 2) group coverage. Returns the winners best-first in the
    pick direction — which is the final output's leading direction for
    both DESC (``most=True``) and ASC (``most=False``) — so rows emitted
    in this order truncate correctly under the LimitNode above.
    """
    batch_size = min(ctx.config.limit_pick_batch_size, len(refs))

    def pick(batch: Sequence[str]) -> str:
        payload = pick_best_payload(task, batch, most)
        ctx.charge_budget_for_units([[payload]], 1, ctx.config.assignments)
        outcome = ctx.manager.run_units(
            [[payload]],
            batch_size=1,
            assignments=ctx.config.assignments,
            label="sort:limit",
            strict=ctx.config.strict_hits,
        )
        if node is not None:
            stats = ctx.stats_for(node)
            stats.hits += outcome.hit_count
            stats.assignments += outcome.assignment_count
            stats.elapsed_seconds += outcome.elapsed_seconds
        return tally_pick_votes(payload, outcome.votes.get(payload.qid(), []))

    winners, hits = tournament_top_k(refs, pick, k, batch_size=batch_size)
    if node is not None:
        signals = ctx.stats_for(node).signals
        signals["limit_tournament_hits"] = float(hits)
        signals["limit_tournament_k"] = float(k)
    return winners


# ---------------------------------------------------------------------------
# Crowd ordering of an item list
# ---------------------------------------------------------------------------


def crowd_sort_items(
    task: RankTask, refs: Sequence[str], ctx: QueryContext, node: SortNode
) -> list[str]:
    """Order item refs least → most with the configured method."""
    if len(refs) < 2:
        return list(refs)
    method = ctx.config.sort_method
    if method == "compare":
        order, _ = compare_sort(task, refs, ctx, node)
        return order
    if method == "rate":
        order, _ = rate_sort(task, refs, ctx, node)
        return order
    order, _ = hybrid_sort(task, refs, ctx, node)
    return order


class _PendingGroupSort:
    """One group's posted-but-uncombined sort HITs (Compare or Rate)."""

    def __init__(self, ctx, batch, combine) -> None:
        self.ctx = ctx
        self.batch = batch
        self._combine = combine

    def finish(self, node: SortNode | None = None):
        """Collect the votes and combine them into (order, corpus/summaries)."""
        outcome = self.batch.result()
        if node is not None:
            stats = self.ctx.stats_for(node)
            stats.hits += outcome.hit_count
            stats.assignments += outcome.assignment_count
            stats.elapsed_seconds += outcome.elapsed_seconds
        return self._combine(outcome, node)


def begin_compare_sort(
    task: RankTask, refs: Sequence[str], ctx: QueryContext
) -> _PendingGroupSort:
    """Post a full comparison sort's HITs without collecting the votes."""
    group_size = min(ctx.config.compare_group_size, len(refs))
    groups = covering_groups(list(refs), group_size, seed=ctx.config.seed)
    item_html = {ref: _item_html(task, ref) for ref in refs}
    units: list[list[Payload]] = [
        [
            ComparePayload(
                task_name=task.name,
                groups=(CompareGroup(tuple(group)),),
                question=task.compare_question(group_size),
                item_html=item_html,
            )
        ]
        for group in groups
    ]
    ctx.charge_budget_for_units(
        units, ctx.config.compare_batch_groups, ctx.config.assignments
    )
    batch = ctx.manager.begin_units(
        units,
        batch_size=ctx.config.compare_batch_groups,
        assignments=ctx.config.assignments,
        label="sort:compare",
        strict=ctx.config.strict_hits,
    )

    def combine(outcome, node):
        corpus = {qid: v for qid, v in outcome.votes.items() if ":cmp:" in qid and v}
        winners = pair_winners_from_votes(corpus)
        order = head_to_head_order(list(refs), winners)
        if node is not None and corpus:
            ctx.stats_for(node).signals["comparison_kappa"] = comparison_kappa(corpus)
        return order, corpus

    return _PendingGroupSort(ctx, batch, combine)


def compare_sort(
    task: RankTask,
    refs: Sequence[str],
    ctx: QueryContext,
    node: SortNode | None = None,
) -> tuple[list[str], dict]:
    """Full comparison sort; returns (order, vote corpus)."""
    return begin_compare_sort(task, refs, ctx).finish(node)


def begin_rate_sort(
    task: RankTask, refs: Sequence[str], ctx: QueryContext
) -> _PendingGroupSort:
    """Post a rating sort's HITs without collecting the votes."""
    rng = RandomSource(ctx.config.seed).child("rate-anchors", task.name)
    anchor_count = min(ctx.config.rate_anchor_count, len(refs))
    anchors = tuple(rng.sample(list(refs), anchor_count))
    units: list[list[Payload]] = [
        [
            RatePayload(
                task_name=task.name,
                questions=(RateQuestion(item=ref, prompt_html=_item_html(task, ref)),),
                anchors=anchors,
                scale_points=task.scale_points,
                question=task.rate_question(),
            )
        ]
        for ref in refs
    ]
    ctx.charge_budget_for_units(
        units, ctx.config.rate_batch_size, ctx.config.assignments
    )
    batch = ctx.manager.begin_units(
        units,
        batch_size=ctx.config.rate_batch_size,
        assignments=ctx.config.assignments,
        label="sort:rate",
        strict=ctx.config.strict_hits,
    )

    def combine(outcome, node):
        corpus = {qid: v for qid, v in outcome.votes.items() if ":rate:" in qid and v}
        summaries = summarize_ratings(corpus)
        for ref in refs:
            if ref not in summaries:
                summaries[ref] = RatingSummary(item=ref, mean=0.0, std=0.0, count=0)
        return order_by_rating(summaries), summaries

    return _PendingGroupSort(ctx, batch, combine)


def rate_sort(
    task: RankTask,
    refs: Sequence[str],
    ctx: QueryContext,
    node: SortNode | None = None,
) -> tuple[list[str], dict[str, RatingSummary]]:
    """Rating sort; returns (order, per-item summaries)."""
    return begin_rate_sort(task, refs, ctx).finish(node)


def hybrid_sort(
    task: RankTask,
    refs: Sequence[str],
    ctx: QueryContext,
    node: SortNode | None = None,
) -> tuple[list[str], HybridSorter]:
    """Rate, then repair with comparison windows (§4.1.3)."""
    _, summaries = rate_sort(task, refs, ctx, node)
    strategy = make_strategy(
        ctx.config.hybrid_strategy,
        window_size=min(ctx.config.compare_group_size, len(refs)),
        stride=ctx.config.hybrid_stride,
        seed=ctx.config.seed,
    )
    sorter = HybridSorter(
        summaries,
        strategy,
        compare=lambda window: run_compare_window(task, window, ctx, node),
    )
    sorter.run(ctx.config.hybrid_iterations)
    return list(sorter.order), sorter


def make_strategy(
    name: str, window_size: int, stride: int, seed: int
) -> WindowStrategy:
    """Instantiate a hybrid window-selection strategy by name."""
    if name == "random":
        return RandomStrategy(window_size, seed=seed)
    if name == "confidence":
        return ConfidenceStrategy(window_size)
    if name == "window":
        return SlidingWindowStrategy(window_size, stride)
    raise PlanError(f"unknown hybrid strategy {name!r}")


def run_compare_window(
    task: RankTask,
    window: Sequence[str],
    ctx: QueryContext,
    node: SortNode | None = None,
) -> dict[tuple[str, str], str]:
    """One comparison HIT over a hybrid window; returns per-pair winners."""
    payload = ComparePayload(
        task_name=task.name,
        groups=(CompareGroup(tuple(window)),),
        question=task.compare_question(len(window)),
        item_html={ref: _item_html(task, ref) for ref in window},
    )
    ctx.charge_budget_for_units([[payload]], 1, ctx.config.assignments)
    outcome = ctx.manager.run_units(
        [[payload]],
        batch_size=1,
        assignments=ctx.config.assignments,
        label="sort:hybrid",
        strict=ctx.config.strict_hits,
    )
    if node is not None:
        stats = ctx.stats_for(node)
        stats.hits += outcome.hit_count
        stats.assignments += outcome.assignment_count
        stats.elapsed_seconds += outcome.elapsed_seconds
    corpus = {qid: v for qid, v in outcome.votes.items() if ":cmp:" in qid and v}
    return pair_winners_from_votes(corpus)


def _item_html(task: RankTask, ref: str) -> str:
    """Render the task's per-item HTML with the ref bound to every param."""
    bindings = {("tuple", param): ref for param in task.params}
    return task.html.render(bindings)
