"""Adaptive batch sizing (§6, "Choosing Batch Size").

"Such an algorithm performs a binary search on the batch size, reducing the
size when workers refuse to do work or accuracy drops, and increasing the
size when no noticeable change to latency and accuracy is observed."

The tuner drives a caller-provided probe (post a small batch at size b,
report completion/accuracy/latency) through that search and remembers the
largest size that worked — ideal starting sizes "can be learned for various
media types" across runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable


@dataclass(frozen=True)
class ProbeResult:
    """Outcome of trying one batch size on a small probe set."""

    batch_size: int
    completed: bool
    accuracy: float = 1.0
    latency_seconds: float = 0.0


@dataclass
class BatchTuner:
    """Binary search over batch sizes with accuracy/latency guards."""

    min_batch: int = 1
    max_batch: int = 32
    accuracy_floor: float = 0.8
    latency_ceiling_seconds: float = 3600.0
    history: list[ProbeResult] = field(default_factory=list)

    def tune(self, probe: Callable[[int], ProbeResult]) -> int:
        """Find the largest acceptable batch size.

        ``probe`` posts a probe round at the given size. A size is
        acceptable when it completes, accuracy stays above the floor, and
        latency under the ceiling. The minimum batch is probed first: if
        even it fails, :class:`~repro.errors.BatchTuningError` is raised
        (carrying the failing probe) — the old behaviour silently returned
        ``min_batch``, so callers could not tell "the minimum works" from
        "the crowd refused everything". The rest is classic binary search
        over (min, max].
        """
        if self.min_batch < 1 or self.max_batch < self.min_batch:
            raise ValueError("invalid batch-size bounds")
        floor_result = probe(self.min_batch)
        self.history.append(floor_result)
        if not self._acceptable(floor_result):
            from repro.errors import BatchTuningError

            raise BatchTuningError(
                f"even the minimum batch size {self.min_batch} failed its "
                f"probe (completed={floor_result.completed}, "
                f"accuracy={floor_result.accuracy:.2f}, "
                f"latency={floor_result.latency_seconds:.0f}s)",
                probe=floor_result,
            )
        best = self.min_batch
        low = self.min_batch + 1
        high = self.max_batch
        while low <= high:
            mid = (low + high) // 2
            result = probe(mid)
            self.history.append(result)
            if self._acceptable(result):
                best = mid
                low = mid + 1
            else:
                high = mid - 1
        return best

    def _acceptable(self, result: ProbeResult) -> bool:
        return (
            result.completed
            and result.accuracy >= self.accuracy_floor
            and result.latency_seconds <= self.latency_ceiling_seconds
        )

    def refusal_wall(self) -> int | None:
        """The smallest batch size the crowd refused outright, if any."""
        refused = [r.batch_size for r in self.history if not r.completed]
        return min(refused) if refused else None
