"""Per-operator cost model for plan scoring (§6, "future work" made real).

The paper's optimizer is purely rewrite-based; §6 defers cost- and
budget-aware planning. This module supplies the missing arithmetic: for
every plan operator it forecasts

* **cardinalities** — scan sizes come from the catalog, filter outputs
  from the :class:`~repro.core.adaptive.SelectivityBook`'s online
  estimates (priors before any observation, observed pass rates after);
* **HIT counts** — the paper's own batching accounting
  (:func:`repro.joins.batching.hit_count_estimate`, filter/generative
  batch sizes, grid shapes) applied to the estimated cardinalities;
* **dollars** — HITs × assignments × :class:`~repro.hits.pricing.PricingModel`.

The totals score candidate plans in the adaptive optimizer, feed the
whole-plan budget pre-flight (:func:`repro.core.budget.plan_preflight`),
and surface as *predicted vs. actual* HIT counts in EXPLAIN. Everything
here is an estimate — execution never depends on it for correctness, only
for ordering and forecasting.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.plan import (
    AdaptiveFilterNode,
    ComputedFilterNode,
    CrowdPredicateNode,
    JoinNode,
    LimitNode,
    PlanNode,
    ProjectNode,
    ScanNode,
    SortNode,
)
from repro.hits.pricing import PricingModel
from repro.joins.batching import JoinInterface, hit_count_estimate
from repro.tasks.registry import ROLE_GENERATIVE, DispatchTable, spec_for_task

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.adaptive import SelectivityBook
    from repro.core.context import ExecutionConfig
    from repro.relational.catalog import Catalog

JOIN_MATCH_PRIOR = 0.1
"""Assumed fraction of candidate pairs that truly join, pre-observation."""


@dataclass(frozen=True)
class OperatorCost:
    """Forecast for one plan operator."""

    label: str
    rows_in: float = 0.0
    rows_out: float = 0.0
    units: float = 0.0
    """Atomic crowd questions (tuples, pairs, items) the operator asks."""

    hits: float = 0.0
    assignments: float = 0.0
    dollars: float = 0.0

    @property
    def selectivity(self) -> float:
        """Estimated pass fraction (1.0 for non-filtering operators)."""
        if self.rows_in <= 0:
            return 1.0
        return self.rows_out / self.rows_in


@dataclass
class PlanCostEstimate:
    """Whole-plan forecast: per-node operator costs plus totals."""

    per_node: dict[int, OperatorCost] = field(default_factory=dict)

    @property
    def total_hits(self) -> float:
        return sum(cost.hits for cost in self.per_node.values())

    @property
    def total_assignments(self) -> float:
        return sum(cost.assignments for cost in self.per_node.values())

    @property
    def total_dollars(self) -> float:
        return sum(cost.dollars for cost in self.per_node.values())


def predicate_key(predicate: object) -> str:
    """The selectivity book's stable key for a predicate expression."""
    return f"pred:{predicate}"


def feature_key(name: str) -> str:
    """The selectivity book's key for a POSSIBLY feature's σ."""
    return f"feature:{name}"


def join_key(task_name: str) -> str:
    """The selectivity book's key for a join task's match rate."""
    return f"join:{task_name}"


def _filter_batch_for(node: CrowdPredicateNode, catalog: "Catalog", config: "ExecutionConfig") -> int:
    """The batch size the predicate's crowd calls will post at.

    Filter tasks merge at ``filter_batch_size``; generative-role calls in a
    WHERE clause batch at ``generative_batch_size``. A predicate mixing
    both is approximated by the smaller (more HITs — conservative).
    """
    batch = config.filter_batch_size
    assert node.predicate is not None
    for call in node.predicate.udf_calls():
        if catalog.has_function(call.name):
            continue
        if (
            catalog.has_task(call.name)
            and spec_for_task(catalog.task(call.name)).role == ROLE_GENERATIVE
        ):
            batch = min(batch, config.generative_batch_size)
    return batch


def _predicate_cost(
    node: CrowdPredicateNode,
    rows: float,
    catalog: "Catalog",
    config: "ExecutionConfig",
    book: "SelectivityBook",
    pricing: PricingModel,
) -> OperatorCost:
    sigma = book.estimate(predicate_key(node.predicate))
    batch = _filter_batch_for(node, catalog, config)
    hits = math.ceil(rows / batch) if rows else 0
    assignments = hits * config.assignments
    return OperatorCost(
        label=node.label(),
        rows_in=rows,
        rows_out=rows * sigma,
        units=rows,
        hits=hits,
        assignments=assignments,
        dollars=pricing.cost(int(assignments)),
    )


NODE_COST_MODELS = DispatchTable("plan-node cost model")
"""Cost handlers keyed by ``PlanNode.kind``.

Each handler takes ``(node, child_rows, catalog, config, book, pricing)``
and returns an :class:`OperatorCost`. Node kinds without a handler get a
pass-through cost (execution never depends on the forecast for
correctness), so out-of-tree kinds degrade gracefully until they register
their own arithmetic.
"""


def register_node_cost(kind: str, handler=None, *, replace: bool = False):
    """Register a cost-model handler for a plan-node kind."""
    return NODE_COST_MODELS.register(kind, handler, replace=replace)


def estimate_plan_cost(
    plan: PlanNode,
    catalog: "Catalog",
    config: "ExecutionConfig",
    book: "SelectivityBook",
    pricing: PricingModel | None = None,
) -> PlanCostEstimate:
    """Forecast every operator's cardinality, HIT count, and dollars."""
    pricing = pricing or PricingModel()
    estimate = PlanCostEstimate()

    def visit(node: PlanNode) -> float:
        """Bottom-up: returns the node's estimated output cardinality."""
        child_rows = [visit(child) for child in node.inputs]
        rows = child_rows[0] if child_rows else 0.0
        model = NODE_COST_MODELS.lookup(node.kind)
        if model is None:
            cost = OperatorCost(label=node.label(), rows_in=rows, rows_out=rows)
        else:
            cost = model(node, child_rows, catalog, config, book, pricing)
        estimate.per_node[id(node)] = cost
        return cost.rows_out

    visit(plan)
    return estimate


def _scan_cost_entry(
    node: ScanNode, child_rows, catalog, config, book, pricing
) -> OperatorCost:
    n = float(len(catalog.table(node.table_name)))
    return OperatorCost(label=node.label(), rows_in=n, rows_out=n)


def _computed_filter_cost_entry(
    node: ComputedFilterNode, child_rows, catalog, config, book, pricing
) -> OperatorCost:
    rows = child_rows[0] if child_rows else 0.0
    sigma = book.estimate(predicate_key(node.predicate))
    return OperatorCost(label=node.label(), rows_in=rows, rows_out=rows * sigma)


def _crowd_filter_cost_entry(
    node: CrowdPredicateNode, child_rows, catalog, config, book, pricing
) -> OperatorCost:
    rows = child_rows[0] if child_rows else 0.0
    return _predicate_cost(node, rows, catalog, config, book, pricing)


def _adaptive_filter_cost_entry(
    node: AdaptiveFilterNode, child_rows, catalog, config, book, pricing
) -> OperatorCost:
    rows = child_rows[0] if child_rows else 0.0
    return _adaptive_chain_cost(node, rows, catalog, config, book, pricing)


def _join_cost_entry(
    node: JoinNode, child_rows, catalog, config, book, pricing
) -> OperatorCost:
    return _join_cost(node, child_rows, catalog, config, book, pricing)


def _sort_cost_entry(
    node: SortNode, child_rows, catalog, config, book, pricing
) -> OperatorCost:
    rows = child_rows[0] if child_rows else 0.0
    return _sort_cost(node, rows, config, pricing)


def _project_cost_entry(
    node: ProjectNode, child_rows, catalog, config, book, pricing
) -> OperatorCost:
    rows = child_rows[0] if child_rows else 0.0
    return _project_cost(node, rows, catalog, config, pricing)


def _limit_cost_entry(
    node: LimitNode, child_rows, catalog, config, book, pricing
) -> OperatorCost:
    rows = child_rows[0] if child_rows else 0.0
    return OperatorCost(
        label=node.label(), rows_in=rows, rows_out=min(rows, node.count)
    )


NODE_COST_MODELS.register(ScanNode.kind, _scan_cost_entry)
NODE_COST_MODELS.register(ComputedFilterNode.kind, _computed_filter_cost_entry)
NODE_COST_MODELS.register(CrowdPredicateNode.kind, _crowd_filter_cost_entry)
NODE_COST_MODELS.register(AdaptiveFilterNode.kind, _adaptive_filter_cost_entry)
NODE_COST_MODELS.register(JoinNode.kind, _join_cost_entry)
NODE_COST_MODELS.register(SortNode.kind, _sort_cost_entry)
NODE_COST_MODELS.register(ProjectNode.kind, _project_cost_entry)
NODE_COST_MODELS.register(LimitNode.kind, _limit_cost_entry)


def _adaptive_chain_cost(
    node: AdaptiveFilterNode,
    rows: float,
    catalog: "Catalog",
    config: "ExecutionConfig",
    book: "SelectivityBook",
    pricing: PricingModel,
) -> OperatorCost:
    """Pilot + best-order cascade forecast for a fused conjunct chain.

    Mirrors the executor's plan: every member samples the pilot rows, then
    the remainder cascades through the members in ascending estimated
    selectivity — the arithmetic the HIT savings come from.
    """
    from repro.core.adaptive import pilot_size

    members = list(node.members)
    sigmas = {
        id(m): book.estimate(predicate_key(m.predicate)) for m in members
    }
    pilot = float(pilot_size(int(rows), len(members), config))
    hits = 0.0
    assignments = 0.0
    for member in members:
        batch = _filter_batch_for(member, catalog, config)
        hits += math.ceil(pilot / batch) if pilot else 0
    ordered = sorted(
        enumerate(members), key=lambda pair: (sigmas[id(pair[1])], pair[0])
    )
    flowing = rows - pilot
    for _, member in ordered:
        batch = _filter_batch_for(member, catalog, config)
        hits += math.ceil(flowing / batch) if flowing > 0 else 0
        flowing *= sigmas[id(member)]
    assignments = hits * config.assignments
    out = rows
    for member in members:
        out *= sigmas[id(member)]
    return OperatorCost(
        label=node.label(),
        rows_in=rows,
        rows_out=out,
        units=rows * len(members),
        hits=hits,
        assignments=assignments,
        dollars=pricing.cost(int(assignments)),
    )


def _possibly_book_name(expr, left_aliases: set[str], catalog: "Catalog") -> str:
    """The selectivity-book name a POSSIBLY clause is observed under.

    The runtime keys equality features by the *left join side's* crowd
    call name (``_classify_possibly`` in join_exec), so the forecast must
    read the same key: the first crowd (non-function) call whose column
    references are confined to the left side's aliases. Falls back to the
    first crowd call (unary clauses observe under a different key space
    and keep their prior here) or the expression text.
    """
    crowd_calls = [
        call for call in expr.udf_calls() if not catalog.has_function(call.name)
    ]
    for call in crowd_calls:
        qualifiers = {
            ref.split(".", 1)[0] if "." in ref else ref
            for ref in call.references()
        }
        if qualifiers and qualifiers <= left_aliases:
            return call.name
    if crowd_calls:
        return crowd_calls[0].name
    return str(expr)


def _join_cost(
    node: JoinNode,
    child_rows: list[float],
    catalog: "Catalog",
    config: "ExecutionConfig",
    book: "SelectivityBook",
    pricing: PricingModel,
) -> OperatorCost:
    left = child_rows[0] if child_rows else 0.0
    right = child_rows[1] if len(child_rows) > 1 else 0.0
    hits = 0.0

    # Feature-extraction linear passes (one per side; combining folds all
    # features of a side into one pass, §3.3.4).
    sel = 1.0
    if config.use_feature_filters and node.possibly:
        passes = 1 if config.combine_features else len(node.possibly)
        hits += passes * (
            math.ceil(left / config.generative_batch_size)
            + math.ceil(right / config.generative_batch_size)
        )
        left_aliases = {
            n.alias for n in node.inputs[0].walk() if n.kind == ScanNode.kind
        }
        for expr in node.possibly:
            sel *= book.estimate(
                feature_key(_possibly_book_name(expr, left_aliases, catalog))
            )

    pairs = left * right * sel
    if pairs:
        per_pair_hits = hit_count_estimate(
            int(math.ceil(pairs)),
            1,
            config.join_interface,
            batch_size=config.naive_batch_size,
            grid_rows=config.grid_rows,
            grid_cols=config.grid_cols,
        )
        hits += per_pair_hits
    match_rate = (
        book.estimate(join_key(node.condition.name), prior=JOIN_MATCH_PRIOR)
        if node.condition is not None
        else JOIN_MATCH_PRIOR
    )
    assignments = hits * config.assignments
    return OperatorCost(
        label=node.label(),
        rows_in=left + right,
        rows_out=pairs * match_rate,
        units=pairs,
        hits=hits,
        assignments=assignments,
        dollars=pricing.cost(int(assignments)),
    )


def _sort_cost(
    node: SortNode, rows: float, config: "ExecutionConfig", pricing: PricingModel
) -> OperatorCost:
    n = rows
    if config.sort_method == "rate":
        hits = math.ceil(n / config.rate_batch_size)
    elif config.sort_method == "compare":
        s = max(2, config.compare_group_size)
        group_pairs = s * (s - 1) / 2.0
        hits = math.ceil((n * max(0.0, n - 1) / 2.0) / group_pairs)
    else:  # hybrid: a rating pass plus the configured comparison budget
        hits = math.ceil(n / config.rate_batch_size) + config.hybrid_iterations
    assignments = hits * config.assignments
    return OperatorCost(
        label=node.label(),
        rows_in=rows,
        rows_out=rows,
        units=n,
        hits=hits,
        assignments=assignments,
        dollars=pricing.cost(int(assignments)),
    )


def _project_cost(
    node: ProjectNode,
    rows: float,
    catalog: "Catalog",
    config: "ExecutionConfig",
    pricing: PricingModel,
) -> OperatorCost:
    crowd = False
    if not node.star:
        crowd = any(
            not catalog.has_function(call.name)
            for item in node.items
            for call in item.expr.udf_calls()
        )
    hits = math.ceil(rows / config.generative_batch_size) if crowd else 0
    assignments = hits * config.assignments
    return OperatorCost(
        label=node.label(),
        rows_in=rows,
        rows_out=rows,
        units=rows if crowd else 0.0,
        hits=hits,
        assignments=assignments,
        dollars=pricing.cost(int(assignments)),
    )


def operator_estimates(
    estimate: PlanCostEstimate, config: "ExecutionConfig"
) -> list["OperatorEstimate"]:
    """The cost model's forecast as budget-allocator operator estimates.

    Bridges :func:`estimate_plan_cost` to
    :func:`repro.core.budget.plan_preflight` /
    :func:`repro.core.budget.allocate_budget`. The allocator charges
    ``units × assignments``, and the marketplace bills per *HIT*
    assignment, so the billable unit here is the forecast **HIT count**,
    not the raw question count — feeding unbatched questions in would
    overstate spend by the batch factor (5× for batch-5 filters, ~25× for
    a 5×5 grid) and make the pre-flight abort affordable queries.
    """
    from repro.core.budget import OperatorEstimate

    estimates: list[OperatorEstimate] = []
    for index, cost in enumerate(estimate.per_node.values()):
        if cost.hits <= 0:
            continue
        estimates.append(
            OperatorEstimate(
                name=f"op{index}:{cost.label}",
                units=int(math.ceil(cost.hits)) or 1,
                requested_assignments=config.assignments,
            )
        )
    return estimates
