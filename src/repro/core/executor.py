"""Plan interpreter.

The paper's executor runs each operator in its own thread with async queues
(§2.6); for determinism we interpret the plan tree depth-first over the
marketplace's virtual clock (see DESIGN.md for the substitution note).
Crowd operators materialise their inputs — they must, since HIT batches are
built over whole tuple sets.
"""

from __future__ import annotations

from repro.core.context import QueryContext
from repro.core.crowd_calls import evaluate_with_crowd, run_predicate_calls
from repro.core.join_exec import execute_join
from repro.core.plan import (
    ComputedFilterNode,
    CrowdPredicateNode,
    JoinNode,
    LimitNode,
    PlanNode,
    ProjectNode,
    ScanNode,
    SortNode,
)
from repro.core.sort_exec import execute_sort
from repro.errors import ExecutionError
from repro.relational.expressions import UDFCall
from repro.relational.rows import Row


def run_plan(node: PlanNode, ctx: QueryContext) -> list[Row]:
    """Execute a plan tree; returns the output rows."""
    if isinstance(node, ScanNode):
        return _run_scan(node, ctx)
    if isinstance(node, ComputedFilterNode):
        return _run_computed_filter(node, ctx)
    if isinstance(node, CrowdPredicateNode):
        return _run_crowd_predicate(node, ctx)
    if isinstance(node, JoinNode):
        return _run_join(node, ctx)
    if isinstance(node, SortNode):
        rows = run_plan(node.inputs[0], ctx)
        return execute_sort(node, rows, ctx)
    if isinstance(node, ProjectNode):
        return _run_project(node, ctx)
    if isinstance(node, LimitNode):
        rows = run_plan(node.inputs[0], ctx)
        stats = ctx.stats_for(node)
        stats.rows_in = len(rows)
        stats.rows_out = min(len(rows), node.count)
        return rows[: node.count]
    raise ExecutionError(f"no executor for plan node {type(node).__name__}")


def _run_scan(node: ScanNode, ctx: QueryContext) -> list[Row]:
    table = ctx.catalog.table(node.table_name)
    rows = [row.prefixed(node.alias) for row in table.scan()]
    stats = ctx.stats_for(node)
    stats.rows_in = len(table)
    stats.rows_out = len(rows)
    return rows


def _run_computed_filter(node: ComputedFilterNode, ctx: QueryContext) -> list[Row]:
    rows = run_plan(node.inputs[0], ctx)
    assert node.predicate is not None
    env = ctx.catalog.functions()
    kept = [row for row in rows if node.predicate.evaluate(row, env)]
    stats = ctx.stats_for(node)
    stats.rows_in = len(rows)
    stats.rows_out = len(kept)
    return kept


def _run_crowd_predicate(node: CrowdPredicateNode, ctx: QueryContext) -> list[Row]:
    rows = run_plan(node.inputs[0], ctx)
    assert node.predicate is not None
    stats = ctx.stats_for(node)
    stats.rows_in = len(rows)
    if not rows:
        stats.rows_out = 0
        return []
    bindings = run_predicate_calls(node.predicate, rows, ctx, "where")
    stats.hits += bindings.outcome.hit_count
    stats.assignments += bindings.outcome.assignment_count
    stats.elapsed_seconds += bindings.outcome.elapsed_seconds
    stats.signals.update(bindings.signals)
    kept = [
        row
        for row in rows
        if evaluate_with_crowd(node.predicate, row, bindings, ctx)
    ]
    stats.rows_out = len(kept)
    return kept


def _run_join(node: JoinNode, ctx: QueryContext) -> list[Row]:
    left_rows = run_plan(node.inputs[0], ctx)
    right_rows = run_plan(node.inputs[1], ctx)
    left_aliases = _aliases(node.inputs[0])
    right_aliases = _aliases(node.inputs[1])
    return execute_join(node, left_rows, right_rows, ctx, left_aliases, right_aliases)


def _aliases(node: PlanNode) -> set[str]:
    return {n.alias for n in node.walk() if isinstance(n, ScanNode)}


def _run_project(node: ProjectNode, ctx: QueryContext) -> list[Row]:
    rows = run_plan(node.inputs[0], ctx)
    stats = ctx.stats_for(node)
    stats.rows_in = len(rows)
    if node.star:
        stats.rows_out = len(rows)
        return rows
    # The select list may contain generative crowd calls (§2.2).
    crowd_calls = [
        call
        for item in node.items
        for call in item.expr.udf_calls()
        if not ctx.catalog.has_function(call.name)
    ]
    bindings = None
    if crowd_calls and rows:
        from repro.relational.expressions import And

        synthetic = And(operands=tuple(item.expr for item in node.items))
        bindings = run_predicate_calls(synthetic, rows, ctx, "select")
        stats.hits += bindings.outcome.hit_count
        stats.assignments += bindings.outcome.assignment_count
        stats.signals.update(bindings.signals)

    from repro.relational.rows import Row as RowClass
    from repro.relational.schema import Column, ColumnType, Schema

    names = [item.output_name for item in node.items]
    schema = Schema([Column(name, ColumnType.ANY) for name in names])
    env = ctx.catalog.functions()
    out: list[Row] = []
    for row in rows:
        values = {}
        for item, name in zip(node.items, names):
            if bindings is not None and any(
                not ctx.catalog.has_function(call.name)
                for call in item.expr.udf_calls()
            ):
                values[name] = evaluate_with_crowd(item.expr, row, bindings, ctx)
            else:
                values[name] = _evaluate_plain(item.expr, row, env)
        out.append(RowClass(schema, values))
    stats.rows_out = len(out)
    return out


def _evaluate_plain(expr, row: Row, env) -> object:
    """Evaluate a non-crowd select expression; bare aliases unsupported."""
    if isinstance(expr, UDFCall) and expr.name not in env:
        raise ExecutionError(
            f"crowd UDF {expr.name!r} reached plain evaluation — planner bug"
        )
    return expr.evaluate(row, env)
