"""Plan execution: the depth-first interpreter and the operator bodies.

Two executors share the operator implementations in this module:

* the **depth-first interpreter** (:func:`run_plan_depth_first`) walks the
  plan tree recursively and materialises every operator boundary — simple,
  serial, and the reference for the determinism contract;
* the **pipelined executor** (:mod:`repro.core.scheduler`) runs each
  operator as a stepping task with bounded input queues over the
  marketplace's virtual clock, the paper's §2.6 event-driven design, so
  crowd operators from different pipeline stages have HIT batches
  outstanding over overlapping virtual intervals.

:func:`run_plan` picks between them: the pipelined executor when the
``REPRO_PIPELINE`` toggle (or ``ExecutionConfig.pipeline``) allows it *and*
the platform exposes the multi-client submit/harvest API; the depth-first
interpreter otherwise. For a fixed seed both produce identical rows, costs,
and vote streams — pipelining preserves the depth-first posting order and
overlaps only virtual time — so the choice is observable solely through
latency and EXPLAIN telemetry (``tests/test_scheduler.py`` enforces this).

Crowd operators still materialise their own *inputs* under both executors:
HIT batching (merging, §2.6) spans an operator's whole tuple set, so a
crowd operator drains its input queue before posting. The pipelining wins
come from sibling operators and independent per-group/per-side batches
overlapping, plus chunked row flow through the computed operators.
"""

from __future__ import annotations

from repro.core.context import QueryContext
from repro.core.crowd_calls import evaluate_with_crowd, run_predicate_calls
from repro.core.join_exec import execute_join
from repro.core.plan import (
    AdaptiveFilterNode,
    ComputedFilterNode,
    CrowdPredicateNode,
    JoinNode,
    LimitNode,
    PlanNode,
    ProjectNode,
    ScanNode,
    SortNode,
)
from repro.core.sort_exec import execute_sort
from repro.errors import ExecutionError
from repro.hits.manager import platform_supports_overlap
from repro.tasks.registry import DispatchTable
from repro.relational.expressions import UDFCall
from repro.relational.rows import Row
from repro.util import pipeline as pipeline_toggle


def run_plan(node: PlanNode, ctx: QueryContext) -> list[Row]:
    """Execute a plan tree; returns the output rows.

    Dispatches to the pipelined executor when enabled and supported (see
    the module docstring), else interprets depth-first.
    """
    enabled = ctx.config.pipeline
    if enabled is None:
        enabled = pipeline_toggle.enabled()
    if enabled and platform_supports_overlap(ctx.manager.platform):
        from repro.core.scheduler import run_plan_pipelined

        return run_plan_pipelined(node, ctx)
    return run_plan_depth_first(node, ctx)


NODE_EXECUTORS = DispatchTable("depth-first plan-node executor")
"""Depth-first handlers keyed by ``PlanNode.kind``.

Each handler takes ``(node, ctx)`` and recurses through
:func:`run_plan_depth_first` for its inputs. Out-of-tree node kinds
register here (and in :data:`repro.core.scheduler.PIPELINE_GENERATORS` for
the pipelined path) without touching this module.
"""


def register_node_executor(kind: str, handler=None, *, replace: bool = False):
    """Register a depth-first executor for a plan-node kind."""
    return NODE_EXECUTORS.register(kind, handler, replace=replace)


def run_plan_depth_first(node: PlanNode, ctx: QueryContext) -> list[Row]:
    """The reference interpreter: recurse, materialise, apply."""
    run = NODE_EXECUTORS.lookup(node.kind)
    if run is None:
        raise ExecutionError(f"no executor for plan node {type(node).__name__}")
    return run(node, ctx)


# ---------------------------------------------------------------------------
# Operator bodies (shared by both executors)
# ---------------------------------------------------------------------------


def scan_rows(node: ScanNode, ctx: QueryContext) -> list[Row]:
    """Read the scanned table, qualifying columns with the alias."""
    table = ctx.catalog.table(node.table_name)
    rows = [row.prefixed(node.alias) for row in table.scan()]
    stats = ctx.stats_for(node)
    stats.rows_in += len(table)
    stats.rows_out += len(rows)
    return rows


def computed_filter_rows(
    node: ComputedFilterNode, rows: list[Row], ctx: QueryContext
) -> list[Row]:
    """Apply a computer-evaluable predicate (streamable: call per chunk)."""
    assert node.predicate is not None
    env = ctx.catalog.functions()
    kept = [row for row in rows if node.predicate.evaluate(row, env)]
    stats = ctx.stats_for(node)
    stats.rows_in += len(rows)
    stats.rows_out += len(kept)
    return kept


def limit_rows(node: LimitNode, rows: list[Row], ctx: QueryContext) -> list[Row]:
    """Keep the first ``count`` rows."""
    stats = ctx.stats_for(node)
    stats.rows_in += len(rows)
    kept = rows[: node.count]
    stats.rows_out += len(kept)
    return kept


def crowd_filter_rows(
    node: CrowdPredicateNode, rows: list[Row], ctx: QueryContext
) -> list[Row]:
    """Run a crowd predicate over materialised input rows."""
    assert node.predicate is not None
    stats = ctx.stats_for(node)
    stats.rows_in += len(rows)
    if not rows:
        return []
    bindings = run_predicate_calls(node.predicate, rows, ctx, "where")
    stats.hits += bindings.outcome.hit_count
    stats.assignments += bindings.outcome.assignment_count
    stats.elapsed_seconds += bindings.outcome.elapsed_seconds
    stats.signals.update(bindings.signals)
    kept = [
        row
        for row in rows
        if evaluate_with_crowd(node.predicate, row, bindings, ctx)
    ]
    stats.rows_out += len(kept)
    return kept


def join_rows(
    node: JoinNode, left_rows: list[Row], right_rows: list[Row], ctx: QueryContext
) -> list[Row]:
    """Run the crowd equijoin over materialised inputs."""
    left_aliases = plan_aliases(node.inputs[0])
    right_aliases = plan_aliases(node.inputs[1])
    return execute_join(node, left_rows, right_rows, ctx, left_aliases, right_aliases)


def plan_aliases(node: PlanNode) -> set[str]:
    """Every scan alias bound inside a subtree."""
    return {n.alias for n in node.walk() if n.kind == ScanNode.kind}


def project_crowd_calls(node: ProjectNode, ctx: QueryContext) -> list[UDFCall]:
    """The generative crowd calls appearing in a select list (§2.2)."""
    if node.star:
        return []
    return [
        call
        for item in node.items
        for call in item.expr.udf_calls()
        if not ctx.catalog.has_function(call.name)
    ]


def project_rows(node: ProjectNode, rows: list[Row], ctx: QueryContext) -> list[Row]:
    """Evaluate the select list; may trigger generative crowd work.

    Streamable per chunk only when :func:`project_crowd_calls` is empty —
    generative select items batch HITs over the whole input.
    """
    stats = ctx.stats_for(node)
    stats.rows_in += len(rows)
    if node.star:
        stats.rows_out += len(rows)
        return rows
    crowd_calls = project_crowd_calls(node, ctx)
    bindings = None
    if crowd_calls and rows:
        from repro.relational.expressions import And

        synthetic = And(operands=tuple(item.expr for item in node.items))
        bindings = run_predicate_calls(synthetic, rows, ctx, "select")
        stats.hits += bindings.outcome.hit_count
        stats.assignments += bindings.outcome.assignment_count
        stats.signals.update(bindings.signals)

    from repro.relational.rows import Row as RowClass
    from repro.relational.schema import Column, ColumnType, Schema

    names = [item.output_name for item in node.items]
    schema = Schema([Column(name, ColumnType.ANY) for name in names])
    env = ctx.catalog.functions()
    out: list[Row] = []
    for row in rows:
        values = {}
        for item, name in zip(node.items, names):
            if bindings is not None and any(
                not ctx.catalog.has_function(call.name)
                for call in item.expr.udf_calls()
            ):
                values[name] = evaluate_with_crowd(item.expr, row, bindings, ctx)
            else:
                values[name] = _evaluate_plain(item.expr, row, env)
        out.append(RowClass(schema, values))
    stats.rows_out += len(out)
    return out


def _evaluate_plain(expr, row: Row, env) -> object:
    """Evaluate a non-crowd select expression; bare aliases unsupported."""
    if isinstance(expr, UDFCall) and expr.name not in env:
        raise ExecutionError(
            f"crowd UDF {expr.name!r} reached plain evaluation — planner bug"
        )
    return expr.evaluate(row, env)


# ---------------------------------------------------------------------------
# Builtin node-kind registrations (the paper's operators)
# ---------------------------------------------------------------------------


def _exec_computed_filter(node: ComputedFilterNode, ctx: QueryContext) -> list[Row]:
    return computed_filter_rows(node, run_plan_depth_first(node.inputs[0], ctx), ctx)


def _exec_crowd_filter(node: CrowdPredicateNode, ctx: QueryContext) -> list[Row]:
    return crowd_filter_rows(node, run_plan_depth_first(node.inputs[0], ctx), ctx)


def _exec_adaptive_filter(node: AdaptiveFilterNode, ctx: QueryContext) -> list[Row]:
    from repro.core.adaptive import adaptive_filter_rows

    return adaptive_filter_rows(node, run_plan_depth_first(node.inputs[0], ctx), ctx)


def _exec_join(node: JoinNode, ctx: QueryContext) -> list[Row]:
    left_rows = run_plan_depth_first(node.inputs[0], ctx)
    right_rows = run_plan_depth_first(node.inputs[1], ctx)
    return join_rows(node, left_rows, right_rows, ctx)


def _exec_sort(node: SortNode, ctx: QueryContext) -> list[Row]:
    rows = run_plan_depth_first(node.inputs[0], ctx)
    return execute_sort(node, rows, ctx)


def _exec_project(node: ProjectNode, ctx: QueryContext) -> list[Row]:
    return project_rows(node, run_plan_depth_first(node.inputs[0], ctx), ctx)


def _exec_limit(node: LimitNode, ctx: QueryContext) -> list[Row]:
    return limit_rows(node, run_plan_depth_first(node.inputs[0], ctx), ctx)


NODE_EXECUTORS.register(ScanNode.kind, scan_rows)
NODE_EXECUTORS.register(ComputedFilterNode.kind, _exec_computed_filter)
NODE_EXECUTORS.register(CrowdPredicateNode.kind, _exec_crowd_filter)
NODE_EXECUTORS.register(AdaptiveFilterNode.kind, _exec_adaptive_filter)
NODE_EXECUTORS.register(JoinNode.kind, _exec_join)
NODE_EXECUTORS.register(SortNode.kind, _exec_sort)
NODE_EXECUTORS.register(ProjectNode.kind, _exec_project)
NODE_EXECUTORS.register(LimitNode.kind, _exec_limit)
