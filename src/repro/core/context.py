"""Execution configuration and per-query context.

:class:`ExecutionConfig` carries every tunable the paper studies — batch
sizes, join interface, sort method, assignment counts, combiner choice,
feature-filtering switches — so experiments are pure configuration sweeps.
:class:`QueryContext` carries the live machinery (catalog, task manager,
stats) through one query execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

from repro.combine import get_combiner
from repro.combine.adaptive import AdaptivePolicy
from repro.combine.base import Combiner
from repro.errors import PlanError
from repro.hits.manager import TaskManager
from repro.joins.batching import JoinInterface
from repro.relational.catalog import Catalog

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.plan import PlanNode


@dataclass(frozen=True)
class ExecutionConfig:
    """Every knob the operators read. Defaults follow the paper's setup."""

    assignments: int = 5
    """Worker responses requested per HIT (§2.1 default)."""

    combiner: str | None = None
    """Override the per-task combiner ('MajorityVote' / 'QualityAdjust')."""

    filter_batch_size: int = 5
    """Tuples per filter HIT (merging)."""

    generative_batch_size: int = 4
    """Tuples per generative HIT (the paper's feature extraction used 4)."""

    combine_features: bool = True
    """Ask all of a tuple's features in one HIT (combining, §3.3.4)."""

    join_interface: JoinInterface = JoinInterface.SMART
    """Which join UI to use."""

    naive_batch_size: int = 5
    """Pairs per NaiveBatch HIT."""

    grid_rows: int = 5
    grid_cols: int = 5
    """SmartBatch grid dimensions."""

    use_feature_filters: bool = True
    """Apply POSSIBLY clauses at all."""

    auto_feature_selection: bool = False
    """Run the §3.2 rejection tests instead of applying every feature."""

    sort_method: str = "compare"
    """'compare', 'rate', or 'hybrid' (§4.1)."""

    compare_group_size: int = 5
    """Items per comparison group (S)."""

    compare_batch_groups: int = 1
    """Comparison groups per HIT (b)."""

    rate_batch_size: int = 5
    """Ratings per HIT (b)."""

    rate_anchor_count: int = 10
    """Random context items shown in the rating interface."""

    hybrid_strategy: str = "window"
    """'random', 'confidence', or 'window'."""

    hybrid_stride: int = 6
    """Sliding-window stride t (Window 6 won in §4.2.4)."""

    hybrid_iterations: int = 30
    """Comparison HITs the hybrid sort may spend."""

    adaptive: AdaptivePolicy | None = None
    """Adaptive assignment counts (§6 extension); None = fixed count."""

    max_budget: float | None = None
    """Abort (raise) before posting work that would exceed this many dollars."""

    strict_hits: bool = True
    """Raise when the crowd leaves HITs uncompleted."""

    seed: int = 0
    """Seed for engine-side sampling (covering groups, anchors, windows)."""

    def __post_init__(self) -> None:
        if self.sort_method not in ("compare", "rate", "hybrid"):
            raise PlanError(f"unknown sort method {self.sort_method!r}")
        if self.hybrid_strategy not in ("random", "confidence", "window"):
            raise PlanError(f"unknown hybrid strategy {self.hybrid_strategy!r}")
        if self.assignments < 1:
            raise PlanError("assignments must be >= 1")

    def with_overrides(self, **kwargs) -> "ExecutionConfig":
        """A copy with some fields replaced (experiment sweeps)."""
        return replace(self, **kwargs)


@dataclass
class OperatorStats:
    """Signals collected per plan node for EXPLAIN (§6)."""

    label: str = ""
    hits: int = 0
    assignments: int = 0
    rows_in: int = 0
    rows_out: int = 0
    elapsed_seconds: float = 0.0
    signals: dict[str, float] = field(default_factory=dict)


@dataclass
class QueryContext:
    """Live state for one query execution."""

    catalog: Catalog
    manager: TaskManager
    config: ExecutionConfig = field(default_factory=ExecutionConfig)
    node_stats: dict[int, OperatorStats] = field(default_factory=dict)

    def combiner_for(self, task_combiner: str) -> Combiner:
        """Instantiate the effective combiner for a task."""
        name = self.config.combiner or task_combiner
        return get_combiner(name)

    def stats_for(self, node: "PlanNode") -> OperatorStats:
        """The mutable stats bucket for a plan node."""
        return self.node_stats.setdefault(id(node), OperatorStats(label=node.label()))

    def charge_budget(self, upcoming_assignments: int) -> None:
        """Pre-flight budget check before posting more work."""
        if self.config.max_budget is None:
            return
        projected = self.manager.ledger.total_cost + self.manager.ledger.pricing.cost(
            upcoming_assignments
        )
        if projected > self.config.max_budget + 1e-9:
            from repro.errors import BudgetExceededError

            raise BudgetExceededError(
                f"posting {upcoming_assignments} assignments would cost "
                f"${projected:.2f}, exceeding the ${self.config.max_budget:.2f} budget"
            )
