"""Execution configuration and per-query context.

:class:`ExecutionConfig` carries every tunable the paper studies — batch
sizes, join interface, sort method, assignment counts, combiner choice,
feature-filtering switches — so experiments are pure configuration sweeps.
:class:`QueryContext` carries the live machinery (catalog, task manager,
stats) through one query execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

from repro.combine import get_combiner
from repro.combine.adaptive import AdaptivePolicy
from repro.combine.base import Combiner
from repro.errors import PlanError
from repro.hits.manager import TaskManager
from repro.joins.batching import JoinInterface
from repro.relational.catalog import Catalog

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.plan import PlanNode


@dataclass(frozen=True)
class ExecutionConfig:
    """Every knob the operators read. Defaults follow the paper's setup."""

    assignments: int = 5
    """Worker responses requested per HIT (§2.1 default)."""

    combiner: str | None = None
    """Override the per-task combiner ('MajorityVote' / 'QualityAdjust')."""

    filter_batch_size: int = 5
    """Tuples per filter HIT (merging)."""

    generative_batch_size: int = 4
    """Tuples per generative HIT (the paper's feature extraction used 4)."""

    combine_features: bool = True
    """Ask all of a tuple's features in one HIT (combining, §3.3.4)."""

    join_interface: JoinInterface = JoinInterface.SMART
    """Which join UI to use."""

    naive_batch_size: int = 5
    """Pairs per NaiveBatch HIT."""

    grid_rows: int = 5
    grid_cols: int = 5
    """SmartBatch grid dimensions."""

    use_feature_filters: bool = True
    """Apply POSSIBLY clauses at all."""

    auto_feature_selection: bool = False
    """Run the §3.2 rejection tests instead of applying every feature."""

    sort_method: str = "compare"
    """'compare', 'rate', or 'hybrid' (§4.1)."""

    compare_group_size: int = 5
    """Items per comparison group (S)."""

    compare_batch_groups: int = 1
    """Comparison groups per HIT (b)."""

    rate_batch_size: int = 5
    """Ratings per HIT (b)."""

    rate_anchor_count: int = 10
    """Random context items shown in the rating interface."""

    hybrid_strategy: str = "window"
    """'random', 'confidence', or 'window'."""

    hybrid_stride: int = 6
    """Sliding-window stride t (Window 6 won in §4.2.4)."""

    hybrid_iterations: int = 30
    """Comparison HITs the hybrid sort may spend."""

    limit_sort_tournament: bool | None = None
    """Force the ``ORDER BY rank(...) LIMIT k`` tournament path on/off for
    this query; None defers to the ``REPRO_SORTSCALE`` toggle
    (:mod:`repro.util.sortscale`). When active (and the sort method is
    'compare', the ORDER BY has no plain prefix, and k is below the item
    count), the sort extracts the leading k items with successive
    best-of-batch tournaments (§2.3's MAX/MIN interface) instead of full
    C(N, 2) pair coverage — O(N·k/b) HITs instead of O(N²). Unlike the
    toggle's other (stream-preserving) fast paths, this one deliberately
    changes the HIT stream, so the two modes poll different crowds: the
    leading rows come back identical whenever the crowd's judgements
    among the leaders are consistent (high-margin comparisons), while for
    genuinely ambiguous leaders the tournament can disagree with the full
    sort's win-count ranking — just as re-running the full sort against a
    different crowd would. Set this to False for correctness-sensitive
    queries over ambiguous data."""

    limit_pick_batch_size: int = 5
    """Items per best-of-batch pick HIT in the LIMIT tournament path."""

    adaptive: AdaptivePolicy | None = None
    """Adaptive assignment counts (§6 extension); None = fixed count."""

    max_budget: float | None = None
    """Abort (raise) before posting work that would exceed this many dollars."""

    strict_hits: bool = True
    """Raise when the crowd leaves HITs uncompleted."""

    seed: int = 0
    """Seed for engine-side sampling (covering groups, anchors, windows)."""

    pipeline: bool | None = None
    """Force the pipelined executor on/off for this query; None defers to
    the ``REPRO_PIPELINE`` toggle (:mod:`repro.util.pipeline`). Either way
    the pipelined executor also requires a platform with the multi-client
    ``submit_hit_group``/``harvest`` API, falling back to depth-first."""

    pipeline_chunk_size: int = 64
    """Rows per chunk flowing through the pipelined executor's queues."""

    pipeline_queue_chunks: int = 8
    """Bounded capacity (in chunks) of each inter-operator queue; a full
    queue stalls the producer (back-pressure)."""

    adapt: bool | None = None
    """Force the cost-based adaptive re-optimizer on/off for this query;
    None defers to the ``REPRO_ADAPT`` toggle (:mod:`repro.util.adapt`).
    When active, adjacent crowd WHERE conjuncts fuse into an adaptive
    filter that orders them by observed selectivity and re-plans after
    every crowd round (:mod:`repro.core.adaptive`)."""

    adaptive_pilot_fraction: float = 0.2
    """Fraction of a fused chain's input rows the pilot pass samples to
    measure each conjunct's selectivity before ordering the cascade."""

    adaptive_min_pilot: int = 5
    """Smallest worthwhile pilot sample; inputs below twice this skip the
    pilot and cascade in observed-estimate order directly."""

    budget_preflight: bool = False
    """With ``max_budget`` set and the adaptive optimizer active, abort
    before posting *anything* when the cost model's whole-plan forecast
    says even a trimmed allocation cannot fit (see
    :func:`repro.core.budget.plan_preflight`). Off by default: the
    per-round pre-flight in ``charge_budget_for_units`` remains the
    precise, cache-aware gate."""

    resilience: bool | None = None
    """Force the fault-injection/resilience layer on/off for this query;
    None defers to the ``REPRO_RESILIENCE`` toggle
    (:mod:`repro.util.resilience`). Even when on, the layer only arms
    against a platform carrying an active
    :class:`~repro.crowd.faults.FaultPlan` — fault-free marketplaces keep
    the strict historical behaviour bit-for-bit."""

    retry_deadline: float | None = None
    """Virtual-seconds retry budget per HIT group (from its original post
    time): reposts whose backoff would start past this are skipped and the
    group degrades instead. None = no deadline; only ``max_reposts`` caps
    the fight."""

    max_reposts: int = 2
    """Maximum repost rounds per HIT group when slots go unfilled."""

    backoff_base: float = 120.0
    """Virtual seconds of backoff before the first repost round; round n
    waits ``backoff_base * 2^(n-1)``."""

    degrade_quorum: float = 0.5
    """Fraction of requested assignments below which a HIT that exhausted
    its retries is flagged degraded in ``degradation_summary`` (combiners
    accept whatever k-of-n votes arrived either way)."""

    def __post_init__(self) -> None:
        if self.sort_method not in ("compare", "rate", "hybrid"):
            raise PlanError(f"unknown sort method {self.sort_method!r}")
        if self.hybrid_strategy not in ("random", "confidence", "window"):
            raise PlanError(f"unknown hybrid strategy {self.hybrid_strategy!r}")
        if self.assignments < 1:
            raise PlanError("assignments must be >= 1")
        if self.pipeline_chunk_size < 1:
            raise PlanError("pipeline_chunk_size must be >= 1")
        if self.pipeline_queue_chunks < 1:
            raise PlanError("pipeline_queue_chunks must be >= 1")
        if self.limit_pick_batch_size < 2:
            raise PlanError("limit_pick_batch_size must be >= 2")
        if not 0.0 < self.adaptive_pilot_fraction <= 1.0:
            raise PlanError("adaptive_pilot_fraction must be in (0, 1]")
        if self.adaptive_min_pilot < 1:
            raise PlanError("adaptive_min_pilot must be >= 1")
        if self.max_reposts < 0:
            raise PlanError("max_reposts must be >= 0")
        if self.backoff_base <= 0:
            raise PlanError("backoff_base must be > 0")
        if not 0.0 < self.degrade_quorum <= 1.0:
            raise PlanError("degrade_quorum must be in (0, 1]")
        if self.retry_deadline is not None and self.retry_deadline <= 0:
            raise PlanError("retry_deadline must be > 0 when set")

    def with_overrides(self, **kwargs) -> "ExecutionConfig":
        """A copy with some fields replaced (experiment sweeps)."""
        return replace(self, **kwargs)


@dataclass
class PipelineStats:
    """Per-operator pipelined-execution telemetry for EXPLAIN.

    Filled in by :mod:`repro.core.scheduler` when a query runs under the
    pipelined executor; ``None`` on :class:`OperatorStats` otherwise.
    """

    stage: int = 0
    """The operator's position in the pipeline's deterministic posting
    order (post-order plan rank; the depth-first interpreter posts in this
    exact order, which is why the two executors' vote streams agree)."""

    depth: int = 0
    """Chain length from this operator down to its deepest leaf — the
    number of pipeline stages whose work can be in flight below it."""

    queue_capacity: int = 0
    """Output-queue bound, in chunks."""

    queue_peak: int = 0
    """High-water occupancy of the output queue, in chunks."""

    chunks_emitted: int = 0
    """Chunks this operator pushed downstream."""

    emit_stalls: int = 0
    """Times the operator blocked on a full output queue (back-pressure)."""

    groups_posted: int = 0
    """HIT groups this operator posted."""

    peak_outstanding: int = 0
    """Most HIT groups this operator had outstanding at once."""

    started_at: float = 0.0
    finished_at: float = 0.0
    """Virtual-time interval over which the operator was live."""


@dataclass
class OperatorStats:
    """Signals collected per plan node for EXPLAIN (§6)."""

    label: str = ""
    hits: int = 0
    assignments: int = 0
    rows_in: int = 0
    rows_out: int = 0
    elapsed_seconds: float = 0.0
    signals: dict[str, float] = field(default_factory=dict)
    pipeline: PipelineStats | None = None


@dataclass
class QueryContext:
    """Live state for one query execution."""

    catalog: Catalog
    manager: TaskManager
    config: ExecutionConfig = field(default_factory=ExecutionConfig)
    node_stats: dict[int, OperatorStats] = field(default_factory=dict)
    pipeline_summary: dict[str, float] | None = None
    """Whole-query pipeline telemetry (stages, makespan, serial latency,
    peak outstanding groups) when the pipelined executor ran; None under
    the depth-first interpreter."""
    label: str = ""
    """Which query this is, for diagnostics — a session sets its per-query
    key here so e.g. budget aborts say which of its queries hit the cap."""

    adapt: object | None = None
    """The query's :class:`~repro.core.adaptive.AdaptiveState` (selectivity
    book, re-plan event log, cost forecast) when the adaptive optimizer is
    active; None under ``REPRO_ADAPT=0``. Typed loosely to keep this module
    import-light; the engine and session construct it."""

    def combiner_for(self, task_combiner: str) -> Combiner:
        """Instantiate the effective combiner for a task."""
        name = self.config.combiner or task_combiner
        return get_combiner(name)

    def stats_for(self, node: "PlanNode") -> OperatorStats:
        """The mutable stats bucket for a plan node."""
        return self.node_stats.setdefault(id(node), OperatorStats(label=node.label()))

    def charge_budget_for_units(
        self, units, batch_size: int, assignments: int
    ) -> None:
        """Pre-flight a posting round of ``units`` against ``max_budget``.

        Projects through :meth:`TaskManager.projected_new_assignments`, so
        unit batches already answered in the task cache are not counted —
        but only when a budget is actually set: the projection re-merges
        the units and computes cache keys, work that must stay off the
        un-budgeted hot path.
        """
        if self.config.max_budget is None:
            return
        self.charge_budget(
            self.manager.projected_new_assignments(units, batch_size, assignments)
        )

    def charge_budget(self, upcoming_assignments: int) -> None:
        """Pre-flight budget check before posting more work.

        Counts the ledger plus any posted-but-unharvested work: under the
        pipelined executor, ledger charges land at harvest time, so the
        operator manager proxy exposes ``inflight_assignments`` for the
        groups currently outstanding — keeping the abort point identical
        to the depth-first interpreter's, where every posting charges the
        ledger before the next pre-flight check runs.
        """
        if self.config.max_budget is None:
            return
        inflight = getattr(self.manager, "inflight_assignments", 0)
        projected = self.manager.ledger.total_cost + self.manager.ledger.pricing.cost(
            upcoming_assignments + inflight
        )
        if projected > self.config.max_budget + 1e-9:
            from repro.errors import BudgetExceededError

            prefix = f"{self.label}: " if self.label else ""
            raise BudgetExceededError(
                f"{prefix}posting {upcoming_assignments} assignments would cost "
                f"${projected:.2f}, exceeding the ${self.config.max_budget:.2f} budget"
            )
