"""Multi-query sessions: one marketplace, many concurrent queries.

The paper frames Qurk as a workflow engine serving *many* users' queries
against one crowd marketplace; this module is that serving layer. An
:class:`EngineSession` accepts N queries and runs each through the
pipelined scheduler (:mod:`repro.core.scheduler`) as a named client of one
shared :class:`~repro.crowd.marketplace.SimulatedMarketplace` virtual
clock, with three session-level guarantees:

* **Fair round-robin admission.** Each live query advances by one
  scheduler effect per round (:meth:`PipelineScheduler.step_once`), so a
  heavyweight query cannot starve a light one of marketplace admission;
  the session's admission log records the interleaving.
* **Cross-query HIT dedup.** Every query posts through a
  :class:`~repro.hits.cache.TaskCacheView` over one shared
  :class:`~repro.hits.cache.TaskCache`: identical units posted by
  different queries are asked of the crowd once and fanned out, with the
  borrowed assignments (and dollars saved) attributed per query.
* **Budget isolation.** Each query has its own
  :class:`~repro.hits.pricing.CostLedger` and ``max_budget``; a
  :class:`~repro.errors.BudgetExceededError` (or any other failure) in
  one query settles that query's outstanding groups and is recorded on
  its handle — sibling queries' ledgers and executions are untouched.

Determinism
-----------
Each query's marketplace draws come from its own client stream keyed by
*its own* posting order (see "Named clients" in
:mod:`repro.crowd.marketplace`), so a query's rows, votes, and ledger are
bit-identical whether the session runs its queries concurrently or
serially (``run(concurrent=False)``) — concurrency changes completion
*times*, not results. A single-query session runs on the marketplace's
default client stream and is bit-identical to a plain
:class:`~repro.core.engine.Qurk` execution, which
``tests/test_determinism_trace.py`` pins against the golden trace.

The exception is deliberate: cross-query cache sharing lets a query reuse
a sibling's answers, in which case its votes equal the sibling's instead
of fresh draws. Cached entries belong to whichever query posts a unit
first, and *that* is a property of the schedule — for queries that share
HITs, the two run modes can disagree about which sibling posts a shared
unit first (and therefore whose stream answered it and who paid). Each
unit is still asked of the crowd exactly once in either mode; per-query
bit-identicality across modes is guaranteed for queries that share no
HITs, and holds for shared-HIT workloads whenever the admission order of
the shared units is the same under both schedules (e.g. identical queries
progressing in lockstep).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.adaptive import AdaptiveState, build_state
from repro.core.context import ExecutionConfig, QueryContext
from repro.core.engine import (
    MarketplaceSnapshot,
    QueryResult,
    parse_single_select,
    register_task_definitions,
    resolve_store,
    store_counters,
    store_summary_delta,
)
from repro.core.executor import run_plan
from repro.core.explain import render_session_summary
from repro.core.optimizer import optimize
from repro.core.plan import PlanNode
from repro.core.planner import build_plan
from repro.core.scheduler import PipelineScheduler
from repro.crowd.marketplace import MarketplaceClient
from repro.errors import (
    BudgetExceededError,
    ExecutionError,
    MarketplaceError,
    PlanError,
)
from repro.hits.cache import HITCache, TaskCache, TaskCacheView
from repro.hits.manager import CrowdPlatform, TaskManager, platform_supports_overlap
from repro.hits.pricing import CostLedger
from repro.hits.resilience import ResilienceState, build_resilience
from repro.hits.store import StoreSpec
from repro.language.ast import SelectQuery
from repro.relational.catalog import Catalog
from repro.relational.table import Table
from repro.util import adapt as adapt_toggle
from repro.util import fastpath
from repro.util import pipeline as pipeline_toggle
from repro.util import resilience as resilience_toggle
from repro.util import sortscale as sortscale_toggle
from repro.util import store as store_toggle
from repro.util import vector as vector_toggle


_SESSION_FAULT_COUNTERS = (
    "abandoned_assignments",
    "expired_slots",
    "spam_assignments",
    "straggler_assignments",
    "transient_errors",
)
"""Marketplace fault counters snapshotted per query (default-client case)."""


@dataclass
class SessionQuery:
    """One submitted query's handle: inputs before :meth:`EngineSession.run`,
    outcome after.

    Exactly one of ``result`` / ``error`` is set once the session ran.
    """

    key: str
    """Stable session-assigned id (``q0``, ``q1``, ... in submission order);
    also the query's marketplace client id in multi-query sessions."""

    label: str
    query: str | SelectQuery
    catalog: Catalog
    config: ExecutionConfig

    plan: PlanNode | None = None
    result: QueryResult | None = None
    error: Exception | None = None

    # live machinery, populated by the session at run time
    ledger: CostLedger = field(default_factory=CostLedger)
    cache_view: TaskCacheView | None = None
    client: MarketplaceClient | None = None
    ctx: QueryContext | None = None
    adapt_state: AdaptiveState | None = None
    """The query's own adaptive-optimizer state. Estimate state is
    strictly per-query under concurrency: each query's selectivity book
    sees only its own observations, so its re-planning is a deterministic
    function of its own progress, never of how far siblings happen to have
    advanced in the round-robin."""
    resilience_state: ResilienceState | None = None
    """The query's own resilience bundle (retry policy, degradation
    summary, circuit breaker); ``None`` when the layer is inert. Strictly
    per-query: an aborted or degraded query settles its own groups while
    siblings and the shared cache stay untouched."""
    epoch: float = 0.0
    _sched: PipelineScheduler | None = None
    _stats_before: tuple[int, int, int] | None = None
    _faults_before: dict[str, int] | None = None

    @property
    def ok(self) -> bool:
        """Whether the query completed (vs failed or not yet run)."""
        return self.result is not None

    @property
    def cross_cache_hits(self) -> int:
        """HIT lookups this query served from another query's entries."""
        return self.cache_view.cross_hits if self.cache_view is not None else 0

    @property
    def cross_assignments_shared(self) -> int:
        """Assignments this query reused instead of re-posting."""
        return self.cache_view.cross_assignments if self.cache_view is not None else 0


@dataclass
class SessionStats:
    """Session-level overlap and sharing economics."""

    mode: str
    """``concurrent`` (round-robin over pipelined schedulers) or ``serial``
    (each query to completion in submission order)."""

    queries: int = 0
    completed: int = 0
    failed: int = 0
    epoch: float = 0.0
    makespan_seconds: float = 0.0
    """Virtual span from the session epoch to the last harvested finish —
    what a requester waits for the whole batch."""

    serial_latency_seconds: float = 0.0
    """Sum of the per-query virtual spans — what running the queries one
    after another would have taken."""

    cross_cache_hits: int = 0
    cross_assignments_shared: int = 0
    cost_saved: float = 0.0
    """Dollars the cross-query sharing avoided re-spending."""

    store_summary: dict[str, object] | None = None
    """Persistent-answer-store traffic for the whole run when the session's
    shared cache is a :class:`~repro.hits.store.PersistentAnswerStore`
    (hits/misses, disk reuse, evictions, dollars saved); None otherwise.
    Session-wide rather than per-query: the store is shared, so disk reuse
    belongs to the batch, not to whichever sibling happened to ask first."""

    groups_posted: dict[str, int] = field(default_factory=dict)
    admission_log: list[tuple[str, str | None]] = field(default_factory=list)
    """(query key, group id) per marketplace submission, in admission
    order — the observable record of round-robin fairness."""

    @property
    def overlap_speedup(self) -> float:
        """Serial latency over makespan (1.0 = no overlap won anything)."""
        if self.makespan_seconds <= 0:
            return 1.0
        return self.serial_latency_seconds / self.makespan_seconds


@dataclass
class SessionResult:
    """All queries' outcomes plus the session economics."""

    queries: list[SessionQuery]
    stats: SessionStats

    def __getitem__(self, key: str | int | SessionQuery) -> QueryResult:
        """A query's result by handle, key, or submission index.

        Raises the query's recorded error if it failed.
        """
        handle = self._handle(key)
        if handle.error is not None:
            raise handle.error
        assert handle.result is not None
        return handle.result

    def _handle(self, key: str | int | SessionQuery) -> SessionQuery:
        if isinstance(key, SessionQuery):
            return key
        if isinstance(key, int):
            return self.queries[key]
        # Keys take precedence over labels: a label that happens to equal
        # another query's key must not shadow that query.
        for query in self.queries:
            if query.key == key:
                return query
        for query in self.queries:
            if query.label == key:
                return query
        raise KeyError(key)

    @property
    def results(self) -> dict[str, QueryResult]:
        """Completed queries' results by key."""
        return {q.key: q.result for q in self.queries if q.result is not None}

    @property
    def errors(self) -> dict[str, Exception]:
        """Failed queries' errors by key."""
        return {q.key: q.error for q in self.queries if q.error is not None}

    def explain(self) -> str:
        """Per-query EXPLAIN trees plus the session overlap/sharing footer."""
        lines: list[str] = []
        for query in self.queries:
            lines.append(f"== {query.key} ({query.label})")
            if query.error is not None:
                lines.append(f"  failed: {type(query.error).__name__}: {query.error}")
            elif query.result is not None:
                lines.append(query.result.explain())
                if query.cross_cache_hits:
                    lines.append(
                        f"shared: cross_query_cache_hits={query.cross_cache_hits}"
                        f", assignments_reused={query.cross_assignments_shared}"
                    )
        lines.append(render_session_summary(self.stats))
        return "\n".join(lines)


class EngineSession:
    """Run many queries concurrently over one shared crowd marketplace.

    Typical use::

        market = SimulatedMarketplace(truth, seed=1)
        session = EngineSession(platform=market)
        session.register_table(celebs)
        session.define(TASK_DSL)
        h0 = session.submit("SELECT ...")
        h1 = session.submit("SELECT ...", config=other_config)
        outcome = session.run()
        outcome[h0].rows, outcome[h1].total_cost, outcome.stats.overlap_speedup

    Tables, functions, and tasks registered on the session land in its
    default catalog, shared by every query that does not bring its own.
    ``run(concurrent=False)`` executes the same queries one at a time —
    the baseline the benchmarks compare overlap against; per-query results
    are identical either way (see the module docstring). Sessions are
    one-shot: build a new one for another batch.

    Concurrency needs the platform's multi-client
    ``submit_hit_group``/``harvest`` API and the pipelined executor; a
    blocking-only platform (or ``REPRO_PIPELINE=0``) falls back to serial
    execution, and a per-query ``ExecutionConfig(pipeline=False)`` makes
    just that query run depth-first — atomically on its first round-robin
    turn — while its siblings still overlap.
    """

    def __init__(
        self,
        platform: CrowdPlatform,
        config: ExecutionConfig | None = None,
        catalog: Catalog | None = None,
        cache: TaskCache | None = None,
        store: StoreSpec | None = None,
    ) -> None:
        # Honour REPRO_* environment changes made after import (the
        # toggles' import-time capture used to swallow them silently).
        pipeline_toggle.refresh_from_env()
        fastpath.refresh_from_env()
        adapt_toggle.refresh_from_env()
        sortscale_toggle.refresh_from_env()
        resilience_toggle.refresh_from_env()
        store_toggle.refresh_from_env()
        vector_toggle.refresh_from_env()
        self.platform = platform
        self.config = config or ExecutionConfig()
        self.catalog = catalog or Catalog()
        self.store = resolve_store(store, cache)
        """The attached persistent answer store (``None`` when no ``store=``
        was configured or ``REPRO_STORE=0`` ignored it)."""
        # Explicit None test: an *empty* store is falsy (len() == 0) but
        # must still serve as the shared cache.
        self.cache: HITCache = (
            self.store if self.store is not None else (cache or TaskCache())
        )
        self._owners: dict[str, str] = {}
        self.queries: list[SessionQuery] = []
        self._ran = False

    # -- registration (mirrors the Qurk facade) ------------------------

    def register_table(self, table: Table, replace: bool = False) -> None:
        """Make a table queryable in the session's default catalog."""
        self.catalog.register_table(table, replace=replace)

    def register_function(
        self, name: str, fn: Callable[..., object], replace: bool = False
    ) -> None:
        """Register a computer-evaluable scalar function."""
        self.catalog.register_function(name, fn, replace=replace)

    def define(self, dsl_text: str, replace: bool = False) -> list[str]:
        """Parse and register TASK definitions; returns the task names."""
        return register_task_definitions(self.catalog, dsl_text, replace=replace)

    # -- building the batch --------------------------------------------

    def submit(
        self,
        query: str | SelectQuery,
        config: ExecutionConfig | None = None,
        catalog: Catalog | None = None,
        label: str | None = None,
    ) -> SessionQuery:
        """Queue a query for the next :meth:`run`; returns its handle.

        ``config`` / ``catalog`` default to the session's; a per-query
        ``config`` is how one query gets its own ``max_budget``,
        ``assignments``, sort method, etc.
        """
        if self._ran:
            raise ExecutionError("session already ran; sessions are one-shot")
        key = f"q{len(self.queries)}"
        handle = SessionQuery(
            key=key,
            label=label or key,
            query=query,
            catalog=catalog or self.catalog,
            config=config or self.config,
        )
        self.queries.append(handle)
        return handle

    # -- execution ------------------------------------------------------

    def run(self, concurrent: bool = True) -> SessionResult:
        """Execute every submitted query; never raises for per-query
        failures (they land on the handles / ``SessionResult.errors``)."""
        if self._ran:
            raise ExecutionError("session already ran; sessions are one-shot")
        if not self.queries:
            raise PlanError("session has no queries; submit() some first")
        self._ran = True
        overlap = platform_supports_overlap(self.platform)
        multi = len(self.queries) > 1
        # With no pipelinable query (REPRO_PIPELINE=0, or every query
        # configured pipeline=False) there is nothing to interleave —
        # report the serial execution that actually happens.
        can_pipeline = overlap and any(self._pipelined(h) for h in self.queries)
        stats = SessionStats(
            mode="concurrent" if concurrent and multi and can_pipeline else "serial",
            queries=len(self.queries),
            epoch=self.platform.clock_seconds,
        )
        store_before = (
            store_counters(self.store) if self.store is not None else None
        )

        for handle in self.queries:
            handle.cache_view = TaskCacheView(
                shared=self.cache, owner=handle.key, owners=self._owners
            )
            if overlap:
                # Single-query sessions stay on the default client stream:
                # that is what makes them bit-identical to a plain engine.
                handle.client = MarketplaceClient(
                    self.platform,
                    client_id=handle.key if multi else None,
                    on_submit=self._admission_logger(stats, handle.key),
                )
            handle.resilience_state = build_resilience(
                handle.config, handle.client or self.platform
            )
            manager = TaskManager(
                handle.client or self.platform,
                ledger=handle.ledger,
                cache=handle.cache_view,
                resilience=handle.resilience_state,
            )
            handle.adapt_state = build_state(handle.config)
            handle.ctx = QueryContext(
                catalog=handle.catalog,
                manager=manager,
                config=handle.config,
                label=handle.key,
                adapt=handle.adapt_state,
            )

        if stats.mode == "concurrent":
            self._run_concurrent(stats)
        else:
            self._run_serial(stats)

        stats.completed = sum(1 for h in self.queries if h.result is not None)
        stats.failed = sum(1 for h in self.queries if h.error is not None)
        stats.makespan_seconds = self.platform.clock_seconds - stats.epoch
        stats.serial_latency_seconds = sum(
            h.result.elapsed_seconds for h in self.queries if h.result is not None
        )
        stats.cross_cache_hits = sum(h.cross_cache_hits for h in self.queries)
        stats.cross_assignments_shared = sum(
            h.cross_assignments_shared for h in self.queries
        )
        pricing = self.queries[0].ledger.pricing
        stats.cost_saved = pricing.cost(stats.cross_assignments_shared)
        if self.store is not None and store_before is not None:
            stats.store_summary = store_summary_delta(
                self.store, store_before, pricing
            )
        stats.groups_posted = {
            h.key: h.client.groups_posted
            for h in self.queries
            if h.client is not None
        }
        return SessionResult(queries=list(self.queries), stats=stats)

    @staticmethod
    def _admission_logger(stats: SessionStats, key: str):
        def log(_client, ticket) -> None:
            stats.admission_log.append((key, ticket.group_id))

        return log

    def _pipelined(self, handle: SessionQuery) -> bool:
        flag = handle.config.pipeline
        if flag is None:
            flag = pipeline_toggle.enabled()
        return bool(flag)

    def _plan(self, handle: SessionQuery) -> PlanNode:
        parsed = parse_single_select(handle.query, handle.catalog)
        plan = optimize(
            build_plan(parsed, handle.catalog), adapt=handle.adapt_state
        )
        if handle.adapt_state is not None:
            from repro.core.adaptive import preflight

            # Same forecast + whole-plan budget pre-flight as the engine;
            # a budget_preflight abort raises here and lands on this
            # query's handle, before it posts anything.
            preflight(
                handle.adapt_state,
                plan,
                handle.catalog,
                handle.config,
                handle.ledger.pricing,
            )
        return plan

    def _run_serial(self, stats: SessionStats) -> None:
        """Each query to completion, in submission order (the baseline)."""
        for handle in self.queries:
            handle.epoch = self.platform.clock_seconds
            self._note_stats_before(handle)
            try:
                handle.plan = self._plan(handle)
                assert handle.ctx is not None
                rows = run_plan(handle.plan, handle.ctx)
            except Exception as exc:
                if not self._absorb_failure(handle, exc):
                    handle.error = exc
            else:
                self._finalize(handle, rows)

    def _run_concurrent(self, stats: SessionStats) -> None:
        """Round-robin: one scheduler effect per live query per round."""
        live: list[SessionQuery] = []
        for handle in self.queries:
            handle.epoch = self.platform.clock_seconds
            self._note_stats_before(handle)
            try:
                handle.plan = self._plan(handle)
            except Exception as exc:
                handle.error = exc
                continue
            assert handle.ctx is not None
            if self._pipelined(handle):
                handle._sched = PipelineScheduler(handle.plan, handle.ctx)
                handle._sched.prepare()
            live.append(handle)

        while live:
            progressed = False
            for handle in list(live):
                try:
                    if self._turn(handle):
                        progressed = True
                    if handle.result is not None or handle.error is not None:
                        live.remove(handle)
                except Exception as exc:
                    if handle._sched is not None:
                        handle._sched.settle()
                    if not self._absorb_failure(handle, exc):
                        handle.error = exc
                    live.remove(handle)
                    progressed = True
            if live and not progressed:
                stuck = ", ".join(h.key for h in live)
                raise ExecutionError(f"session deadlock; blocked queries: {stuck}")

    def _turn(self, handle: SessionQuery) -> bool:
        """One round-robin turn; returns whether the query progressed."""
        assert handle.ctx is not None and handle.plan is not None
        sched = handle._sched
        if sched is None:
            # Depth-first query (pipeline=False): atomic on its first turn.
            rows = run_plan(handle.plan, handle.ctx)
            self._finalize(handle, rows)
            return True
        progressed = sched.step_once()
        if sched.done:
            self._finalize(handle, sched.finish())
            return True
        return progressed

    def _absorb_failure(self, handle: SessionQuery, exc: Exception) -> bool:
        """Graceful query-level degradation: with the resilience layer
        armed, a budget/platform failure completes the query with the rows
        produced so far (plus an ``aborted`` entry in the degradation
        summary) instead of failing the handle. The scheduler was already
        settled by the caller, so the query's own groups are harvested;
        siblings and the shared cache are untouched. Returns whether the
        failure was absorbed."""
        state = handle.resilience_state
        if state is None or not isinstance(
            exc, (BudgetExceededError, MarketplaceError)
        ):
            return False
        rows = handle._sched.partial_rows() if handle._sched is not None else []
        state.aborted = f"{type(exc).__name__}: {exc}"
        self._finalize(handle, rows)
        return True

    def _note_stats_before(self, handle: SessionQuery) -> None:
        if handle.client is not None:
            return  # per-client deltas come from the facade itself
        live_stats = getattr(self.platform, "stats", None)
        if live_stats is not None:
            handle._stats_before = (
                getattr(live_stats, "considerations", 0),
                getattr(live_stats, "refusals", 0),
                getattr(live_stats, "assignments_completed", 0),
            )
            handle._faults_before = {
                name: getattr(live_stats, name, 0) for name in _SESSION_FAULT_COUNTERS
            }

    def _snapshot(self, handle: SessionQuery) -> MarketplaceSnapshot | None:
        if handle.client is not None:
            return MarketplaceSnapshot(
                considerations=handle.client.considerations,
                refusals=handle.client.refusals,
                assignments_completed=handle.client.assignments_completed,
            )
        if handle._stats_before is not None:
            live_stats = getattr(self.platform, "stats", None)
            before = handle._stats_before
            return MarketplaceSnapshot(
                considerations=getattr(live_stats, "considerations", 0) - before[0],
                refusals=getattr(live_stats, "refusals", 0) - before[1],
                assignments_completed=getattr(live_stats, "assignments_completed", 0)
                - before[2],
            )
        return None

    def _fault_deltas(self, handle: SessionQuery) -> dict[str, int] | None:
        """This query's injected-fault counts (client counters or platform
        stat diffs), for its degradation summary."""
        if handle.client is not None:
            client = handle.client
            return {
                "abandoned_assignments": client.abandoned_assignments,
                "expired_slots": client.expired_slots,
                "spam_assignments": client.spam_assignments,
                "straggler_assignments": client.straggler_assignments,
            }
        if handle._faults_before is not None:
            live_stats = getattr(self.platform, "stats", None)
            return {
                name: getattr(live_stats, name, 0) - before
                for name, before in handle._faults_before.items()
            }
        return None

    def _finalize(self, handle: SessionQuery, rows) -> None:
        assert handle.ctx is not None and handle.plan is not None
        if handle.client is not None and handle.client.last_finish_time is not None:
            elapsed = max(0.0, handle.client.last_finish_time - handle.epoch)
        elif handle.client is not None:
            elapsed = 0.0  # no crowd work reached the marketplace
        else:
            elapsed = self.platform.clock_seconds - handle.epoch
        degradation = None
        state = handle.resilience_state
        if state is not None:
            degradation = state.summary.as_dict()
            faults = self._fault_deltas(handle)
            if faults is not None:
                degradation.update(faults)
            if state.aborted is not None:
                degradation["aborted"] = state.aborted
        handle.result = QueryResult(
            rows=rows,
            plan=handle.plan,
            hit_count=handle.ledger.total_hits,
            assignment_count=handle.ledger.total_assignments,
            total_cost=handle.ledger.total_cost,
            elapsed_seconds=elapsed,
            node_stats=handle.ctx.node_stats,
            marketplace_stats=self._snapshot(handle),
            pipeline_summary=handle.ctx.pipeline_summary,
            adaptive_summary=handle.adapt_state.summary(
                actual_hits=handle.ledger.total_hits,
                actual_cost=handle.ledger.total_cost,
            )
            if handle.adapt_state is not None
            else None,
            degradation_summary=degradation,
        )
