"""The estimate-observe-replan loop (cost-based adaptive re-optimization).

The paper's Qurk "orders filters and joins as they appear in the query"
(§2.5) because it has no selectivity estimation; §6 defers cost-aware
planning to future work. This module closes that loop:

* :class:`SelectivityBook` — per-query online selectivity estimates:
  Laplace-smoothed priors before any crowd work, observed pass rates after
  (every completed crowd filter round, unary POSSIBLY prune, and feature
  pass feeds it).
* :class:`AdaptiveState` — one query's adaptive machinery: the book, the
  cost model's pre-execution forecast, the budget pre-flight report, and
  the :class:`ReplanEvent` log EXPLAIN renders.
* :class:`AdaptiveChainRun` — execution of a fused crowd-conjunct chain
  (:class:`~repro.core.plan.AdaptiveFilterNode`): a **pilot** pass runs
  every conjunct over a small row sample to measure real pass rates, then
  the remaining rows **cascade** through the conjuncts in ascending
  observed selectivity, re-planning the order after every crowd round —
  mid-query re-optimization between scheduler steps.

Determinism: the loop is a pure function of the plan, the input rows, and
the book's state; all crowd draws still flow through the task manager in
posting order. Two identical runs replan identically
(``tests/test_adaptive_optimizer.py`` pins an 8-query session). With
``REPRO_ADAPT=0`` none of this machinery is constructed and plans,
posting order, and the golden trace are bit-identical to the static
rewriter.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from repro.core.cost_model import (
    PlanCostEstimate,
    estimate_plan_cost,
    predicate_key,
)
from repro.core.crowd_calls import evaluate_with_crowd, run_predicate_calls

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.budget import PreflightReport
    from repro.core.context import ExecutionConfig, QueryContext
    from repro.core.plan import AdaptiveFilterNode, CrowdPredicateNode
    from repro.relational.rows import Row


@dataclass
class PredicateEstimate:
    """Running pass-rate tally for one predicate/feature key."""

    passed: float = 0.0
    seen: float = 0.0


class SelectivityBook:
    """Online selectivity estimates with Laplace-smoothed priors.

    ``estimate`` blends a prior (default 0.5 — maximum ignorance) with
    every observation so far: ``(passed + prior·weight) / (seen + weight)``.
    An engine shares one book across its (serial) queries, so repeated
    workloads start from learned selectivities; a session gives each query
    its own book, keeping concurrent queries' estimate state isolated and
    their re-planning deterministic regardless of sibling progress.
    """

    def __init__(self, prior: float = 0.5, prior_weight: float = 2.0) -> None:
        self.prior = prior
        self.prior_weight = prior_weight
        self._tallies: dict[str, PredicateEstimate] = {}

    def estimate(self, key: str, prior: float | None = None) -> float:
        """Current smoothed pass-rate estimate for a key."""
        tally = self._tallies.get(key)
        prior = self.prior if prior is None else prior
        if tally is None:
            return prior
        return (tally.passed + prior * self.prior_weight) / (
            tally.seen + self.prior_weight
        )

    def observe(self, key: str, rows_in: float, rows_out: float) -> None:
        """Fold one completed crowd round's pass counts into the estimate."""
        if rows_in <= 0:
            return
        tally = self._tallies.setdefault(key, PredicateEstimate())
        tally.passed += rows_out
        tally.seen += rows_in

    def record_fraction(self, key: str, fraction: float, weight: float = 1.0) -> None:
        """Fold an already-computed pass fraction in at a given weight."""
        self.observe(key, weight, fraction * weight)

    def observed(self, key: str) -> float | None:
        """The raw observed pass rate, or None before any observation."""
        tally = self._tallies.get(key)
        if tally is None or tally.seen <= 0:
            return None
        return tally.passed / tally.seen

    def known_keys(self) -> list[str]:
        """Keys with at least one observation (deterministic order)."""
        return sorted(self._tallies)


@dataclass(frozen=True)
class ReplanEvent:
    """One adaptive decision, for the EXPLAIN re-plan log."""

    round: int
    phase: str
    """``pilot`` (sampling), ``cascade`` (ordered full run), or ``join``
    (grid-orientation choice)."""

    subject: str
    rows_in: int = 0
    rows_out: int = 0
    estimate_before: float = 0.0
    observed: float = 0.0
    predicted_hits: int = 0
    actual_hits: int = 0
    reordered: bool = False

    def render(self) -> str:
        note = " [reordered]" if self.reordered else ""
        return (
            f"round {self.round} ({self.phase}): {self.subject} "
            f"rows {self.rows_in}->{self.rows_out}, "
            f"est={self.estimate_before:.2f} obs={self.observed:.2f}, "
            f"hits {self.predicted_hits}->{self.actual_hits}{note}"
        )


@dataclass
class AdaptiveState:
    """One query's adaptive-optimizer state, carried on the QueryContext."""

    book: SelectivityBook = field(default_factory=SelectivityBook)
    enabled: bool = True
    events: list[ReplanEvent] = field(default_factory=list)
    replans: int = 0
    """Rounds where the adaptive order deviated from the static one."""

    fused_chains: int = 0
    fused_conjuncts: int = 0
    predicted: PlanCostEstimate | None = None
    preflight: "PreflightReport | None" = None

    def note_fusion(self, length: int) -> None:
        self.fused_chains += 1
        self.fused_conjuncts += length

    def note_event(self, event: ReplanEvent) -> None:
        self.events.append(event)
        if event.reordered:
            self.replans += 1

    def next_round(self) -> int:
        return len(self.events) + 1

    def summary(
        self, actual_hits: int | None = None, actual_cost: float | None = None
    ) -> dict[str, object]:
        """The EXPLAIN footer payload (predicted vs. actual, event log)."""
        payload: dict[str, object] = {
            "replans": self.replans,
            "rounds": len(self.events),
            "fused_chains": self.fused_chains,
            "fused_conjuncts": self.fused_conjuncts,
        }
        if self.predicted is not None:
            payload["predicted_hits"] = round(self.predicted.total_hits, 1)
            payload["predicted_cost"] = round(self.predicted.total_dollars, 4)
        if actual_hits is not None:
            payload["actual_hits"] = actual_hits
        if actual_cost is not None:
            payload["actual_cost"] = round(actual_cost, 4)
        if self.preflight is not None:
            payload["preflight"] = self.preflight.as_signals()
        payload["events"] = [event.render() for event in self.events]
        return payload


def resolve_enabled(config: "ExecutionConfig") -> bool:
    """Whether the adaptive optimizer is active for a query's config."""
    from repro.util import adapt as adapt_toggle

    if config.adapt is not None:
        return bool(config.adapt)
    return adapt_toggle.enabled()


def build_state(config: "ExecutionConfig", book: SelectivityBook | None = None) -> AdaptiveState | None:
    """An :class:`AdaptiveState` for a query, or None when toggled off."""
    if not resolve_enabled(config):
        return None
    return AdaptiveState(book=book or SelectivityBook())


def forecast(
    state: AdaptiveState,
    plan,
    catalog,
    config: "ExecutionConfig",
    pricing=None,
) -> PlanCostEstimate:
    """Attach the cost model's pre-execution forecast to the state."""
    state.predicted = estimate_plan_cost(
        plan, catalog, config, state.book, pricing=pricing
    )
    return state.predicted


def preflight(
    state: AdaptiveState,
    plan,
    catalog,
    config: "ExecutionConfig",
    pricing=None,
) -> None:
    """Forecast + whole-plan budget pre-flight, shared by engine and session.

    The forecast always lands in the adaptive summary (predicted vs.
    actual HITs in EXPLAIN). With ``max_budget`` set the estimates
    additionally drive :func:`repro.core.budget.plan_preflight`; only
    ``budget_preflight=True`` turns a hopeless forecast into a
    :class:`~repro.errors.BudgetExceededError` before the first HIT group
    is posted — in a session, the error lands on that query's handle like
    any other per-query failure.
    """
    estimate = forecast(state, plan, catalog, config, pricing=pricing)
    if config.max_budget is None:
        return
    from repro.core.budget import plan_preflight
    from repro.core.cost_model import operator_estimates

    state.preflight = plan_preflight(
        operator_estimates(estimate, config),
        config.max_budget,
        pricing,
    )
    if config.budget_preflight and not state.preflight.fits_trimmed:
        from repro.errors import BudgetExceededError

        raise BudgetExceededError(
            f"pre-flight: the cost model projects "
            f"${state.preflight.projected_cost:.2f} of crowd work and "
            f"even a trimmed allocation cannot fit the "
            f"${config.max_budget:.2f} budget"
        )


def pilot_size(rows: int, conjuncts: int, config: "ExecutionConfig") -> int:
    """How many rows the pilot pass samples (0 = no pilot).

    A pilot only pays for itself when there are at least two conjuncts to
    order and enough rows that the sampled fraction is small relative to
    the cascade; tiny inputs skip straight to the observed-order cascade.
    """
    if conjuncts < 2 or rows < config.adaptive_min_pilot * 2:
        return 0
    pilot = max(
        config.adaptive_min_pilot,
        int(rows * config.adaptive_pilot_fraction),
    )
    return min(pilot, rows // 2)


class AdaptiveChainRun:
    """Drives one fused conjunct chain through pilot + adaptive cascade.

    Built by both executors; each :meth:`step` performs exactly one crowd
    posting round, so the pipelined scheduler can yield between rounds
    (its re-plan points) and a session can round-robin other queries in
    between. :meth:`finish` returns the surviving rows in input order —
    identical to the static cascade's row set, whatever order was chosen.
    """

    def __init__(
        self,
        node: "AdaptiveFilterNode",
        rows: "Sequence[Row]",
        ctx: "QueryContext",
    ) -> None:
        self.node = node
        self.ctx = ctx
        self.rows = list(rows)
        self.state = ctx.adapt if ctx.adapt is not None else AdaptiveState()
        self.book = self.state.book
        self.members: list["CrowdPredicateNode"] = list(node.members)

        stats = ctx.stats_for(node)
        stats.rows_in += len(self.rows)

        n = len(self.rows)
        pilot = pilot_size(n, len(self.members), ctx.config)
        pilot_indices: list[int] = []
        if pilot:
            # Seeded uniform sample (engine-side RNG, like covering groups
            # and rating anchors): deterministic for a config seed, and —
            # unlike a prefix or an evenly spaced stride — immune to both
            # sorted inputs and periodic patterns aliasing the estimates.
            from repro.util.rng import RandomSource

            rng = RandomSource(ctx.config.seed).child("adaptive-pilot", n)
            pilot_indices = sorted(rng.sample(range(n), pilot))
        self.pilot_indices = pilot_indices
        self.pilot_member_cursor = 0
        # Per-row conjunction result over the pilot sample.
        self.pilot_alive: dict[int, bool] = {i: True for i in pilot_indices}
        pilot_set = set(pilot_indices)
        self.cascade_alive: list[int] = [
            i for i in range(n) if i not in pilot_set
        ]
        self.remaining: list[tuple[int, "CrowdPredicateNode"]] = list(
            enumerate(self.members)
        )
        self._done = n == 0 or not self.members

    @property
    def done(self) -> bool:
        return self._done

    def step(self) -> bool:
        """Run one crowd round; returns False once the chain is finished."""
        if self._done:
            return False
        if self.pilot_member_cursor < len(self.members) and self.pilot_indices:
            self._pilot_round()
        elif self.remaining:
            self._cascade_round()
        self._done = (
            self.pilot_member_cursor >= len(self.members) or not self.pilot_indices
        ) and not self.remaining
        return not self._done

    def finish(self) -> list["Row"]:
        """Surviving rows, in original input order."""
        while self.step():
            pass
        kept_indices = sorted(
            [i for i, alive in self.pilot_alive.items() if alive]
            + self.cascade_alive
        )
        kept = [self.rows[i] for i in kept_indices]
        stats = self.ctx.stats_for(self.node)
        stats.rows_out += len(kept)
        return kept

    # -- rounds ---------------------------------------------------------

    def _pilot_round(self) -> None:
        """Sample one conjunct (in query order) over the pilot rows."""
        member = self.members[self.pilot_member_cursor]
        self.pilot_member_cursor += 1
        subset = list(self.pilot_indices)
        passed = self._run_member(member, subset, phase="pilot")
        for index in subset:
            if index not in passed:
                self.pilot_alive[index] = False

    def _cascade_round(self) -> None:
        """Re-plan: run the most selective remaining conjunct next."""
        choice = min(
            range(len(self.remaining)),
            key=lambda i: (
                self.book.estimate(
                    predicate_key(self.remaining[i][1].predicate)
                ),
                self.remaining[i][0],
            ),
        )
        original_index, member = self.remaining.pop(choice)
        reordered = any(
            other_index < original_index for other_index, _ in self.remaining
        )
        if not self.cascade_alive:
            # Nothing left to filter; the conjunct's pilot observations
            # stand, no HITs posted.
            return
        passed = self._run_member(
            member, self.cascade_alive, phase="cascade", reordered=reordered
        )
        self.cascade_alive = [i for i in self.cascade_alive if i in passed]

    def _run_member(
        self,
        member: "CrowdPredicateNode",
        indices: Sequence[int],
        phase: str,
        reordered: bool = False,
    ) -> set[int]:
        """Post one conjunct over a row subset; observe and log."""
        assert member.predicate is not None
        key = predicate_key(member.predicate)
        estimate_before = self.book.estimate(key)
        subset = [self.rows[i] for i in indices]
        ctx = self.ctx
        from repro.core.cost_model import _filter_batch_for

        batch = max(1, _filter_batch_for(member, ctx.catalog, ctx.config))
        predicted_hits = math.ceil(len(subset) / batch)

        stats = ctx.stats_for(member)
        stats.rows_in += len(subset)
        bindings = run_predicate_calls(member.predicate, subset, ctx, "where")
        stats.hits += bindings.outcome.hit_count
        stats.assignments += bindings.outcome.assignment_count
        stats.elapsed_seconds += bindings.outcome.elapsed_seconds
        stats.signals.update(bindings.signals)

        passed: set[int] = set()
        for index, row in zip(indices, subset):
            if evaluate_with_crowd(member.predicate, row, bindings, ctx):
                passed.add(index)
        stats.rows_out += len(passed)

        self.book.observe(key, len(subset), len(passed))
        stats.signals["estimated_selectivity"] = estimate_before
        observed = self.book.observed(key)
        if observed is not None:
            stats.signals["observed_selectivity"] = observed

        node_stats = ctx.stats_for(self.node)
        node_stats.hits += bindings.outcome.hit_count
        node_stats.assignments += bindings.outcome.assignment_count
        node_stats.elapsed_seconds += bindings.outcome.elapsed_seconds

        self.state.note_event(
            ReplanEvent(
                round=self.state.next_round(),
                phase=phase,
                subject=str(member.predicate),
                rows_in=len(subset),
                rows_out=len(passed),
                estimate_before=estimate_before,
                observed=observed if observed is not None else 0.0,
                predicted_hits=predicted_hits,
                actual_hits=bindings.outcome.hit_count,
                reordered=reordered,
            )
        )
        return passed


def adaptive_filter_rows(
    node: "AdaptiveFilterNode", rows: "list[Row]", ctx: "QueryContext"
) -> "list[Row]":
    """Depth-first operator body: run the whole chain to completion."""
    return AdaptiveChainRun(node, rows, ctx).finish()
