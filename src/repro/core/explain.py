"""EXPLAIN with quality signals (§6, "Iterative Debugging").

"As future work, we want to design a SQL EXPLAIN-like interface which
annotates operators with signals such as rater agreement, comparison vs
rating agreement, and other indicators of where a query has gone astray."

After execution, each plan node renders with its HIT/assignment counts,
row flow, and the signals its operator collected (feature κ, pair
agreement, filter selectivity, comparison κ, ...). Signals that look
pathological get flagged so the workflow designer knows where to look.

When the query ran under the pipelined executor each node additionally
carries a pipeline column — stage rank, pipeline depth, output-queue
occupancy against its bound, back-pressure stalls, and HIT-group posting
telemetry — and the footer reports the whole-query overlap economics
(virtual makespan vs the serial latency the depth-first interpreter would
have accumulated). See ``docs/API.md`` for the column glossary.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.context import OperatorStats
from repro.core.plan import PlanNode
from repro.util import vector as vector_toggle

KAPPA_WARNING = 0.35
AGREEMENT_WARNING = 0.7


def _signal_notes(stats: OperatorStats) -> list[str]:
    notes = []
    for name, value in sorted(stats.signals.items()):
        note = f"{name}={value:.3f}"
        if name.endswith("kappa") and value < KAPPA_WARNING:
            note += " [!] low agreement: question may be ambiguous"
        if name.endswith("agreement") and value < AGREEMENT_WARNING:
            note += " [!] workers disagree"
        notes.append(note)
    return notes


def _pipeline_note(stats: OperatorStats) -> str | None:
    """The per-operator pipeline column: stage, queue occupancy, posting."""
    ps = stats.pipeline
    if ps is None:
        return None
    parts = [f"stage={ps.stage}", f"depth={ps.depth}"]
    if ps.queue_capacity:
        parts.append(f"queue={ps.queue_peak}/{ps.queue_capacity}")
    if ps.chunks_emitted:
        parts.append(f"chunks={ps.chunks_emitted}")
    if ps.emit_stalls:
        parts.append(f"stalls={ps.emit_stalls}")
    if ps.groups_posted:
        parts.append(
            f"groups={ps.groups_posted} (peak {ps.peak_outstanding} outstanding)"
        )
        parts.append(f"live=[{ps.started_at:.0f}s..{ps.finished_at:.0f}s]")
    return "pipeline: " + ", ".join(parts)


def _store_line(summary: Mapping[str, object]) -> str:
    """The persistent-answer-store footer line (shared by the per-query
    EXPLAIN and the session summary)."""
    parts = [
        f"hits={summary.get('hits', 0)}",
        f"misses={summary.get('misses', 0)}",
        f"persistent_hits={summary.get('persistent_hits', 0)}",
        f"assignments_reused={summary.get('assignments_reused', 0)}",
        f"cost_saved=${summary.get('cost_saved', 0.0):.2f}",
    ]
    evictions_ttl = summary.get("evictions_ttl", 0)
    evictions_budget = summary.get("evictions_budget", 0)
    if evictions_ttl or evictions_budget:
        parts.append(f"evictions=ttl:{evictions_ttl}+budget:{evictions_budget}")
    parts.append(f"rows={summary.get('rows', 0)}")
    if summary.get("rebuilds"):
        parts.append(f"rebuilds={summary['rebuilds']}")
    if summary.get("degraded"):
        parts.append("degraded=memory-only")
    return "store: " + ", ".join(parts)


def plan_task_labels(plan: PlanNode, catalog) -> dict[str, str]:
    """task name → registry EXPLAIN label, for every crowd task a plan uses.

    Labels come from each task type's :class:`~repro.tasks.registry.
    TaskTypeSpec` (``explain_label``, defaulting to the registry key), so
    out-of-tree task types name themselves in EXPLAIN output without engine
    edits.
    """
    from repro.tasks.registry import spec_for_task

    labels: dict[str, str] = {}
    nodes = list(plan.walk())
    for node in list(nodes):
        nodes.extend(getattr(node, "members", ()))
    for node in nodes:
        exprs = []
        for attr in ("predicate", "condition"):
            value = getattr(node, attr, None)
            if value is not None:
                exprs.append(value)
        exprs.extend(getattr(node, "possibly", ()))
        for item in getattr(node, "items", ()):
            exprs.append(item.expr)
        for item in getattr(node, "order_items", ()):
            exprs.append(item.expr)
        for expr in exprs:
            for call in expr.udf_calls():
                if call.name not in labels and catalog.has_task(call.name):
                    labels[call.name] = spec_for_task(
                        catalog.task(call.name)
                    ).label()
    return labels


def render_explain(
    plan: PlanNode,
    node_stats: dict[int, OperatorStats],
    marketplace_stats: object | None = None,
    pipeline_summary: Mapping[str, float] | None = None,
    adaptive_summary: Mapping[str, object] | None = None,
    degradation_summary: Mapping[str, object] | None = None,
    store_summary: Mapping[str, object] | None = None,
    task_labels: Mapping[str, str] | None = None,
) -> str:
    """Render the plan tree annotated with collected operator signals.

    When ``marketplace_stats`` is provided (the simulated marketplace's
    aggregate counters), a footer reports the consideration/refusal
    economics — most importantly ``considerations_per_assignment``, the
    refusal-loop overhead the dispatch fast path targets. When
    ``pipeline_summary`` is provided (the query ran pipelined), a second
    footer reports the overlap economics and each node carries its
    pipeline column. When ``adaptive_summary`` is provided (the adaptive
    optimizer ran), a third footer reports predicted vs. actual HIT
    counts and the re-plan event log; fused conjunct chains additionally
    render each member conjunct with its estimated vs. observed
    selectivity. When ``degradation_summary`` is provided (the resilience
    layer was armed) and anything actually happened — retries, reposts,
    injected faults, degraded operators, an absorbed abort — a
    ``resilience:`` footer itemises it; a fault-free resilient run emits
    no footer, keeping golden EXPLAIN output unchanged. When
    ``store_summary`` is provided (a persistent answer store is attached),
    a ``store:`` footer reports this query's cache traffic, the
    assignments it reused from *disk* (a previous process's crowd work)
    and the dollars that saved, eviction counts, and — if the store was
    rebuilt from a corrupt file or degraded to memory-only — says so.
    """
    lines: list[str] = []

    def emit_stats(stats: OperatorStats | None, indent: str) -> None:
        if stats is None:
            return
        pipeline_note = _pipeline_note(stats)
        if pipeline_note is not None:
            lines.append(f"{indent}    ~ {pipeline_note}")
        for note in _signal_notes(stats):
            lines.append(f"{indent}    ~ {note}")

    def visit(node: PlanNode, depth: int) -> None:
        indent = "  " * depth
        stats = node_stats.get(id(node))
        header = f"{indent}{node.label()}"
        if stats is not None and (stats.hits or stats.rows_in or stats.rows_out):
            header += (
                f"  [rows {stats.rows_in}->{stats.rows_out}"
                f", hits={stats.hits}, assignments={stats.assignments}]"
            )
        lines.append(header)
        emit_stats(stats, indent)
        # Fused adaptive chains carry their original conjuncts as
        # ``members`` (not plan inputs); render each with its own stats so
        # estimated vs. observed selectivity stays per-conjunct.
        for member in getattr(node, "members", ()):
            member_stats = node_stats.get(id(member))
            member_header = f"{indent}  · {member.label()}"
            if member_stats is not None and (
                member_stats.hits or member_stats.rows_in
            ):
                member_header += (
                    f"  [rows {member_stats.rows_in}->{member_stats.rows_out}"
                    f", hits={member_stats.hits}"
                    f", assignments={member_stats.assignments}]"
                )
            lines.append(member_header)
            emit_stats(member_stats, indent + "  ")
        for child in node.inputs:
            visit(child, depth + 1)

    visit(plan, 0)
    if task_labels:
        rendered = ", ".join(
            f"{name}={label}" for name, label in sorted(task_labels.items())
        )
        lines.append(f"tasks: {rendered}")
    if adaptive_summary is not None:
        parts = [
            f"replans={adaptive_summary.get('replans', 0)}",
            f"rounds={adaptive_summary.get('rounds', 0)}",
            f"fused_chains={adaptive_summary.get('fused_chains', 0)}",
        ]
        if "predicted_hits" in adaptive_summary:
            parts.append(f"predicted_hits={adaptive_summary['predicted_hits']}")
        if "actual_hits" in adaptive_summary:
            parts.append(f"actual_hits={adaptive_summary['actual_hits']}")
        if "predicted_cost" in adaptive_summary:
            parts.append(f"predicted_cost=${adaptive_summary['predicted_cost']}")
        if "actual_cost" in adaptive_summary:
            parts.append(f"actual_cost=${adaptive_summary['actual_cost']}")
        preflight = adaptive_summary.get("preflight")
        if isinstance(preflight, Mapping):
            parts.append(
                f"preflight=${preflight.get('projected_cost', 0.0)}"
                f"/${preflight.get('budget', 0.0)}"
            )
        lines.append("adaptive: " + ", ".join(parts))
        for event in adaptive_summary.get("events", []) or []:
            lines.append(f"  ~ replan log: {event}")
    if pipeline_summary is not None:
        makespan = pipeline_summary.get("makespan_seconds", 0.0)
        serial = pipeline_summary.get("serial_latency_seconds", 0.0)
        overlap = f", overlap_speedup={serial / makespan:.2f}x" if makespan > 0 else ""
        lines.append(
            "pipeline: "
            f"stages={pipeline_summary.get('stages', 0):.0f}"
            f", groups={pipeline_summary.get('groups_posted', 0):.0f}"
            f", peak_outstanding_groups="
            f"{pipeline_summary.get('peak_outstanding_groups', 0):.0f}"
            f", makespan={makespan:.0f}s"
            f", serial_latency={serial:.0f}s"
            f"{overlap}"
        )
    if degradation_summary is not None:
        counters = [
            (name, degradation_summary.get(name, 0))
            for name in (
                "transient_retries",
                "reposts",
                "reposted_hits",
                "recovered_assignments",
                "unfilled_assignments",
                "degraded_groups",
                "circuit_opens",
                "abandoned_assignments",
                "expired_slots",
                "spam_assignments",
                "straggler_assignments",
                "transient_errors",
            )
        ]
        operators = degradation_summary.get("degraded_operators") or []
        aborted = degradation_summary.get("aborted")
        if any(value for _, value in counters) or operators or aborted:
            parts = [f"{name}={value}" for name, value in counters if value]
            if operators:
                parts.append("degraded_operators=" + "|".join(str(op) for op in operators))
            lines.append("resilience: " + ", ".join(parts))
            if aborted:
                lines.append(f"  ~ aborted: {aborted}")
    if store_summary is not None:
        lines.append(_store_line(store_summary))
    if marketplace_stats is not None:
        considerations = getattr(marketplace_stats, "considerations", None)
        per_assignment = getattr(
            marketplace_stats, "considerations_per_assignment", None
        )
        if considerations is not None and per_assignment is not None:
            lines.append(
                "marketplace: "
                f"considerations={considerations}"
                f", refusals={getattr(marketplace_stats, 'refusals', 0)}"
                f", considerations_per_assignment={per_assignment:.3f}"
            )
        degraded = vector_toggle.status_note()
        if degraded is not None:
            lines.append(f"  ~ {degraded}")
    return "\n".join(lines)


def render_session_summary(stats: object) -> str:
    """The session footer: multi-query overlap and sharing economics.

    ``stats`` is a :class:`~repro.core.session.SessionStats` (duck-typed
    here to keep this module free of a session import). Reports the batch
    makespan against the sum of per-query latencies (the overlap win) and
    the cross-query cache traffic (the dedup win), plus per-query HIT-group
    admission counts so starvation is visible at a glance.
    """
    groups = getattr(stats, "groups_posted", {}) or {}
    admitted = " ".join(f"{key}={count}" for key, count in sorted(groups.items()))
    lines = [
        "session: "
        f"mode={getattr(stats, 'mode', '?')}"
        f", queries={getattr(stats, 'queries', 0)}"
        f" (completed={getattr(stats, 'completed', 0)}"
        f", failed={getattr(stats, 'failed', 0)})"
        f", makespan={getattr(stats, 'makespan_seconds', 0.0):.0f}s"
        f", serial_latency={getattr(stats, 'serial_latency_seconds', 0.0):.0f}s"
        f", overlap_speedup={getattr(stats, 'overlap_speedup', 1.0):.2f}x"
    ]
    lines.append(
        "session sharing: "
        f"cross_query_cache_hits={getattr(stats, 'cross_cache_hits', 0)}"
        f", assignments_reused={getattr(stats, 'cross_assignments_shared', 0)}"
        f", cost_saved=${getattr(stats, 'cost_saved', 0.0):.2f}"
    )
    store_summary = getattr(stats, "store_summary", None)
    if store_summary is not None:
        lines.append("session " + _store_line(store_summary))
    if admitted:
        lines.append(f"session admission: groups per query: {admitted}")
    return "\n".join(lines)
