"""EXPLAIN with quality signals (§6, "Iterative Debugging").

"As future work, we want to design a SQL EXPLAIN-like interface which
annotates operators with signals such as rater agreement, comparison vs
rating agreement, and other indicators of where a query has gone astray."

After execution, each plan node renders with its HIT/assignment counts,
row flow, and the signals its operator collected (feature κ, pair
agreement, filter selectivity, comparison κ, ...). Signals that look
pathological get flagged so the workflow designer knows where to look.
"""

from __future__ import annotations

from repro.core.context import OperatorStats
from repro.core.plan import PlanNode

KAPPA_WARNING = 0.35
AGREEMENT_WARNING = 0.7


def _signal_notes(stats: OperatorStats) -> list[str]:
    notes = []
    for name, value in sorted(stats.signals.items()):
        note = f"{name}={value:.3f}"
        if name.endswith("kappa") and value < KAPPA_WARNING:
            note += " [!] low agreement: question may be ambiguous"
        if name.endswith("agreement") and value < AGREEMENT_WARNING:
            note += " [!] workers disagree"
        notes.append(note)
    return notes


def render_explain(
    plan: PlanNode,
    node_stats: dict[int, OperatorStats],
    marketplace_stats: object | None = None,
) -> str:
    """Render the plan tree annotated with collected operator signals.

    When ``marketplace_stats`` is provided (the simulated marketplace's
    aggregate counters), a footer reports the consideration/refusal
    economics — most importantly ``considerations_per_assignment``, the
    refusal-loop overhead the dispatch fast path targets.
    """
    lines: list[str] = []

    def visit(node: PlanNode, depth: int) -> None:
        indent = "  " * depth
        stats = node_stats.get(id(node))
        header = f"{indent}{node.label()}"
        if stats is not None and (stats.hits or stats.rows_in or stats.rows_out):
            header += (
                f"  [rows {stats.rows_in}->{stats.rows_out}"
                f", hits={stats.hits}, assignments={stats.assignments}]"
            )
        lines.append(header)
        if stats is not None:
            for note in _signal_notes(stats):
                lines.append(f"{indent}    ~ {note}")
        for child in node.inputs:
            visit(child, depth + 1)

    visit(plan, 0)
    if marketplace_stats is not None:
        considerations = getattr(marketplace_stats, "considerations", None)
        per_assignment = getattr(
            marketplace_stats, "considerations_per_assignment", None
        )
        if considerations is not None and per_assignment is not None:
            lines.append(
                "marketplace: "
                f"considerations={considerations}"
                f", refusals={getattr(marketplace_stats, 'refusals', 0)}"
                f", considerations_per_assignment={per_assignment:.3f}"
            )
    return "\n".join(lines)
