"""Plan rewrites (§2.5).

The headline rule: relational operations a computer can evaluate are pushed
below crowd operators — "it's better to filter tables before joining them"
and HIT-based work should see as few tuples as possible. Implemented
rewrites:

* **Computed-filter pushdown** — computed predicates sink below crowd
  filters, sorts, and into the matching side of joins (decided by which
  alias bindings the predicate references).
* **Crowd-filter pushdown below joins** — "the system generates HITs for
  all non-join WHERE clause expressions first, and then ... feeds them into
  join operators": a crowd predicate confined to one join side runs before
  the join so the cross product shrinks.
* **Filter ordering** — computed filters run before crowd filters at the
  same level; under the *static* rewriter crowd conjuncts keep their query
  order relative to each other (the paper's Qurk has no selectivity
  estimation).

The cost-based adaptive layer (``REPRO_ADAPT``, on by default) goes
further: when an :class:`~repro.core.adaptive.AdaptiveState` is supplied,
adjacent crowd conjuncts are fused into one
:class:`~repro.core.plan.AdaptiveFilterNode` whose executor orders them by
*observed* selectivity — a pilot pass estimates each conjunct's pass rate,
and the engine re-plans the remaining cascade after every crowd round (see
:mod:`repro.core.adaptive` and :mod:`repro.core.cost_model`). With the
toggle off (or no state passed) plans are bit-identical to the static
rewriter's.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.plan import (
    AdaptiveFilterNode,
    ComputedFilterNode,
    CrowdPredicateNode,
    JoinNode,
    PlanNode,
    ScanNode,
    SortNode,
)
from repro.relational.expressions import Expression

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.adaptive import AdaptiveState


def optimize(plan: PlanNode, adapt: "AdaptiveState | None" = None) -> PlanNode:
    """Apply rewrites until a fixpoint, then (optionally) the adaptive pass.

    The fixpoint bound is derived from the plan's node count, not a
    constant: one bottom-up pass sinks a predicate through at most one
    join, so a left-deep stack of k joins needs k passes — the old
    hard-coded 64 silently stopped early on deeper plans
    (``tests/test_planner_optimizer.py`` pins the regression). A full
    cascade through filter/sort swaps resolves within a single pass, so
    node count (≥ the join depth) passes always suffice.
    """
    node_count = sum(1 for _ in plan.walk())
    for _ in range(max(1, node_count)):
        rewritten, changed = _push_down_once(plan)
        plan = rewritten
        if not changed:
            break
    if adapt is not None and adapt.enabled:
        plan = _fuse_crowd_chains(plan, adapt)
    return plan


def _fuse_crowd_chains(node: PlanNode, adapt: "AdaptiveState") -> PlanNode:
    """Fuse runs of ≥2 adjacent crowd predicates into adaptive filters.

    Single crowd predicates are left untouched — there is nothing to
    reorder, and leaving them alone keeps every single-conjunct workload
    (including the pinned golden trace) bit-identical with the adaptive
    optimizer enabled.
    """
    chain: list[CrowdPredicateNode] = []
    cursor: PlanNode = node
    while cursor.kind == CrowdPredicateNode.kind:
        chain.append(cursor)
        cursor = cursor.inputs[0]
    below = _rewrite_inputs(cursor, adapt)
    if len(chain) >= 2:
        adapt.note_fusion(len(chain))
        # ``chain`` was collected top-down; members are kept in execution
        # (query) order, i.e. deepest conjunct first.
        return AdaptiveFilterNode(members=tuple(reversed(chain)), inputs=(below,))
    if chain:
        chain[0].inputs = (below,)
        return chain[0]
    return below


def _rewrite_inputs(node: PlanNode, adapt: "AdaptiveState") -> PlanNode:
    node.inputs = tuple(
        _fuse_crowd_chains(child, adapt) for child in node.inputs
    )
    return node


def _aliases_in(node: PlanNode) -> set[str]:
    """The table aliases visible in a subtree's output."""
    return {n.alias for n in node.walk() if n.kind == ScanNode.kind}


def _references_only(predicate: Expression, aliases: set[str]) -> bool:
    """Whether every column the predicate touches belongs to ``aliases``.

    A bare (unqualified) reference is a whole-row alias binding like
    ``isFemale(c)``; it is confined iff the alias itself is in scope.
    """
    refs = predicate.references()
    if not refs:
        return False
    for ref in refs:
        qualifier = ref.split(".", 1)[0] if "." in ref else ref
        if qualifier not in aliases:
            return False
    return True


def _sink_into_join(
    filter_node: PlanNode, predicate: Expression, join: JoinNode
) -> tuple[PlanNode, bool]:
    """Try to move a filter below the matching side of a join."""
    left, right = join.inputs
    wrapper = type(filter_node)
    if _references_only(predicate, _aliases_in(left)):
        join.inputs = (wrapper(predicate=predicate, inputs=(left,)), right)
        return join, True
    if _references_only(predicate, _aliases_in(right)):
        join.inputs = (left, wrapper(predicate=predicate, inputs=(right,)))
        return join, True
    return filter_node, False


def _push_down_once(node: PlanNode) -> tuple[PlanNode, bool]:
    """One bottom-up pass; returns (new node, whether anything changed)."""
    new_inputs = []
    changed = False
    for child in node.inputs:
        new_child, child_changed = _push_down_once(child)
        new_inputs.append(new_child)
        changed |= child_changed
    node.inputs = tuple(new_inputs)

    if node.kind == ComputedFilterNode.kind:
        child = node.inputs[0]
        assert node.predicate is not None

        # Sink below crowd filters and sorts: the crowd then sees fewer
        # tuples (or the same tuples later, which is free).
        if child.kind in (CrowdPredicateNode.kind, SortNode.kind):
            node.inputs = child.inputs
            child.inputs = (node,)
            return child, True

        # Sink into the side of a join the predicate refers to.
        if child.kind == JoinNode.kind:
            sunk, did = _sink_into_join(node, node.predicate, child)
            if did:
                return sunk, True

    if node.kind == CrowdPredicateNode.kind:
        child = node.inputs[0]
        assert node.predicate is not None
        if child.kind == JoinNode.kind:
            sunk, did = _sink_into_join(node, node.predicate, child)
            if did:
                return sunk, True

    return node, changed
