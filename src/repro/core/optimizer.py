"""Plan rewrites (§2.5).

The headline rule: relational operations a computer can evaluate are pushed
below crowd operators — "it's better to filter tables before joining them"
and HIT-based work should see as few tuples as possible. Implemented
rewrites:

* **Computed-filter pushdown** — computed predicates sink below crowd
  filters, sorts, and into the matching side of joins (decided by which
  alias bindings the predicate references).
* **Crowd-filter pushdown below joins** — "the system generates HITs for
  all non-join WHERE clause expressions first, and then ... feeds them into
  join operators": a crowd predicate confined to one join side runs before
  the join so the cross product shrinks.
* **Filter ordering** — computed filters run before crowd filters at the
  same level; crowd conjuncts keep their query order relative to each other
  (Qurk has no selectivity estimation).
"""

from __future__ import annotations

from repro.core.plan import (
    ComputedFilterNode,
    CrowdPredicateNode,
    JoinNode,
    PlanNode,
    ScanNode,
    SortNode,
)
from repro.relational.expressions import Expression


def optimize(plan: PlanNode) -> PlanNode:
    """Apply rewrites until a fixpoint (bounded by tree size)."""
    for _ in range(64):
        rewritten, changed = _push_down_once(plan)
        plan = rewritten
        if not changed:
            break
    return plan


def _aliases_in(node: PlanNode) -> set[str]:
    """The table aliases visible in a subtree's output."""
    return {n.alias for n in node.walk() if isinstance(n, ScanNode)}


def _references_only(predicate: Expression, aliases: set[str]) -> bool:
    """Whether every column the predicate touches belongs to ``aliases``.

    A bare (unqualified) reference is a whole-row alias binding like
    ``isFemale(c)``; it is confined iff the alias itself is in scope.
    """
    refs = predicate.references()
    if not refs:
        return False
    for ref in refs:
        qualifier = ref.split(".", 1)[0] if "." in ref else ref
        if qualifier not in aliases:
            return False
    return True


def _sink_into_join(
    filter_node: PlanNode, predicate: Expression, join: JoinNode
) -> tuple[PlanNode, bool]:
    """Try to move a filter below the matching side of a join."""
    left, right = join.inputs
    wrapper = type(filter_node)
    if _references_only(predicate, _aliases_in(left)):
        join.inputs = (wrapper(predicate=predicate, inputs=(left,)), right)
        return join, True
    if _references_only(predicate, _aliases_in(right)):
        join.inputs = (left, wrapper(predicate=predicate, inputs=(right,)))
        return join, True
    return filter_node, False


def _push_down_once(node: PlanNode) -> tuple[PlanNode, bool]:
    """One bottom-up pass; returns (new node, whether anything changed)."""
    new_inputs = []
    changed = False
    for child in node.inputs:
        new_child, child_changed = _push_down_once(child)
        new_inputs.append(new_child)
        changed |= child_changed
    node.inputs = tuple(new_inputs)

    if isinstance(node, ComputedFilterNode):
        child = node.inputs[0]
        assert node.predicate is not None

        # Sink below crowd filters and sorts: the crowd then sees fewer
        # tuples (or the same tuples later, which is free).
        if isinstance(child, (CrowdPredicateNode, SortNode)):
            node.inputs = child.inputs
            child.inputs = (node,)
            return child, True

        # Sink into the side of a join the predicate refers to.
        if isinstance(child, JoinNode):
            sunk, did = _sink_into_join(node, node.predicate, child)
            if did:
                return sunk, True

    if isinstance(node, CrowdPredicateNode):
        child = node.inputs[0]
        assert node.predicate is not None
        if isinstance(child, JoinNode):
            sunk, did = _sink_into_join(node, node.predicate, child)
            if did:
                return sunk, True

    return node, changed
