"""Executing crowd UDF calls: argument binding, payload building, combining.

The bridge between expressions in a query and HIT payloads: evaluate a
call's arguments against a row, reduce them to item references, build
payloads, hand them to the Task Manager, and combine the votes back into
per-item answers usable during expression evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Sequence

from repro.combine.adaptive import AdaptivePolicy, needs_more_votes
from repro.combine.base import combine_corpus
from repro.combine.normalize import get_normalizer
from repro.core.context import QueryContext
from repro.errors import ExecutionError, PlanError
from repro.hits.hit import (
    FilterPayload,
    FilterQuestion,
    GenerativeFieldSpec,
    GenerativePayload,
    GenerativeQuestion,
    Payload,
    Vote,
    filter_qid,
    generative_qid,
)
from repro.hits.manager import BatchOutcome
from repro.metrics.agreement import feature_kappa
from repro.relational.expressions import (
    And,
    BinaryOp,
    ColumnRef,
    Comparison,
    Expression,
    Literal,
    Not,
    Or,
    UDFCall,
)
from repro.relational.rows import Row
from repro.tasks.base import Task, resolve_item_ref
from repro.tasks.registry import (
    ROLE_FILTER,
    ROLE_GENERATIVE,
    spec_for_task,
    task_role,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.tasks.filter import FilterTask
    from repro.tasks.generative import GenerativeTask


def evaluate_arg(expr: Expression, row: Row, env: Mapping) -> object:
    """Evaluate a UDF argument; bare aliases resolve to the row slice.

    ``isFemale(c)`` passes the whole tuple bound to alias ``c``: the value
    is the mapping of that alias's columns. Qualified references
    (``c.img``) and computed expressions evaluate normally.
    """
    if isinstance(expr, ColumnRef) and expr.qualifier is None:
        if expr.name not in row.schema:
            prefix = f"{expr.name}."
            slice_values = {
                name: row[name] for name in row.schema.names if name.startswith(prefix)
            }
            if slice_values:
                return slice_values
    return expr.evaluate(row, env)


def call_item_ref(call: UDFCall, row: Row, env: Mapping) -> str:
    """The item reference a call is 'about' (its first argument)."""
    if not call.args:
        raise ExecutionError(f"crowd UDF {call.name!r} called with no arguments")
    return resolve_item_ref(evaluate_arg(call.args[0], row, env))


def template_bindings(
    task: Task, call: UDFCall, row: Row, env: Mapping, source: str = "tuple"
) -> dict[tuple[str, str], object]:
    """(source, param) → value bindings for prompt rendering."""
    task.validate_arity(len(call.args))
    bindings: dict[tuple[str, str], object] = {}
    for param, arg in zip(task.params, call.args):
        bindings[(source, param)] = resolve_item_ref(evaluate_arg(arg, row, env))
    return bindings


# ---------------------------------------------------------------------------
# Payload builders
# ---------------------------------------------------------------------------


def filter_payload_for(
    task: FilterTask, call: UDFCall, row: Row, env: Mapping
) -> FilterPayload:
    """A single-question filter payload for one row."""
    bindings = template_bindings(task, call, row, env)
    return FilterPayload(
        task_name=task.name,
        questions=(
            FilterQuestion(
                item=call_item_ref(call, row, env),
                prompt_html=task.prompt.render(bindings),
            ),
        ),
        yes_text=task.yes_text,
        no_text=task.no_text,
    )


def generative_payload_for(
    task: GenerativeTask, item_ref: str, prompt_html: str = ""
) -> GenerativePayload:
    """A single-question generative payload for one item."""
    specs = tuple(
        GenerativeFieldSpec(
            name=f.name,
            kind=f.response.kind,
            options=f.options,
            normalizer=f.normalizer,
        )
        for f in task.fields
    )
    return GenerativePayload(
        task_name=task.name,
        questions=(GenerativeQuestion(item=item_ref, prompt_html=prompt_html),),
        fields=specs,
    )


# ---------------------------------------------------------------------------
# Running calls
# ---------------------------------------------------------------------------


@dataclass
class CrowdBindings:
    """Crowd answers per task, keyed by item reference.

    * filter tasks: ref → bool
    * generative tasks: ref → {field name: combined value}
    """

    filters: dict[str, dict[str, bool]] = field(default_factory=dict)
    generative: dict[str, dict[str, dict[str, object]]] = field(default_factory=dict)
    outcome: BatchOutcome = field(default_factory=BatchOutcome)
    signals: dict[str, float] = field(default_factory=dict)


def run_filter_call(
    call: UDFCall,
    rows: Sequence[Row],
    ctx: QueryContext,
    label: str,
) -> tuple[dict[str, bool], BatchOutcome]:
    """Execute one filter task over distinct item refs; returns ref → pass."""
    task = ctx.catalog.task(call.name)
    spec = spec_for_task(task)
    if spec.role != ROLE_FILTER:
        raise PlanError(f"{call.name!r} used as a filter but is {type(task).__name__}")
    build_payload = spec.payload_builder or filter_payload_for
    env = ctx.catalog.functions()
    units: list[list[Payload]] = []
    seen: set[str] = set()
    for row in rows:
        ref = call_item_ref(call, row, env)
        if ref in seen:
            continue
        seen.add(ref)
        units.append([build_payload(task, call, row, env)])
    if not units:
        return {}, BatchOutcome()
    if ctx.config.adaptive is not None:
        votes, outcome = adaptive_single_question_votes(
            units,
            [filter_qid(task.name, p[0].questions[0].item) for p in units],  # type: ignore[attr-defined]
            ctx,
            label,
        )
    else:
        ctx.charge_budget_for_units(
            units, ctx.config.filter_batch_size, ctx.config.assignments
        )
        outcome = ctx.manager.run_units(
            units,
            batch_size=ctx.config.filter_batch_size,
            assignments=ctx.config.assignments,
            label=label,
            strict=ctx.config.strict_hits,
        )
        votes = outcome.votes
    combiner = ctx.combiner_for(task.combiner)
    corpus = {qid: qvotes for qid, qvotes in votes.items() if ":filter:" in qid}
    decisions = combine_corpus(combiner, corpus)
    answers = {
        qid.rsplit(":filter:", 1)[1]: bool(value) for qid, value in decisions.items()
    }
    return answers, outcome


@dataclass
class PendingGenerative:
    """One or more generative tasks posted but not yet collected.

    Produced by :func:`begin_generative_units`; :meth:`collect` harvests the
    underlying HIT group and combines votes into per-item field values.
    """

    tasks: dict[str, GenerativeTask]
    task_items: dict[str, tuple[str, ...]]
    ctx: QueryContext
    pending: object | None = None
    """The manager's PendingBatch, or None when there was nothing to post.

    Callers ordering harvests by finish time sort the non-None ``pending``
    handles themselves (see :func:`repro.hits.manager.collect_pending`);
    an empty pending has no meaningful finish time."""

    def collect(
        self,
    ) -> tuple[dict[str, dict[str, dict[str, object]]], BatchOutcome, dict[str, dict[str, list[Vote]]]]:
        """Harvest and combine; see :func:`run_generative_units` for shape."""
        if self.pending is None:
            return {}, BatchOutcome(), {}
        outcome = self.pending.result()
        return _combine_generative(self.tasks, self.task_items, self.ctx, outcome)


def begin_generative_units(
    task_items: Mapping[str, Sequence[str]],
    ctx: QueryContext,
    label: str,
    combine_tasks: bool = False,
    batch_size: int | None = None,
) -> PendingGenerative:
    """Post one or more generative tasks over item lists without collecting.

    The non-blocking half of :func:`run_generative_units`: the join executor
    begins both of its feature-extraction sides before collecting either, so
    under the pipelined executor the two sides' HIT batches are outstanding
    over the same virtual interval (§2.6 overlap). Against the blocking
    manager the batch resolves at posting time and ``collect()`` merely
    combines — serial behaviour, draw-for-draw.
    """
    tasks = {name: ctx.catalog.task(name) for name in task_items}
    builders = {}
    for name, task in tasks.items():
        spec = spec_for_task(task)
        if spec.role != ROLE_GENERATIVE:
            raise PlanError(
                f"{name!r} used generatively but is {type(task).__name__}"
            )
        builders[name] = spec.payload_builder or generative_payload_for

    units: list[list[Payload]] = []
    item_lists = [tuple(items) for items in task_items.values()]
    if combine_tasks and len(tasks) > 1 and len(set(item_lists)) != 1:
        # Combining requires the tasks to share their item list; fall back
        # to per-task merging otherwise.
        combine_tasks = False
    if combine_tasks and len(tasks) > 1:
        for item in item_lists[0]:
            units.append(
                [builders[name](tasks[name], item) for name in task_items]
            )
    else:
        for name, items in task_items.items():
            for item in items:
                units.append([builders[name](tasks[name], item)])

    frozen_items = {name: tuple(items) for name, items in task_items.items()}
    if not units:
        return PendingGenerative(tasks, frozen_items, ctx)  # type: ignore[arg-type]
    effective_batch = batch_size or ctx.config.generative_batch_size
    ctx.charge_budget_for_units(units, effective_batch, ctx.config.assignments)
    pending = ctx.manager.begin_units(
        units,
        batch_size=effective_batch,
        assignments=ctx.config.assignments,
        label=label,
        strict=ctx.config.strict_hits,
    )
    return PendingGenerative(tasks, frozen_items, ctx, pending)  # type: ignore[arg-type]


def run_generative_units(
    task_items: Mapping[str, Sequence[str]],
    ctx: QueryContext,
    label: str,
    combine_tasks: bool = False,
    batch_size: int | None = None,
) -> tuple[dict[str, dict[str, dict[str, object]]], BatchOutcome, dict[str, dict[str, list[Vote]]]]:
    """Run one or more generative tasks over item lists.

    ``task_items`` maps task name → item refs. With ``combine_tasks`` the
    tasks are *combined*: each HIT unit asks all tasks about one item
    (requires identical item lists, the §3.3.4 combined feature interface).

    Returns (task → ref → field values, outcome, task → field corpus).
    """
    return begin_generative_units(
        task_items, ctx, label, combine_tasks=combine_tasks, batch_size=batch_size
    ).collect()


def _combine_generative(
    tasks: Mapping[str, GenerativeTask],
    task_items: Mapping[str, Sequence[str]],
    ctx: QueryContext,
    outcome: BatchOutcome,
) -> tuple[dict[str, dict[str, dict[str, object]]], BatchOutcome, dict[str, dict[str, list[Vote]]]]:
    """Normalize, combine, and index one generative outcome's votes."""
    results: dict[str, dict[str, dict[str, object]]] = {}
    corpora: dict[str, dict[str, list[Vote]]] = {}
    for name, task in tasks.items():
        results[name] = {}
        corpora[name] = {}
        for gen_field in task.fields:
            normalizer = get_normalizer(gen_field.normalizer)
            field_corpus: dict[str, list[Vote]] = {}
            for item in task_items[name]:
                qid = generative_qid(name, item, gen_field.name)
                votes = outcome.votes.get(qid, [])
                if gen_field.is_categorical:
                    normalized = list(votes)
                else:
                    normalized = [
                        Vote(worker_id=v.worker_id, value=normalizer(str(v.value)))
                        for v in votes
                    ]
                field_corpus[qid] = normalized
            combiner = ctx.combiner_for(gen_field.combiner)
            decisions = combine_corpus(
                combiner, {q: v for q, v in field_corpus.items() if v}
            )
            for qid, value in decisions.items():
                item = qid.rsplit(":", 1)[0].rsplit(":gen:", 1)[1]
                results[name].setdefault(item, {})[gen_field.name] = value
            corpora[name].update(field_corpus)
    return results, outcome, corpora


def adaptive_single_question_votes(
    units: Sequence[Sequence[Payload]],
    qids: Sequence[str],
    ctx: QueryContext,
    label: str,
) -> tuple[dict[str, list[Vote]], BatchOutcome]:
    """Adaptive vote collection for single-question units (§6 extension).

    Posts an initial small number of assignments, then re-posts only the
    still-contested questions in increments until the margin rule is
    satisfied or the per-question budget runs out.
    """
    policy: AdaptivePolicy = ctx.config.adaptive or AdaptivePolicy()
    votes: dict[str, list[Vote]] = {qid: [] for qid in qids}
    total = BatchOutcome(post_time=ctx.manager.platform.clock_seconds)
    pending = list(zip(units, qids))
    round_votes = policy.initial_votes
    while pending:
        round_units = [unit for unit, _ in pending]
        ctx.charge_budget_for_units(
            round_units, ctx.config.filter_batch_size, round_votes
        )
        outcome = ctx.manager.run_units(
            round_units,
            batch_size=ctx.config.filter_batch_size,
            assignments=round_votes,
            label=label,
            strict=ctx.config.strict_hits,
        )
        total.merge(outcome)
        for qid, new_votes in outcome.votes.items():
            if qid in votes:
                votes[qid].extend(new_votes)
        pending = [
            (unit, qid)
            for unit, qid in pending
            if needs_more_votes(votes[qid], policy)
        ]
        round_votes = policy.step_votes
    return votes, total


# ---------------------------------------------------------------------------
# Predicate evaluation with crowd bindings
# ---------------------------------------------------------------------------


def evaluate_with_crowd(
    expr: Expression,
    row: Row,
    bindings: CrowdBindings,
    ctx: QueryContext,
) -> object:
    """Evaluate an expression, answering crowd UDF calls from ``bindings``."""
    env = ctx.catalog.functions()

    def recurse(node: Expression) -> object:
        if isinstance(node, UDFCall):
            if node.name in env:
                return node.evaluate(row, env)
            ref = call_item_ref(node, row, env)
            if node.name in bindings.filters:
                return bindings.filters[node.name].get(ref, False)
            if node.name in bindings.generative:
                values = bindings.generative[node.name].get(ref, {})
                if node.field is not None:
                    if node.field not in values:
                        raise ExecutionError(
                            f"no combined value for {node.name}(...).{node.field} "
                            f"on item {ref!r}"
                        )
                    return values[node.field]
                task = ctx.catalog.task(node.name)
                if len(task.fields) == 1:
                    return values.get(task.fields[0].name)
                return values
            raise ExecutionError(
                f"no crowd results bound for UDF {node.name!r}"
            )
        if isinstance(node, Comparison):
            left = recurse(node.left)
            right = recurse(node.right)
            return Comparison(op=node.op, left=Literal(left), right=Literal(right)).evaluate(row, env)
        if isinstance(node, And):
            return all(recurse(op) for op in node.operands)
        if isinstance(node, Or):
            return any(recurse(op) for op in node.operands)
        if isinstance(node, Not):
            return not recurse(node.operand)
        if isinstance(node, BinaryOp):
            return BinaryOp(
                op=node.op, left=Literal(recurse(node.left)), right=Literal(recurse(node.right))
            ).evaluate(row, env)
        return node.evaluate(row, env)

    return recurse(expr)


def run_predicate_calls(
    predicate: Expression,
    rows: Sequence[Row],
    ctx: QueryContext,
    label: str,
) -> CrowdBindings:
    """Run every crowd UDF call inside a predicate over the rows."""
    bindings = CrowdBindings()
    env = ctx.catalog.functions()
    generative_items: dict[str, list[str]] = {}
    generative_calls: dict[str, UDFCall] = {}
    for call in predicate.udf_calls():
        if call.name in env:
            continue
        task = ctx.catalog.task(call.name)
        role = task_role(task)
        if role == ROLE_FILTER:
            if call.name not in bindings.filters:
                answers, outcome = run_filter_call(call, rows, ctx, f"{label}:{call.name}")
                bindings.filters[call.name] = answers
                bindings.outcome.merge(outcome)
                if answers:
                    bindings.signals[f"{call.name}.yes_fraction"] = sum(
                        answers.values()
                    ) / len(answers)
        elif role == ROLE_GENERATIVE:
            refs = generative_items.setdefault(call.name, [])
            generative_calls[call.name] = call
            for row in rows:
                ref = call_item_ref(call, row, env)
                if ref not in refs:
                    refs.append(ref)
        else:
            raise PlanError(
                f"task {call.name!r} ({type(task).__name__}) cannot appear in "
                "a WHERE predicate"
            )
    if generative_items:
        results, outcome, corpora = run_generative_units(
            generative_items,
            ctx,
            f"{label}:gen",
            combine_tasks=ctx.config.combine_features,
        )
        bindings.generative.update(results)
        bindings.outcome.merge(outcome)
        for task_name, corpus in corpora.items():
            populated = {q: v for q, v in corpus.items() if v}
            if populated:
                bindings.signals[f"{task_name}.kappa"] = feature_kappa(populated)
    return bindings
