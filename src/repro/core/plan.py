"""Logical plan nodes.

Plans are passive trees; the executor interprets them. Node kinds:

* :class:`ScanNode` — read a catalog table under an alias.
* :class:`ComputedFilterNode` — a predicate evaluable without the crowd
  (pushed down as far as possible, §2.5).
* :class:`CrowdPredicateNode` — a predicate whose UDF calls require crowd
  work (filter tasks and/or generative features), one per WHERE conjunct so
  that conjuncts execute serially (§2.5).
* :class:`JoinNode` — a crowd equijoin with optional POSSIBLY features.
* :class:`SortNode` — ORDER BY with plain columns and/or a Rank UDF.
* :class:`ProjectNode` / :class:`LimitNode`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar, Iterator

from repro.language.ast import OrderItem, SelectItem
from repro.relational.expressions import Expression, UDFCall


@dataclass
class PlanNode:
    """Base class; children in ``inputs``.

    Every node carries a string ``kind`` — its registry key. The executors,
    scheduler, cost model, and optimizer dispatch on ``node.kind`` through
    :class:`~repro.tasks.registry.DispatchTable`\\ s instead of switching on
    node classes, so out-of-tree node kinds can register handlers without
    engine edits.
    """

    kind: ClassVar[str] = ""

    inputs: tuple["PlanNode", ...] = field(default_factory=tuple, kw_only=True)

    def label(self) -> str:
        """One-line description for EXPLAIN output."""
        return type(self).__name__

    def walk(self) -> Iterator["PlanNode"]:
        """Pre-order traversal of the subtree."""
        yield self
        for child in self.inputs:
            yield from child.walk()


@dataclass
class ScanNode(PlanNode):
    """Scan a registered table, qualifying columns with the alias."""

    kind: ClassVar[str] = "scan"

    table_name: str = ""
    alias: str = ""

    def label(self) -> str:
        return f"Scan({self.table_name} AS {self.alias})"


@dataclass
class ComputedFilterNode(PlanNode):
    """A computer-evaluable predicate (no HITs)."""

    kind: ClassVar[str] = "computed_filter"

    predicate: Expression | None = None

    def label(self) -> str:
        return f"ComputedFilter({self.predicate})"


@dataclass
class CrowdPredicateNode(PlanNode):
    """A predicate that needs crowd answers for its UDF calls."""

    kind: ClassVar[str] = "crowd_filter"

    predicate: Expression | None = None

    def label(self) -> str:
        return f"CrowdFilter({self.predicate})"

    def crowd_calls(self) -> list[UDFCall]:
        """The UDF calls whose answers the crowd must provide."""
        assert self.predicate is not None
        return self.predicate.udf_calls()


@dataclass
class AdaptiveFilterNode(PlanNode):
    """A fused chain of crowd predicates executed adaptively.

    Built by the optimizer when the adaptive re-optimizer (``REPRO_ADAPT``)
    is active and two or more :class:`CrowdPredicateNode`\\ s sit adjacent
    in a plan: instead of a fixed query-order cascade, the fused operator
    runs the estimate-observe-replan loop in
    :mod:`repro.core.adaptive` — a pilot pass samples each conjunct's
    selectivity, then the remaining rows cascade through the conjuncts in
    ascending observed-selectivity order, re-planning after every crowd
    round. ``members`` keeps the original predicate nodes (in query order)
    so EXPLAIN can attribute per-conjunct stats and estimated-vs-observed
    selectivities to them.

    The surviving row set is order-independent at the *answer* level (the
    conjuncts AND together), so whenever each question's combined answer
    is stable across posting orders — noise-free or high-margin votes —
    the fused operator emits exactly the rows the static cascade would,
    in the same input order, and only the HIT spend differs. With very
    noisy workers a borderline majority can land differently because
    reordering shifts which dispatch stream answers which question, just
    as re-running a static plan against a different crowd would.
    """

    kind: ClassVar[str] = "adaptive_filter"

    members: tuple[CrowdPredicateNode, ...] = ()

    def label(self) -> str:
        rendered = " AND ".join(str(m.predicate) for m in self.members)
        return f"AdaptiveCrowdFilter({len(self.members)} conjuncts: {rendered})"


@dataclass
class JoinNode(PlanNode):
    """Crowd equijoin of the two inputs with POSSIBLY feature clauses."""

    kind: ClassVar[str] = "join"

    condition: UDFCall | None = None
    possibly: tuple[Expression, ...] = ()

    def label(self) -> str:
        suffix = f" + {len(self.possibly)} POSSIBLY" if self.possibly else ""
        return f"CrowdJoin({self.condition}{suffix})"


@dataclass
class SortNode(PlanNode):
    """ORDER BY: leading plain expressions group; a Rank UDF sorts groups."""

    kind: ClassVar[str] = "sort"

    order_items: tuple[OrderItem, ...] = ()

    limit_hint: int | None = None
    """Set by the planner when a ``LIMIT k`` caps this sort through
    row-preserving operators only (a crowd-free projection): the sort may
    then produce just the leading k rows. The scale-out sort path
    (``REPRO_SORTSCALE``) routes a hinted single-group Compare sort through
    best-of-batch tournaments instead of full pair coverage."""

    def label(self) -> str:
        rendered = ", ".join(str(item) for item in self.order_items)
        return f"Sort({rendered})"


@dataclass
class ProjectNode(PlanNode):
    """Evaluate the select list (may trigger generative crowd work)."""

    kind: ClassVar[str] = "project"

    items: tuple[SelectItem, ...] = ()
    star: bool = False

    def label(self) -> str:
        if self.star:
            return "Project(*)"
        return f"Project({', '.join(str(item) for item in self.items)})"


@dataclass
class LimitNode(PlanNode):
    """Keep the first k rows (top-K over a crowd sort, §2.3)."""

    kind: ClassVar[str] = "limit"

    count: int = 0

    def label(self) -> str:
        return f"Limit({self.count})"


def plan_tree_lines(node: PlanNode, indent: int = 0) -> list[str]:
    """Indented tree rendering used by EXPLAIN."""
    lines = ["  " * indent + node.label()]
    for child in node.inputs:
        lines.extend(plan_tree_lines(child, indent + 1))
    return lines
