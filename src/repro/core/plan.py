"""Logical plan nodes.

Plans are passive trees; the executor interprets them. Node kinds:

* :class:`ScanNode` — read a catalog table under an alias.
* :class:`ComputedFilterNode` — a predicate evaluable without the crowd
  (pushed down as far as possible, §2.5).
* :class:`CrowdPredicateNode` — a predicate whose UDF calls require crowd
  work (filter tasks and/or generative features), one per WHERE conjunct so
  that conjuncts execute serially (§2.5).
* :class:`JoinNode` — a crowd equijoin with optional POSSIBLY features.
* :class:`SortNode` — ORDER BY with plain columns and/or a Rank UDF.
* :class:`ProjectNode` / :class:`LimitNode`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.language.ast import OrderItem, SelectItem
from repro.relational.expressions import Expression, UDFCall


@dataclass
class PlanNode:
    """Base class; children in ``inputs``."""

    inputs: tuple["PlanNode", ...] = field(default_factory=tuple, kw_only=True)

    def label(self) -> str:
        """One-line description for EXPLAIN output."""
        return type(self).__name__

    def walk(self) -> Iterator["PlanNode"]:
        """Pre-order traversal of the subtree."""
        yield self
        for child in self.inputs:
            yield from child.walk()


@dataclass
class ScanNode(PlanNode):
    """Scan a registered table, qualifying columns with the alias."""

    table_name: str = ""
    alias: str = ""

    def label(self) -> str:
        return f"Scan({self.table_name} AS {self.alias})"


@dataclass
class ComputedFilterNode(PlanNode):
    """A computer-evaluable predicate (no HITs)."""

    predicate: Expression | None = None

    def label(self) -> str:
        return f"ComputedFilter({self.predicate})"


@dataclass
class CrowdPredicateNode(PlanNode):
    """A predicate that needs crowd answers for its UDF calls."""

    predicate: Expression | None = None

    def label(self) -> str:
        return f"CrowdFilter({self.predicate})"

    def crowd_calls(self) -> list[UDFCall]:
        """The UDF calls whose answers the crowd must provide."""
        assert self.predicate is not None
        return self.predicate.udf_calls()


@dataclass
class JoinNode(PlanNode):
    """Crowd equijoin of the two inputs with POSSIBLY feature clauses."""

    condition: UDFCall | None = None
    possibly: tuple[Expression, ...] = ()

    def label(self) -> str:
        suffix = f" + {len(self.possibly)} POSSIBLY" if self.possibly else ""
        return f"CrowdJoin({self.condition}{suffix})"


@dataclass
class SortNode(PlanNode):
    """ORDER BY: leading plain expressions group; a Rank UDF sorts groups."""

    order_items: tuple[OrderItem, ...] = ()

    def label(self) -> str:
        rendered = ", ".join(str(item) for item in self.order_items)
        return f"Sort({rendered})"


@dataclass
class ProjectNode(PlanNode):
    """Evaluate the select list (may trigger generative crowd work)."""

    items: tuple[SelectItem, ...] = ()
    star: bool = False

    def label(self) -> str:
        if self.star:
            return "Project(*)"
        return f"Project({', '.join(str(item) for item in self.items)})"


@dataclass
class LimitNode(PlanNode):
    """Keep the first k rows (top-K over a crowd sort, §2.3)."""

    count: int = 0

    def label(self) -> str:
        return f"Limit({self.count})"


def plan_tree_lines(node: PlanNode, indent: int = 0) -> list[str]:
    """Indented tree rendering used by EXPLAIN."""
    lines = ["  " * indent + node.label()]
    for child in node.inputs:
        lines.extend(plan_tree_lines(child, indent + 1))
    return lines
