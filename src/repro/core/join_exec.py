"""Crowd join execution (§3): block nested loops over candidate pairs.

Qurk "implements a block nested loop join, and uses the results of the HIT
comparisons to evaluate whether two elements satisfy the join condition".
The executor hands this module both inputs fully materialised (HIT batching
spans whole tuple sets); it applies POSSIBLY feature filtering (equality
features across the tables plus unary feature predicates on one side),
shapes the surviving candidates into the configured interface's HITs, and
combines the votes into join results. The two feature-extraction passes
are posted before either is collected, so under the pipelined executor the
left and right linear scans overlap in virtual time (§2.6).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping, Sequence

from repro.combine.base import combine_corpus
from repro.core.context import QueryContext
from repro.core.crowd_calls import (
    adaptive_single_question_votes,
    begin_generative_units,
    call_item_ref,
    evaluate_arg,
)
from repro.hits.manager import collect_pending
from repro.core.plan import JoinNode
from repro.errors import PlanError
from repro.hits.hit import (
    JoinGridPayload,
    JoinPair,
    JoinPairsPayload,
    Payload,
    join_qid,
)
from repro.joins.batching import JoinInterface, all_pairs, smart_grids, smart_grids_for_candidates
from repro.joins.feature_filter import (
    confident_feature_values,
    evaluate_features,
    filter_candidates,
)
from repro.metrics.agreement import feature_kappa
from repro.relational.expressions import (
    UNKNOWN,
    Comparison,
    Expression,
    Literal,
    UDFCall,
    feature_equal,
)
from repro.relational.rows import Row
from repro.tasks.registry import ROLE_GENERATIVE, ROLE_JOIN, task_role

if TYPE_CHECKING:  # pragma: no cover
    from repro.tasks.equijoin import EquiJoinTask
    from repro.tasks.generative import GenerativeTask


class _PossiblyClauses:
    """Classified POSSIBLY expressions."""

    def __init__(self) -> None:
        # (feature key, left call, right call)
        self.equality: list[tuple[str, UDFCall, UDFCall]] = []
        # (expression, side, call) with side in {"left", "right"}
        self.unary: list[tuple[Expression, str, UDFCall]] = []


def _classify_possibly(
    node: JoinNode,
    left_aliases: set[str],
    right_aliases: set[str],
    ctx: QueryContext,
) -> _PossiblyClauses:
    clauses = _PossiblyClauses()
    for expr in node.possibly:
        calls = [
            call
            for call in expr.udf_calls()
            if not ctx.catalog.has_function(call.name)
        ]
        for call in calls:
            task = ctx.catalog.task(call.name)
            if task_role(task) != ROLE_GENERATIVE:
                raise PlanError(
                    f"POSSIBLY clause task {call.name!r} must be Generative"
                )
        sides = [_call_side(call, left_aliases, right_aliases) for call in calls]
        if (
            len(calls) == 2
            and isinstance(expr, Comparison)
            and expr.op == "="
            and set(sides) == {"left", "right"}
        ):
            left_call = calls[sides.index("left")]
            right_call = calls[sides.index("right")]
            clauses.equality.append((left_call.name, left_call, right_call))
        elif len(calls) == 1:
            clauses.unary.append((expr, sides[0], calls[0]))
        else:
            raise PlanError(
                f"unsupported POSSIBLY clause {expr}; expected "
                "feature(l) = feature(r) or a single-side predicate"
            )
    return clauses


def _call_side(
    call: UDFCall, left_aliases: set[str], right_aliases: set[str]
) -> str:
    refs = call.references()
    bindings = {ref.split(".", 1)[0] if "." in ref else ref for ref in refs}
    if bindings and bindings <= left_aliases:
        return "left"
    if bindings and bindings <= right_aliases:
        return "right"
    raise PlanError(
        f"POSSIBLY call {call} references {sorted(bindings)}, which is not "
        "confined to one side of the join"
    )


def _field_value(
    task: GenerativeTask, call: UDFCall, values: Mapping[str, object]
) -> object:
    field_name = call.field or task.single_field.name
    return values.get(field_name, UNKNOWN)


def execute_join(
    node: JoinNode,
    left_rows: Sequence[Row],
    right_rows: Sequence[Row],
    ctx: QueryContext,
    left_aliases: set[str],
    right_aliases: set[str],
) -> list[Row]:
    """Run the crowd equijoin; returns merged rows for matching pairs."""
    assert node.condition is not None
    task = ctx.catalog.task(node.condition.name)
    if task_role(task) != ROLE_JOIN:
        raise PlanError(f"join task {node.condition.name!r} is not a join task")
    stats = ctx.stats_for(node)
    stats.rows_in = len(left_rows) + len(right_rows)
    env = ctx.catalog.functions()
    left_arg, right_arg = node.condition.args

    left_map = _ref_map(left_rows, left_arg, env)
    right_map = _ref_map(right_rows, right_arg, env)
    left_refs = list(left_map)
    right_refs = list(right_map)
    if not left_refs or not right_refs:
        return []

    features: dict[str, tuple[dict[str, object], dict[str, object]]] = {}
    corpora: dict[str, dict] = {}
    if ctx.config.use_feature_filters and node.possibly:
        clauses = _classify_possibly(node, left_aliases, right_aliases, ctx)
        left_refs, right_refs, features, corpora = _run_feature_extraction(
            node, clauses, left_refs, right_refs, ctx
        )
        if ctx.config.auto_feature_selection and features:
            report = evaluate_features(
                left_refs,
                right_refs,
                features,
                corpora,
            )
            features = {name: features[name] for name in report.kept}
            stats.signals["features_kept"] = float(len(report.kept))
            stats.signals["features_dropped"] = float(len(report.dropped))
            if ctx.adapt is not None:
                # Feature keep/drop is a re-plan decision: the UNKNOWN-aware
                # σ just measured decides whether the feature stays in the
                # remaining subtree's plan.
                from repro.core.adaptive import ReplanEvent

                for decision in report.decisions:
                    if decision.keep:
                        continue
                    ctx.adapt.note_event(
                        ReplanEvent(
                            round=ctx.adapt.next_round(),
                            phase="feature-drop",
                            subject=f"{decision.name}: {decision.reason}",
                            estimate_before=decision.selectivity,
                            observed=decision.selectivity,
                            reordered=True,
                        )
                    )

    if features:
        candidates = filter_candidates(
            left_refs, right_refs, list(features.values())
        )
    else:
        candidates = all_pairs(left_refs, right_refs)
    cross = len(left_refs) * len(right_refs)
    stats.signals["candidate_pairs"] = float(len(candidates))
    stats.signals["cross_product"] = float(cross)
    if cross:
        stats.signals["filter_selectivity"] = len(candidates) / cross
        if ctx.adapt is not None:
            # Feed the observed per-feature selectivity back into the
            # query's estimate book under the same keys the cost model
            # reads: later re-plans (and later queries on an engine
            # sharing the book) see the measured pass rates.
            from repro.core.cost_model import feature_key
            from repro.joins.selectivity import estimate_selectivity as _est

            for key, (left_values, right_values) in features.items():
                sigma = _est(
                    list(left_values.values()) or [UNKNOWN],
                    list(right_values.values()) or [UNKNOWN],
                )
                ctx.adapt.book.record_fraction(
                    feature_key(key), sigma, weight=float(len(left_values))
                )

    matches = _run_join_interface(task, candidates, left_refs, right_refs, ctx, node)

    out: list[Row] = []
    for left_ref, right_ref in matches:
        for lrow in left_map[left_ref]:
            for rrow in right_map[right_ref]:
                out.append(lrow.merged(rrow))
    stats.rows_out = len(out)
    return out


def _ref_map(rows: Sequence[Row], arg, env) -> dict[str, list[Row]]:
    mapping: dict[str, list[Row]] = {}
    from repro.tasks.base import resolve_item_ref

    for row in rows:
        ref = resolve_item_ref(evaluate_arg(arg, row, env))
        mapping.setdefault(ref, []).append(row)
    return mapping


def _run_feature_extraction(
    node: JoinNode,
    clauses: _PossiblyClauses,
    left_refs: list[str],
    right_refs: list[str],
    ctx: QueryContext,
):
    """Linear crowd passes extracting POSSIBLY features on both sides."""
    stats = ctx.stats_for(node)
    left_tasks: dict[str, list[str]] = {}
    right_tasks: dict[str, list[str]] = {}
    for _, left_call, right_call in clauses.equality:
        left_tasks[left_call.name] = left_refs
        right_tasks[right_call.name] = right_refs
    for _, side, call in clauses.unary:
        target = left_tasks if side == "left" else right_tasks
        target[call.name] = left_refs if side == "left" else right_refs

    # Both sides are posted before either is collected: under the pipelined
    # executor the two feature passes are outstanding over the same virtual
    # interval (the linear scans overlap, §2.6); against the blocking manager
    # each begin resolves at posting time, giving the serial left-then-right
    # execution draw-for-draw.
    left_pending = begin_generative_units(
        left_tasks, ctx, "join:features:left", combine_tasks=ctx.config.combine_features
    )
    right_pending = begin_generative_units(
        right_tasks, ctx, "join:features:right", combine_tasks=ctx.config.combine_features
    )
    collect_pending(
        [p.pending for p in (left_pending, right_pending) if p.pending is not None]
    )
    left_results, left_outcome, left_corpora = left_pending.collect()
    right_results, right_outcome, right_corpora = right_pending.collect()
    stats.hits += left_outcome.hit_count + right_outcome.hit_count
    stats.assignments += left_outcome.assignment_count + right_outcome.assignment_count

    # Unary predicates prune one side before the cross product forms.
    for expr, side, call in clauses.unary:
        task = ctx.catalog.task(call.name)
        results = left_results if side == "left" else right_results
        refs = left_refs if side == "left" else right_refs
        kept = []
        for ref in refs:
            value = _field_value(task, call, results.get(call.name, {}).get(ref, {}))
            if value is UNKNOWN or _evaluate_unary(expr, call, value):
                kept.append(ref)
        if side == "left":
            left_refs = kept
        else:
            right_refs = kept
        stats.signals[f"{call.name}.selectivity"] = (
            len(kept) / len(refs) if refs else 1.0
        )
        if ctx.adapt is not None and refs:
            ctx.adapt.book.observe(f"unary:{call.name}", len(refs), len(kept))

    features: dict[str, tuple[dict[str, object], dict[str, object]]] = {}
    corpora: dict[str, dict] = {}
    for key, left_call, right_call in clauses.equality:
        left_task = ctx.catalog.task(left_call.name)
        right_task = ctx.catalog.task(right_call.name)
        # Filtering values use the abstention rule: contested labels demote
        # to UNKNOWN so noisy features (hair) filter weakly, not wrongly.
        left_field = left_call.field or left_task.single_field.name
        right_field = right_call.field or right_task.single_field.name
        left_confident = confident_feature_values(
            _field_corpus(left_corpora.get(left_call.name, {}), left_field)
        )
        right_confident = confident_feature_values(
            _field_corpus(right_corpora.get(right_call.name, {}), right_field)
        )
        left_values = {ref: left_confident.get(ref, UNKNOWN) for ref in left_refs}
        right_values = {ref: right_confident.get(ref, UNKNOWN) for ref in right_refs}
        features[key] = (left_values, right_values)
        merged_corpus = {}
        merged_corpus.update(left_corpora.get(left_call.name, {}))
        merged_corpus.update(right_corpora.get(right_call.name, {}))
        populated = {qid: votes for qid, votes in merged_corpus.items() if votes}
        corpora[key] = populated
        if populated:
            stats.signals[f"{key}.kappa"] = feature_kappa(populated)
    return left_refs, right_refs, features, corpora


def _field_corpus(corpus: Mapping[str, list], field_name: str) -> dict[str, list]:
    """Restrict a generative vote corpus to one field's questions."""
    suffix = f":{field_name}"
    return {qid: votes for qid, votes in corpus.items() if qid.endswith(suffix) and votes}


def _evaluate_unary(expr: Expression, call: UDFCall, value: object) -> bool:
    """Evaluate a unary POSSIBLY predicate with the call's value substituted."""

    def substitute(node: Expression) -> Expression:
        if node is call or node == call:
            return Literal(value)
        if isinstance(node, Comparison):
            return Comparison(
                op=node.op, left=substitute(node.left), right=substitute(node.right)
            )
        return node

    substituted = substitute(expr)
    from repro.relational.schema import Schema

    empty_row = Row(Schema([]), {})
    return bool(substituted.evaluate(empty_row, {}))


def _choose_grid_orientation(
    left_count: int,
    right_count: int,
    ctx: QueryContext,
    stats,
) -> tuple[int, int]:
    """Cost-based join-side choice for SmartBatch grids (adaptive only).

    With an asymmetric r×c grid the HIT count depends on which side of the
    join rides the rows: ``ceil(|L|/r)·ceil(|R|/c)`` vs the transposed
    assignment. This is a mid-query re-plan — the side cardinalities used
    are the *observed* post-filter ref counts, not estimates. With a
    square grid (the default 5×5) or ``REPRO_ADAPT=0`` the configured
    orientation is kept, bit-identical to the static plan.
    """
    import math

    rows_dim, cols_dim = ctx.config.grid_rows, ctx.config.grid_cols
    if ctx.adapt is None or rows_dim == cols_dim:
        return rows_dim, cols_dim
    default_hits = math.ceil(left_count / rows_dim) * math.ceil(
        right_count / cols_dim
    )
    swapped_hits = math.ceil(left_count / cols_dim) * math.ceil(
        right_count / rows_dim
    )
    if swapped_hits < default_hits:
        from repro.core.adaptive import ReplanEvent

        state = ctx.adapt
        # predicted = what the configured (static) orientation would have
        # spent; actual = what the chosen orientation posts — so the log's
        # "hits predicted->actual" arrow reads as the reduction it is.
        state.note_event(
            ReplanEvent(
                round=state.next_round(),
                phase="join",
                subject=(
                    f"grid {rows_dim}x{cols_dim} -> {cols_dim}x{rows_dim} "
                    f"for |L|={left_count}, |R|={right_count}"
                ),
                rows_in=left_count + right_count,
                rows_out=left_count + right_count,
                predicted_hits=default_hits,
                actual_hits=swapped_hits,
                reordered=True,
            )
        )
        stats.signals["grid_swapped"] = 1.0
        return cols_dim, rows_dim
    return rows_dim, cols_dim


def _run_join_interface(
    task: EquiJoinTask,
    candidates: list[tuple[str, str]],
    left_refs: list[str],
    right_refs: list[str],
    ctx: QueryContext,
    node: JoinNode,
) -> list[tuple[str, str]]:
    """Post the join HITs for the configured interface; combine votes."""
    if not candidates:
        return []
    stats = ctx.stats_for(node)
    interface = ctx.config.join_interface
    question = task.pair_question()
    units: list[list[Payload]] = []
    batch_size = 1

    if interface in (JoinInterface.SIMPLE, JoinInterface.NAIVE):
        units = [
            [JoinPairsPayload(task.name, (JoinPair(l, r),), question=question)]
            for l, r in candidates
        ]
        batch_size = (
            1 if interface is JoinInterface.SIMPLE else ctx.config.naive_batch_size
        )
    else:
        full_cross = len(candidates) == len(left_refs) * len(right_refs)
        if full_cross:
            # The block-count formula the swap decision rests on is exact
            # only when grids cover the full cross product; candidate-
            # pruned grids are packed per-left-block, where a transposed
            # orientation has no predictable win.
            grid_rows, grid_cols = _choose_grid_orientation(
                len(left_refs), len(right_refs), ctx, stats
            )
            grids = smart_grids(left_refs, right_refs, grid_rows, grid_cols)
        else:
            grids = smart_grids_for_candidates(
                candidates, ctx.config.grid_rows, ctx.config.grid_cols
            )
        units = [
            [
                JoinGridPayload(
                    task.name,
                    tuple(left_block),
                    tuple(right_block),
                    question=task.grid_question(),
                )
            ]
            for left_block, right_block in grids
        ]

    if ctx.config.adaptive is not None and interface is not JoinInterface.SMART:
        qids = [
            join_qid(task.name, unit[0].pairs[0].left, unit[0].pairs[0].right)  # type: ignore[attr-defined]
            for unit in units
        ]
        votes, outcome = adaptive_single_question_votes(units, qids, ctx, "join:pairs")
    else:
        ctx.charge_budget_for_units(units, batch_size, ctx.config.assignments)
        outcome = ctx.manager.run_units(
            units,
            batch_size=batch_size,
            assignments=ctx.config.assignments,
            label="join:pairs",
            strict=ctx.config.strict_hits,
        )
        votes = outcome.votes
    stats.hits += outcome.hit_count
    stats.assignments += outcome.assignment_count
    stats.elapsed_seconds += outcome.elapsed_seconds

    corpus = {qid: v for qid, v in votes.items() if ":join:" in qid and v}
    if not corpus:
        return []
    combiner = ctx.combiner_for(task.combiner)
    decisions = combine_corpus(combiner, corpus)
    candidate_set = set(candidates)
    matches: list[tuple[str, str]] = []
    for qid, is_match in decisions.items():
        if not is_match:
            continue
        pair_part = qid.rsplit(":join:", 1)[1]
        left_ref, right_ref = pair_part.split("|", 1)
        if (left_ref, right_ref) in candidate_set:
            matches.append((left_ref, right_ref))
    matches.sort()
    if ctx.adapt is not None and candidates:
        from repro.core.cost_model import join_key

        ctx.adapt.book.observe(join_key(task.name), len(candidates), len(matches))
    agreements = [
        max(sum(1 for v in vs if v.value), sum(1 for v in vs if not v.value)) / len(vs)
        for vs in corpus.values()
    ]
    if agreements:
        stats.signals["mean_pair_agreement"] = sum(agreements) / len(agreements)
    stats.signals["matches"] = float(len(matches))
    return matches
