"""The event-driven pipelined executor (§2.6).

The paper's Qurk executor "compiles queries into a set of operators which
communicate asynchronously through input queues", so HIT batches from
different operators are outstanding on the marketplace at the same time.
This module reproduces that design *deterministically*: each plan operator
becomes a stepping generator task with a bounded input queue, scheduled by
a single-threaded event loop driven off the marketplace's virtual clock.

How determinism survives pipelining
-----------------------------------
Real threads would make worker draws order-dependent. Here, concurrency is
expressed entirely in **virtual time**:

* every operator task carries a *local clock* — the virtual time up to
  which its inputs and previous HIT rounds have resolved;
* a crowd operator posts each HIT group at its local clock through the
  marketplace's multi-client API
  (:meth:`~repro.crowd.marketplace.SimulatedMarketplace.submit_hit_group`),
  so groups from different operators — and independent groups within one
  operator, like a join's two feature-extraction sides or a sort's
  per-group batches — occupy overlapping virtual intervals;
* the scheduler steps tasks in **post-order plan rank** and gates each
  crowd phase until every lower-rank task has finished, which makes the
  global *posting order* exactly the depth-first interpreter's. Since each
  group's dispatch draws from an independent stream keyed by posting order
  (not by clock), the pipelined executor emits bit-identical votes, costs,
  and rows — only completion times differ;
* outstanding groups are harvested in virtual-finish-time order
  (:func:`repro.hits.manager.collect_pending` /
  :meth:`~repro.crowd.marketplace.SimulatedMarketplace.harvest`), and the
  shared clock advances to the latest harvested finish — the makespan of
  the overlapped schedule rather than the sum of serial rounds.

Rows flow between operators as chunks through bounded
:class:`OperatorQueue`\\ s: computed operators (scan, computed filter,
limit, crowd-free projections) transform chunk-by-chunk and stall when a
consumer lags (back-pressure); crowd operators drain their queue before
posting, because HIT *merging* (§2.6) batches over an operator's whole
tuple set. Queue occupancy, stalls, and per-operator posting telemetry land
in :class:`~repro.core.context.PipelineStats` for EXPLAIN.

Error paths: a failing crowd phase (budget exceeded, uncompleted HITs
under ``strict_hits``) aborts the query exactly as under the depth-first
interpreter; sibling groups already submitted may then stay unharvested,
which is safe — the ledger only ever charges harvested work.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Iterator

from repro.core.context import PipelineStats, QueryContext
from repro.core.executor import (
    computed_filter_rows,
    crowd_filter_rows,
    join_rows,
    limit_rows,
    project_crowd_calls,
    project_rows,
    scan_rows,
)
from repro.core.plan import (
    AdaptiveFilterNode,
    ComputedFilterNode,
    CrowdPredicateNode,
    JoinNode,
    LimitNode,
    PlanNode,
    ProjectNode,
    ScanNode,
    SortNode,
)
from repro.core.sort_exec import execute_sort
from repro.errors import ExecutionError
from repro.relational.rows import Row
from repro.tasks.registry import DispatchTable


# ---------------------------------------------------------------------------
# Effects yielded by operator generators
# ---------------------------------------------------------------------------


class _Need:
    """Ask the scheduler for the next chunk of one input port."""

    __slots__ = ("port",)

    def __init__(self, port: int) -> None:
        self.port = port


class _Emit:
    """Push a chunk downstream (stalls while the output queue is full)."""

    __slots__ = ("rows", "time")

    def __init__(self, rows: list[Row], time: float) -> None:
        self.rows = rows
        self.time = time


class _Gate:
    """Hold a crowd phase until every lower-rank task finished posting."""

    __slots__ = ()


_GATE = _Gate()


# ---------------------------------------------------------------------------
# Queues
# ---------------------------------------------------------------------------


class OperatorQueue:
    """A bounded chunk queue between a producer and one consumer.

    ``capacity`` is in chunks; ``None`` means unbounded (the root output the
    scheduler itself drains). Each entry is ``(rows, avail_time)`` — the
    virtual time at which the producer made the chunk available.
    """

    __slots__ = ("capacity", "items", "closed", "peak", "total_chunks")

    def __init__(self, capacity: int | None) -> None:
        self.capacity = capacity
        self.items: list[tuple[list[Row], float]] = []
        self.closed = False
        self.peak = 0
        self.total_chunks = 0

    @property
    def full(self) -> bool:
        return self.capacity is not None and len(self.items) >= self.capacity

    def put(self, rows: list[Row], time: float) -> None:
        if self.closed:
            raise ExecutionError("emit into a closed operator queue")
        self.items.append((rows, time))
        self.total_chunks += 1
        if len(self.items) > self.peak:
            self.peak = len(self.items)

    def get(self) -> tuple[list[Row], float] | None:
        """Next chunk, or None when drained-and-closed; None-not-ready is
        signalled by the caller checking :meth:`ready` first."""
        if self.items:
            return self.items.pop(0)
        return None

    def ready(self) -> bool:
        """Whether a consumer's ``get`` (or end-of-stream) can resolve now."""
        return bool(self.items) or self.closed

    def close(self) -> None:
        self.closed = True


# ---------------------------------------------------------------------------
# Operator tasks
# ---------------------------------------------------------------------------


class OperatorTask:
    """One plan operator running as a stepping generator."""

    def __init__(
        self,
        node: PlanNode,
        rank: int,
        depth: int,
        inputs: list["OperatorTask"],
        out_queue: OperatorQueue,
        epoch: float,
    ) -> None:
        self.node = node
        self.rank = rank
        self.depth = depth
        self.inputs = inputs
        self.out_queue = out_queue
        self.local_time = epoch
        self.gen: Iterator[object] | None = None
        self.pending: object | None = None
        self.started = False
        self.finished = False
        self.emit_blocked = False
        self.pstats = PipelineStats(
            stage=rank,
            depth=depth,
            queue_capacity=out_queue.capacity or 0,
            started_at=epoch,
            finished_at=epoch,
        )
        self.open_batches = 0

    def advance_to(self, time: float) -> None:
        if time > self.local_time:
            self.local_time = time


class _LocalClock:
    """Platform facade exposing an operator's local virtual clock.

    Crowd-call helpers read ``ctx.manager.platform.clock_seconds`` for
    outcome timestamps; under the pipelined executor that must be the
    operator's own timeline, not the shared harvest clock.
    """

    __slots__ = ("_task",)

    def __init__(self, task: OperatorTask) -> None:
        self._task = task

    @property
    def clock_seconds(self) -> float:
        return self._task.local_time


class _OperatorPending:
    """An operator's pending batch: advances the local clock on harvest."""

    __slots__ = ("_inner", "_task", "_sched", "_accounted")

    def __init__(self, inner, task: OperatorTask, sched: "PipelineScheduler") -> None:
        self._inner = inner
        self._task = task
        self._sched = sched
        self._accounted = False

    @property
    def post_time(self) -> float:
        return self._inner.post_time

    @property
    def finish_time(self) -> float:
        return self._inner.finish_time

    @property
    def done(self) -> bool:
        return self._inner.done

    def result(self):
        first = not self._inner.done
        try:
            outcome = self._inner.result()
        finally:
            if first and not self._accounted:
                self._accounted = True
                self._sched.note_harvest(self._task, self._inner)
        self._task.advance_to(self._inner.finish_time)
        return outcome


class _OperatorManager:
    """Task-manager proxy binding posts to an operator's local timeline.

    Same interface the operator bodies already use (``run_units`` /
    ``begin_units`` / ``build_hits`` plus ``ledger``/``cache``/``platform``
    attributes); every group is submitted outstanding at the operator's
    local clock and harvested through :class:`_OperatorPending`.
    """

    def __init__(self, inner, task: OperatorTask, sched: "PipelineScheduler") -> None:
        self._inner = inner
        self._task = task
        self._sched = sched
        self.ledger = inner.ledger
        self.cache = inner.cache
        self.compiler = inner.compiler
        self.reward = inner.reward
        self.platform = _LocalClock(task)

    def build_hits(self, units, batch_size, assignments, label):
        return self._inner.build_hits(units, batch_size, assignments, label)

    def merge_units(self, units, batch_size):
        return self._inner.merge_units(units, batch_size)

    def projected_new_assignments(self, units, batch_size, assignments):
        return self._inner.projected_new_assignments(units, batch_size, assignments)

    @property
    def inflight_assignments(self) -> int:
        """Posted-but-unharvested assignments, scheduler-wide — what the
        ledger will charge once the outstanding groups are collected.
        Consulted by ``QueryContext.charge_budget`` so the budget abort
        point matches the depth-first interpreter's eager charging."""
        return self._sched.inflight_assignments

    def run_units(
        self, units, batch_size=1, assignments=5, label="task", strict=True
    ):
        return self.begin_units(
            units, batch_size, assignments, label=label, strict=strict
        ).result()

    def begin_units(
        self,
        units,
        batch_size=1,
        assignments=5,
        label="task",
        strict=True,
        post_time=None,
    ):
        hits = self._inner.build_hits(units, batch_size, assignments, label)
        return self.begin_hits(hits, label=label, strict=strict, post_time=post_time)

    def begin_hits(self, hits, label="task", strict=True, post_time=None):
        inner = self._inner.begin_hits(
            hits,
            label=label,
            strict=strict,
            post_time=self._task.local_time if post_time is None else post_time,
        )
        self._sched.note_post(self._task, inner)
        return _OperatorPending(inner, self._task, self._sched)

    def post_hits(self, hits, label="task", strict=True):
        return self.begin_hits(hits, label=label, strict=strict).result()


# ---------------------------------------------------------------------------
# The scheduler
# ---------------------------------------------------------------------------


PIPELINE_GENERATORS = DispatchTable("pipelined plan-node generator")
"""Pipelined generator factories keyed by ``PlanNode.kind``.

Each handler takes ``(scheduler, task, node)`` and returns the operator's
stepping generator. The builtin registrations mirror the depth-first
table in :mod:`repro.core.executor` operator for operator, so both
executors share one dispatch surface; out-of-tree node kinds register in
both tables without engine edits.
"""


def register_pipeline_generator(kind: str, handler=None, *, replace: bool = False):
    """Register a pipelined generator factory for a plan-node kind."""
    return PIPELINE_GENERATORS.register(kind, handler, replace=replace)


def run_plan_pipelined(root: PlanNode, ctx: QueryContext) -> list[Row]:
    """Execute a plan with the event-driven pipelined scheduler."""
    return PipelineScheduler(root, ctx).run()


class PipelineScheduler:
    """Deterministic event loop over operator tasks and bounded queues."""

    def __init__(self, root: PlanNode, ctx: QueryContext) -> None:
        self.ctx = ctx
        self.epoch = ctx.manager.platform.clock_seconds
        self.tasks: list[OperatorTask] = []
        self._groups_posted = 0
        self._outstanding = 0
        self._peak_outstanding = 0
        self._serial_latency = 0.0
        self._last_finish = self.epoch
        self.inflight_assignments = 0
        self._open_pendings: dict[int, tuple[object, int]] = {}
        self._results: list[Row] = []
        self._prepared = False
        self.root_task = self._build(root)

    # -- construction --------------------------------------------------

    def _build(self, node: PlanNode) -> OperatorTask:
        """Post-order construction: ranks replicate depth-first post order."""
        children = [self._build(child) for child in node.inputs]
        depth = 1 + max((child.depth for child in children), default=0)
        task = OperatorTask(
            node,
            rank=len(self.tasks),
            depth=depth,
            inputs=children,
            out_queue=OperatorQueue(self.ctx.config.pipeline_queue_chunks),
            epoch=self.epoch,
        )
        self.tasks.append(task)
        return task

    def _generator(self, task: OperatorTask):
        node = task.node
        factory = PIPELINE_GENERATORS.lookup(node.kind)
        if factory is None:
            raise ExecutionError(f"no executor for plan node {type(node).__name__}")
        return factory(self, task, node)

    def _operator_ctx(self, task: OperatorTask) -> QueryContext:
        """The operator's view of the context: posts ride its local clock."""
        return replace(
            self.ctx, manager=_OperatorManager(self.ctx.manager, task, self)
        )

    # -- generators ----------------------------------------------------

    def _chunks(self, rows: list[Row]) -> Iterator[list[Row]]:
        size = self.ctx.config.pipeline_chunk_size
        for start in range(0, len(rows), size):
            yield rows[start : start + size]

    def _scan_gen(self, task: OperatorTask, node: ScanNode, ctx: QueryContext):
        rows = scan_rows(node, ctx)
        for chunk in self._chunks(rows):
            yield _Emit(chunk, task.local_time)

    def _stream_gen(self, task: OperatorTask, apply: Callable[[list[Row]], list[Row]]):
        """Chunk-at-a-time transform for computed (crowd-free) operators."""
        while True:
            got = yield _Need(0)
            if got is None:
                break
            rows, time = got
            task.advance_to(time)
            out = apply(rows)
            if out:
                yield _Emit(out, task.local_time)

    def _limit_gen(self, task: OperatorTask, node: LimitNode, ctx: QueryContext):
        # Streams, but keeps draining after the limit fills so row-flow
        # stats match the materialising interpreter exactly.
        stats = ctx.stats_for(node)
        emitted = 0
        while True:
            got = yield _Need(0)
            if got is None:
                break
            rows, time = got
            task.advance_to(time)
            stats.rows_in += len(rows)
            take = rows[: max(0, node.count - emitted)]
            emitted += len(take)
            stats.rows_out += len(take)
            if take:
                yield _Emit(take, task.local_time)

    def _materialize_gen(
        self,
        task: OperatorTask,
        run: Callable[[list[Row], QueryContext], list[Row]],
    ):
        """Drain the input, pass the crowd gate, run the phase, emit."""
        rows: list[Row] = []
        while True:
            got = yield _Need(0)
            if got is None:
                break
            rows.extend(got[0])
            task.advance_to(got[1])
        yield _GATE
        out = run(rows, self._operator_ctx(task))
        for chunk in self._chunks(out):
            yield _Emit(chunk, task.local_time)

    def _adaptive_gen(self, task: OperatorTask, node: AdaptiveFilterNode):
        """The fused crowd-conjunct chain: one crowd round per step.

        Drains its input and passes the crowd gate like any materialising
        crowd operator, then drives the estimate-observe-replan loop
        (:class:`~repro.core.adaptive.AdaptiveChainRun`) one posting round
        at a time, yielding between rounds — these are the re-plan points
        between steppable scheduler rounds, so under a multi-query session
        sibling queries get admission turns while this chain re-orders its
        remaining conjuncts around fresh observations.
        """
        from repro.core.adaptive import AdaptiveChainRun

        rows: list[Row] = []
        while True:
            got = yield _Need(0)
            if got is None:
                break
            rows.extend(got[0])
            task.advance_to(got[1])
        yield _GATE
        run = AdaptiveChainRun(node, rows, self._operator_ctx(task))
        while run.step():
            # Re-plan point: the gate is already open (lower ranks have
            # finished), so this costs one scheduler effect, not a stall.
            yield _GATE
        out = run.finish()
        for chunk in self._chunks(out):
            yield _Emit(chunk, task.local_time)

    def _join_gen(self, task: OperatorTask, node: JoinNode):
        left: list[Row] = []
        while True:
            got = yield _Need(0)
            if got is None:
                break
            left.extend(got[0])
            task.advance_to(got[1])
        right: list[Row] = []
        while True:
            got = yield _Need(1)
            if got is None:
                break
            right.extend(got[0])
            task.advance_to(got[1])
        yield _GATE
        out = join_rows(node, left, right, self._operator_ctx(task))
        for chunk in self._chunks(out):
            yield _Emit(chunk, task.local_time)

    # -- telemetry hooks ----------------------------------------------

    def note_post(self, task: OperatorTask, pending) -> None:
        if not pending.posted:
            return
        inflight = pending.inflight_assignments
        self._open_pendings[id(pending)] = (pending, inflight)
        self.inflight_assignments += inflight
        self._groups_posted += 1
        self._outstanding += 1
        self._peak_outstanding = max(self._peak_outstanding, self._outstanding)
        task.open_batches += 1
        task.pstats.groups_posted += 1
        task.pstats.peak_outstanding = max(
            task.pstats.peak_outstanding, task.open_batches
        )

    def note_harvest(self, task: OperatorTask, pending) -> None:
        if not pending.posted:
            return
        _, inflight = self._open_pendings.pop(id(pending), (None, 0))
        self.inflight_assignments -= inflight
        self._outstanding -= 1
        task.open_batches -= 1
        self._serial_latency += max(0.0, pending.finish_time - pending.post_time)
        if pending.finish_time > self._last_finish:
            self._last_finish = pending.finish_time

    # -- the event loop -------------------------------------------------

    def prepare(self) -> None:
        """Arm the operator generators; call once before stepping.

        Split from :meth:`run` so a session can drive several queries'
        schedulers round-robin through :meth:`step_once` instead of running
        each to completion.
        """
        if self._prepared:
            return
        self._prepared = True
        for task in self.tasks:
            task.gen = self._generator(task)
            self.ctx.stats_for(task.node).pipeline = task.pstats
        # The scheduler itself drains the root, so its queue is unbounded.
        self.root_task.out_queue.capacity = None
        self.root_task.pstats.queue_capacity = 0

    @property
    def done(self) -> bool:
        """Whether every operator task has run to completion."""
        return all(task.finished for task in self.tasks)

    def step_once(self) -> bool:
        """Advance the lowest-rank steppable task by one effect.

        The session's round-robin admission quantum: one effect (one chunk
        moved, one crowd phase run, one gate passed) per call, so no query
        can monopolise the loop. Returns False when nothing could step —
        either the query is done or every task is blocked. Determinism does
        not depend on the quantum: crowd phases are rank-gated, so the
        posting order is the same whether a query is stepped one effect at
        a time or run to completion.
        """
        progressed = False
        for task in self.tasks:
            if not task.finished and self._try_step(task):
                progressed = True
                break
        self._drain_root()
        return progressed

    def _drain_root(self) -> None:
        while self.root_task.out_queue.items:
            self._results.extend(self.root_task.out_queue.get()[0])

    def settle(self) -> None:
        """Public abort hook: harvest posted-but-uncollected groups (see
        :meth:`_settle_outstanding`) after a failed step."""
        self._settle_outstanding()

    def partial_rows(self) -> list[Row]:
        """Rows the root operator has emitted so far (graceful degradation).

        The session's resilience layer finalizes an aborted query with
        these instead of discarding them. Drains the root queue first so
        chunks produced but not yet collected are included. A stalled or
        degraded HIT group cannot wedge the ordering behind this: tickets
        carry their finish times from submission, harvests only move the
        clock forward, and :meth:`settle` collects whatever was posted."""
        self._drain_root()
        return list(self._results)

    def finish(self) -> list[Row]:
        """Record the whole-query pipeline summary and return the rows.

        ``makespan_seconds`` is the span from the query's epoch to *its
        own* latest harvested finish — not the shared clock, which under a
        multi-query session also moves on other queries' harvests.
        """
        self.ctx.pipeline_summary = {
            "stages": float(len(self.tasks)),
            "groups_posted": float(self._groups_posted),
            "peak_outstanding_groups": float(self._peak_outstanding),
            "makespan_seconds": self._last_finish - self.epoch,
            "serial_latency_seconds": self._serial_latency,
        }
        return self._results

    def run(self) -> list[Row]:
        self.prepare()
        try:
            live = True
            while live:
                progressed = False
                for task in self.tasks:
                    while not task.finished and self._try_step(task):
                        progressed = True
                self._drain_root()
                live = not all(task.finished for task in self.tasks)
                if live and not progressed:
                    stuck = [
                        f"{type(t.node).__name__}(rank {t.rank}, "
                        f"waiting on {type(t.pending).__name__})"
                        for t in self.tasks
                        if not t.finished
                    ]
                    raise ExecutionError(
                        "pipeline scheduler deadlock; blocked operators: "
                        + ", ".join(stuck)
                    )
        except BaseException:
            self._settle_outstanding()
            raise
        return self.finish()

    def _settle_outstanding(self) -> None:
        """Harvest every posted-but-uncollected group after an abort.

        The crowd already did (and must be paid for) this work — on a live
        marketplace the money is committed at posting. Settling charges
        the ledger and fills the cache exactly as the depth-first
        interpreter would have before reaching the aborting call, keeping
        the two executors' error-path accounting identical. Secondary
        failures (e.g. a sibling group's own strict-HIT error) are
        swallowed; the original abort propagates.
        """
        for pending, _ in list(self._open_pendings.values()):
            try:
                pending.result()
            # repro-lint: disable=RL010 -- settle deliberately absorbs secondary failures so the original abort propagates (see docstring)
            except Exception:
                pass

    def _try_step(self, task: OperatorTask) -> bool:
        """Advance a task through one satisfiable effect; False if blocked."""
        if not task.started:
            task.started = True
            self._advance(task, first=True)
            return True
        effect = task.pending
        if isinstance(effect, _Need):
            queue = task.inputs[effect.port].out_queue
            if not queue.ready():
                return False
            self._advance(task, value=queue.get())
            return True
        if isinstance(effect, _Emit):
            if task.out_queue.full:
                if not task.emit_blocked:
                    task.emit_blocked = True
                    task.pstats.emit_stalls += 1
                return False
            task.emit_blocked = False
            task.out_queue.put(effect.rows, effect.time)
            task.pstats.chunks_emitted += 1
            self._advance(task)
            return True
        if isinstance(effect, _Gate):
            if any(not t.finished for t in self.tasks[: task.rank]):
                return False
            # The crowd phase starts now, at the operator's input-ready time.
            task.pstats.started_at = task.local_time
            self._advance(task)
            return True
        raise ExecutionError(f"unknown scheduler effect {effect!r}")

    def _advance(
        self, task: OperatorTask, value: object = None, first: bool = False
    ) -> None:
        assert task.gen is not None
        try:
            task.pending = next(task.gen) if first else task.gen.send(value)
        except StopIteration:
            task.finished = True
            task.out_queue.close()
            task.pstats.finished_at = task.local_time
            task.pstats.queue_peak = task.out_queue.peak
        else:
            if task.out_queue.peak > task.pstats.queue_peak:
                task.pstats.queue_peak = task.out_queue.peak


# ---------------------------------------------------------------------------
# Builtin node-kind registrations (mirror repro.core.executor's table)
# ---------------------------------------------------------------------------


def _gen_scan(sched: PipelineScheduler, task: OperatorTask, node: ScanNode):
    return sched._scan_gen(task, node, sched.ctx)


def _gen_computed_filter(
    sched: PipelineScheduler, task: OperatorTask, node: ComputedFilterNode
):
    ctx = sched.ctx
    return sched._stream_gen(task, lambda rows: computed_filter_rows(node, rows, ctx))


def _gen_limit(sched: PipelineScheduler, task: OperatorTask, node: LimitNode):
    return sched._limit_gen(task, node, sched.ctx)


def _gen_project(sched: PipelineScheduler, task: OperatorTask, node: ProjectNode):
    ctx = sched.ctx
    if project_crowd_calls(node, ctx):
        return sched._materialize_gen(task, lambda rows, c: project_rows(node, rows, c))
    return sched._stream_gen(task, lambda rows: project_rows(node, rows, ctx))


def _gen_crowd_filter(
    sched: PipelineScheduler, task: OperatorTask, node: CrowdPredicateNode
):
    return sched._materialize_gen(task, lambda rows, c: crowd_filter_rows(node, rows, c))


def _gen_adaptive_filter(
    sched: PipelineScheduler, task: OperatorTask, node: AdaptiveFilterNode
):
    return sched._adaptive_gen(task, node)


def _gen_sort(sched: PipelineScheduler, task: OperatorTask, node: SortNode):
    return sched._materialize_gen(task, lambda rows, c: execute_sort(node, rows, c))


def _gen_join(sched: PipelineScheduler, task: OperatorTask, node: JoinNode):
    return sched._join_gen(task, node)


PIPELINE_GENERATORS.register(ScanNode.kind, _gen_scan)
PIPELINE_GENERATORS.register(ComputedFilterNode.kind, _gen_computed_filter)
PIPELINE_GENERATORS.register(LimitNode.kind, _gen_limit)
PIPELINE_GENERATORS.register(ProjectNode.kind, _gen_project)
PIPELINE_GENERATORS.register(CrowdPredicateNode.kind, _gen_crowd_filter)
PIPELINE_GENERATORS.register(AdaptiveFilterNode.kind, _gen_adaptive_filter)
PIPELINE_GENERATORS.register(SortNode.kind, _gen_sort)
PIPELINE_GENERATORS.register(JoinNode.kind, _gen_join)
