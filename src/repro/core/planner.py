"""Planner: parsed SELECT statement → logical plan tree (§2.5).

Construction follows the paper's rules:

* tables scan bottom-up; joins are left-deep in query order;
* WHERE conjuncts become separate filter nodes issued serially;
* conjuncts evaluable by a computer become :class:`ComputedFilterNode`
  (the optimizer pushes them down);
* ORDER BY and LIMIT cap the tree, with projection in between
  (the select list may itself require generative crowd work).
"""

from __future__ import annotations

from repro.core.plan import (
    ComputedFilterNode,
    CrowdPredicateNode,
    JoinNode,
    LimitNode,
    PlanNode,
    ProjectNode,
    ScanNode,
    SortNode,
)
from repro.errors import PlanError
from repro.language.ast import SelectQuery
from repro.relational.catalog import Catalog
from repro.relational.expressions import Expression, UDFCall, conjuncts


def _is_crowd_call(call: UDFCall, catalog: Catalog) -> bool:
    """Whether a UDF call must be answered by the crowd."""
    if catalog.has_function(call.name):
        return False
    if catalog.has_task(call.name):
        return True
    raise PlanError(
        f"UDF {call.name!r} is neither a registered task nor a function"
    )


def _needs_crowd(expr: Expression, catalog: Catalog) -> bool:
    return any(_is_crowd_call(call, catalog) for call in expr.udf_calls())


def build_plan(query: SelectQuery, catalog: Catalog) -> PlanNode:
    """Translate a parsed query into an (unoptimized) logical plan."""
    if not catalog.has_table(query.base.name):
        raise PlanError(f"unknown table {query.base.name!r}")
    node: PlanNode = ScanNode(
        table_name=query.base.name, alias=query.base.binding
    )

    # Left-deep joins in query order (Qurk lacks selectivity estimation and
    # "orders filters and joins as they appear in the query", §2.5).
    for join in query.joins:
        if not catalog.has_table(join.right.name):
            raise PlanError(f"unknown table {join.right.name!r}")
        right: PlanNode = ScanNode(
            table_name=join.right.name, alias=join.right.binding
        )
        condition = _join_condition(join.on, catalog)
        node = JoinNode(
            condition=condition,
            possibly=tuple(join.possibly),
            inputs=(node, right),
        )

    # WHERE: one node per conjunct, serial execution order preserved.
    for conjunct in conjuncts(query.where):
        if _needs_crowd(conjunct, catalog):
            node = CrowdPredicateNode(predicate=conjunct, inputs=(node,))
        else:
            node = ComputedFilterNode(predicate=conjunct, inputs=(node,))

    if query.order_by:
        node = SortNode(order_items=tuple(query.order_by), inputs=(node,))

    node = ProjectNode(
        items=tuple(query.select), star=query.select_star, inputs=(node,)
    )

    if query.limit is not None:
        node = LimitNode(count=query.limit, inputs=(node,))
    return node


def _join_condition(expr: Expression, catalog: Catalog) -> UDFCall:
    """The ON clause must be a single crowd equijoin call."""
    if isinstance(expr, UDFCall) and _is_crowd_call(expr, catalog):
        task = catalog.task(expr.name)
        from repro.tasks.base import TaskType

        if task.task_type is not TaskType.EQUIJOIN:
            raise PlanError(
                f"join condition task {expr.name!r} must be an EquiJoin task, "
                f"got {task.task_type.value}"
            )
        if len(expr.args) != 2:
            raise PlanError(
                f"join condition {expr.name!r} must take two arguments "
                f"(left column, right column)"
            )
        return expr
    raise PlanError(
        f"unsupported join condition {expr}; expected a single EquiJoin "
        "task call (extra restrictions belong in POSSIBLY/WHERE clauses)"
    )
