"""Planner: parsed SELECT statement → logical plan tree (§2.5).

Construction follows the paper's rules:

* tables scan bottom-up; joins are left-deep in query order;
* WHERE conjuncts become separate filter nodes issued serially;
* conjuncts evaluable by a computer become :class:`ComputedFilterNode`
  (the optimizer pushes them down);
* ORDER BY and LIMIT cap the tree, with projection in between
  (the select list may itself require generative crowd work).
"""

from __future__ import annotations

from repro.core.plan import (
    ComputedFilterNode,
    CrowdPredicateNode,
    JoinNode,
    LimitNode,
    PlanNode,
    ProjectNode,
    ScanNode,
    SortNode,
)
from repro.errors import PlanError
from repro.language.ast import SelectQuery
from repro.relational.catalog import Catalog
from repro.relational.expressions import Expression, UDFCall, conjuncts


def _is_crowd_call(call: UDFCall, catalog: Catalog) -> bool:
    """Whether a UDF call must be answered by the crowd."""
    if catalog.has_function(call.name):
        return False
    if catalog.has_task(call.name):
        return True
    raise PlanError(
        f"UDF {call.name!r} is neither a registered task nor a function"
    )


def _needs_crowd(expr: Expression, catalog: Catalog) -> bool:
    return any(_is_crowd_call(call, catalog) for call in expr.udf_calls())


def build_plan(query: SelectQuery, catalog: Catalog) -> PlanNode:
    """Translate a parsed query into an (unoptimized) logical plan."""
    if not catalog.has_table(query.base.name):
        raise PlanError(f"unknown table {query.base.name!r}")
    node: PlanNode = ScanNode(
        table_name=query.base.name, alias=query.base.binding
    )

    # Left-deep joins in query order (Qurk lacks selectivity estimation and
    # "orders filters and joins as they appear in the query", §2.5).
    for join in query.joins:
        if not catalog.has_table(join.right.name):
            raise PlanError(f"unknown table {join.right.name!r}")
        right: PlanNode = ScanNode(
            table_name=join.right.name, alias=join.right.binding
        )
        condition = _join_condition(join.on, catalog)
        node = JoinNode(
            condition=condition,
            possibly=tuple(join.possibly),
            inputs=(node, right),
        )

    # WHERE: one node per conjunct, serial execution order preserved.
    for conjunct in conjuncts(query.where):
        if _needs_crowd(conjunct, catalog):
            node = CrowdPredicateNode(predicate=conjunct, inputs=(node,))
        else:
            node = ComputedFilterNode(predicate=conjunct, inputs=(node,))

    sort_node: SortNode | None = None
    if query.order_by:
        sort_node = SortNode(order_items=tuple(query.order_by), inputs=(node,))
        node = sort_node

    node = ProjectNode(
        items=tuple(query.select), star=query.select_star, inputs=(node,)
    )

    if query.limit is not None:
        if sort_node is not None and _projection_is_row_preserving(query, catalog):
            # The operators between the sort and the limit map rows 1:1
            # without crowd work, so only the sort's leading k rows can
            # survive — record that on the node as a pure hint (the sort
            # still may produce more rows; LimitNode always truncates).
            sort_node.limit_hint = query.limit
        node = LimitNode(count=query.limit, inputs=(node,))
    return node


def _projection_is_row_preserving(query: SelectQuery, catalog: Catalog) -> bool:
    """Whether the select list needs no crowd work (LIMIT pushes through).

    Generative select items batch HITs over their whole input, so limiting
    the sort's output early would change which rows those batches cover;
    the limit hint is only safe when projection is a pure per-row mapping.
    """
    if query.select_star:
        return True
    return not any(
        _is_crowd_call(call, catalog)
        for item in query.select
        for call in item.expr.udf_calls()
    )


def _join_condition(expr: Expression, catalog: Catalog) -> UDFCall:
    """The ON clause must be a single crowd equijoin call."""
    if isinstance(expr, UDFCall) and _is_crowd_call(expr, catalog):
        task = catalog.task(expr.name)
        from repro.tasks.registry import ROLE_JOIN, task_role

        if task_role(task) != ROLE_JOIN:
            raise PlanError(
                f"join condition task {expr.name!r} must be a join-role task "
                f"(e.g. EquiJoin), got {task.type_key}"
            )
        if len(expr.args) != 2:
            raise PlanError(
                f"join condition {expr.name!r} must take two arguments "
                f"(left column, right column)"
            )
        return expr
    raise PlanError(
        f"unsupported join condition {expr}; expected a single EquiJoin "
        "task call (extra restrictions belong in POSSIBLY/WHERE clauses)"
    )
