"""Whole-plan budget allocation (§6, "Whole Plan Budget Allocation").

"Another important problem is how to assign a fixed amount of money to an
entire query plan. Additionally, when there is too much data to process
given a budget, we would like Qurk to be able to decide which data items to
process in more detail."

The allocator takes per-operator work estimates (how many HIT-units each
operator would post at full fidelity) and a dollar budget, then:

1. funds every operator at the minimum viable replication (1 assignment);
2. spends the remainder raising replication toward the requested level,
   cheapest-impact first (operators with fewer units are topped up first —
   raising their confidence costs least);
3. if even minimum replication is unaffordable, scales down the *data
   fraction* processed, trimming from the most expensive operator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import BudgetExceededError
from repro.hits.pricing import PricingModel

TRIM_STEP_PERCENT = 5
"""Data-fraction trimming step, in percent (one trim = 5% of the data)."""

TRIM_FLOOR_PERCENT = 10
"""Smallest data fraction the allocator will trim to, in percent."""


@dataclass(frozen=True)
class OperatorEstimate:
    """Work forecast for one operator."""

    name: str
    units: int
    """Atomic questions the operator must ask (pairs, items, groups)."""

    requested_assignments: int = 5
    """Replication the configuration asked for."""


def effective_unit_count(units: int, data_fraction: float) -> int:
    """Units actually processed at a data fraction: the **floor** rule.

    This is the single rounding rule for fractional data processing —
    costing and data trimming must both use it. The previous
    ``round(units * fraction)`` used banker's rounding, so at ``.5``
    products the dollars charged could disagree by one unit-price with the
    allocator's own trimming arithmetic (``round(8.5) == 8`` but
    ``round(3.5) == 4``). Floor never bills a unit the fraction does not
    cover; the epsilon absorbs binary float error so exact products like
    ``20 * 0.85`` do not floor to 16.
    """
    return int(units * data_fraction + 1e-9)


@dataclass
class Allocation:
    """Funding decision for one operator."""

    name: str
    units: int
    assignments: int
    data_fraction: float = 1.0

    @property
    def effective_units(self) -> int:
        """Units funded after data trimming (:func:`effective_unit_count`)."""
        return effective_unit_count(self.units, self.data_fraction)

    def cost(self, pricing: PricingModel) -> float:
        """Dollars this allocation will spend."""
        return pricing.cost(self.effective_units * self.assignments)


@dataclass
class BudgetPlan:
    """The full allocation with its total."""

    allocations: list[Allocation] = field(default_factory=list)
    pricing: PricingModel = field(default_factory=PricingModel)

    @property
    def total_cost(self) -> float:
        """Dollars the plan will spend."""
        return sum(allocation.cost(self.pricing) for allocation in self.allocations)

    def for_operator(self, name: str) -> Allocation:
        """Look up one operator's allocation."""
        for allocation in self.allocations:
            if allocation.name == name:
                return allocation
        raise KeyError(name)


def allocate_budget(
    estimates: list[OperatorEstimate],
    budget: float,
    pricing: PricingModel | None = None,
) -> BudgetPlan:
    """Allocate a dollar budget across operators.

    Raises :class:`BudgetExceededError` when even one assignment per unit on
    a small data fraction (10%) cannot fit.
    """
    pricing = pricing or PricingModel()
    if not estimates:
        return BudgetPlan(pricing=pricing)
    plan = BudgetPlan(
        allocations=[
            Allocation(name=e.name, units=e.units, assignments=1) for e in estimates
        ],
        pricing=pricing,
    )

    if plan.total_cost > budget:
        # Minimum replication is unaffordable: trim the data fraction,
        # largest operator first, down to a 10% floor. Trimming counts
        # *integer steps* and derives each fraction from its step count:
        # repeatedly subtracting 0.05 in binary floating point accumulates
        # error (20 × 0.05 ≠ 1.0 exactly), so the old ``fraction -= 0.05``
        # loop's floor check fired a step early or late depending on the
        # drift's sign. Fractions are now exact multiples of 0.05 and the
        # floor comparison is integer arithmetic; effective_unit_count
        # stays the single rounding rule for the resulting unit counts.
        steps = [0 for _ in estimates]
        max_steps = (100 - TRIM_FLOOR_PERCENT) // TRIM_STEP_PERCENT
        order = sorted(
            range(len(estimates)), key=lambda i: -estimates[i].units
        )
        while plan.total_cost > budget:
            trimmed = False
            for index in order:
                if steps[index] < max_steps:
                    steps[index] += 1
                    plan.allocations[index].data_fraction = (
                        100 - TRIM_STEP_PERCENT * steps[index]
                    ) / 100.0
                    trimmed = True
                    if plan.total_cost <= budget:
                        break
            if not trimmed:
                raise BudgetExceededError(
                    f"budget ${budget:.2f} cannot fund even 1 assignment over "
                    f"{TRIM_FLOOR_PERCENT}% of the data "
                    f"(minimum ${plan.total_cost:.2f})"
                )
        return plan

    # Spend the remainder on replication, cheapest top-ups first.
    improved = True
    while improved:
        improved = False
        candidates = sorted(
            (
                (estimate.units, index)
                for index, estimate in enumerate(estimates)
                if plan.allocations[index].assignments
                < estimate.requested_assignments
            ),
        )
        for units, index in candidates:
            extra = pricing.cost(units)
            if plan.total_cost + extra <= budget + 1e-9:
                plan.allocations[index].assignments += 1
                improved = True
                break
    return plan


@dataclass(frozen=True)
class PreflightReport:
    """Whole-plan budget forecast before the first HIT is posted.

    Produced by :func:`plan_preflight` from the adaptive cost model's
    per-operator estimates (:func:`repro.core.cost_model.operator_estimates`).
    ``projected_cost`` is the full-replication forecast minus
    ``cached_assignments`` — a hook for callers that already know how much
    of the plan the task cache will serve for free. The engine and session
    pass 0 (cache contents are only knowable per-batch, at posting time);
    the *precise* cache-aware gate remains the per-round pre-flight in
    :meth:`TaskManager.projected_new_assignments`, which is why the
    whole-plan abort is opt-in (``ExecutionConfig.budget_preflight``).
    ``fits_trimmed`` reports whether *any* allocation (down to 1
    assignment over the trimming floor) fits; when it is False the query
    cannot complete under the budget no matter how execution adapts.
    """

    budget: float
    projected_cost: float
    cached_assignments: int = 0
    fits_trimmed: bool = True

    @property
    def fits(self) -> bool:
        """Whether the full-replication forecast fits the budget."""
        return self.projected_cost <= self.budget + 1e-9

    def as_signals(self) -> dict[str, float]:
        """EXPLAIN-friendly rendering of the forecast."""
        return {
            "budget": self.budget,
            "projected_cost": round(self.projected_cost, 4),
            "fits": 1.0 if self.fits else 0.0,
        }


def plan_preflight(
    estimates: list[OperatorEstimate],
    budget: float,
    pricing: PricingModel | None = None,
    cached_assignments: int = 0,
) -> PreflightReport:
    """Forecast a plan's spend against a budget without posting anything.

    Unlike :func:`allocate_budget` this never raises: it reports. The
    engine runs it when the adaptive optimizer is active and a
    ``max_budget`` is set, surfacing the forecast in EXPLAIN and — with
    ``ExecutionConfig.budget_preflight`` — aborting hopeless queries
    before the first HIT group is posted instead of midway through.
    """
    pricing = pricing or PricingModel()
    full = sum(
        pricing.cost(e.units * e.requested_assignments) for e in estimates
    )
    projected = max(0.0, full - pricing.cost(cached_assignments))
    try:
        allocate_budget(estimates, budget, pricing)
        fits_trimmed = True
    except BudgetExceededError:
        fits_trimmed = False
    return PreflightReport(
        budget=budget,
        projected_cost=projected,
        cached_assignments=cached_assignments,
        fits_trimmed=fits_trimmed,
    )
