"""In-memory tables.

Qurk is described as "a Scala workflow engine with several types of input
including relational databases and tab-delimited text files" (§2.6). This
module provides the equivalent storage layer: named, schema-typed tables with
TSV import/export and the handful of relational conveniences the operators
and datasets need.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Mapping, Sequence

from repro.errors import SchemaError
from repro.relational.rows import Row
from repro.relational.schema import ColumnType, Schema


class Table:
    """A named collection of rows sharing one schema."""

    def __init__(self, name: str, schema: Schema, rows: Iterable[Mapping[str, object]] = ()) -> None:
        if not name:
            raise SchemaError("table name must be non-empty")
        self.name = name
        self.schema = schema
        self._rows: list[Row] = []
        for values in rows:
            self.insert(values)

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __repr__(self) -> str:
        return f"Table({self.name!r}, {len(self)} rows, {self.schema!r})"

    @property
    def rows(self) -> tuple[Row, ...]:
        """The table's rows as an immutable snapshot."""
        return tuple(self._rows)

    def insert(self, values: Mapping[str, object] | Row) -> Row:
        """Validate and append a row; returns the stored :class:`Row`."""
        if isinstance(values, Row):
            if values.schema != self.schema:
                values = Row(self.schema, values.as_dict())
            row = values
        else:
            row = Row(self.schema, values)
        self._rows.append(row)
        return row

    def extend(self, rows: Iterable[Mapping[str, object]]) -> None:
        """Insert many rows."""
        for values in rows:
            self.insert(values)

    def scan(self) -> Iterator[Row]:
        """Iterate rows in insertion order (the physical scan)."""
        return iter(self._rows)

    def filter(self, predicate: Callable[[Row], bool]) -> "Table":
        """New table with the rows satisfying ``predicate``."""
        result = Table(self.name, self.schema)
        result._rows = [row for row in self._rows if predicate(row)]
        return result

    def project(self, names: Sequence[str]) -> "Table":
        """New table with only the named columns."""
        result = Table(self.name, self.schema.project(list(names)))
        result._rows = [row.project(list(names)) for row in self._rows]
        return result

    def column_values(self, name: str) -> list[object]:
        """All values of one column, in row order."""
        self.schema.column(name)
        return [row[name] for row in self._rows]

    def head(self, count: int) -> "Table":
        """New table with the first ``count`` rows."""
        result = Table(self.name, self.schema)
        result._rows = self._rows[:count]
        return result

    # ------------------------------------------------------------------
    # TSV import/export (the paper's tab-delimited input path, §2.6)
    # ------------------------------------------------------------------

    @classmethod
    def from_tsv(cls, name: str, text: str, schema: Schema | None = None) -> "Table":
        """Parse a tab-delimited string whose first line is the header.

        When ``schema`` is omitted every column is typed ``any`` and values
        are kept as strings (with int/float coercion attempted per cell).
        """
        lines = [line for line in text.splitlines() if line.strip()]
        if not lines:
            raise SchemaError("empty TSV input")
        header = lines[0].split("\t")
        if schema is None:
            schema = Schema.of(*header)
        elif list(schema.names) != header:
            raise SchemaError(
                f"TSV header {header} does not match schema {list(schema.names)}"
            )
        table = cls(name, schema)
        for line_number, line in enumerate(lines[1:], start=2):
            cells = line.split("\t")
            if len(cells) != len(header):
                raise SchemaError(
                    f"TSV line {line_number} has {len(cells)} cells, "
                    f"expected {len(header)}"
                )
            values: dict[str, object] = {}
            for column, cell in zip(schema.columns, cells):
                values[column.name] = _coerce(cell, column.type)
            table.insert(values)
        return table

    def to_tsv(self) -> str:
        """Serialize to a tab-delimited string with a header line."""
        lines = ["\t".join(self.schema.names)]
        for row in self._rows:
            lines.append(
                "\t".join("" if row[name] is None else str(row[name]) for name in self.schema.names)
            )
        return "\n".join(lines)


def _coerce(cell: str, column_type: ColumnType) -> object:
    """Coerce a TSV cell to the column type (best effort for ``any``)."""
    if cell == "":
        return None
    if column_type is ColumnType.INTEGER:
        return int(cell)
    if column_type is ColumnType.FLOAT:
        return float(cell)
    if column_type is ColumnType.BOOLEAN:
        lowered = cell.strip().lower()
        if lowered in ("true", "1", "yes"):
            return True
        if lowered in ("false", "0", "no"):
            return False
        raise SchemaError(f"cannot parse boolean from {cell!r}")
    if column_type in (ColumnType.TEXT, ColumnType.URL):
        return cell
    for caster in (int, float):
        try:
            return caster(cell)
        except ValueError:
            continue
    return cell
