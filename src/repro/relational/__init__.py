"""Relational substrate: schemas, rows, tables, expressions, and the catalog.

Qurk's data model is relational (§2.1); this subpackage provides the storage
and expression layers that the crowd operators are built on. It is an
in-memory engine: tables are lists of immutable rows validated against a
typed schema, and expressions form a small AST that evaluates against rows.
"""

from repro.relational.catalog import Catalog
from repro.relational.expressions import (
    And,
    BinaryOp,
    ColumnRef,
    Comparison,
    Expression,
    FieldAccess,
    Literal,
    Not,
    Or,
    UDFCall,
)
from repro.relational.rows import Row
from repro.relational.schema import Column, ColumnType, Schema
from repro.relational.table import Table

__all__ = [
    "And",
    "BinaryOp",
    "Catalog",
    "Column",
    "ColumnRef",
    "ColumnType",
    "Comparison",
    "Expression",
    "FieldAccess",
    "Literal",
    "Not",
    "Or",
    "Row",
    "Schema",
    "Table",
    "UDFCall",
]
