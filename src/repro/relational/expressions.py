"""Expression AST for query predicates and select lists.

Expressions are built by the parser (or programmatically) and evaluated
against :class:`~repro.relational.rows.Row` objects. Crowd UDF calls
(:class:`UDFCall`) are *not* evaluated here — the planner extracts them and
turns them into crowd operators; any UDF call reaching ``evaluate`` without a
binding in the environment is an error.

The special value :data:`UNKNOWN` implements the paper's feature-extraction
semantics (§2.4): a worker may answer UNKNOWN, and UNKNOWN compares equal to
every value so that it never prunes join candidates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from repro.errors import ExecutionError
from repro.relational.rows import Row


class _Unknown:
    """Singleton sentinel for the paper's UNKNOWN feature value."""

    _instance: "_Unknown | None" = None

    def __new__(cls) -> "_Unknown":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "UNKNOWN"

    def __bool__(self) -> bool:
        return False


UNKNOWN = _Unknown()
"""The UNKNOWN feature value: equal to any value in feature comparisons."""


def feature_equal(left: object, right: object) -> bool:
    """Equality with UNKNOWN wildcards (§2.4).

    UNKNOWN "is equal to any other value, so that an UNKNOWN value does not
    remove potential join candidates".
    """
    if left is UNKNOWN or right is UNKNOWN:
        return True
    return left == right


Environment = Mapping[str, Callable[..., object]]
"""Bindings from UDF name to a Python callable used during evaluation."""


class Expression:
    """Base class for all expressions."""

    def evaluate(self, row: Row, env: Environment | None = None) -> object:
        """Evaluate against a row with optional UDF bindings."""
        raise NotImplementedError

    def udf_calls(self) -> list["UDFCall"]:
        """All :class:`UDFCall` nodes in this expression subtree."""
        return []

    def references(self) -> set[str]:
        """All column names referenced by this subtree."""
        return set()


@dataclass(frozen=True)
class Literal(Expression):
    """A constant value."""

    value: object

    def evaluate(self, row: Row, env: Environment | None = None) -> object:
        return self.value

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class ColumnRef(Expression):
    """A reference to a column, optionally alias-qualified (``c.img``)."""

    name: str
    qualifier: str | None = None

    @property
    def qualified(self) -> str:
        """The fully qualified column name as stored in join-output rows."""
        return f"{self.qualifier}.{self.name}" if self.qualifier else self.name

    def evaluate(self, row: Row, env: Environment | None = None) -> object:
        if self.qualified in row.schema:
            return row[self.qualified]
        if self.name in row.schema:
            return row[self.name]
        if self.qualifier is None:
            # Unqualified reference against alias-prefixed rows: resolve by
            # suffix if unambiguous (``img`` → ``squares.img``).
            suffix = f".{self.name}"
            candidates = [name for name in row.schema.names if name.endswith(suffix)]
            if len(candidates) == 1:
                return row[candidates[0]]
            if len(candidates) > 1:
                raise ExecutionError(
                    f"column {self.name!r} is ambiguous: {candidates}"
                )
        raise ExecutionError(
            f"column {self.qualified!r} not found in row with columns "
            f"{list(row.schema.names)}"
        )

    def references(self) -> set[str]:
        return {self.qualified}

    def __str__(self) -> str:
        return self.qualified


@dataclass(frozen=True)
class UDFCall(Expression):
    """A call to a (possibly crowd-powered) UDF, e.g. ``samePerson(c.img, p.img)``.

    ``field`` carries generative-output access like ``animalInfo(img).common``.
    """

    name: str
    args: tuple[Expression, ...]
    field: str | None = None

    def evaluate(self, row: Row, env: Environment | None = None) -> object:
        env = env or {}
        if self.name not in env:
            raise ExecutionError(
                f"UDF {self.name!r} has no computer-evaluable binding; "
                "crowd UDFs must be planned into crowd operators"
            )
        values = [arg.evaluate(row, env) for arg in self.args]
        result = env[self.name](*values)
        if self.field is not None:
            if isinstance(result, Mapping):
                return result[self.field]
            return getattr(result, self.field)
        return result

    def udf_calls(self) -> list["UDFCall"]:
        nested = [call for arg in self.args for call in arg.udf_calls()]
        return [self, *nested]

    def references(self) -> set[str]:
        refs: set[str] = set()
        for arg in self.args:
            refs |= arg.references()
        return refs

    def __str__(self) -> str:
        args = ", ".join(str(arg) for arg in self.args)
        suffix = f".{self.field}" if self.field else ""
        return f"{self.name}({args}){suffix}"


@dataclass(frozen=True)
class FieldAccess(Expression):
    """Access a named field of a mapping-valued expression."""

    base: Expression
    field: str

    def evaluate(self, row: Row, env: Environment | None = None) -> object:
        value = self.base.evaluate(row, env)
        if isinstance(value, Mapping):
            try:
                return value[self.field]
            except KeyError as exc:
                raise ExecutionError(f"no field {self.field!r} in {value!r}") from exc
        return getattr(value, self.field)

    def udf_calls(self) -> list[UDFCall]:
        return self.base.udf_calls()

    def references(self) -> set[str]:
        return self.base.references()

    def __str__(self) -> str:
        return f"{self.base}.{self.field}"


_COMPARATORS: dict[str, Callable[[object, object], bool]] = {
    "=": lambda a, b: feature_equal(a, b),
    "!=": lambda a, b: not feature_equal(a, b),
    "<": lambda a, b: a < b,  # type: ignore[operator]
    "<=": lambda a, b: a <= b,  # type: ignore[operator]
    ">": lambda a, b: a > b,  # type: ignore[operator]
    ">=": lambda a, b: a >= b,  # type: ignore[operator]
}


@dataclass(frozen=True)
class Comparison(Expression):
    """A binary comparison. Equality honours UNKNOWN wildcards."""

    op: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.op not in _COMPARATORS:
            raise ExecutionError(f"unknown comparison operator {self.op!r}")

    def evaluate(self, row: Row, env: Environment | None = None) -> object:
        left = self.left.evaluate(row, env)
        right = self.right.evaluate(row, env)
        if self.op in ("<", "<=", ">", ">="):
            if left is UNKNOWN or right is UNKNOWN:
                # Ordered comparisons with UNKNOWN keep the candidate, in the
                # same never-prune spirit as equality (§2.4).
                return True
            if left is None or right is None:
                return False
        return _COMPARATORS[self.op](left, right)

    def udf_calls(self) -> list[UDFCall]:
        return [*self.left.udf_calls(), *self.right.udf_calls()]

    def references(self) -> set[str]:
        return self.left.references() | self.right.references()

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class BinaryOp(Expression):
    """Arithmetic on numeric expressions (+, -, *, /)."""

    op: str
    left: Expression
    right: Expression

    _OPS = {
        "+": lambda a, b: a + b,
        "-": lambda a, b: a - b,
        "*": lambda a, b: a * b,
        "/": lambda a, b: a / b,
    }

    def __post_init__(self) -> None:
        if self.op not in self._OPS:
            raise ExecutionError(f"unknown arithmetic operator {self.op!r}")

    def evaluate(self, row: Row, env: Environment | None = None) -> object:
        left = self.left.evaluate(row, env)
        right = self.right.evaluate(row, env)
        try:
            return self._OPS[self.op](left, right)
        except TypeError as exc:
            raise ExecutionError(
                f"cannot apply {self.op!r} to {left!r} and {right!r}"
            ) from exc

    def udf_calls(self) -> list[UDFCall]:
        return [*self.left.udf_calls(), *self.right.udf_calls()]

    def references(self) -> set[str]:
        return self.left.references() | self.right.references()

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class And(Expression):
    """Conjunction. The planner issues conjunct HITs serially (§2.5)."""

    operands: tuple[Expression, ...] = field(default_factory=tuple)

    def evaluate(self, row: Row, env: Environment | None = None) -> object:
        return all(operand.evaluate(row, env) for operand in self.operands)

    def udf_calls(self) -> list[UDFCall]:
        return [call for operand in self.operands for call in operand.udf_calls()]

    def references(self) -> set[str]:
        refs: set[str] = set()
        for operand in self.operands:
            refs |= operand.references()
        return refs

    def __str__(self) -> str:
        return " AND ".join(f"({operand})" for operand in self.operands)


@dataclass(frozen=True)
class Or(Expression):
    """Disjunction. The planner issues disjunct HITs in parallel (§2.5)."""

    operands: tuple[Expression, ...] = field(default_factory=tuple)

    def evaluate(self, row: Row, env: Environment | None = None) -> object:
        return any(operand.evaluate(row, env) for operand in self.operands)

    def udf_calls(self) -> list[UDFCall]:
        return [call for operand in self.operands for call in operand.udf_calls()]

    def references(self) -> set[str]:
        refs: set[str] = set()
        for operand in self.operands:
            refs |= operand.references()
        return refs

    def __str__(self) -> str:
        return " OR ".join(f"({operand})" for operand in self.operands)


@dataclass(frozen=True)
class Not(Expression):
    """Negation."""

    operand: Expression

    def evaluate(self, row: Row, env: Environment | None = None) -> object:
        return not self.operand.evaluate(row, env)

    def udf_calls(self) -> list[UDFCall]:
        return self.operand.udf_calls()

    def references(self) -> set[str]:
        return self.operand.references()

    def __str__(self) -> str:
        return f"NOT ({self.operand})"


def conjuncts(expression: Expression | None) -> list[Expression]:
    """Flatten nested ANDs into a list of conjuncts (empty for None)."""
    if expression is None:
        return []
    if isinstance(expression, And):
        flattened: list[Expression] = []
        for operand in expression.operands:
            flattened.extend(conjuncts(operand))
        return flattened
    return [expression]
