"""Catalog of registered tables and task templates.

The engine resolves ``FROM`` clauses and UDF names against a catalog; the
catalog owns nothing crowd-specific so the relational substrate remains
usable standalone.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterator

from repro.errors import CatalogError
from repro.relational.table import Table

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.tasks.base import Task


class Catalog:
    """Name → table / task / scalar-function registry."""

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}
        self._tasks: dict[str, "Task"] = {}
        self._functions: dict[str, Callable[..., object]] = {}

    # -- tables ---------------------------------------------------------

    def register_table(self, table: Table, replace: bool = False) -> None:
        """Register a table under its name."""
        if table.name in self._tables and not replace:
            raise CatalogError(f"table {table.name!r} already registered")
        self._tables[table.name] = table

    def table(self, name: str) -> Table:
        """Look up a table; raises :class:`CatalogError` when absent."""
        try:
            return self._tables[name]
        except KeyError as exc:
            raise CatalogError(
                f"unknown table {name!r}; registered: {sorted(self._tables)}"
            ) from exc

    def tables(self) -> Iterator[Table]:
        """Iterate registered tables."""
        return iter(self._tables.values())

    def has_table(self, name: str) -> bool:
        """Whether a table with this name is registered."""
        return name in self._tables

    # -- tasks ----------------------------------------------------------

    def register_task(self, task: "Task", replace: bool = False) -> None:
        """Register a crowd task template under its name."""
        if task.name in self._tasks and not replace:
            raise CatalogError(f"task {task.name!r} already registered")
        self._tasks[task.name] = task

    def task(self, name: str) -> "Task":
        """Look up a task template; raises :class:`CatalogError` when absent."""
        try:
            return self._tasks[name]
        except KeyError as exc:
            raise CatalogError(
                f"unknown task {name!r}; registered: {sorted(self._tasks)}"
            ) from exc

    def has_task(self, name: str) -> bool:
        """Whether a task with this name is registered."""
        return name in self._tasks

    # -- computer-evaluable scalar functions ------------------------------

    def register_function(self, name: str, fn: Callable[..., object], replace: bool = False) -> None:
        """Register a non-crowd scalar function usable in expressions.

        These are the "relational operations that can be performed by a
        computer rather than humans" (§2.5) that the optimizer pushes down.
        """
        if name in self._functions and not replace:
            raise CatalogError(f"function {name!r} already registered")
        self._functions[name] = fn

    def function(self, name: str) -> Callable[..., object]:
        """Look up a scalar function; raises :class:`CatalogError` when absent."""
        try:
            return self._functions[name]
        except KeyError as exc:
            raise CatalogError(f"unknown function {name!r}") from exc

    def has_function(self, name: str) -> bool:
        """Whether a scalar function with this name is registered."""
        return name in self._functions

    def functions(self) -> dict[str, Callable[..., object]]:
        """A copy of the scalar-function environment for expression eval."""
        return dict(self._functions)
