"""Immutable rows bound to a schema."""

from __future__ import annotations

from typing import Iterator, Mapping

from repro.errors import SchemaError
from repro.relational.schema import Schema


class Row(Mapping[str, object]):
    """An immutable, schema-validated tuple of named values.

    Rows behave like read-only mappings from column name to value. They are
    hashable (so operators can use them in sets/dicts for deduplication and
    caching) as long as their values are hashable.
    """

    __slots__ = ("_schema", "_values")

    def __init__(self, schema: Schema, values: Mapping[str, object]) -> None:
        schema.validate(dict(values))
        self._schema = schema
        self._values = tuple(values[name] for name in schema.names)

    @property
    def schema(self) -> Schema:
        """The schema this row conforms to."""
        return self._schema

    def __getitem__(self, name: str) -> object:
        return self._values[self._schema.index_of(name)]

    def __iter__(self) -> Iterator[str]:
        return iter(self._schema.names)

    def __len__(self) -> int:
        return len(self._values)

    def __hash__(self) -> int:
        return hash((self._schema.names, self._values))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Row):
            return NotImplemented
        return (
            self._schema.names == other._schema.names
            and self._values == other._values
        )

    def __repr__(self) -> str:
        pairs = ", ".join(
            f"{name}={value!r}" for name, value in zip(self._schema.names, self._values)
        )
        return f"Row({pairs})"

    def get(self, name: str, default: object = None) -> object:
        """Value of ``name``, or ``default`` if the column does not exist."""
        if name not in self._schema:
            return default
        return self[name]

    def as_dict(self) -> dict[str, object]:
        """A plain mutable dict copy of the row."""
        return dict(zip(self._schema.names, self._values))

    def project(self, names: list[str]) -> "Row":
        """Row restricted to the given columns (new schema)."""
        schema = self._schema.project(names)
        return Row(schema, {name: self[name] for name in names})

    def prefixed(self, prefix: str) -> "Row":
        """Row with columns renamed to ``prefix.name`` (alias binding)."""
        schema = self._schema.prefixed(prefix)
        values = {
            f"{prefix}.{name}": value
            for name, value in zip(self._schema.names, self._values)
        }
        return Row(schema, values)

    def merged(self, other: "Row") -> "Row":
        """Row with this row's columns followed by ``other``'s (join output)."""
        overlap = set(self._schema.names) & set(other.schema.names)
        if overlap:
            raise SchemaError(f"cannot merge rows sharing columns {sorted(overlap)}")
        schema = self._schema.concat(other.schema)
        values = self.as_dict()
        values.update(other.as_dict())
        return Row(schema, values)

    def extended(self, name: str, value: object) -> "Row":
        """Row with one extra ``any``-typed column appended."""
        from repro.relational.schema import Column, ColumnType

        schema = self._schema.extended(Column(name, ColumnType.ANY))
        values = self.as_dict()
        values[name] = value
        return Row(schema, values)
