"""Typed schemas for in-memory tables.

A :class:`Schema` is an ordered collection of named, typed columns. Schemas
validate rows on insert (catching simulator bugs early) and support the
derivations the planner needs: projection, renaming with an alias prefix, and
concatenation for join outputs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import SchemaError


class ColumnType(enum.Enum):
    """The column types Qurk queries manipulate.

    ``ANY`` admits any value and is used for UDF-computed columns whose type
    is not declared (e.g. generative task outputs).
    """

    TEXT = "text"
    INTEGER = "integer"
    FLOAT = "float"
    BOOLEAN = "boolean"
    URL = "url"
    ANY = "any"

    def accepts(self, value: object) -> bool:
        """Whether ``value`` conforms to this column type (None is allowed)."""
        if value is None or self is ColumnType.ANY:
            return True
        if self is ColumnType.TEXT or self is ColumnType.URL:
            return isinstance(value, str)
        if self is ColumnType.INTEGER:
            return isinstance(value, int) and not isinstance(value, bool)
        if self is ColumnType.FLOAT:
            return isinstance(value, (int, float)) and not isinstance(value, bool)
        if self is ColumnType.BOOLEAN:
            return isinstance(value, bool)
        raise AssertionError(f"unhandled column type {self}")


@dataclass(frozen=True)
class Column:
    """A named, typed column."""

    name: str
    type: ColumnType = ColumnType.ANY

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("column name must be non-empty")

    def renamed(self, name: str) -> "Column":
        """A copy of this column with a different name."""
        return Column(name=name, type=self.type)


class Schema:
    """An ordered, duplicate-free collection of columns."""

    def __init__(self, columns: Iterable[Column]) -> None:
        self.columns: tuple[Column, ...] = tuple(columns)
        names = [column.name for column in self.columns]
        duplicates = {name for name in names if names.count(name) > 1}
        if duplicates:
            raise SchemaError(f"duplicate column names: {sorted(duplicates)}")
        self._index = {column.name: i for i, column in enumerate(self.columns)}

    @classmethod
    def of(cls, *specs: str) -> "Schema":
        """Build a schema from ``"name type"`` strings, e.g. ``"img url"``.

        The type defaults to ``any`` when omitted, mirroring the paper's
        schema notation like ``celeb(name text, img url)``.
        """
        columns = []
        for spec in specs:
            parts = spec.split()
            if len(parts) == 1:
                columns.append(Column(parts[0]))
            elif len(parts) == 2:
                try:
                    column_type = ColumnType(parts[1].lower())
                except ValueError as exc:
                    raise SchemaError(f"unknown column type in {spec!r}") from exc
                columns.append(Column(parts[0], column_type))
            else:
                raise SchemaError(f"bad column spec {spec!r}; want 'name [type]'")
        return cls(columns)

    @property
    def names(self) -> tuple[str, ...]:
        """Column names in declaration order."""
        return tuple(column.name for column in self.columns)

    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self) -> Iterator[Column]:
        return iter(self.columns)

    def __contains__(self, name: object) -> bool:
        return name in self._index

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Schema) and self.columns == other.columns

    def __hash__(self) -> int:
        return hash(self.columns)

    def __repr__(self) -> str:
        cols = ", ".join(f"{c.name} {c.type.value}" for c in self.columns)
        return f"Schema({cols})"

    def column(self, name: str) -> Column:
        """The column with the given name; raises :class:`SchemaError`."""
        try:
            return self.columns[self._index[name]]
        except KeyError as exc:
            raise SchemaError(
                f"no column {name!r}; have {list(self.names)}"
            ) from exc

    def index_of(self, name: str) -> int:
        """Position of the named column."""
        self.column(name)
        return self._index[name]

    def project(self, names: Iterable[str]) -> "Schema":
        """Schema containing only the given columns, in the given order."""
        return Schema([self.column(name) for name in names])

    def prefixed(self, prefix: str) -> "Schema":
        """Schema with every column renamed to ``prefix.name``.

        Used when binding a table under an alias so join outputs keep both
        sides' columns addressable (``c.img``, ``p.img``).
        """
        return Schema(
            [column.renamed(f"{prefix}.{column.name}") for column in self.columns]
        )

    def concat(self, other: "Schema") -> "Schema":
        """Schema with this schema's columns followed by ``other``'s."""
        return Schema([*self.columns, *other.columns])

    def extended(self, column: Column) -> "Schema":
        """Schema with one extra column appended."""
        return Schema([*self.columns, column])

    def validate(self, values: dict[str, object]) -> None:
        """Check that ``values`` binds exactly this schema's columns with
        type-conforming values; raises :class:`SchemaError` otherwise."""
        missing = [name for name in self.names if name not in values]
        if missing:
            raise SchemaError(f"row missing columns {missing}")
        extra = [name for name in values if name not in self._index]
        if extra:
            raise SchemaError(f"row has unknown columns {sorted(extra)}")
        for column in self.columns:
            value = values[column.name]
            if not column.type.accepts(value):
                raise SchemaError(
                    f"column {column.name!r} expects {column.type.value}, "
                    f"got {value!r} ({type(value).__name__})"
                )
