"""Global switch between the pipelined and depth-first executors.

The paper's executor runs every operator concurrently with asynchronous
input queues so HIT batches from different operators can be outstanding on
the marketplace at the same time (§2.6). :mod:`repro.core.scheduler`
reproduces that as a *deterministic* event loop over the marketplace's
virtual clock; :mod:`repro.core.executor` keeps the original depth-first
interpreter alongside it, behind this switch, for two reasons:

1. ``benchmarks/bench_pipeline.py`` measures the end-to-end virtual-latency
   improvement (and the wall-clock overhead) of the pipelined executor
   against the depth-first interpreter in the same process;
2. ``tests/test_scheduler.py`` runs fixed-seed queries under both executors
   and asserts the rows, the cost ledger, and the per-qid vote stream are
   identical — the pipelining is *latency-only*; it never moves a vote.

The pipelined executor is on by default. Set ``REPRO_PIPELINE=0`` in the
environment (or call :func:`set_enabled`) to fall back to the depth-first
interpreter. ``ExecutionConfig.pipeline`` overrides this switch per query.

The environment variable is re-read by :func:`refresh_from_env`, which the
engine and session facades call at construction time — so exporting
``REPRO_PIPELINE`` *after* ``import repro`` still takes effect for engines
built afterwards, instead of being silently ignored by the value captured
at import.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

_ENV_VAR = "REPRO_PIPELINE"
_OFF_VALUES = ("0", "false", "no", "off")


def _parse(raw: str | None) -> bool:
    return (raw if raw is not None else "1").lower() not in _OFF_VALUES


_ENV_RAW: str | None = os.environ.get(_ENV_VAR)
_ENABLED: bool = _parse(_ENV_RAW)


def enabled() -> bool:
    """Whether the pipelined executor is active by default."""
    return _ENABLED


def refresh_from_env() -> bool:
    """Re-read ``REPRO_PIPELINE`` if it changed; returns the setting.

    Called at :class:`~repro.core.engine.Qurk` /
    :class:`~repro.core.session.EngineSession` construction. A *changed*
    environment value wins over any programmatic :func:`set_enabled`; an
    unchanged one leaves programmatic overrides (and :func:`forced`
    contexts) alone, so tests toggling the switch in-process keep working.
    """
    global _ENABLED, _ENV_RAW
    raw = os.environ.get(_ENV_VAR)
    if raw != _ENV_RAW:
        _ENV_RAW = raw
        _ENABLED = _parse(raw)
    return _ENABLED


def set_enabled(flag: bool) -> bool:
    """Switch the pipelined executor on/off; returns the previous setting."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(flag)
    return previous


@contextmanager
def forced(flag: bool) -> Iterator[None]:
    """Temporarily force the pipelined executor on or off (tests, benchmarks)."""
    previous = set_enabled(flag)
    try:
        yield
    finally:
        set_enabled(previous)
