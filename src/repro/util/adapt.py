"""Global switch for the cost-based adaptive re-optimizer.

The paper's optimizer applies only static rewrites — "Qurk has no
selectivity estimation" (§2.5) — and defers cost/budget-aware planning to
future work (§6). :mod:`repro.core.adaptive` supplies that missing layer:
a per-operator cost model scores candidate plans, crowd conjuncts are
ordered by *observed* selectivity instead of query order, and the engine
re-plans the remaining subtree mid-query as pass rates come in.

This module is the kill switch. The adaptive optimizer is on by default;
set ``REPRO_ADAPT=0`` in the environment (or call :func:`set_enabled`) to
revert to the purely static rewriter — with the toggle off, plans, HIT
posting order, votes, and the pinned golden trace are bit-identical to the
pre-adaptive implementation (``tests/test_adaptive_optimizer.py`` enforces
this). ``ExecutionConfig.adapt`` overrides the switch per query.

Like the sibling ``REPRO_PIPELINE``/``REPRO_FASTPATH`` toggles, the
environment variable is re-read by :func:`refresh_from_env` at engine and
session construction, so exporting it after ``import repro`` still takes
effect; an unchanged environment leaves programmatic overrides alone.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

_ENV_VAR = "REPRO_ADAPT"
_OFF_VALUES = ("0", "false", "no", "off")


def _parse(raw: str | None) -> bool:
    return (raw if raw is not None else "1").lower() not in _OFF_VALUES


_ENV_RAW: str | None = os.environ.get(_ENV_VAR)
_ENABLED: bool = _parse(_ENV_RAW)


def enabled() -> bool:
    """Whether the adaptive optimizer is active by default."""
    return _ENABLED


def refresh_from_env() -> bool:
    """Re-read ``REPRO_ADAPT`` if it changed; returns the setting.

    Called at :class:`~repro.core.engine.Qurk` /
    :class:`~repro.core.session.EngineSession` construction. A *changed*
    environment value wins over any programmatic :func:`set_enabled`; an
    unchanged one leaves programmatic overrides (and :func:`forced`
    contexts) alone, so tests toggling the switch in-process keep working.
    """
    global _ENABLED, _ENV_RAW
    raw = os.environ.get(_ENV_VAR)
    if raw != _ENV_RAW:
        _ENV_RAW = raw
        _ENABLED = _parse(raw)
    return _ENABLED


def set_enabled(flag: bool) -> bool:
    """Switch the adaptive optimizer on/off; returns the previous setting."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(flag)
    return previous


@contextmanager
def forced(flag: bool) -> Iterator[None]:
    """Temporarily force the adaptive optimizer on or off (tests, benchmarks)."""
    previous = set_enabled(flag)
    try:
        yield
    finally:
        set_enabled(previous)
