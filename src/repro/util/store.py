"""Global switch for the persistent cross-run answer store.

Crowd answers are the expensive resource: the paper's task cache (§2.6)
reuses them within a process, but dies with it — every restart re-buys
the same HITs. :mod:`repro.hits.store` adds a SQLite-backed
:class:`~repro.hits.store.PersistentAnswerStore` behind the existing
task-cache interface, so answers amortise across sessions, days, and
deployments. This toggle gates whether a store *configured on the engine
or session facade* is actually attached:

1. with the toggle on (default), ``Qurk(store=...)`` /
   ``EngineSession(store=...)`` open the store and use it as the task
   cache (write-through on store, read-through on lookup);
2. with ``REPRO_STORE=0`` a configured store is ignored entirely — the
   facade behaves exactly as if no store had been passed (no file is
   even opened), which reverts bit-identically to the pinned golden
   trace. Engines that configure no store are untouched by the toggle in
   either direction.

The environment variable is re-read by :func:`refresh_from_env`, which the
engine and session facades call at construction time — so exporting
``REPRO_STORE`` *after* ``import repro`` still takes effect for engines
built afterwards, instead of being silently ignored by the value captured
at import.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

_ENV_VAR = "REPRO_STORE"
_OFF_VALUES = ("0", "false", "no", "off")


def _parse(raw: str | None) -> bool:
    return (raw if raw is not None else "1").lower() not in _OFF_VALUES


_ENV_RAW: str | None = os.environ.get(_ENV_VAR)
_ENABLED: bool = _parse(_ENV_RAW)


def enabled() -> bool:
    """Whether configured persistent answer stores are attached."""
    return _ENABLED


def refresh_from_env() -> bool:
    """Re-read ``REPRO_STORE`` if it changed; returns the setting.

    Called at :class:`~repro.core.engine.Qurk` /
    :class:`~repro.core.session.EngineSession` construction. A *changed*
    environment value wins over any programmatic :func:`set_enabled`; an
    unchanged one leaves programmatic overrides (and :func:`forced`
    contexts) alone, so tests toggling the switch in-process keep working.
    """
    global _ENABLED, _ENV_RAW
    raw = os.environ.get(_ENV_VAR)
    if raw != _ENV_RAW:
        _ENV_RAW = raw
        _ENABLED = _parse(raw)
    return _ENABLED


def set_enabled(flag: bool) -> bool:
    """Switch the persistent store on/off; returns the previous setting."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(flag)
    return previous


@contextmanager
def forced(flag: bool) -> Iterator[None]:
    """Temporarily force the store layer on or off (tests, benchmarks)."""
    previous = set_enabled(flag)
    try:
        yield
    finally:
        set_enabled(previous)
