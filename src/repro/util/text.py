"""Text helpers shared by normalizers, dataset builders, and the harness."""

from __future__ import annotations

import re

_WHITESPACE = re.compile(r"\s+")
_NON_SLUG = re.compile(r"[^a-z0-9]+")


def lowercase_single_space(text: str) -> str:
    """Lower-case and collapse all whitespace runs to single spaces.

    This is the paper's ``LowercaseSingleSpace`` normalizer (§2.2), applied to
    free-text worker responses before combination so that superficially
    different spellings of the same answer aggregate together.
    """
    return _WHITESPACE.sub(" ", text.strip().lower())


def slugify(text: str) -> str:
    """Reduce text to a stable ``[a-z0-9-]`` identifier (for item ids/URLs)."""
    collapsed = _NON_SLUG.sub("-", text.strip().lower())
    return collapsed.strip("-")
