"""Plain-text table rendering for experiment/benchmark output.

The benchmark harness prints the same rows the paper's tables report; this
module renders them with aligned columns so the output is directly comparable
to the paper's tables in a terminal.
"""

from __future__ import annotations

from typing import Sequence


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}".rstrip("0").rstrip(".") if value == value else "nan"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render rows as an aligned ASCII table.

    ``headers`` labels the columns, each row must have the same arity, and an
    optional ``title`` is printed above the table.
    """
    rendered_rows = [[_cell(value) for value in row] for row in rows]
    for index, row in enumerate(rendered_rows):
        if len(row) != len(headers):
            raise ValueError(
                f"row {index} has {len(row)} cells, expected {len(headers)}"
            )
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for col, cell in enumerate(row):
            widths[col] = max(widths[col], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    separator = "-+-".join("-" * width for width in widths)
    parts: list[str] = []
    if title:
        parts.append(title)
    parts.append(line(list(headers)))
    parts.append(separator)
    parts.extend(line(row) for row in rendered_rows)
    return "\n".join(parts)
