"""Plain-text line charts for figure-shaped results.

The paper's figures plot series (τ vs HITs, accuracy vs scheme); the
benchmark harness prints them as ASCII charts so the reproduced *curves* —
not just their endpoints — are visible in terminal output and in
EXPERIMENTS.md without a plotting dependency.
"""

from __future__ import annotations

from typing import Mapping, Sequence

_MARKERS = "ox+*#@%&"


def ascii_chart(
    series: Mapping[str, Sequence[float]],
    height: int = 12,
    width: int = 60,
    y_label: str = "",
    x_label: str = "",
    y_min: float | None = None,
    y_max: float | None = None,
) -> str:
    """Render one or more numeric series as an ASCII line chart.

    Each series is resampled onto ``width`` columns; values share one y
    axis, scaled to [y_min, y_max] (inferred from the data when omitted).
    A legend maps each series name to its marker; later series overwrite
    earlier ones where they collide.
    """
    if not series:
        raise ValueError("ascii_chart needs at least one series")
    if height < 2 or width < 8:
        raise ValueError("chart too small to be legible")
    values = [v for points in series.values() for v in points if v == v]
    if not values:
        raise ValueError("series contain no plottable values")
    low = y_min if y_min is not None else min(values)
    high = y_max if y_max is not None else max(values)
    if high == low:
        high = low + 1.0

    grid = [[" "] * width for _ in range(height)]
    legend: list[str] = []
    for index, (name, points) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        legend.append(f"{marker}={name}")
        points = list(points)
        if not points:
            continue
        for column in range(width):
            if len(points) == 1:
                value = points[0]
            else:
                position = column * (len(points) - 1) / (width - 1)
                lower = int(position)
                upper = min(lower + 1, len(points) - 1)
                fraction = position - lower
                value = points[lower] * (1 - fraction) + points[upper] * fraction
            scaled = (value - low) / (high - low)
            row = height - 1 - round(scaled * (height - 1))
            row = min(max(row, 0), height - 1)
            grid[row][column] = marker

    lines = []
    for row_index, row in enumerate(grid):
        if row_index == 0:
            axis = f"{high:8.2f} |"
        elif row_index == height - 1:
            axis = f"{low:8.2f} |"
        else:
            axis = " " * 8 + " |"
        lines.append(axis + "".join(row))
    lines.append(" " * 9 + "+" + "-" * width)
    footer = " " * 10 + (x_label or "")
    if y_label:
        lines.insert(0, f"{y_label}")
    lines.append(footer.rstrip())
    lines.append(" " * 10 + "  ".join(legend))
    return "\n".join(line.rstrip() for line in lines if line.strip() or line == "")


def sparkline(points: Sequence[float]) -> str:
    """A one-line unicode sparkline (▁▂▃▄▅▆▇█) of a series."""
    if not points:
        raise ValueError("sparkline needs at least one point")
    blocks = "▁▂▃▄▅▆▇█"
    low = min(points)
    high = max(points)
    span = (high - low) or 1.0
    return "".join(
        blocks[min(len(blocks) - 1, int((value - low) / span * (len(blocks) - 1)))]
        for value in points
    )
