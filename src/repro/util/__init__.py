"""Shared utilities: seeded randomness, descriptive statistics, text helpers,
and plain-text table rendering used by the experiment harness."""

from repro.util.charts import ascii_chart, sparkline
from repro.util.rng import RandomSource, child_seed, spawn_rng
from repro.util.stats import (
    Summary,
    mean,
    percentile,
    stddev,
    summarize,
)
from repro.util.tables import format_table
from repro.util.text import lowercase_single_space, slugify

__all__ = [
    "RandomSource",
    "Summary",
    "ascii_chart",
    "child_seed",
    "format_table",
    "lowercase_single_space",
    "mean",
    "percentile",
    "slugify",
    "spawn_rng",
    "sparkline",
    "stddev",
    "summarize",
]
