"""Global switch for the scale-out sort engine.

The paper's §4 sort algorithms were reproduced first as straight reference
implementations: ``break_cycles`` re-runs full Tarjan over the entire
comparison graph (through the dict-copying ``edges`` accessor) on every
edge-removal sweep, ``topological_order`` re-sorts its ready queue inside
the loop, and the hybrid sorter's confidence strategy recomputes every
window's O(S²) rating overlap from scratch. Fine at the paper's 40-square
workloads; quadratic-and-worse once N grows to thousands of items.

This module is the kill switch for the scale-out replacements
(:mod:`repro.sorting.graph`'s indexed adjacency + incremental SCC
cycle-breaking, the heap-based topological sort, the indexed
confidence-window scorer, and the LIMIT-aware tournament sort path in
:mod:`repro.core.sort_exec`). The scale path is on by default; set
``REPRO_SORTSCALE=0`` in the environment (or call :func:`set_enabled`) to
revert to the reference implementations — with the toggle off, orders,
removed-edge sets, hybrid repair trajectories, votes, and the pinned
golden trace are bit-identical to the seed implementation
(``tests/test_sort_scale.py`` enforces this). The one deliberately
stream-*changing* piece, the ``ORDER BY rank(...) LIMIT k`` tournament
path, polls a different (smaller) set of crowd questions: it returns the
same leading rows whenever judgements among the leaders are consistent,
and can be pinned per query with
``ExecutionConfig.limit_sort_tournament``.

Like the sibling ``REPRO_FASTPATH``/``REPRO_PIPELINE``/``REPRO_ADAPT``
toggles, the environment variable is re-read by :func:`refresh_from_env`
at engine and session construction, so exporting it after ``import
repro`` still takes effect; an unchanged environment leaves programmatic
overrides alone.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

_ENV_VAR = "REPRO_SORTSCALE"
_OFF_VALUES = ("0", "false", "no", "off")


def _parse(raw: str | None) -> bool:
    return (raw if raw is not None else "1").lower() not in _OFF_VALUES


_ENV_RAW: str | None = os.environ.get(_ENV_VAR)
_ENABLED: bool = _parse(_ENV_RAW)


def enabled() -> bool:
    """Whether the scale-out sort implementations are active."""
    return _ENABLED


def refresh_from_env() -> bool:
    """Re-read ``REPRO_SORTSCALE`` if it changed; returns the setting.

    Called at :class:`~repro.core.engine.Qurk` /
    :class:`~repro.core.session.EngineSession` construction. A *changed*
    environment value wins over any programmatic :func:`set_enabled`; an
    unchanged one leaves programmatic overrides (and :func:`forced`
    contexts) alone, so tests toggling the switch in-process keep working.
    """
    global _ENABLED, _ENV_RAW
    raw = os.environ.get(_ENV_VAR)
    if raw != _ENV_RAW:
        _ENV_RAW = raw
        _ENABLED = _parse(raw)
    return _ENABLED


def set_enabled(flag: bool) -> bool:
    """Switch the scale path on/off; returns the previous setting."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(flag)
    return previous


@contextmanager
def forced(flag: bool) -> Iterator[None]:
    """Temporarily force the scale path on or off (tests and benchmarks)."""
    previous = set_enabled(flag)
    try:
        yield
    finally:
        set_enabled(previous)
